//! SPMD balance demo: the paper's core claim on one workload.
//!
//! Runs the lbm emulator at 16 threads / 4 nodes under the stock buddy
//! allocator and under TintMalloc MEM+LLC coloring, and prints the paper's
//! four metrics (benchmark runtime, total idle, per-thread runtime, per-
//! thread idle) side by side — the Fig. 11–14 story in one screen.
//!
//! Run: `cargo run --release -p tint-examples --bin spmd_balance`

use tint_spmd::SimThread;
use tint_workloads::lbm::Lbm;
use tint_workloads::traits::{Scale, Workload};
use tint_workloads::PinConfig;
use tintmalloc::prelude::*;

fn run(scheme: ColorScheme) -> tint_spmd::RunMetrics {
    let mut sys = System::boot(MachineConfig::opteron_6128());
    let cores = PinConfig::T16N4.cores();
    let mut threads = SimThread::spawn_all(&mut sys, &cores);
    let plan = scheme.plan(sys.machine(), &cores);
    for (t, p) in threads.iter().zip(&plan) {
        sys.apply_colors(t.tid, p).unwrap();
    }
    let program = Lbm::new(Scale(1.0)).build(&mut sys, &threads, 1).unwrap();
    program.run(&mut sys, &mut threads).unwrap()
}

fn main() {
    println!("lbm, 16_threads_4_nodes — buddy vs TintMalloc MEM+LLC\n");
    let buddy = run(ColorScheme::Buddy);
    let tint = run(ColorScheme::MemLlc);

    println!(
        "{:<28}{:>14}{:>14}{:>9}",
        "metric", "buddy", "MEM+LLC", "ratio"
    );
    println!("{}", "-".repeat(65));
    let row = |name: &str, b: u64, t: u64| {
        println!("{:<28}{:>14}{:>14}{:>9.2}", name, b, t, t as f64 / b as f64);
    };
    row("benchmark runtime (cycles)", buddy.runtime, tint.runtime);
    row("total idle time", buddy.total_idle(), tint.total_idle());
    row(
        "max thread runtime",
        buddy.max_thread_runtime(),
        tint.max_thread_runtime(),
    );
    row(
        "min thread runtime",
        buddy.min_thread_runtime(),
        tint.min_thread_runtime(),
    );
    row(
        "runtime spread (max-min)",
        buddy.runtime_spread(),
        tint.runtime_spread(),
    );
    row(
        "max thread idle",
        buddy.max_thread_idle(),
        tint.max_thread_idle(),
    );

    println!("\nper-thread parallel runtime (cycles):");
    println!("{:<8}{:>14}{:>14}", "thread", "buddy", "MEM+LLC");
    for i in 0..buddy.threads {
        println!(
            "{:<8}{:>14}{:>14}",
            i, buddy.thread_runtime[i], tint.thread_runtime[i]
        );
    }
    assert!(tint.runtime < buddy.runtime, "coloring must shorten lbm");
    assert!(
        tint.runtime_spread() < buddy.runtime_spread(),
        "coloring must balance the threads"
    );
    println!("\nTintMalloc: faster AND more balanced — the paper's claim (3)+(4).");
}
