//! Latency map: measure the NUMA access-latency matrix of the simulated
//! machine directly — every core against every memory node — plus the cache
//! hit ladder. This is the machine characterization behind the paper's
//! Fig. 1 narrative ("local ≪ 1 hop ≪ 2 hops").
//!
//! Run: `cargo run --release -p tint-examples --bin latency_map`

use tint_hw::types::{BankColor, LlcColor};
use tint_mem::MemorySystem;
use tintmalloc::prelude::*;

fn main() {
    let machine = MachineConfig::opteron_6128();
    let mut sys = MemorySystem::new(machine.clone());

    println!("DRAM load latency (cycles @2 GHz, unloaded row miss), core × node:\n");
    print!("{:<8}", "core");
    for n in 0..machine.topology.node_count() {
        print!("{:>8}", format!("node{n}"));
    }
    println!();
    let mut clock = 0u64;
    let mut row = 0u64;
    for c in machine.topology.cores() {
        print!("{:<8}", c.index());
        for n in 0..machine.topology.node_count() {
            // First bank color of node n, a fresh row for every probe.
            let bc = BankColor((n * machine.mapping.bank_colors_per_node()) as u16);
            let f = machine.mapping.compose_frame(bc, LlcColor(0), row % 1024);
            row += 1;
            clock += 100_000; // idle gap: no queueing between probes
            let r = sys.access(c, f.base(), Rw::Read, clock);
            print!("{:>8}", r.latency);
        }
        println!();
    }

    println!("\ncache hit ladder (core 0):");
    let f = machine
        .mapping
        .compose_frame(BankColor(0), LlcColor(0), 900);
    clock += 1_000_000;
    let miss = sys.access(CoreId(0), f.base(), Rw::Read, clock);
    let l1 = sys.access(CoreId(0), f.base(), Rw::Read, clock + miss.latency);
    // Another core: private L1/L2 miss, shared L3 hit.
    let l3 = sys.access(CoreId(1), f.base(), Rw::Read, clock + 2 * miss.latency);
    println!("  DRAM (cold):     {:>5} cycles", miss.latency);
    println!("  L1 (re-read):    {:>5} cycles", l1.latency);
    println!("  L3 (other core): {:>5} cycles", l3.latency);

    println!("\nnanoseconds at {} GHz:", machine.core_ghz);
    println!(
        "  local {:.0} ns, 1 hop {:.0} ns, 2 hops {:.0} ns",
        machine.cycles_to_ns(miss.latency),
        machine.cycles_to_ns(miss.latency + machine.interconnect.same_socket_extra),
        machine.cycles_to_ns(miss.latency + machine.interconnect.cross_socket_extra),
    );
}
