//! Policy explorer: sweep every coloring policy over a chosen benchmark and
//! pinning configuration from the command line.
//!
//! Run: `cargo run --release -p tint-examples --bin policy_explorer -- \
//!           [bench] [config]`
//! where `bench` ∈ {lbm, art, equake, bodytrack, freqmine, blackscholes,
//! synthetic} (default lbm) and `config` ∈ {16t4n, 8t4n, 8t2n, 4t4n, 4t1n}
//! (default 16t4n).

use tint_spmd::SimThread;
use tint_workloads::traits::{all_benchmarks, Scale, Workload};
use tint_workloads::{PinConfig, Synthetic};
use tintmalloc::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench = args.first().map(String::as_str).unwrap_or("lbm");
    let config = match args.get(1).map(String::as_str).unwrap_or("16t4n") {
        "16t4n" => PinConfig::T16N4,
        "8t4n" => PinConfig::T8N4,
        "8t2n" => PinConfig::T8N2,
        "4t4n" => PinConfig::T4N4,
        "4t1n" => PinConfig::T4N1,
        other => panic!("unknown config {other}"),
    };

    let workloads = all_benchmarks(Scale(1.0));
    let synthetic = Synthetic::new(Scale(1.0));
    let w: &dyn Workload = if bench == "synthetic" {
        &synthetic
    } else {
        workloads
            .iter()
            .map(|b| b.as_ref())
            .find(|b| b.name() == bench)
            .unwrap_or_else(|| panic!("unknown benchmark {bench}"))
    };

    println!("{bench} at {config} — all allocation policies\n");
    println!(
        "{:<16}{:>12}{:>10}{:>12}{:>9}{:>9}",
        "policy", "runtime", "vs buddy", "total idle", "remote", "rowhit"
    );
    println!("{}", "-".repeat(68));

    let mut buddy_runtime = None;
    for scheme in ColorScheme::ALL {
        let mut sys = System::boot(MachineConfig::opteron_6128());
        let cores = config.cores();
        let mut threads = SimThread::spawn_all(&mut sys, &cores);
        for (t, p) in threads.iter().zip(&scheme.plan(sys.machine(), &cores)) {
            sys.apply_colors(t.tid, p).unwrap();
        }
        let program = w.build(&mut sys, &threads, 1).unwrap();
        let m = program.run(&mut sys, &mut threads).unwrap();
        let base = *buddy_runtime.get_or_insert(m.runtime as f64);
        println!(
            "{:<16}{:>12}{:>10.3}{:>12}{:>9.3}{:>9.3}",
            scheme.label(),
            m.runtime,
            m.runtime as f64 / base,
            m.total_idle(),
            sys.mem().stats().remote_fraction(),
            sys.mem().dram().stats().hit_rate(),
        );
    }
    println!("\n(ratio < 1.0 beats the stock Linux buddy allocator)");
}
