//! Quickstart: the paper's "one line of code" usage model, end to end.
//!
//! Boots the simulated dual-socket Opteron 6128, spawns two threads on
//! different NUMA nodes, gives each private memory and LLC colors with the
//! one-line `mmap()` calls, and shows that plain `malloc` then returns
//! node-local, bank- and LLC-isolated pages — while an uncolored task's heap
//! smears across colors.
//!
//! Run: `cargo run --release -p tint-examples --bin quickstart`

use tintmalloc::prelude::*;

fn main() {
    // Boot: BIOS programs the PCI config space; the kernel derives the
    // address mapping from it (paper §III.A).
    let mut sys = System::boot(MachineConfig::opteron_6128());
    let m = sys.machine().clone();
    println!(
        "booted {}: {} nodes, {} cores, {} bank colors, {} LLC colors",
        m.name,
        m.topology.node_count(),
        m.topology.core_count(),
        m.mapping.bank_color_count(),
        m.mapping.llc_color_count()
    );

    // A thread pinned to core 0 (node 0) and one pinned to core 12 (node 3).
    let t0 = sys.spawn(CoreId(0));
    let t1 = sys.spawn_thread(CoreId(12), t0).unwrap();

    // The paper's one-line initialization: pick colors once, at startup.
    // Thread 0: bank color 3 (node 0) + LLC color 0.
    sys.set_mem_color(t0, BankColor(3)).unwrap();
    sys.set_llc_color(t0, LlcColor(0)).unwrap();
    // Thread 1: bank color 96 (node 3) + LLC color 1 — fully disjoint.
    sys.set_mem_color(t1, BankColor(96)).unwrap();
    sys.set_llc_color(t1, LlcColor(1)).unwrap();

    // Plain malloc() now returns colored memory: no per-call color argument.
    for (name, tid, want_node) in [("t0", t0, 0usize), ("t1", t1, 3usize)] {
        let buf = sys.malloc(tid, 64 * 1024).unwrap();
        let mut nodes = std::collections::HashSet::new();
        let mut banks = std::collections::HashSet::new();
        let mut llcs = std::collections::HashSet::new();
        for page in 0..16u64 {
            let pa = sys.resolve(tid, buf.offset(page * 4096)).unwrap();
            let d = m.mapping.decode_frame(pa.frame());
            nodes.insert(d.node);
            banks.insert(d.bank_color);
            llcs.insert(d.llc_color);
        }
        println!(
            "{name}: 16 heap pages → nodes {:?}, bank colors {:?}, LLC colors {:?}",
            nodes, banks, llcs
        );
        assert_eq!(nodes.len(), 1, "all pages on one node");
        assert!(nodes.iter().all(|n| n.index() == want_node));
        assert_eq!(banks.len(), 1, "private bank");
        assert_eq!(llcs.len(), 1, "private LLC color");
    }

    // Contrast: an uncolored task's pages walk banks and LLC colors freely.
    let t2 = sys.spawn(CoreId(4));
    sys.set_policy(t2, HeapPolicy::FirstTouch).unwrap();
    let buf = sys.malloc(t2, 256 * 1024).unwrap();
    let mut banks = std::collections::HashSet::new();
    let mut llcs = std::collections::HashSet::new();
    for page in 0..64u64 {
        let pa = sys.resolve(t2, buf.offset(page * 4096)).unwrap();
        let d = m.mapping.decode_frame(pa.frame());
        banks.insert(d.bank_color);
        llcs.insert(d.llc_color);
    }
    println!(
        "uncolored task: 64 heap pages → {} bank colors, {} LLC colors (shared with everyone)",
        banks.len(),
        llcs.len()
    );

    // And the timing model sees the difference: one access, fully broken down.
    let a = sys.malloc(t0, 4096).unwrap();
    let acc = sys.access(t0, a, Rw::Write, 0).unwrap();
    println!(
        "t0 first write: {} cycles (page fault: {}, level: {:?}, hops: {})",
        acc.latency, acc.faulted, acc.detail.level, acc.detail.hops
    );
    let acc2 = sys.access(t0, a, Rw::Read, acc.latency).unwrap();
    println!(
        "t0 re-read:    {} cycles ({:?})",
        acc2.latency, acc2.detail.level
    );
}
