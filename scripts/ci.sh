#!/usr/bin/env bash
# CI gate for the workspace. Run from the repository root:
#
#   scripts/ci.sh
#
# Mirrors what a hosted pipeline would run; kept as a script because the
# build environment is offline (no Actions runners, no network). Every
# step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "CI OK"
