#!/usr/bin/env bash
# CI gate for the workspace. Run from the repository root:
#
#   scripts/ci.sh
#
# Mirrors what a hosted pipeline would run; kept as a script because the
# build environment is offline (no Actions runners, no network). Every
# step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== fault-injection fuzz (bounded) =="
# A bounded pass of the memory-pressure fuzzer: mixed heap/syscall ops
# under injected faults, kernel invariants checked throughout. Release
# mode keeps the 5-seed pass to a few seconds; nightly-depth runs raise
# TINT_FUZZ_SEEDS instead.
TINT_FUZZ_SEEDS=5 cargo test --release -q -p tintmalloc --test fuzz_pressure

echo "CI OK"
