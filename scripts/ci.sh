#!/usr/bin/env bash
# CI gate for the workspace. Run from the repository root:
#
#   scripts/ci.sh
#
# Mirrors what a hosted pipeline would run; kept as a script because the
# build environment is offline (no Actions runners, no network). Every
# step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== fault-injection fuzz (bounded) =="
# A bounded pass of the memory-pressure fuzzer: mixed heap/syscall ops
# under injected faults, kernel invariants checked throughout. Release
# mode keeps the 5-seed pass to a few seconds; nightly-depth runs raise
# TINT_FUZZ_SEEDS instead.
TINT_FUZZ_SEEDS=5 cargo test --release -q -p tintmalloc --test fuzz_pressure

echo "== repro perf smoke =="
# One release probe cell: the simulated cycle count is fully deterministic
# (hard assert — any drift is a correctness bug in the pipeline), and the
# wall time is compared against the recorded baseline (warn only: shared
# machines are noisy, and a warning is a prompt to re-measure, not a
# failure).
cargo build --release -q -p tint-bench --bin repro
smoke_dir=$(mktemp -d)
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" --reps 1 probe:lbm > /dev/null)
smoke_cycles=$(sed -n 's/.*"name": "probe:lbm".*"sim_cycles": \([0-9]*\),.*/\1/p' "$smoke_dir/BENCH_repro.json")
smoke_ms=$(sed -n 's/.*"name": "probe:lbm", "wall_ms": \([0-9.]*\),.*/\1/p' "$smoke_dir/BENCH_repro.json")
rm -rf "$smoke_dir"
if [ "$smoke_cycles" != "25652874" ]; then
    echo "FAIL: probe:lbm simulated $smoke_cycles cycles, expected 25652874" >&2
    exit 1
fi
recorded_ms=$(sed -n 's/.*"name": "probe:lbm", "wall_ms": \([0-9.]*\),.*/\1/p' BENCH_repro.json)
if [ -n "$recorded_ms" ] && [ -n "$smoke_ms" ]; then
    if awk -v now="$smoke_ms" -v rec="$recorded_ms" 'BEGIN { exit !(now > 1.25 * rec) }'; then
        echo "WARN: probe:lbm took ${smoke_ms}ms, >25% over the recorded ${recorded_ms}ms" >&2
    fi
fi

echo "== sim-cache smoke =="
# Cross-figure cell reuse, asserted hard: every fig13/fig14 cell is a
# subset of the fig11 matrix, so after fig11 runs in the same invocation,
# fig13 must be served entirely from the cell cache (zero misses, some
# hits) and fig14 must reuse the fig13 sweep via Ctx (zero traffic).
cache_dir=$(mktemp -d)
(cd "$cache_dir" && "$OLDPWD/target/release/repro" --reps 1 --scale 0.2 --configs 16t4n fig11 fig13 fig14 > /dev/null)
fig13_misses=$(sed -n 's/.*"name": "fig13".*"cache_misses": \([0-9]*\).*/\1/p' "$cache_dir/BENCH_repro.json")
fig13_hits=$(sed -n 's/.*"name": "fig13".*"cache_hits": \([0-9]*\),.*/\1/p' "$cache_dir/BENCH_repro.json")
fig14_misses=$(sed -n 's/.*"name": "fig14".*"cache_misses": \([0-9]*\).*/\1/p' "$cache_dir/BENCH_repro.json")
rm -rf "$cache_dir"
if [ "$fig13_misses" != "0" ] || [ "$fig14_misses" != "0" ]; then
    echo "FAIL: fig13/fig14 after the fig11 matrix simulated new cells (misses: fig13=$fig13_misses fig14=$fig14_misses)" >&2
    exit 1
fi
if [ -z "$fig13_hits" ] || [ "$fig13_hits" = "0" ]; then
    echo "FAIL: fig13 reported no cache hits (expected the whole sweep served from cache)" >&2
    exit 1
fi

echo "== crash-recovery smoke =="
# Three hard-asserted recovery paths of the journal/worker-isolation layer:
#
#  a) deterministic host faults at a moderate rate are fully masked by the
#     retry loop — stdout byte-identical to an undisturbed run;
#  b) a 100% fault rate defeats every retry — the run renders ERR cells
#     and exits nonzero instead of aborting the matrix;
#  c) a SIGKILL mid-matrix leaves a journal whose replay lets the resumed
#     run skip every completed cell and still print byte-identical output.
crash_dir=$(mktemp -d)
(cd "$crash_dir" && TINT_JOURNAL=0 "$OLDPWD/target/release/repro" --jobs 1 --reps 1 --scale 0.2 --configs 16t4n fig12 > clean.txt 2> /dev/null)
(cd "$crash_dir" && TINT_JOURNAL=0 TINT_HOST_FAULT=panic:50:7 "$OLDPWD/target/release/repro" --jobs 1 --reps 1 --scale 0.2 --configs 16t4n fig12 > faulted.txt 2> /dev/null)
if ! cmp -s "$crash_dir/clean.txt" "$crash_dir/faulted.txt"; then
    echo "FAIL: retried host faults changed figure output" >&2
    exit 1
fi
injected=$(sed -n 's/.*"host_faults_injected": \([0-9]*\).*/\1/p' "$crash_dir/BENCH_repro.json")
if [ -z "$injected" ] || [ "$injected" = "0" ]; then
    echo "FAIL: the host-fault plan injected nothing (injected=$injected)" >&2
    exit 1
fi
if (cd "$crash_dir" && TINT_JOURNAL=0 TINT_HOST_FAULT=panic:1000:1 "$OLDPWD/target/release/repro" --jobs 1 --reps 1 --scale 0.2 --configs 16t4n fig10 > total.txt 2> /dev/null); then
    echo "FAIL: a 100% fault rate must exit nonzero" >&2
    exit 1
fi
if ! grep -q "ERR" "$crash_dir/total.txt"; then
    echo "FAIL: poisoned cells did not render as ERR" >&2
    exit 1
fi
rm -rf "$crash_dir"

kill_dir=$(mktemp -d)
(cd "$kill_dir" && exec "$OLDPWD/target/release/repro" --jobs 2 --reps 2 --configs 16t4n fig11 > half.txt 2> /dev/null) &
kill_pid=$!
sleep 2
kill -9 "$kill_pid" 2>/dev/null || true
wait "$kill_pid" 2>/dev/null || true
(cd "$kill_dir" && "$OLDPWD/target/release/repro" --jobs 2 --reps 2 --configs 16t4n fig11 > resumed.txt 2> /dev/null)
clean_dir=$(mktemp -d)
(cd "$clean_dir" && TINT_JOURNAL=0 "$OLDPWD/target/release/repro" --jobs 2 --reps 2 --configs 16t4n fig11 > clean.txt 2> /dev/null)
if ! cmp -s "$kill_dir/resumed.txt" "$clean_dir/clean.txt"; then
    echo "FAIL: resumed-after-SIGKILL output differs from an undisturbed run" >&2
    exit 1
fi
replayed=$(sed -n 's/.*"journal": {"enabled": true, "replayed": \([0-9]*\),.*/\1/p' "$kill_dir/BENCH_repro.json")
jhits=$(sed -n 's/.*"journal": {[^}]*"hits": \([0-9]*\),.*/\1/p' "$kill_dir/BENCH_repro.json")
rm -rf "$kill_dir" "$clean_dir"
if [ -z "$replayed" ] || [ "$replayed" = "0" ]; then
    echo "FAIL: resume replayed no journaled cells (replayed=$replayed)" >&2
    exit 1
fi
if [ -z "$jhits" ] || [ "$jhits" -lt "$replayed" ]; then
    echo "FAIL: journal hits ($jhits) below replayed cells ($replayed) — prefix was re-simulated" >&2
    exit 1
fi

echo "== cell-farm smoke =="
# Two concurrent repro processes share one journal directory, each
# appending to its own shard (no locks on the append path). One is
# SIGKILLed mid-matrix, the other completes; a resume finishes the killed
# matrix. The differential: a third run over both matrices must simulate
# ZERO cells (the merged farm serves everything) and print byte-identical
# figures; `repro gc-journal` then compacts the shards into a fresh
# generation and the differential must still hold.
farm_dir=$(mktemp -d)
(cd "$farm_dir" && exec "$OLDPWD/target/release/repro" --jobs 2 --reps 2 --configs 16t4n fig11 > a.txt 2> /dev/null) &
farm_a=$!
(cd "$farm_dir" && exec "$OLDPWD/target/release/repro" --jobs 2 --reps 2 --configs 16t4n fig12 > b.txt 2> /dev/null) &
farm_b=$!
sleep 2
kill -9 "$farm_a" 2>/dev/null || true
wait "$farm_a" 2>/dev/null || true
wait "$farm_b"
(cd "$farm_dir" && "$OLDPWD/target/release/repro" --jobs 2 --reps 2 --configs 16t4n fig11 > /dev/null 2>&1)
(cd "$farm_dir" && "$OLDPWD/target/release/repro" --jobs 2 --reps 2 --configs 16t4n fig11 fig12 > farm.txt 2> /dev/null)
farm_misses=$(grep '"invocation"' "$farm_dir/BENCH_repro.json" | sed -n 's/.*"cache_misses": \([0-9]*\).*/\1/p')
if [ "$farm_misses" != "0" ]; then
    echo "FAIL: the merged cell farm re-simulated $farm_misses cells (expected 0)" >&2
    exit 1
fi
farm_clean_dir=$(mktemp -d)
(cd "$farm_clean_dir" && TINT_JOURNAL=0 "$OLDPWD/target/release/repro" --jobs 2 --reps 2 --configs 16t4n fig11 fig12 > clean.txt 2> /dev/null)
if ! cmp -s "$farm_dir/farm.txt" "$farm_clean_dir/clean.txt"; then
    echo "FAIL: farm-served figures differ from an undisturbed run" >&2
    exit 1
fi
if ! (cd "$farm_dir" && "$OLDPWD/target/release/repro" gc-journal > /dev/null 2>&1); then
    echo "FAIL: repro gc-journal exited nonzero" >&2
    exit 1
fi
(cd "$farm_dir" && "$OLDPWD/target/release/repro" --jobs 2 --reps 2 --configs 16t4n fig11 fig12 > post_gc.txt 2> /dev/null)
post_gc_misses=$(grep '"invocation"' "$farm_dir/BENCH_repro.json" | sed -n 's/.*"cache_misses": \([0-9]*\).*/\1/p')
if [ "$post_gc_misses" != "0" ] || ! cmp -s "$farm_dir/post_gc.txt" "$farm_clean_dir/clean.txt"; then
    echo "FAIL: the compacted generation lost cells (misses=$post_gc_misses)" >&2
    exit 1
fi
rm -rf "$farm_dir" "$farm_clean_dir"

echo "== io-fault degradation smoke =="
# With every journal filesystem operation failing (io:1000), the run must
# still complete correctly: exit 0, figures byte-identical to a clean run,
# exactly one warning on stderr, and the invocation block reporting the
# disarm. The journal is a cache — losing it may never take a run down.
io_dir=$(mktemp -d)
(cd "$io_dir" && TINT_JOURNAL=0 "$OLDPWD/target/release/repro" --reps 1 --scale 0.2 --configs 16t4n fig12 > clean.txt 2> /dev/null)
if ! (cd "$io_dir" && TINT_HOST_FAULT=io:1000:9 "$OLDPWD/target/release/repro" --reps 1 --scale 0.2 --configs 16t4n fig12 > faulted.txt 2> err.txt); then
    echo "FAIL: io:1000 run exited nonzero" >&2
    cat "$io_dir/err.txt" >&2
    exit 1
fi
if ! cmp -s "$io_dir/clean.txt" "$io_dir/faulted.txt"; then
    echo "FAIL: io faults changed figure output" >&2
    exit 1
fi
warns=$(grep -c "journaling disabled" "$io_dir/err.txt" || true)
if [ "$warns" != "1" ]; then
    echo "FAIL: expected exactly one disarm warning, got $warns:" >&2
    cat "$io_dir/err.txt" >&2
    exit 1
fi
if ! grep -q '"io_disarmed": true' "$io_dir/BENCH_repro.json"; then
    echo "FAIL: the invocation block did not report io_disarmed" >&2
    exit 1
fi
rm -rf "$io_dir"

echo "== churn reclamation smoke =="
# A short seeded multi-tenant churn run: tasks arrive, color themselves,
# live, and exit under every exhaustion policy with kernel invariants
# checked throughout. The figure itself hard-asserts the reclamation
# contract per cell (post-run buddy and color-list populations equal the
# post-boot baseline), so a leaked or mis-routed frame is a nonzero exit;
# the leaked_frames/pool_skew columns are re-checked here for belt and
# braces.
churn_dir=$(mktemp -d)
(cd "$churn_dir" && TINT_JOURNAL=0 "$OLDPWD/target/release/repro" --scale 0.1 churn > churn.txt 2> /dev/null)
if grep -E '"(leaked_frames|pool_skew)": "(-?[1-9])' "$churn_dir/BENCH_repro.json"; then
    echo "FAIL: churn run leaked frames or skewed pool populations" >&2
    exit 1
fi
if ! grep -q '"policy": "mixed"' "$churn_dir/BENCH_repro.json"; then
    echo "FAIL: churn figure missing the mixed-policy rows" >&2
    exit 1
fi
rm -rf "$churn_dir"

echo "== soak survival smoke =="
# A short seeded soak: sustained over-committed arrivals with the kernel
# fault injector armed, watermark admission control, OOM victim kills, and
# the incremental invariant auditor all on. The figure hard-asserts the
# survival contract per cell (every arrival reaches a terminal fate; the
# post-run pool populations equal the baseline — zero leaked frames), so
# any violation is a nonzero exit; the window trace is re-checked here for
# belt and braces.
soak_dir=$(mktemp -d)
(cd "$soak_dir" && TINT_JOURNAL=0 "$OLDPWD/target/release/repro" --scale 0.1 soak > soak.txt 2> /dev/null)
if ! grep -q '"cell": "guarded"' "$soak_dir/BENCH_repro.json"; then
    echo "FAIL: soak figure missing the guarded cell" >&2
    exit 1
fi
if ! grep -q '"cell": "unguarded"' "$soak_dir/BENCH_repro.json"; then
    echo "FAIL: soak figure missing the unguarded cell" >&2
    exit 1
fi
# The final guarded window must show the incremental auditor actually ran.
audited=$(sed -n 's/.*"cell": "guarded".*"audited_frames": "\([0-9]*\)".*/\1/p' "$soak_dir/BENCH_repro.json" | tail -1)
if [ -z "$audited" ] || [ "$audited" = "0" ]; then
    echo "FAIL: soak guarded cell reported no audited frames (audited=$audited)" >&2
    exit 1
fi
# Zero-leak, re-checked from the trace: each cell's final window must show
# no live tenants and every one of the soak machine's 2,048 frames back in
# the buddy allocator.
for cell in guarded unguarded; do
    final=$(grep "\"cell\": \"$cell\"" "$soak_dir/BENCH_repro.json" | tail -1)
    if ! echo "$final" | grep -q '"live": "0", "buddy_free": "2048", "color_pages": "0"'; then
        echo "FAIL: soak $cell cell did not reclaim every frame: $final" >&2
        exit 1
    fi
done
rm -rf "$soak_dir"

echo "== figure bit-identity =="
# The six paper figures are bit-deterministic end to end; their combined
# stdout hash is the contract every refactor must preserve. Hard assert —
# any drift means the simulation pipeline changed behaviour.
md5_dir=$(mktemp -d)
(cd "$md5_dir" && TINT_JOURNAL=0 "$OLDPWD/target/release/repro" fig10 fig11 fig12 fig13 fig14 latency > figures.txt 2> /dev/null)
fig_md5=$(md5sum "$md5_dir/figures.txt" | cut -d' ' -f1)
rm -rf "$md5_dir"
if [ "$fig_md5" != "ba5e3f618bc062b31250615c57f2cc10" ]; then
    echo "FAIL: six-figure output md5 $fig_md5 != ba5e3f618bc062b31250615c57f2cc10" >&2
    exit 1
fi

echo "== sampled-engine smoke =="
# Exact-vs-sampled differential on a reduced fig11/fig12 matrix: repro
# runs both engines interleaved, compares every per-scheme figure ratio,
# and exits nonzero if any relative error exceeds the bound compiled into
# validate-sampled. Hard assert — the shipped sampled defaults must hold
# the bound; the knob that trades accuracy for speed (TINT_SAMPLE_
# WARM_TOUCH) is deliberately left at its default here.
sampled_dir=$(mktemp -d)
if ! (cd "$sampled_dir" && TINT_JOURNAL=0 "$OLDPWD/target/release/repro" \
        --reps 1 --scale 0.2 --configs 16t4n validate-sampled > validate.txt 2>&1); then
    cat "$sampled_dir/validate.txt" >&2
    echo "FAIL: validate-sampled exceeded its error bound" >&2
    exit 1
fi
if ! grep -q "PASS" "$sampled_dir/validate.txt"; then
    cat "$sampled_dir/validate.txt" >&2
    echo "FAIL: validate-sampled did not report PASS" >&2
    exit 1
fi
rm -rf "$sampled_dir"

echo "CI OK"
