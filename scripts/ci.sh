#!/usr/bin/env bash
# CI gate for the workspace. Run from the repository root:
#
#   scripts/ci.sh
#
# Mirrors what a hosted pipeline would run; kept as a script because the
# build environment is offline (no Actions runners, no network). Every
# step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== fault-injection fuzz (bounded) =="
# A bounded pass of the memory-pressure fuzzer: mixed heap/syscall ops
# under injected faults, kernel invariants checked throughout. Release
# mode keeps the 5-seed pass to a few seconds; nightly-depth runs raise
# TINT_FUZZ_SEEDS instead.
TINT_FUZZ_SEEDS=5 cargo test --release -q -p tintmalloc --test fuzz_pressure

echo "== repro perf smoke =="
# One release probe cell: the simulated cycle count is fully deterministic
# (hard assert — any drift is a correctness bug in the pipeline), and the
# wall time is compared against the recorded baseline (warn only: shared
# machines are noisy, and a warning is a prompt to re-measure, not a
# failure).
cargo build --release -q -p tint-bench --bin repro
smoke_dir=$(mktemp -d)
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" --reps 1 probe:lbm > /dev/null)
smoke_cycles=$(sed -n 's/.*"name": "probe:lbm".*"sim_cycles": \([0-9]*\),.*/\1/p' "$smoke_dir/BENCH_repro.json")
smoke_ms=$(sed -n 's/.*"name": "probe:lbm", "wall_ms": \([0-9.]*\),.*/\1/p' "$smoke_dir/BENCH_repro.json")
rm -rf "$smoke_dir"
if [ "$smoke_cycles" != "25652874" ]; then
    echo "FAIL: probe:lbm simulated $smoke_cycles cycles, expected 25652874" >&2
    exit 1
fi
recorded_ms=$(sed -n 's/.*"name": "probe:lbm", "wall_ms": \([0-9.]*\),.*/\1/p' BENCH_repro.json)
if [ -n "$recorded_ms" ] && [ -n "$smoke_ms" ]; then
    if awk -v now="$smoke_ms" -v rec="$recorded_ms" 'BEGIN { exit !(now > 1.25 * rec) }'; then
        echo "WARN: probe:lbm took ${smoke_ms}ms, >25% over the recorded ${recorded_ms}ms" >&2
    fi
fi

echo "== sim-cache smoke =="
# Cross-figure cell reuse, asserted hard: every fig13/fig14 cell is a
# subset of the fig11 matrix, so after fig11 runs in the same invocation,
# fig13 must be served entirely from the cell cache (zero misses, some
# hits) and fig14 must reuse the fig13 sweep via Ctx (zero traffic).
cache_dir=$(mktemp -d)
(cd "$cache_dir" && "$OLDPWD/target/release/repro" --reps 1 --scale 0.2 --configs 16t4n fig11 fig13 fig14 > /dev/null)
fig13_misses=$(sed -n 's/.*"name": "fig13".*"cache_misses": \([0-9]*\).*/\1/p' "$cache_dir/BENCH_repro.json")
fig13_hits=$(sed -n 's/.*"name": "fig13".*"cache_hits": \([0-9]*\),.*/\1/p' "$cache_dir/BENCH_repro.json")
fig14_misses=$(sed -n 's/.*"name": "fig14".*"cache_misses": \([0-9]*\).*/\1/p' "$cache_dir/BENCH_repro.json")
rm -rf "$cache_dir"
if [ "$fig13_misses" != "0" ] || [ "$fig14_misses" != "0" ]; then
    echo "FAIL: fig13/fig14 after the fig11 matrix simulated new cells (misses: fig13=$fig13_misses fig14=$fig14_misses)" >&2
    exit 1
fi
if [ -z "$fig13_hits" ] || [ "$fig13_hits" = "0" ]; then
    echo "FAIL: fig13 reported no cache hits (expected the whole sweep served from cache)" >&2
    exit 1
fi

echo "CI OK"
