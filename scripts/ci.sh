#!/usr/bin/env bash
# CI gate for the workspace. Run from the repository root:
#
#   scripts/ci.sh
#
# Mirrors what a hosted pipeline would run; kept as a script because the
# build environment is offline (no Actions runners, no network). Every
# step must pass; the script stops at the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== fault-injection fuzz (bounded) =="
# A bounded pass of the memory-pressure fuzzer: mixed heap/syscall ops
# under injected faults, kernel invariants checked throughout. Release
# mode keeps the 5-seed pass to a few seconds; nightly-depth runs raise
# TINT_FUZZ_SEEDS instead.
TINT_FUZZ_SEEDS=5 cargo test --release -q -p tintmalloc --test fuzz_pressure

echo "== repro perf smoke =="
# One release probe cell: the simulated cycle count is fully deterministic
# (hard assert — any drift is a correctness bug in the pipeline), and the
# wall time is compared against the recorded baseline (warn only: shared
# machines are noisy, and a warning is a prompt to re-measure, not a
# failure).
cargo build --release -q -p tint-bench --bin repro
smoke_dir=$(mktemp -d)
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" --reps 1 probe:lbm > /dev/null)
smoke_cycles=$(sed -n 's/.*"name": "probe:lbm".*"sim_cycles": \([0-9]*\),.*/\1/p' "$smoke_dir/BENCH_repro.json")
smoke_ms=$(sed -n 's/.*"name": "probe:lbm", "wall_ms": \([0-9.]*\),.*/\1/p' "$smoke_dir/BENCH_repro.json")
rm -rf "$smoke_dir"
if [ "$smoke_cycles" != "25652874" ]; then
    echo "FAIL: probe:lbm simulated $smoke_cycles cycles, expected 25652874" >&2
    exit 1
fi
recorded_ms=$(sed -n 's/.*"name": "probe:lbm", "wall_ms": \([0-9.]*\),.*/\1/p' BENCH_repro.json)
if [ -n "$recorded_ms" ] && [ -n "$smoke_ms" ]; then
    if awk -v now="$smoke_ms" -v rec="$recorded_ms" 'BEGIN { exit !(now > 1.25 * rec) }'; then
        echo "WARN: probe:lbm took ${smoke_ms}ms, >25% over the recorded ${recorded_ms}ms" >&2
    fi
fi

echo "CI OK"
