//! End-to-end integration: the whole stack from PCI boot to barrier metrics.

use tint_hw::types::{BankColor, CoreId, LlcColor, NodeId, Rw};
use tint_integration::run_stack;
use tint_spmd::SimThread;
use tint_workloads::lbm::Lbm;
use tint_workloads::synthetic::Synthetic;
use tint_workloads::PinConfig;
use tintmalloc::prelude::*;

/// Small lbm so debug-mode runs stay fast.
fn mini_lbm() -> Lbm {
    Lbm {
        bytes_per_thread: 48 * 4096,
        timesteps: 2,
        compute: 4,
    }
}

fn mini_synth() -> Synthetic {
    Synthetic {
        bytes_per_thread: 48 * 4096,
    }
}

#[test]
fn boot_spawns_and_colors_through_the_real_syscall_path() {
    let mut sys = System::boot(MachineConfig::opteron_6128());
    let t = sys.spawn(CoreId(5)); // node 1
    sys.set_mem_color(t, BankColor(40)).unwrap(); // node 1 color
    sys.set_llc_color(t, LlcColor(7)).unwrap();
    let a = sys.malloc(t, 32 * 4096).unwrap();
    for p in 0..32u64 {
        let pa = sys.resolve(t, a.offset(p * 4096)).unwrap();
        let d = sys.machine().mapping.decode_frame(pa.frame());
        assert_eq!(d.bank_color, BankColor(40));
        assert_eq!(d.llc_color, LlcColor(7));
        assert_eq!(d.node, NodeId(1));
    }
}

#[test]
fn memllc_beats_buddy_on_lbm_and_is_more_balanced() {
    let w = mini_lbm();
    let (buddy, _) = run_stack(&w, ColorScheme::Buddy, PinConfig::T16N4, 1);
    let (tint, _) = run_stack(&w, ColorScheme::MemLlc, PinConfig::T16N4, 1);
    assert!(
        tint.runtime < buddy.runtime,
        "MEM+LLC {} must beat buddy {}",
        tint.runtime,
        buddy.runtime
    );
    assert!(
        tint.max_thread_runtime() < buddy.max_thread_runtime(),
        "the slowest thread must get faster (the balance mechanism)"
    );
}

#[test]
fn memllc_eliminates_remote_accesses_and_llc_interference() {
    let w = mini_lbm();
    let (_, sys) = run_stack(&w, ColorScheme::MemLlc, PinConfig::T16N4, 1);
    assert_eq!(
        sys.mem().stats().remote_fraction(),
        0.0,
        "paper claim: remote accesses avoided entirely for private data"
    );
    assert_eq!(
        sys.mem().hierarchy().stats().total_llc_interference(),
        0,
        "disjoint LLC colors cannot evict each other"
    );
}

#[test]
fn buddy_suffers_llc_interference_when_aggregate_exceeds_llc() {
    // 16 × 224 pages = 14.6 MiB > the 12 MiB L3: streams evict each other.
    let w = Synthetic {
        bytes_per_thread: 224 * 4096,
    };
    let (_, sys) = run_stack(&w, ColorScheme::Buddy, PinConfig::T16N4, 1);
    assert!(
        sys.mem().hierarchy().stats().total_llc_interference() > 0,
        "uncolored tasks share LLC sets"
    );
}

#[test]
fn bpm_is_remote_heavy_buddy_is_local() {
    let w = mini_synth();
    let (_, buddy_sys) = run_stack(&w, ColorScheme::Buddy, PinConfig::T4N4, 1);
    let (_, bpm_sys) = run_stack(&w, ColorScheme::Bpm, PinConfig::T4N4, 1);
    assert_eq!(buddy_sys.mem().stats().remote_fraction(), 0.0);
    let bpm_remote = bpm_sys.mem().stats().remote_fraction();
    assert!(
        bpm_remote > 0.5,
        "BPM ignores the controller: expected mostly-remote banks, got {bpm_remote}"
    );
}

#[test]
fn runs_are_bit_deterministic() {
    let w = mini_lbm();
    let (a, _) = run_stack(&w, ColorScheme::MemLlc, PinConfig::T8N4, 7);
    let (b, _) = run_stack(&w, ColorScheme::MemLlc, PinConfig::T8N4, 7);
    assert_eq!(a, b);
}

#[test]
fn every_scheme_runs_on_every_config() {
    let w = Synthetic {
        bytes_per_thread: 16 * 4096,
    };
    for pin in PinConfig::ALL {
        for scheme in ColorScheme::ALL {
            let (m, _) = run_stack(&w, scheme, pin, 1);
            assert!(m.runtime > 0, "{scheme} at {pin}");
            assert_eq!(m.threads, pin.threads());
        }
    }
}

#[test]
fn idle_accounting_satisfies_algorithm_3() {
    // For every thread: accumulated busy + idle == total parallel time.
    let w = mini_lbm();
    let (m, _) = run_stack(&w, ColorScheme::Buddy, PinConfig::T8N2, 1);
    for i in 0..m.threads {
        let total = m.thread_runtime[i] + m.thread_idle[i];
        let expect = m
            .thread_runtime
            .iter()
            .zip(&m.thread_idle)
            .map(|(r, i)| r + i)
            .max();
        assert_eq!(
            Some(total),
            expect,
            "thread {i}: busy+idle must equal the barrier sum"
        );
    }
}

#[test]
fn shared_address_space_lets_threads_exchange_data() {
    let mut sys = System::boot(MachineConfig::opteron_6128());
    let mut threads = SimThread::spawn_all(&mut sys, &[CoreId(0), CoreId(8)]);
    let master = threads[0].tid;
    let shared = sys.malloc(master, 4 * 4096).unwrap();
    // The worker touches the master's allocation first: first-touch puts the
    // page on the worker's node.
    let worker = threads[1].tid;
    sys.set_policy(worker, HeapPolicy::FirstTouch).unwrap();
    let acc = sys.access(worker, shared, Rw::Write, 0).unwrap();
    assert!(acc.faulted);
    let pa = sys.resolve(master, shared).unwrap();
    assert_eq!(
        sys.machine().mapping.decode_frame(pa.frame()).node,
        NodeId(2),
        "first-touch by the worker (core 8 = node 2) placed the page"
    );
    threads[0].clock = 0; // silence unused-mut style concerns
}

#[test]
fn color_exhaustion_propagates_to_the_runner() {
    // A thread with exactly one (bank, LLC) color pair owns 4 MiB; ask for
    // more and the access path must report ENOMEM, not panic.
    let mut sys = System::boot(MachineConfig::opteron_6128());
    let t = sys.spawn(CoreId(0));
    sys.set_mem_color(t, BankColor(0)).unwrap();
    sys.set_llc_color(t, LlcColor(0)).unwrap();
    let per_pair = sys.machine().mapping.frames_per_color_pair();
    let a = sys.malloc(t, (per_pair + 8) * 4096).unwrap();
    let mut saw_enomem = false;
    for p in 0..per_pair + 8 {
        match sys.access(t, a.offset(p * 4096), Rw::Write, 0) {
            Ok(_) => {}
            Err(Errno::Enomem) => {
                saw_enomem = true;
                break;
            }
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert!(saw_enomem);
}
