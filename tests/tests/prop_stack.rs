//! End-to-end property tests: the whole stack under randomized small
//! workloads on the tiny machine.
//!
//! Seeded-loop randomized tests over the workspace's deterministic PRNG —
//! no external property-testing framework required.

use tint_hw::machine::MachineConfig;
use tint_hw::rng::SplitMix64;
use tint_hw::types::{CoreId, Rw};
use tint_spmd::{Op, Program, SectionBody, SimThread};
use tintmalloc::prelude::*;

const CASES: u64 = 24;

/// A randomized two-thread program: per thread, a list of (region pages,
/// accesses, stride) triples, one parallel section each.
fn arb_workload(rng: &mut SplitMix64) -> Vec<Vec<(u64, u64, u64)>> {
    (0..2)
        .map(|_| {
            let n = rng.gen_range_in(1, 4);
            (0..n)
                .map(|_| {
                    (
                        rng.gen_range_in(1, 8),
                        rng.gen_range_in(1, 64),
                        rng.gen_range_in(1, 3),
                    )
                })
                .collect()
        })
        .collect()
}

fn run(
    work: &[Vec<(u64, u64, u64)>],
    scheme: ColorScheme,
    noise: u64,
) -> (tint_spmd::RunMetrics, u64, u64) {
    let mut sys = System::boot(MachineConfig::tiny());
    sys.boot_noise(noise);
    let cores = vec![CoreId(0), CoreId(2)];
    let mut threads = SimThread::spawn_all(&mut sys, &cores);
    for (t, p) in threads.iter().zip(&scheme.plan(sys.machine(), &cores)) {
        sys.apply_colors(t.tid, p).unwrap();
    }
    let mut program = Program::new();
    let mut bodies: Vec<Box<dyn SectionBody>> = Vec::new();
    for (ti, sections) in work.iter().enumerate() {
        let mut ops: Vec<Op> = Vec::new();
        for &(pages, accesses, stride) in sections {
            let base = sys.malloc(threads[ti].tid, pages * 4096).unwrap();
            let span = pages * 4096;
            for a in 0..accesses {
                ops.push(Op::Access {
                    addr: base.offset((a * stride * 64) % span),
                    rw: if a % 3 == 0 { Rw::Write } else { Rw::Read },
                });
                ops.push(Op::Compute(3));
            }
        }
        bodies.push(Box::new(ops.into_iter()));
    }
    program = program.parallel(bodies);
    let m = program.run(&mut sys, &mut threads).unwrap();
    let faults = sys.kernel().stats().page_faults;
    let free = sys.kernel().buddy().free_pages() + sys.kernel().color_lists().pages();
    (m, faults, free)
}

/// Bit-determinism end to end, for a colored and an uncolored scheme.
#[test]
fn stack_is_deterministic() {
    let mut rng = SplitMix64::new(0xde7);
    for _ in 0..CASES {
        let work = arb_workload(&mut rng);
        let noise = rng.gen_range(64);
        for scheme in [ColorScheme::Buddy, ColorScheme::MemLlc] {
            let a = run(&work, scheme, noise);
            let b = run(&work, scheme, noise);
            assert_eq!(a.0, b.0, "{scheme} metrics differ");
            assert_eq!(a.1, b.1);
        }
    }
}

/// Physical pages are conserved: free + color-listed pages only shrink
/// by what is resident (faulted) plus pcp reservations.
#[test]
fn stack_conserves_frames() {
    let mut rng = SplitMix64::new(0xf8a);
    for _ in 0..CASES {
        let work = arb_workload(&mut rng);
        let noise = rng.gen_range(32);
        let total = MachineConfig::tiny().mapping.frame_count();
        let (_, faults, free) = run(&work, ColorScheme::MemLlc, noise);
        assert!(free + faults + noise <= total);
        // Colored runs take no pcp reservations, so the accounting is exact.
        assert_eq!(free + faults + noise, total);
    }
}

/// Every metric invariant holds: runtime ≥ max thread busy time, and
/// busy + idle is equal across threads.
#[test]
fn stack_metrics_are_consistent() {
    let mut rng = SplitMix64::new(0x3a7);
    for _ in 0..CASES {
        let work = arb_workload(&mut rng);
        let (m, _, _) = run(&work, ColorScheme::LlcOnly, 0);
        assert!(m.runtime >= m.max_thread_runtime());
        let sums: Vec<u64> = m
            .thread_runtime
            .iter()
            .zip(&m.thread_idle)
            .map(|(r, i)| r + i)
            .collect();
        assert!(
            sums.windows(2).all(|w| w[0] == w[1]),
            "busy+idle equal at barrier"
        );
    }
}
