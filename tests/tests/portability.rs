//! Portability (paper §VII): the whole stack — PCI derivation, kernel,
//! planners, heap, SPMD engine — works unchanged on a different machine.

use tint_hw::pci::{derive_mapping, PciConfigSpace};
use tint_hw::types::{CoreId, NodeId};
use tint_spmd::SimThread;
use tint_workloads::synthetic::Synthetic;
use tint_workloads::traits::Workload;
use tintmalloc::prelude::*;

#[test]
fn eight_node_machine_boots_via_pci() {
    let m = MachineConfig::eight_node();
    let pci = PciConfigSpace::programmed_by_bios(&m.mapping);
    assert_eq!(derive_mapping(&pci).unwrap(), m.mapping);
    let _sys = System::boot(m);
}

#[test]
fn memllc_plan_is_local_and_disjoint_on_eight_nodes() {
    let m = MachineConfig::eight_node();
    let cores: Vec<CoreId> = m.topology.cores().collect(); // 16 cores, 8 nodes
    let plan = ColorScheme::MemLlc.plan(&m, &cores);
    let mut seen_banks = std::collections::HashSet::new();
    let mut seen_llc = std::collections::HashSet::new();
    for (i, p) in plan.iter().enumerate() {
        assert_eq!(p.mem.len(), 16, "32 node colors / 2 threads per node");
        assert_eq!(p.llc.len(), 2);
        let node = m.topology.node_of_core(cores[i]);
        for &bc in &p.mem {
            assert_eq!(m.mapping.node_of_bank_color(bc), node);
            assert!(seen_banks.insert(bc));
        }
        for &lc in &p.llc {
            assert!(seen_llc.insert(lc));
        }
    }
}

#[test]
fn full_run_on_eight_nodes_beats_buddy_and_stays_local() {
    let run = |scheme: ColorScheme| {
        let mut sys = System::boot(MachineConfig::eight_node());
        let cores: Vec<CoreId> = sys.machine().topology.cores().collect();
        let mut threads = SimThread::spawn_all(&mut sys, &cores);
        for (t, p) in threads.iter().zip(&scheme.plan(sys.machine(), &cores)) {
            sys.apply_colors(t.tid, p).unwrap();
        }
        let w = Synthetic {
            bytes_per_thread: 48 * 4096,
        };
        let program = w.build(&mut sys, &threads, 1).unwrap();
        let m = program.run(&mut sys, &mut threads).unwrap();
        (m.runtime, sys.mem().stats().remote_fraction())
    };
    let (buddy, buddy_remote) = run(ColorScheme::Buddy);
    let (tint, tint_remote) = run(ColorScheme::MemLlc);
    assert_eq!(buddy_remote, 0.0);
    assert_eq!(tint_remote, 0.0, "controller-aware on 8 nodes too");
    assert!(tint < buddy, "MEM+LLC {tint} vs buddy {buddy}");
}

#[test]
fn colored_placement_reaches_every_node() {
    // Eight tasks, one per node, each colored with its node's first bank
    // color: pages land exactly where planned on all 8 controllers.
    let mut sys = System::boot(MachineConfig::eight_node());
    let cpn = sys.machine().mapping.bank_colors_per_node();
    for n in 0..8usize {
        let core = CoreId(n * 2);
        let t = sys.spawn(core);
        sys.set_mem_color(t, BankColor((n * cpn) as u16)).unwrap();
        let a = sys.malloc(t, 4 * 4096).unwrap();
        let pa = sys.resolve(t, a).unwrap();
        assert_eq!(
            sys.machine().mapping.decode_frame(pa.frame()).node,
            NodeId(n)
        );
    }
}
