//! # tint-integration — cross-crate integration tests
//!
//! The actual tests live in `tests/`; this library only hosts shared
//! helpers for them.

use tint_spmd::SimThread;
use tint_workloads::traits::Workload;
use tint_workloads::PinConfig;
use tintmalloc::prelude::*;

/// Boot the Opteron machine, pin a team per `pin`, apply `scheme`, run the
/// workload, and return (metrics, final system) — the whole stack end to end.
pub fn run_stack(
    workload: &dyn Workload,
    scheme: ColorScheme,
    pin: PinConfig,
    seed: u64,
) -> (tint_spmd::RunMetrics, System) {
    let mut sys = System::boot(MachineConfig::opteron_6128());
    let cores = pin.cores();
    let mut threads = SimThread::spawn_all(&mut sys, &cores);
    for (t, p) in threads.iter().zip(&scheme.plan(sys.machine(), &cores)) {
        sys.apply_colors(t.tid, p).expect("apply colors");
    }
    let program = workload.build(&mut sys, &threads, seed).expect("build");
    let metrics = program.run(&mut sys, &mut threads).expect("run");
    (metrics, sys)
}
