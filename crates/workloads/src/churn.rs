//! The `churn` workload: a multi-tenant arrival/exit stream.
//!
//! Unlike the six paper benchmarks (one immortal OpenMP team on a quiet
//! machine), `churn` models the long-uptime regime GreenMalloc and
//! SpeedMalloc argue pathologies emerge in: tasks arrive as a seeded
//! Poisson process, color themselves, run a mixed read/write lifetime over
//! a private heap region, and exit — thousands of full create/color/
//! allocate/exit cycles per run. It is the observability harness for
//! provenance-correct reclamation: any frame routed to the wrong pool on
//! any reclamation path accumulates as pool-population skew over uptime.
//!
//! `churn` is deliberately **not** in [`crate::all_benchmarks`]: it has no
//! figure in the paper and no fork-join [`tint_spmd::Program`] shape — it
//! produces [`tint_spmd::Job`]s for the round-robin scheduler instead.

use tint_hw::machine::MachineConfig;
use tint_hw::rng::SplitMix64;
use tint_hw::types::{BankColor, CoreId, LlcColor, Rw, VirtAddr, PAGE_SIZE};
use tint_kernel::ExhaustionPolicy;
use tint_spmd::{Job, Op, SectionBody};
use tintmalloc::System;

/// Parameters of one churn run. All randomness is drawn from `seed`; two
/// configs with equal fields build identical job streams.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Master seed for arrivals, lifetimes, sizes, colors, and op streams.
    pub seed: u64,
    /// Task arrivals to generate.
    pub arrivals: u64,
    /// Mean inter-arrival gap in cycles (Poisson process: exponential gaps).
    pub mean_gap: u64,
    /// Heap region size per task, in pages (inclusive range).
    pub pages: (u64, u64),
    /// Ops per task lifetime (inclusive range) — mixed lifetimes.
    pub ops: (u64, u64),
    /// Exhaustion policies cycled across arrivals (mixed-policy tenancy).
    pub policies: Vec<ExhaustionPolicy>,
}

impl ChurnConfig {
    /// A light default: short lifetimes, brisk arrivals, all three policies
    /// mixed.
    pub fn new(seed: u64, arrivals: u64) -> Self {
        Self {
            seed,
            arrivals,
            mean_gap: 2_000,
            pages: (2, 16),
            ops: (32, 256),
            policies: vec![
                ExhaustionPolicy::Strict,
                ExhaustionPolicy::NearestColor,
                ExhaustionPolicy::LocalUncolored,
            ],
        }
    }

    /// Generate the job stream for `machine`. Arrivals round-robin across
    /// all cores; each task owns one bank color and one LLC color drawn
    /// uniformly, so concurrent tenants contend for the color lists the way
    /// a real multi-tenant box would.
    pub fn build_jobs(&self, machine: &MachineConfig) -> Vec<Job<'static>> {
        assert!(!self.policies.is_empty(), "at least one policy to cycle");
        let cores = machine.topology.core_count();
        let banks = machine.mapping.bank_color_count() as u64;
        let llcs = machine.mapping.llc_color_count() as u64;
        let mut rng = SplitMix64::new(self.seed);
        let mut clock = 0u64;
        let mut jobs = Vec::with_capacity(self.arrivals as usize);
        for i in 0..self.arrivals {
            clock += exp_gap(&mut rng, self.mean_gap);
            let core = CoreId((i as usize) % cores);
            let bank = BankColor(rng.gen_range(banks) as u16);
            let llc = LlcColor(rng.gen_range(llcs) as u16);
            let policy = self.policies[(i as usize) % self.policies.len()];
            let pages = rng.gen_range_in(self.pages.0, self.pages.1 + 1);
            let ops = rng.gen_range_in(self.ops.0, self.ops.1 + 1);
            let body_seed = rng.next_u64();
            jobs.push(Job {
                arrival: clock,
                core,
                setup: Box::new(move |sys: &mut System| {
                    let tid = sys.spawn(core);
                    let fail = |sys: &mut System, e| {
                        let _ = sys.exit(tid);
                        Err(e)
                    };
                    if let Err(e) = sys.set_mem_color(tid, bank) {
                        return fail(sys, e);
                    }
                    if let Err(e) = sys.set_llc_color(tid, llc) {
                        return fail(sys, e);
                    }
                    if let Err(e) = sys.set_exhaustion_policy(tid, policy) {
                        return fail(sys, e);
                    }
                    let base = match sys.malloc(tid, pages * PAGE_SIZE) {
                        Ok(b) => b,
                        Err(e) => return fail(sys, e),
                    };
                    let body = ChurnBody {
                        base,
                        bytes: pages * PAGE_SIZE,
                        remaining: ops,
                        rng: SplitMix64::new(body_seed),
                    };
                    Ok((tid, Box::new(body) as Box<dyn SectionBody>))
                }),
            });
        }
        jobs
    }
}

/// Exponentially distributed inter-arrival gap with the given mean (the
/// Poisson process), floored at one cycle. Uses the top 53 bits of the
/// stream for a uniform in `(0, 1]` so `ln` never sees zero.
fn exp_gap(rng: &mut SplitMix64, mean: u64) -> u64 {
    let u = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
    ((-(mean as f64) * u.ln()).ceil() as u64).max(1)
}

/// One task's lifetime: a seeded mix of computes, reads, and writes over
/// its region. Random taps touch pages in arbitrary order, so first-touch
/// faults (and any exhaustion fallback) interleave with accesses.
struct ChurnBody {
    base: VirtAddr,
    bytes: u64,
    remaining: u64,
    rng: SplitMix64,
}

impl Iterator for ChurnBody {
    type Item = Op;
    fn next(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let r = self.rng.next_u64();
        Some(if r.is_multiple_of(8) {
            Op::Compute(20 + (r >> 8) % 100)
        } else {
            Op::Access {
                addr: self.base.offset(((r >> 16) % self.bytes) & !7),
                rw: if r.is_multiple_of(3) {
                    Rw::Write
                } else {
                    Rw::Read
                },
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_spmd::RoundRobin;

    #[test]
    fn jobs_are_poisson_spaced_and_policy_cycled() {
        let cfg = ChurnConfig::new(42, 30);
        let jobs = cfg.build_jobs(&MachineConfig::tiny());
        assert_eq!(jobs.len(), 30);
        let mut prev = 0;
        for j in &jobs {
            assert!(j.arrival > prev, "arrivals strictly increase");
            prev = j.arrival;
        }
        // Identical configs build identically-timed streams.
        let again = cfg.build_jobs(&MachineConfig::tiny());
        let t1: Vec<_> = jobs.iter().map(|j| (j.arrival, j.core)).collect();
        let t2: Vec<_> = again.iter().map(|j| (j.arrival, j.core)).collect();
        assert_eq!(t1, t2);
    }

    #[test]
    fn churn_run_reclaims_every_frame() {
        let machine = MachineConfig::tiny();
        let mut sys = System::boot(machine.clone());
        let baseline = sys.kernel().pool_snapshot();
        let cfg = ChurnConfig::new(7, 60);
        let rr = RoundRobin {
            quantum: 5_000,
            check_every: 512,
            ..RoundRobin::default()
        };
        let out = rr.run(&mut sys, cfg.build_jobs(&machine));
        assert_eq!(out.arrivals, 60);
        assert_eq!(out.completed + out.failed(), 60, "every task exited");
        assert!(out.completed > 0, "most tasks complete");
        assert_eq!(
            sys.kernel().pool_snapshot(),
            baseline,
            "zero leaked frames, zero pool skew"
        );
        sys.check_invariants();
    }

    #[test]
    fn churn_outcome_is_deterministic() {
        let machine = MachineConfig::tiny();
        let run = || {
            let mut sys = System::boot(machine.clone());
            RoundRobin::default().run(&mut sys, ChurnConfig::new(3, 40).build_jobs(&machine))
        };
        assert_eq!(run(), run());
    }
}
