//! SPEC/art emulator — Adaptive Resonance Theory neural network.
//!
//! Character (paper §V.B: "sped up significantly"): repeated scans over
//! weight arrays — a medium working set with *high reuse*, which makes art
//! sensitive to LLC interference (another thread evicting the weights
//! between scans) on top of bank contention. Modeled as repeated full
//! passes over a per-thread weight region with moderate compute.

use crate::patterns::Seq;
use crate::traits::{Scale, Workload};
use tint_spmd::{Program, SectionBody, SimThread};
use tintmalloc::System;

/// The art emulator.
#[derive(Debug, Clone)]
pub struct Art {
    /// Weight arrays per thread, bytes.
    pub bytes_per_thread: u64,
    /// Training epochs (parallel sections).
    pub epochs: u32,
    /// Scans per epoch.
    pub scans_per_epoch: u32,
    /// Compute cycles per access.
    pub compute: u64,
}

impl Art {
    /// Defaults at `scale`: 640 KiB/thread, 3 epochs × 2 scans.
    pub fn new(scale: Scale) -> Self {
        Self {
            // 640 KiB: larger than the private L2 (512 KiB) but inside a
            // 2-LLC-color slice (768 KiB) — the LLC-sensitivity window.
            bytes_per_thread: scale.bytes(640 << 10),
            epochs: scale.count(3) as u32,
            scans_per_epoch: 2,
            compute: 8,
        }
    }
}

impl Workload for Art {
    fn name(&self) -> &'static str {
        "art"
    }

    fn fingerprint(&self) -> u64 {
        crate::fingerprint::Fingerprint::new(self.name())
            .u64(self.bytes_per_thread)
            .u32(self.epochs)
            .u32(self.scans_per_epoch)
            .u64(self.compute)
            .finish()
    }

    fn build(
        &self,
        sys: &mut System,
        threads: &[SimThread],
        _seed: u64,
    ) -> Result<Program<'static>, tint_kernel::Errno> {
        let line = sys.machine().mapping.line_size();
        let weights: Vec<_> = threads
            .iter()
            .map(|t| sys.malloc(t.tid, self.bytes_per_thread))
            .collect::<Result<_, _>>()?;
        let mut program = Program::new();
        for _epoch in 0..self.epochs {
            // Partition-remainder imbalance, as in the other benchmarks.
            let bodies: Vec<Box<dyn SectionBody>> = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| {
                    let len =
                        self.bytes_per_thread - (i as u64 % 4) * (self.bytes_per_thread / 128);
                    Box::new(Seq::new(
                        w,
                        len.max(line),
                        line,
                        self.scans_per_epoch,
                        self.compute,
                        4,
                    )) as Box<dyn SectionBody>
                })
                .collect();
            program = program.parallel(bodies);
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::machine::MachineConfig;
    use tint_hw::types::CoreId;

    #[test]
    fn reuse_hits_cache_on_later_scans() {
        let mut sys = System::boot(MachineConfig::tiny());
        let mut threads = SimThread::spawn_all(&mut sys, &[CoreId(0)]);
        // Region small enough to fit the tiny L2/L3.
        let w = Art {
            bytes_per_thread: 8 * 4096,
            epochs: 1,
            scans_per_epoch: 3,
            compute: 0,
        };
        let p = w.build(&mut sys, &threads, 0).unwrap();
        p.run(&mut sys, &mut threads).unwrap();
        let st = sys.mem().stats().core(CoreId(0));
        assert!(
            st.cache_resolved > st.dram_total(),
            "scans 2..3 mostly hit the caches ({} cache vs {} dram)",
            st.cache_resolved,
            st.dram_total()
        );
    }
}
