//! Stable content fingerprints for workload parameter sets.
//!
//! The simulation cell cache in `tint-bench` keys cached results by the
//! *content* of a workload's configuration, not by object identity: two
//! `Lbm` values with the same parameters must map to the same cache cell
//! even when they were built by different figures. The build environment is
//! offline, so the hash is a small in-tree construction: byte-wise FNV-1a
//! over the field stream, finished with the SplitMix64 finalizer for
//! avalanche (FNV alone keeps low-bit correlations between nearby integer
//! inputs).
//!
//! Determinism contract: the fingerprint of a given parameter set is a pure
//! function of the values fed to the builder — stable across runs,
//! processes, and platforms (everything is hashed in little-endian byte
//! order). It is **not** stable across code changes that reorder or add
//! fields; that is fine, because the cache never outlives the process.

/// Builder for a 64-bit parameter fingerprint.
///
/// Start with [`Fingerprint::new`] (which hashes a type tag so distinct
/// workload types with coincidentally equal fields cannot collide), feed
/// every parameter that influences the built program, and call
/// [`Fingerprint::finish`].
#[derive(Debug, Clone, Copy)]
#[must_use = "a fingerprint builder does nothing until finish() is called"]
pub struct Fingerprint(u64);

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fingerprint {
    /// Begin a fingerprint for the workload type tagged `tag` (use the
    /// benchmark name; it separates the hash streams of different types).
    pub fn new(tag: &str) -> Self {
        Fingerprint(FNV_OFFSET).str(tag)
    }

    /// Absorb raw bytes.
    fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a string (terminated, so `("ab","c")` ≠ `("a","bc")`).
    pub fn str(self, s: &str) -> Self {
        self.bytes(s.as_bytes()).bytes(&[0xff])
    }

    /// Absorb a `u64`.
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorb a `u32`.
    pub fn u32(self, v: u32) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorb an `f64` by bit pattern (workload sizes are derived from the
    /// `--scale` float; hashing the bits keeps every distinct scale
    /// distinct without rounding policy).
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// Finish: run the accumulated FNV state through the SplitMix64
    /// finalizer so every input bit avalanches across the output.
    pub fn finish(self) -> u64 {
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_fingerprint() {
        let a = Fingerprint::new("lbm").u64(123).u32(7).finish();
        let b = Fingerprint::new("lbm").u64(123).u32(7).finish();
        assert_eq!(a, b);
    }

    #[test]
    fn any_field_change_changes_the_fingerprint() {
        let base = Fingerprint::new("lbm").u64(123).u32(7).finish();
        assert_ne!(base, Fingerprint::new("art").u64(123).u32(7).finish());
        assert_ne!(base, Fingerprint::new("lbm").u64(124).u32(7).finish());
        assert_ne!(base, Fingerprint::new("lbm").u64(123).u32(8).finish());
    }

    #[test]
    fn strings_are_terminated() {
        let a = Fingerprint::new("ab").str("c").finish();
        let b = Fingerprint::new("a").str("bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn nearby_integers_spread_apart() {
        // The SplitMix finisher must decorrelate consecutive sizes (the
        // cache HashMap feeds these through its own hasher, but a degenerate
        // fingerprint would still cluster keys).
        let h: Vec<u64> = (0..16u64)
            .map(|i| Fingerprint::new("x").u64(4096 * i).finish())
            .collect();
        for i in 0..h.len() {
            for j in i + 1..h.len() {
                assert_ne!(h[i], h[j]);
                assert!((h[i] ^ h[j]).count_ones() > 8, "poor avalanche");
            }
        }
    }

    #[test]
    fn f64_distinguishes_bit_patterns() {
        assert_ne!(
            Fingerprint::new("s").f64(1.0).finish(),
            Fingerprint::new("s").f64(1.0000000001).finish()
        );
    }
}
