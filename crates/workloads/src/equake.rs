//! SPEC/equake emulator — earthquake wave propagation (sparse FEM solver).
//!
//! Character: sparse matrix-vector products — irregular gathers from a
//! *shared* vector (allocated by the master, so it lives on the master's
//! node and is remote for most threads under every policy: the paper's
//! "shared data regions ... can generally not be resolved" caveat) combined
//! with sequential updates to private state. The paper singles equake out:
//! its idle-time improvement is *smaller* than its runtime improvement
//! (§V.B) — the shared-vector traffic keeps a floor of divergence that
//! coloring cannot remove.

use crate::patterns::{Interleave, RandomTaps, Seq};
use crate::traits::{Scale, Workload};
use tint_spmd::{Program, SectionBody, SimThread};
use tintmalloc::System;

/// The equake emulator.
#[derive(Debug, Clone)]
pub struct Equake {
    /// Shared (master-owned) mesh vector, bytes.
    pub shared_bytes: u64,
    /// Private per-thread state, bytes.
    pub private_bytes: u64,
    /// Solver iterations (parallel sections).
    pub iterations: u32,
    /// Random gathers from the shared vector per thread per section.
    pub gathers: u64,
    /// Compute cycles per access.
    pub compute: u64,
}

impl Equake {
    /// Defaults at `scale`: 1 MiB shared, 640 KiB private, 3 iterations.
    pub fn new(scale: Scale) -> Self {
        Self {
            shared_bytes: scale.bytes(1 << 20),
            private_bytes: scale.bytes(640 << 10),
            iterations: scale.count(3) as u32,
            gathers: scale.count(512),
            compute: 6,
        }
    }
}

impl Workload for Equake {
    fn name(&self) -> &'static str {
        "equake"
    }

    fn fingerprint(&self) -> u64 {
        crate::fingerprint::Fingerprint::new(self.name())
            .u64(self.shared_bytes)
            .u64(self.private_bytes)
            .u32(self.iterations)
            .u64(self.gathers)
            .u64(self.compute)
            .finish()
    }

    fn build(
        &self,
        sys: &mut System,
        threads: &[SimThread],
        seed: u64,
    ) -> Result<Program<'static>, tint_kernel::Errno> {
        let line = sys.machine().mapping.line_size();
        let master = threads[0].tid;
        // The mesh geometry is parsed from the input file during serial
        // init: page-cache pages, first-touched by the master (node-local to
        // it, remote DRAM for everyone else — but LLC-cacheable by all).
        let shared = sys.malloc_pagecache(master, self.shared_bytes)?;
        let privs: Vec<_> = threads
            .iter()
            .map(|t| sys.malloc(t.tid, self.private_bytes))
            .collect::<Result<_, _>>()?;

        let mut program = Program::new();
        for it in 0..self.iterations {
            let bodies: Vec<Box<dyn SectionBody>> = privs
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    let taps = RandomTaps::new(
                        shared,
                        self.shared_bytes,
                        line,
                        self.gathers,
                        self.compute,
                        0, // gathers are reads
                        seed ^ (i as u64) << 8 ^ (it as u64) << 24,
                    );
                    let len = self.private_bytes - (i as u64 % 4) * (self.private_bytes / 128);
                    let update =
                        Seq::new(p, len.max(line), line, 1, self.compute, 1 /* writes */);
                    Box::new(Interleave::new(taps, update)) as Box<dyn SectionBody>
                })
                .collect();
            program = program.parallel(bodies);
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::machine::MachineConfig;
    use tint_hw::types::CoreId;

    #[test]
    fn shared_vector_lives_on_master_node() {
        let mut sys = System::boot(MachineConfig::tiny());
        let mut threads = SimThread::spawn_all(&mut sys, &[CoreId(0), CoreId(2)]);
        let w = Equake {
            shared_bytes: 16 * 4096,
            private_bytes: 8 * 4096,
            iterations: 1,
            gathers: 200,
            compute: 0,
        };
        let p = w.build(&mut sys, &threads, 1).unwrap();
        p.run(&mut sys, &mut threads).unwrap();
        // Thread on core 2 (node 1) gathered from node-0 memory: remote.
        let st = sys.mem().stats().core(CoreId(2));
        assert!(st.dram_cross_socket + st.dram_same_socket > 0 || st.dram_total() == 0);
    }

    #[test]
    fn seed_changes_gather_stream() {
        let run = |seed| {
            let mut sys = System::boot(MachineConfig::tiny());
            let mut threads = SimThread::spawn_all(&mut sys, &[CoreId(0), CoreId(1)]);
            let w = Equake {
                shared_bytes: 16 * 4096,
                private_bytes: 8 * 4096,
                iterations: 1,
                gathers: 100,
                compute: 0,
            };
            let p = w.build(&mut sys, &threads, seed).unwrap();
            p.run(&mut sys, &mut threads).unwrap().runtime
        };
        assert_eq!(run(5), run(5), "determinism");
        assert_ne!(run(5), run(6), "seed sensitivity");
    }
}
