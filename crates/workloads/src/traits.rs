//! The [`Workload`] interface and the benchmark registry.

use tint_spmd::{Program, SimThread};
use tintmalloc::System;

/// A benchmark emulator: given the booted system and the thread team,
/// allocate its data and produce the fork-join program to run.
///
/// `Sync` so the harness can fan independent repetitions out across host
/// threads (each repetition builds its own `System`; the workload itself is
/// immutable configuration).
pub trait Workload: Sync {
    /// Benchmark name as the paper prints it (e.g. `"lbm"`).
    fn name(&self) -> &'static str;

    /// Stable content fingerprint of the full parameter set (see
    /// [`crate::fingerprint::Fingerprint`]). Contract: two workloads with
    /// equal fingerprints must build identical programs for every
    /// `(sys, threads, seed)` — the simulation cell cache in `tint-bench`
    /// uses `(fingerprint, scheme, pin, seed)` as its memoization key, so a
    /// parameter that influences the access stream but is missing from the
    /// fingerprint would silently alias distinct cells. Implementations
    /// hash the type name plus every public field.
    fn fingerprint(&self) -> u64;

    /// Build the program. `seed` varies across the paper's 10 repetitions
    /// (it perturbs random access streams; physical-layout jitter comes from
    /// boot noise applied by the harness before building).
    ///
    /// Implementations allocate per-thread data with each thread's own
    /// `malloc` (first-touch by owner happens inside the measured sections)
    /// and shared data with the master thread's `malloc`.
    fn build(
        &self,
        sys: &mut System,
        threads: &[SimThread],
        seed: u64,
    ) -> Result<Program<'static>, tint_kernel::Errno>;
}

/// Scale factor applied to all workload sizes (1.0 = defaults documented in
/// DESIGN.md; the harness exposes `--scale`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// Scale a byte count, keeping page alignment and a sane floor.
    pub fn bytes(self, base: u64) -> u64 {
        let v = (base as f64 * self.0) as u64;
        v.max(8 * 4096).next_multiple_of(4096)
    }

    /// Scale an iteration count with a floor of 1.
    pub fn count(self, base: u64) -> u64 {
        ((base as f64 * self.0) as u64).max(1)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale(1.0)
    }
}

/// All six paper benchmarks at a given scale, in the paper's figure order.
pub fn all_benchmarks(scale: Scale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(crate::bodytrack::Bodytrack::new(scale)),
        Box::new(crate::freqmine::Freqmine::new(scale)),
        Box::new(crate::blackscholes::Blackscholes::new(scale)),
        Box::new(crate::lbm::Lbm::new(scale)),
        Box::new(crate::art::Art::new(scale)),
        Box::new(crate::equake::Equake::new(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_six() {
        let names: Vec<_> = all_benchmarks(Scale::default())
            .iter()
            .map(|w| w.name())
            .collect();
        assert_eq!(
            names,
            vec![
                "bodytrack",
                "freqmine",
                "blackscholes",
                "lbm",
                "art",
                "equake"
            ]
        );
    }

    #[test]
    fn every_benchmark_runs_and_is_deterministic_at_min_scale() {
        use tint_hw::machine::MachineConfig;
        use tint_hw::types::CoreId;
        use tint_spmd::SimThread;
        use tintmalloc::System;

        for w in all_benchmarks(Scale(0.001)) {
            let run = |seed: u64| {
                let mut sys = System::boot(MachineConfig::tiny());
                let mut threads = SimThread::spawn_all(&mut sys, &[CoreId(0), CoreId(2)]);
                let p = w.build(&mut sys, &threads, seed).unwrap();
                p.run(&mut sys, &mut threads).unwrap()
            };
            let a = run(7);
            let b = run(7);
            assert_eq!(a, b, "{} must be deterministic", w.name());
            assert!(a.runtime > 0, "{} must do work", w.name());
            assert_eq!(a.threads, 2);
        }
    }

    #[test]
    fn scale_floors_and_aligns() {
        let s = Scale(0.001);
        assert_eq!(s.bytes(1 << 20) % 4096, 0);
        assert!(s.bytes(1 << 20) >= 8 * 4096);
        assert_eq!(s.count(100), 1);
        let s2 = Scale(2.0);
        assert_eq!(s2.count(100), 200);
        assert_eq!(s2.bytes(1 << 20), 2 << 20);
    }
}
