//! The `soak` workload: sustained over-committed pressure for simulated hours.
//!
//! [`crate::churn`] established the reclamation harness on a machine with
//! headroom; `soak` removes the headroom. Arrivals come several times
//! faster than cores can retire them, lifetimes are heavy-tailed (most
//! tenants are brief, a few are enormous — the hoarders that make OOM
//! victim selection interesting), and the kernel's fault injector is armed
//! with low per-mille rates on the replenish paths so transient `EAGAIN`s
//! pepper the whole run. A machine driven this way *must* reject or kill
//! work to survive; the workload exists to prove the scheduler's
//! watermark/backoff/OOM machinery keeps the kernel leak-free while it
//! happens, and to measure what that survival costs (throughput,
//! off-color fraction, fragmentation, audit overhead).
//!
//! Like `churn`, `soak` is not a paper benchmark and not in
//! [`crate::all_benchmarks`]; it produces [`tint_spmd::Job`]s for the
//! round-robin scheduler.

use tint_hw::machine::MachineConfig;
use tint_hw::rng::SplitMix64;
use tint_hw::types::{BankColor, CoreId, LlcColor, Rw, VirtAddr, PAGE_SIZE};
use tint_kernel::{ExhaustionPolicy, FaultPlan, FaultSite};
use tint_spmd::{Job, Op, SectionBody};
use tintmalloc::System;

/// Parameters of one soak run. All randomness derives from `seed`; equal
/// configs build identical job streams and identical fault plans.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Master seed for arrivals, lifetimes, sizes, colors, op streams, and
    /// the derived fault plan.
    pub seed: u64,
    /// Task arrivals to generate.
    pub arrivals: u64,
    /// Mean inter-arrival gap in cycles. The default (600) is far below
    /// the per-task service time, so the offered load over-commits a
    /// four-core machine many times over.
    pub mean_gap: u64,
    /// Heap region size per task, in pages (inclusive range).
    pub pages: (u64, u64),
    /// Minimum ops per lifetime — the Pareto scale parameter.
    pub ops_min: u64,
    /// Lifetime ceiling: the heavy tail is capped here so no single tenant
    /// outlives the whole run.
    pub ops_cap: u64,
    /// Pareto shape (`alpha`). Values just above 1 give the classic
    /// "many mice, few elephants" lifetime mix; 1.3 by default.
    pub tail: f64,
    /// Exhaustion policies cycled across arrivals.
    pub policies: Vec<ExhaustionPolicy>,
}

impl SoakConfig {
    /// The sustained-pressure default: brisk arrivals, mid-size regions,
    /// heavy-tailed lifetimes, all three policies mixed.
    pub fn new(seed: u64, arrivals: u64) -> Self {
        Self {
            seed,
            arrivals,
            mean_gap: 600,
            pages: (8, 48),
            ops_min: 64,
            ops_cap: 8_192,
            tail: 1.3,
            policies: vec![
                ExhaustionPolicy::Strict,
                ExhaustionPolicy::NearestColor,
                ExhaustionPolicy::LocalUncolored,
            ],
        }
    }

    /// The fault plan a soak run arms: low per-mille rates on the
    /// replenish paths (transient `EAGAIN`, retryable) and on `sys_mmap`
    /// (`ENOMEM` at setup). Seeded from the config seed, so the whole
    /// scenario — arrivals *and* weather — replays from one number.
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x50AC)
            .with_rate(FaultSite::BuddyReplenish, 6)
            .with_rate(FaultSite::CreateColorList, 4)
            .with_rate(FaultSite::SysMmap, 2)
    }

    /// Generate the job stream for `machine`. Same structure as
    /// [`crate::ChurnConfig::build_jobs`] — Poisson arrivals round-robined
    /// across cores, uniform colors, cycled policies — but with Pareto
    /// lifetimes in place of uniform ones.
    pub fn build_jobs(&self, machine: &MachineConfig) -> Vec<Job<'static>> {
        assert!(!self.policies.is_empty(), "at least one policy to cycle");
        assert!(self.tail > 0.0, "Pareto shape must be positive");
        let cores = machine.topology.core_count();
        let banks = machine.mapping.bank_color_count() as u64;
        let llcs = machine.mapping.llc_color_count() as u64;
        let mut rng = SplitMix64::new(self.seed);
        let mut clock = 0u64;
        let mut jobs = Vec::with_capacity(self.arrivals as usize);
        for i in 0..self.arrivals {
            clock += exp_gap(&mut rng, self.mean_gap);
            let core = CoreId((i as usize) % cores);
            let bank = BankColor(rng.gen_range(banks) as u16);
            let llc = LlcColor(rng.gen_range(llcs) as u16);
            let policy = self.policies[(i as usize) % self.policies.len()];
            let pages = rng.gen_range_in(self.pages.0, self.pages.1 + 1);
            let ops = pareto_ops(&mut rng, self.ops_min, self.ops_cap, self.tail);
            let body_seed = rng.next_u64();
            jobs.push(Job {
                arrival: clock,
                core,
                setup: Box::new(move |sys: &mut System| {
                    let tid = sys.spawn(core);
                    let fail = |sys: &mut System, e| {
                        let _ = sys.exit(tid);
                        Err(e)
                    };
                    if let Err(e) = sys.set_mem_color(tid, bank) {
                        return fail(sys, e);
                    }
                    if let Err(e) = sys.set_llc_color(tid, llc) {
                        return fail(sys, e);
                    }
                    if let Err(e) = sys.set_exhaustion_policy(tid, policy) {
                        return fail(sys, e);
                    }
                    let base = match sys.malloc(tid, pages * PAGE_SIZE) {
                        Ok(b) => b,
                        Err(e) => return fail(sys, e),
                    };
                    let body = SoakBody {
                        base,
                        bytes: pages * PAGE_SIZE,
                        remaining: ops,
                        rng: SplitMix64::new(body_seed),
                    };
                    Ok((tid, Box::new(body) as Box<dyn SectionBody>))
                }),
            });
        }
        jobs
    }
}

/// Exponentially distributed inter-arrival gap (Poisson process), floored
/// at one cycle. Same construction as `churn`'s.
fn exp_gap(rng: &mut SplitMix64, mean: u64) -> u64 {
    let u = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
    ((-(mean as f64) * u.ln()).ceil() as u64).max(1)
}

/// A Pareto(`alpha`)-distributed lifetime: `ops_min * u^(-1/alpha)`, capped
/// at `cap`. Heavy-tailed — the median sits near `ops_min`, but a few
/// draws land orders of magnitude above it.
fn pareto_ops(rng: &mut SplitMix64, ops_min: u64, cap: u64, alpha: f64) -> u64 {
    let u = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
    let ops = ops_min as f64 * u.powf(-1.0 / alpha);
    (ops.ceil() as u64).clamp(ops_min, cap)
}

/// One tenant's lifetime: the same seeded compute/read/write mix as
/// `churn`'s body, over a region big enough that first-touch faults keep
/// arriving deep into the lifetime.
struct SoakBody {
    base: VirtAddr,
    bytes: u64,
    remaining: u64,
    rng: SplitMix64,
}

impl Iterator for SoakBody {
    type Item = Op;
    fn next(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let r = self.rng.next_u64();
        Some(if r.is_multiple_of(8) {
            Op::Compute(20 + (r >> 8) % 100)
        } else {
            Op::Access {
                addr: self.base.offset(((r >> 16) % self.bytes) & !7),
                rw: if r.is_multiple_of(3) {
                    Rw::Write
                } else {
                    Rw::Read
                },
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_kernel::{VictimPolicy, Watermarks};
    use tint_spmd::RoundRobin;

    /// The guarded scheduler a soak run uses: admission control, OOM
    /// killer, retries, and the incremental auditor all on.
    fn guarded() -> RoundRobin {
        RoundRobin {
            quantum: 5_000,
            audit_frames: 256,
            admission_control: true,
            oom: Some(VictimPolicy::LargestFootprint),
            ..RoundRobin::default()
        }
    }

    #[test]
    fn lifetimes_are_heavy_tailed_and_streams_deterministic() {
        let cfg = SoakConfig::new(11, 200);
        let machine = MachineConfig::tiny();
        let jobs = cfg.build_jobs(&machine);
        assert_eq!(jobs.len(), 200);
        let mut prev = 0;
        for j in &jobs {
            assert!(j.arrival > prev, "arrivals strictly increase");
            prev = j.arrival;
        }
        let again = cfg.build_jobs(&machine);
        let t1: Vec<_> = jobs.iter().map(|j| (j.arrival, j.core)).collect();
        let t2: Vec<_> = again.iter().map(|j| (j.arrival, j.core)).collect();
        assert_eq!(t1, t2);
        // The Pareto draw itself: mostly mice, at least one elephant.
        let mut rng = SplitMix64::new(cfg.seed);
        let draws: Vec<u64> = (0..500)
            .map(|_| pareto_ops(&mut rng, cfg.ops_min, cfg.ops_cap, cfg.tail))
            .collect();
        let mice = draws.iter().filter(|&&o| o < 4 * cfg.ops_min).count();
        let elephants = draws.iter().filter(|&&o| o >= 16 * cfg.ops_min).count();
        assert!(mice > draws.len() / 2, "most lifetimes are short: {mice}");
        assert!(elephants > 0, "the tail produces hoarders");
        assert!(draws.iter().all(|&o| o <= cfg.ops_cap), "cap respected");
    }

    #[test]
    fn soak_under_pressure_reclaims_every_frame() {
        let machine = MachineConfig::tiny();
        let mut sys = System::boot(machine.clone());
        // Shrink the machine: leave a few hundred frames so 60 arrivals of
        // 8–48 pages genuinely over-commit it.
        let frames = machine.mapping.frame_count();
        sys.kernel_mut().consume_boot_noise(frames - 384);
        sys.set_watermarks(Watermarks::for_frames(384));
        let baseline = sys.kernel().pool_snapshot();
        let cfg = SoakConfig::new(7, 60);
        sys.set_fault_plan(Some(cfg.fault_plan()));
        let out = guarded().run(&mut sys, cfg.build_jobs(&machine));
        assert_eq!(out.arrivals, 60);
        assert_eq!(
            out.completed + out.failed(),
            60,
            "every arrival reached a terminal fate: {out:?}"
        );
        assert!(out.completed > 0, "the machine still retires work");
        assert!(!out.budget_exceeded);
        assert_eq!(
            sys.kernel().pool_snapshot(),
            baseline,
            "zero leaked frames under pressure, faults, kills, and rejects"
        );
        sys.check_invariants();
    }

    #[test]
    fn armed_zero_rate_plan_is_bit_identical_to_unarmed() {
        // The injector's zero-rate checks must not consume RNG or cycles:
        // a run with an armed all-zero plan is indistinguishable from an
        // unarmed run, windows included.
        let machine = MachineConfig::tiny();
        let cfg = SoakConfig::new(13, 40);
        let run = |plan: Option<FaultPlan>| {
            let mut sys = System::boot(machine.clone());
            let frames = machine.mapping.frame_count();
            sys.kernel_mut().consume_boot_noise(frames - 384);
            sys.set_watermarks(Watermarks::for_frames(384));
            sys.set_fault_plan(plan);
            guarded().run_with_windows(&mut sys, cfg.build_jobs(&machine), 100_000)
        };
        let unarmed = run(None);
        let zeroed = run(Some(FaultPlan::new(99)));
        assert_eq!(unarmed.0, zeroed.0);
        assert_eq!(unarmed.1, zeroed.1);
    }
}
