//! The paper's synthetic microbenchmark (§V.A, Fig. 10).
//!
//! Each thread allocates a large private region and writes it with the
//! alternating-stride pattern (M, M+1C, M−1C, M+2C, …) so every cache line
//! is touched exactly once: references punch through L1/L2/L3 and resolve
//! in DRAM, measuring DRAM write latency under the allocation policy —
//! including the page-fault placement behaviour, since the pattern also
//! first-touches every page.

use crate::traits::{Scale, Workload};
use tint_spmd::{Program, SimThread};
use tintmalloc::System;

/// The Fig. 10 microbenchmark.
#[derive(Debug, Clone)]
pub struct Synthetic {
    /// Region size per thread, in bytes.
    pub bytes_per_thread: u64,
}

impl Synthetic {
    /// Default size (2 MiB/thread) at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self {
            bytes_per_thread: scale.bytes(2 << 20),
        }
    }
}

impl Workload for Synthetic {
    fn name(&self) -> &'static str {
        "synthetic"
    }

    fn fingerprint(&self) -> u64 {
        crate::fingerprint::Fingerprint::new(self.name())
            .u64(self.bytes_per_thread)
            .finish()
    }

    fn build(
        &self,
        sys: &mut System,
        threads: &[SimThread],
        _seed: u64,
    ) -> Result<Program<'static>, tint_kernel::Errno> {
        let line = sys.machine().mapping.line_size();
        let mut bodies: Vec<Box<dyn tint_spmd::SectionBody>> = Vec::new();
        for t in threads {
            let base = sys.malloc(t.tid, self.bytes_per_thread)?;
            bodies.push(Box::new(crate::patterns::AlternatingStride::new(
                base,
                self.bytes_per_thread,
                line,
            )));
        }
        Ok(Program::new().parallel(bodies))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::machine::MachineConfig;
    use tint_hw::types::CoreId;

    #[test]
    fn runs_and_hits_dram() {
        let mut sys = System::boot(MachineConfig::tiny());
        let mut threads = SimThread::spawn_all(&mut sys, &[CoreId(0), CoreId(2)]);
        let w = Synthetic {
            bytes_per_thread: 64 * 4096,
        };
        let program = w.build(&mut sys, &threads, 0).unwrap();
        let m = program.run(&mut sys, &mut threads).unwrap();
        assert!(m.runtime > 0);
        // Every access should miss the caches (one touch per line).
        let st = sys.mem().stats().core(CoreId(0));
        assert_eq!(st.cache_resolved, 0, "no line is touched twice");
        assert!(st.dram_total() > 0);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut sys = System::boot(MachineConfig::tiny());
            let mut threads = SimThread::spawn_all(&mut sys, &[CoreId(0), CoreId(1)]);
            let w = Synthetic {
                bytes_per_thread: 32 * 4096,
            };
            let program = w.build(&mut sys, &threads, 0).unwrap();
            program.run(&mut sys, &mut threads).unwrap().runtime
        };
        assert_eq!(run(), run());
    }
}
