//! SPEC/lbm emulator — Lattice-Boltzmann fluid dynamics.
//!
//! The paper's biggest winner (up to 29.84 % runtime reduction at
//! 16_threads_4_nodes). Its character (§V.B): a very large heap, streamed
//! repeatedly (high memory intensity, full-grid reuse across timesteps),
//! negligible inter-thread sharing, and a data partition that matches
//! per-thread first touch. We model each thread sweeping its private grid
//! partition once per timestep with a read-modify-write line walk and
//! little compute per access.

use crate::patterns::Seq;
use crate::traits::{Scale, Workload};
use tint_spmd::{Program, SectionBody, SimThread};
use tintmalloc::System;

/// The lbm emulator.
#[derive(Debug, Clone)]
pub struct Lbm {
    /// Grid partition per thread, bytes.
    pub bytes_per_thread: u64,
    /// Timesteps (one parallel section each).
    pub timesteps: u32,
    /// Compute cycles per access (low: memory-bound).
    pub compute: u64,
}

impl Lbm {
    /// Paper-shaped defaults at `scale`: 896 KiB/thread × 3 timesteps.
    pub fn new(scale: Scale) -> Self {
        Self {
            bytes_per_thread: scale.bytes(896 << 10),
            timesteps: scale.count(3) as u32,
            compute: 4,
        }
    }
}

impl Workload for Lbm {
    fn name(&self) -> &'static str {
        "lbm"
    }

    fn fingerprint(&self) -> u64 {
        crate::fingerprint::Fingerprint::new(self.name())
            .u64(self.bytes_per_thread)
            .u32(self.timesteps)
            .u64(self.compute)
            .finish()
    }

    fn build(
        &self,
        sys: &mut System,
        threads: &[SimThread],
        _seed: u64,
    ) -> Result<Program<'static>, tint_kernel::Errno> {
        let line = sys.machine().mapping.line_size();
        let grids: Vec<_> = threads
            .iter()
            .map(|t| sys.malloc(t.tid, self.bytes_per_thread))
            .collect::<Result<_, _>>()?;
        let mut program = Program::new();
        for _step in 0..self.timesteps {
            // The grid does not divide evenly: later threads own slightly
            // smaller partitions (the usual `omp for` remainder), so a small
            // idle floor exists under every allocator.
            let bodies: Vec<Box<dyn SectionBody>> = grids
                .iter()
                .enumerate()
                .map(|(i, &g)| {
                    let len =
                        self.bytes_per_thread - (i as u64 % 4) * (self.bytes_per_thread / 128);
                    Box::new(Seq::new(g, len.max(line), line, 1, self.compute, 2))
                        as Box<dyn SectionBody>
                })
                .collect();
            program = program.parallel(bodies);
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::machine::MachineConfig;
    use tint_hw::types::CoreId;

    #[test]
    fn builds_one_section_per_timestep() {
        let mut sys = System::boot(MachineConfig::tiny());
        let threads = SimThread::spawn_all(&mut sys, &[CoreId(0), CoreId(1)]);
        let w = Lbm {
            bytes_per_thread: 16 * 4096,
            timesteps: 3,
            compute: 4,
        };
        let p = w.build(&mut sys, &threads, 0).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn second_timestep_reuses_no_faults() {
        let mut sys = System::boot(MachineConfig::tiny());
        let mut threads = SimThread::spawn_all(&mut sys, &[CoreId(0)]);
        let w = Lbm {
            bytes_per_thread: 16 * 4096,
            timesteps: 2,
            compute: 0,
        };
        let p = w.build(&mut sys, &threads, 0).unwrap();
        p.run(&mut sys, &mut threads).unwrap();
        // Page faults = exactly the 16 pages, not 32.
        assert_eq!(sys.kernel().stats().page_faults, 16);
    }
}
