//! The paper's five thread/node pinning configurations (§V.B).
//!
//! *"There are a total of five configurations: 16_threads_4_nodes,
//! 8_threads_4_nodes, 8_threads_2_nodes, 4_threads_4_nodes and
//! 4_threads_1_nodes."* Core lists follow the paper's examples exactly
//! (e.g. 8_threads_4_nodes pins to cores 0,1,4,5,8,9,12,13).

use std::fmt;
use tint_hw::types::CoreId;

/// One of the paper's pinning configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinConfig {
    /// 16 threads over all 4 nodes (cores 0–15).
    T16N4,
    /// 8 threads over 4 nodes (cores 0,1,4,5,8,9,12,13).
    T8N4,
    /// 8 threads over 2 nodes (cores 0–7).
    T8N2,
    /// 4 threads over 4 nodes (cores 0,4,8,12).
    T4N4,
    /// 4 threads on 1 node (cores 0–3).
    T4N1,
}

impl PinConfig {
    /// All five configurations, in the paper's order.
    pub const ALL: [PinConfig; 5] = [
        PinConfig::T16N4,
        PinConfig::T8N4,
        PinConfig::T8N2,
        PinConfig::T4N4,
        PinConfig::T4N1,
    ];

    /// The pinned core list (thread `i` → `cores()[i]`).
    pub fn cores(self) -> Vec<CoreId> {
        match self {
            PinConfig::T16N4 => (0..16).map(CoreId).collect(),
            PinConfig::T8N4 => [0, 1, 4, 5, 8, 9, 12, 13].map(CoreId).to_vec(),
            PinConfig::T8N2 => (0..8).map(CoreId).collect(),
            PinConfig::T4N4 => [0, 4, 8, 12].map(CoreId).to_vec(),
            PinConfig::T4N1 => (0..4).map(CoreId).collect(),
        }
    }

    /// Number of threads.
    pub fn threads(self) -> usize {
        self.cores().len()
    }

    /// Number of distinct nodes used (on the Opteron topology).
    pub fn nodes(self) -> usize {
        match self {
            PinConfig::T16N4 | PinConfig::T8N4 | PinConfig::T4N4 => 4,
            PinConfig::T8N2 => 2,
            PinConfig::T4N1 => 1,
        }
    }

    /// The paper's label, e.g. `16_threads_4_nodes`.
    pub fn label(self) -> &'static str {
        match self {
            PinConfig::T16N4 => "16_threads_4_nodes",
            PinConfig::T8N4 => "8_threads_4_nodes",
            PinConfig::T8N2 => "8_threads_2_nodes",
            PinConfig::T4N4 => "4_threads_4_nodes",
            PinConfig::T4N1 => "4_threads_1_nodes",
        }
    }
}

impl fmt::Display for PinConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::machine::MachineConfig;

    #[test]
    fn core_lists_match_paper_examples() {
        assert_eq!(PinConfig::T16N4.cores().len(), 16);
        assert_eq!(
            PinConfig::T8N4.cores(),
            [0, 1, 4, 5, 8, 9, 12, 13].map(CoreId).to_vec()
        );
        assert_eq!(PinConfig::T4N4.cores(), [0, 4, 8, 12].map(CoreId).to_vec());
        assert_eq!(
            PinConfig::T4N1.cores(),
            (0..4).map(CoreId).collect::<Vec<_>>()
        );
        assert_eq!(
            PinConfig::T8N2.cores(),
            (0..8).map(CoreId).collect::<Vec<_>>()
        );
    }

    #[test]
    fn node_counts_match_on_opteron() {
        let m = MachineConfig::opteron_6128();
        for cfg in PinConfig::ALL {
            let nodes: std::collections::HashSet<_> = cfg
                .cores()
                .iter()
                .map(|&c| m.topology.node_of_core(c))
                .collect();
            assert_eq!(nodes.len(), cfg.nodes(), "{cfg}");
            assert_eq!(cfg.cores().len(), cfg.threads());
        }
    }

    #[test]
    fn labels() {
        assert_eq!(PinConfig::T16N4.to_string(), "16_threads_4_nodes");
        assert_eq!(PinConfig::ALL.len(), 5);
    }
}
