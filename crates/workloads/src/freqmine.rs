//! Parsec/freqmine emulator — FP-growth frequent itemset mining.
//!
//! Character: the FP-tree *grows dynamically during the parallel phases*
//! (large allocation volume first-touched inside measured sections) and is
//! walked with irregular, pointer-chasing-like accesses; LLC pressure is
//! high. This is the benchmark where the paper finds the exception (§V.B):
//! at 16_threads_4_nodes, **LLC+MEM(part) beats full MEM+LLC**, because
//! fully partitioning memory "restricts the overall memory space". In this
//! reproduction the restriction materializes two ways: random misses over
//! only 8 private banks serialize on busy banks (lost bank-level
//! parallelism vs. the node's 32 shared banks), and the restricted color
//! pairs need more `create_color_list` replenishments, whose cost
//! Algorithm 1 charges to the faulting thread mid-section.

use crate::patterns::{Interleave, RandomTaps};
use crate::traits::{Scale, Workload};
use tint_spmd::{Program, SectionBody, SimThread};
use tintmalloc::System;

/// The freqmine emulator.
#[derive(Debug, Clone)]
pub struct Freqmine {
    /// Tree region grown per thread per mining phase, bytes.
    pub growth_bytes: u64,
    /// Mining phases (parallel sections); each grows a new region.
    pub phases: u32,
    /// Random walks over previously-built regions per phase.
    pub rewalk_taps: u64,
    /// Compute cycles per access (low: memory intensive).
    pub compute: u64,
}

impl Freqmine {
    /// Defaults at `scale`: 320 KiB growth × 3 phases.
    pub fn new(scale: Scale) -> Self {
        Self {
            growth_bytes: scale.bytes(320 << 10),
            phases: scale.count(3) as u32,
            rewalk_taps: scale.count(8192),
            compute: 2,
        }
    }
}

impl Workload for Freqmine {
    fn name(&self) -> &'static str {
        "freqmine"
    }

    fn fingerprint(&self) -> u64 {
        crate::fingerprint::Fingerprint::new(self.name())
            .u64(self.growth_bytes)
            .u32(self.phases)
            .u64(self.rewalk_taps)
            .u64(self.compute)
            .finish()
    }

    fn build(
        &self,
        sys: &mut System,
        threads: &[SimThread],
        seed: u64,
    ) -> Result<Program<'static>, tint_kernel::Errno> {
        let line = sys.machine().mapping.line_size();
        // Pre-create each phase's region (VMAs only — the pages are faulted
        // in during the phases, which is where the allocation cost lands).
        let mut regions: Vec<Vec<tint_hw::types::VirtAddr>> = Vec::new();
        for t in threads {
            let r: Vec<_> = (0..self.phases)
                .map(|_| sys.malloc(t.tid, self.growth_bytes))
                .collect::<Result<_, _>>()?;
            regions.push(r);
        }

        let mut program = Program::new();
        for phase in 0..self.phases {
            let bodies: Vec<Box<dyn SectionBody>> = regions
                .iter()
                .enumerate()
                .map(|(i, regs)| {
                    let grow_region = regs[phase as usize];
                    // Build: touch every line of the new region in random
                    // order (tree construction faults the pages).
                    let lines = self.growth_bytes / line;
                    let build = RandomTaps::new(
                        grow_region,
                        self.growth_bytes,
                        line,
                        lines,
                        self.compute,
                        2,
                        seed ^ ((i as u64) << 12) ^ ((phase as u64) << 28),
                    );
                    // Mine: random re-walks over the previous region (reuse).
                    let prev = regs[phase.saturating_sub(1) as usize];
                    let mine = RandomTaps::new(
                        prev,
                        self.growth_bytes,
                        line,
                        self.rewalk_taps,
                        self.compute,
                        0,
                        seed ^ ((i as u64) << 13) ^ ((phase as u64) << 29) ^ 0xF00D,
                    );
                    Box::new(Interleave::new(build, mine)) as Box<dyn SectionBody>
                })
                .collect();
            program = program.parallel(bodies);
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::machine::MachineConfig;
    use tint_hw::types::CoreId;

    #[test]
    fn faults_happen_inside_sections() {
        let mut sys = System::boot(MachineConfig::tiny());
        let mut threads = SimThread::spawn_all(&mut sys, &[CoreId(0)]);
        let w = Freqmine {
            growth_bytes: 8 * 4096,
            phases: 2,
            rewalk_taps: 10,
            compute: 0,
        };
        let p = w.build(&mut sys, &threads, 0).unwrap();
        assert_eq!(
            sys.kernel().stats().page_faults,
            0,
            "no faults at build time"
        );
        p.run(&mut sys, &mut threads).unwrap();
        assert!(
            sys.kernel().stats().page_faults >= 16,
            "growth faulted in-section"
        );
    }

    #[test]
    fn phase_count_matches_sections() {
        let mut sys = System::boot(MachineConfig::tiny());
        let threads = SimThread::spawn_all(&mut sys, &[CoreId(0), CoreId(1)]);
        let w = Freqmine {
            growth_bytes: 8 * 4096,
            phases: 3,
            rewalk_taps: 5,
            compute: 0,
        };
        let p = w.build(&mut sys, &threads, 0).unwrap();
        assert_eq!(p.len(), 3);
    }
}
