//! Parsec/blackscholes emulator — option pricing.
//!
//! The paper's weakest case: *"blackscholes has the least performance
//! improvement ... it reads a large amount of input data and is less
//! memory intensive. Furthermore, the large fraction of the master
//! thread's runtime prevents further performance enhancements since the
//! master thread suffers from more restrictive memory allocation due to
//! coloring."* (§V.B; best case is MEM+LLC(part) at just 3.6 %.)
//!
//! Modeled as: a long *serial* input-parsing section on the master over a
//! large master-owned buffer, then compute-dominated parallel sections with
//! small private working sets. With full MEM+LLC coloring the master's big
//! input scan is squeezed into its few private LLC colors (conflict
//! misses); MEM+LLC(part) gives the master its group's larger LLC share.

use crate::patterns::Seq;
use crate::traits::{Scale, Workload};
use tint_spmd::{Program, SectionBody, SimThread};
use tintmalloc::System;

/// The blackscholes emulator.
#[derive(Debug, Clone)]
pub struct Blackscholes {
    /// Input option data (master-owned), bytes.
    pub input_bytes: u64,
    /// Private per-thread working set, bytes.
    pub private_bytes: u64,
    /// Pricing rounds (parallel sections).
    pub rounds: u32,
    /// Compute cycles per access in parallel sections (high: compute-bound).
    pub compute: u64,
    /// Serial input-scan passes.
    pub input_passes: u32,
}

impl Blackscholes {
    /// Defaults at `scale`: 16 MiB input (exceeds the 12 MiB LLC: the parse
    /// misses under every policy, as the real benchmark's huge option file
    /// does), 128 KiB/thread, 3 rounds.
    pub fn new(scale: Scale) -> Self {
        Self {
            input_bytes: scale.bytes(16 << 20),
            private_bytes: scale.bytes(128 << 10),
            rounds: scale.count(3) as u32,
            compute: 40,
            input_passes: 1,
        }
    }
}

impl Workload for Blackscholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn fingerprint(&self) -> u64 {
        crate::fingerprint::Fingerprint::new(self.name())
            .u64(self.input_bytes)
            .u64(self.private_bytes)
            .u32(self.rounds)
            .u64(self.compute)
            .u32(self.input_passes)
            .finish()
    }

    fn build(
        &self,
        sys: &mut System,
        threads: &[SimThread],
        _seed: u64,
    ) -> Result<Program<'static>, tint_kernel::Errno> {
        let line = sys.machine().mapping.line_size();
        let master = threads[0].tid;
        // Input options are read from a file: page-cache pages, not colored
        // heap (the parse itself is still timed in the serial section).
        let input = sys.malloc_pagecache(master, self.input_bytes)?;
        let privs: Vec<_> = threads
            .iter()
            .map(|t| sys.malloc(t.tid, self.private_bytes))
            .collect::<Result<_, _>>()?;

        // Serial section: the master parses the input (first touch included:
        // the scan faults the pages — under restrictive coloring this is
        // where the master pays).
        let mut program = Program::new().serial(Box::new(Seq::new(
            input,
            self.input_bytes,
            line,
            self.input_passes,
            2,
            4,
        )) as Box<dyn SectionBody>);

        for _round in 0..self.rounds {
            // The option list does not divide evenly: later threads get the
            // remainder chunk (a real blackscholes imbalance), so a small
            // idle floor exists under every allocator.
            let bodies: Vec<Box<dyn SectionBody>> = privs
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    let len = self.private_bytes - (i as u64 % 4) * (self.private_bytes / 64);
                    Box::new(Seq::new(p, len.max(line), line, 2, self.compute, 3))
                        as Box<dyn SectionBody>
                })
                .collect();
            program = program.parallel(bodies);
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::machine::MachineConfig;
    use tint_hw::types::CoreId;

    #[test]
    fn serial_fraction_is_large() {
        let mut sys = System::boot(MachineConfig::tiny());
        let mut threads = SimThread::spawn_all(&mut sys, &[CoreId(0), CoreId(1)]);
        let w = Blackscholes {
            input_bytes: 64 * 4096,
            private_bytes: 4 * 4096,
            rounds: 2,
            compute: 40,
            input_passes: 2,
        };
        let p = w.build(&mut sys, &threads, 0).unwrap();
        let m = p.run(&mut sys, &mut threads).unwrap();
        assert!(
            m.serial_cycles * 4 > m.runtime,
            "serial section is a large fraction ({} of {})",
            m.serial_cycles,
            m.runtime
        );
    }

    #[test]
    fn parallel_sections_are_compute_bound() {
        let mut sys = System::boot(MachineConfig::tiny());
        let mut threads = SimThread::spawn_all(&mut sys, &[CoreId(0)]);
        let w = Blackscholes {
            input_bytes: 16 * 4096,
            private_bytes: 4 * 4096,
            rounds: 1,
            compute: 40,
            input_passes: 1,
        };
        let p = w.build(&mut sys, &threads, 0).unwrap();
        p.run(&mut sys, &mut threads).unwrap();
        let st = sys.mem().stats().core(CoreId(0));
        assert!(st.accesses > 0);
    }
}
