//! # tint-workloads — the paper's benchmarks as access-pattern emulators
//!
//! The evaluation (§V) uses a synthetic microbenchmark plus the six OpenMP
//! benchmarks available in SPEC 2006 and Parsec: **lbm**, **art**,
//! **equake**, **bodytrack**, **freqmine**, **blackscholes**. Running the
//! originals requires their inputs and an OpenMP runtime on real hardware;
//! this reproduction instead emulates each benchmark's *memory character* —
//! working-set size, access regularity, data reuse, sharing, serial
//! fraction, and allocation dynamics — which is what the paper's own
//! analysis (§V.B) attributes the results to. DESIGN.md records the
//! per-benchmark parameter rationale.
//!
//! * [`config`] — the paper's five thread/node pinning configurations
//!   (`16_threads_4_nodes` … `4_threads_1_nodes`).
//! * [`patterns`] — reusable access-stream iterators (sequential sweeps,
//!   uniform random taps, the Fig. 10 alternating-stride pattern,
//!   interleavings).
//! * [`synthetic`] — the Fig. 10 microbenchmark.
//! * [`lbm`], [`art`], [`equake`], [`bodytrack`], [`freqmine`],
//!   [`blackscholes`] — the six benchmark emulators.
//! * [`churn`] — the multi-tenant arrival/exit stream for the round-robin
//!   scheduler (not a paper benchmark; the reclamation observability
//!   harness of ROADMAP item 1).
//! * [`soak`] — `churn`'s over-committed sibling: sustained pressure,
//!   heavy-tailed lifetimes, armed fault injection — the survival harness
//!   for watermarks, backoff, and the OOM killer.
//! * [`traits`] — the [`traits::Workload`] interface and the benchmark
//!   registry.
//! * [`fingerprint`] — the in-tree FNV/SplitMix hasher behind
//!   [`traits::Workload::fingerprint`] (content-addressed cell caching).

pub mod art;
pub mod blackscholes;
pub mod bodytrack;
pub mod churn;
pub mod config;
pub mod equake;
pub mod fingerprint;
pub mod freqmine;
pub mod lbm;
pub mod patterns;
pub mod soak;
pub mod synthetic;
pub mod traits;

pub use churn::ChurnConfig;
pub use config::PinConfig;
pub use soak::SoakConfig;
pub use synthetic::Synthetic;
pub use traits::{all_benchmarks, Workload};
