//! Reusable access-stream iterators.
//!
//! Every pattern is a plain `Iterator<Item = Op>`, which the SPMD engine
//! accepts directly as a section body. Patterns interleave `Op::Compute`
//! with `Op::Access` so memory intensity is a parameter (compute cycles per
//! access), and they never materialize traces.

use tint_hw::rng::SplitMix64;
use tint_hw::types::{Rw, VirtAddr};
use tint_spmd::Op;

/// Sequential sweep: walk `[base, base+len)` with `stride`, `passes` times.
/// Every `write_every`-th access is a store (0 = all loads, 1 = all stores).
#[derive(Debug, Clone)]
pub struct Seq {
    base: VirtAddr,
    len: u64,
    stride: u64,
    passes: u32,
    compute: u64,
    write_every: u32,
    // iteration state
    pos: u64,
    pass: u32,
    count: u64,
    emit_compute: bool,
}

impl Seq {
    /// New sweep; see type docs for the parameters.
    pub fn new(
        base: VirtAddr,
        len: u64,
        stride: u64,
        passes: u32,
        compute: u64,
        write_every: u32,
    ) -> Self {
        assert!(stride > 0 && len >= stride);
        Self {
            base,
            len,
            stride,
            passes,
            compute,
            write_every,
            pos: 0,
            pass: 0,
            count: 0,
            emit_compute: false,
        }
    }
}

impl Iterator for Seq {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.emit_compute {
            self.emit_compute = false;
            return Some(Op::Compute(self.compute));
        }
        if self.pass >= self.passes {
            return None;
        }
        let addr = self.base.offset(self.pos);
        self.pos += self.stride;
        if self.pos >= self.len {
            self.pos = 0;
            self.pass += 1;
        }
        self.count += 1;
        self.emit_compute = self.compute > 0;
        let rw = if self.write_every > 0 && self.count.is_multiple_of(self.write_every as u64) {
            Rw::Write
        } else {
            Rw::Read
        };
        Some(Op::Access { addr, rw })
    }
}

/// Uniform random taps over `[base, base+len)`, aligned to `align`.
#[derive(Debug, Clone)]
pub struct RandomTaps {
    base: VirtAddr,
    slots: u64,
    align: u64,
    remaining: u64,
    compute: u64,
    write_every: u32,
    rng: SplitMix64,
    count: u64,
    emit_compute: bool,
}

impl RandomTaps {
    /// `count` random accesses over the region with `compute` cycles between.
    pub fn new(
        base: VirtAddr,
        len: u64,
        align: u64,
        count: u64,
        compute: u64,
        write_every: u32,
        seed: u64,
    ) -> Self {
        assert!(align > 0 && len >= align);
        Self {
            base,
            slots: len / align,
            align,
            remaining: count,
            compute,
            write_every,
            rng: SplitMix64::new(seed),
            count: 0,
            emit_compute: false,
        }
    }
}

impl Iterator for RandomTaps {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if self.emit_compute {
            self.emit_compute = false;
            return Some(Op::Compute(self.compute));
        }
        if self.remaining == 0 {
            return None;
        }
        let slot = self.rng.gen_range(self.slots);
        self.remaining -= 1;
        self.count += 1;
        self.emit_compute = self.compute > 0;
        let rw = if self.write_every > 0 && self.count.is_multiple_of(self.write_every as u64) {
            Rw::Write
        } else {
            Rw::Read
        };
        Some(Op::Access {
            addr: self.base.offset(slot * self.align),
            rw,
        })
    }
}

/// The Fig. 10 synthetic pattern: starting from the middle `M` of the
/// region, write `M`, `M+1C`, `M−1C`, `M+2C`, `M−2C`, … so that *each cache
/// line is touched exactly once* and hardware prefetching is defeated.
#[derive(Debug, Clone)]
pub struct AlternatingStride {
    base: VirtAddr,
    line: u64,
    half_lines: u64,
    k: u64,
    forward_next: bool,
    emitted_middle: bool,
}

impl AlternatingStride {
    /// Pattern over `[base, base+len)` with cache-line size `line`.
    pub fn new(base: VirtAddr, len: u64, line: u64) -> Self {
        assert!(len >= 2 * line && len.is_multiple_of(line));
        Self {
            base,
            line,
            half_lines: len / line / 2,
            k: 1,
            forward_next: true,
            emitted_middle: false,
        }
    }

    fn middle(&self) -> u64 {
        self.half_lines * self.line
    }
}

impl Iterator for AlternatingStride {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        if !self.emitted_middle {
            self.emitted_middle = true;
            return Some(Op::Access {
                addr: self.base.offset(self.middle()),
                rw: Rw::Write,
            });
        }
        if self.k > self.half_lines {
            return None;
        }
        let off = if self.forward_next {
            // M + kC — skip if it runs past the end.
            let o = self.middle() + self.k * self.line;
            self.forward_next = false;
            if o >= 2 * self.half_lines * self.line {
                return self.next();
            }
            o
        } else {
            let o = self.middle() - self.k * self.line;
            self.forward_next = true;
            self.k += 1;
            o
        };
        Some(Op::Access {
            addr: self.base.offset(off),
            rw: Rw::Write,
        })
    }
}

/// Interleave two streams: a, b, a, b, … draining whichever remains.
#[derive(Debug, Clone)]
pub struct Interleave<A, B> {
    a: A,
    b: B,
    from_a: bool,
}

impl<A: Iterator<Item = Op>, B: Iterator<Item = Op>> Interleave<A, B> {
    /// New interleaving starting with `a`.
    pub fn new(a: A, b: B) -> Self {
        Self { a, b, from_a: true }
    }
}

impl<A: Iterator<Item = Op>, B: Iterator<Item = Op>> Iterator for Interleave<A, B> {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let first = self.from_a;
        self.from_a = !self.from_a;
        if first {
            self.a.next().or_else(|| self.b.next())
        } else {
            self.b.next().or_else(|| self.a.next())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accesses(ops: impl Iterator<Item = Op>) -> Vec<(u64, Rw)> {
        ops.filter_map(|op| match op {
            Op::Access { addr, rw } => Some((addr.0, rw)),
            Op::Compute(_) => None,
        })
        .collect()
    }

    #[test]
    fn seq_covers_region_each_pass() {
        let s = Seq::new(VirtAddr(0), 1024, 128, 2, 0, 0);
        let a = accesses(s);
        assert_eq!(a.len(), 16, "8 lines × 2 passes");
        assert_eq!(a[0].0, 0);
        assert_eq!(a[7].0, 896);
        assert_eq!(a[8].0, 0, "second pass restarts");
        assert!(a.iter().all(|&(_, rw)| rw == Rw::Read));
    }

    #[test]
    fn seq_interleaves_compute() {
        let mut s = Seq::new(VirtAddr(0), 256, 128, 1, 7, 1);
        assert!(matches!(s.next(), Some(Op::Access { rw: Rw::Write, .. })));
        assert_eq!(s.next(), Some(Op::Compute(7)));
        assert!(matches!(s.next(), Some(Op::Access { .. })));
        assert_eq!(s.next(), Some(Op::Compute(7)));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn seq_write_every() {
        let s = Seq::new(VirtAddr(0), 512, 128, 1, 0, 2);
        let a = accesses(s);
        let writes = a.iter().filter(|&&(_, rw)| rw == Rw::Write).count();
        assert_eq!(writes, 2, "every 2nd of 4 accesses");
    }

    #[test]
    fn random_taps_stay_in_region_and_align() {
        let r = RandomTaps::new(VirtAddr(0x1000), 4096, 64, 100, 0, 3, 42);
        let a = accesses(r);
        assert_eq!(a.len(), 100);
        for &(addr, _) in &a {
            assert!((0x1000..0x2000).contains(&addr));
            assert_eq!(addr % 64, 0);
        }
        let writes = a.iter().filter(|&&(_, rw)| rw == Rw::Write).count();
        assert_eq!(writes, 33);
    }

    #[test]
    fn random_taps_deterministic_by_seed() {
        let a = accesses(RandomTaps::new(VirtAddr(0), 4096, 64, 50, 0, 0, 7));
        let b = accesses(RandomTaps::new(VirtAddr(0), 4096, 64, 50, 0, 0, 7));
        let c = accesses(RandomTaps::new(VirtAddr(0), 4096, 64, 50, 0, 0, 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn alternating_stride_touches_each_line_once() {
        let line = 128u64;
        let len = 16 * line;
        let s = AlternatingStride::new(VirtAddr(0), len, line);
        let a = accesses(s);
        let mut offsets: Vec<u64> = a.iter().map(|&(o, _)| o).collect();
        // Pattern order: M, M+1C, M-1C, M+2C, M-2C, ...
        assert_eq!(offsets[0], 8 * line);
        assert_eq!(offsets[1], 9 * line);
        assert_eq!(offsets[2], 7 * line);
        assert_eq!(offsets[3], 10 * line);
        assert_eq!(offsets[4], 6 * line);
        // Every line exactly once.
        offsets.sort();
        offsets.dedup();
        assert_eq!(offsets.len(), 16);
        assert!(a.iter().all(|&(_, rw)| rw == Rw::Write), "paper: writes");
    }

    #[test]
    fn alternating_stride_defeats_sequential_prefetch() {
        // No three consecutive accesses are monotone with a constant stride.
        let s = AlternatingStride::new(VirtAddr(0), 64 * 128, 128);
        let a: Vec<u64> = accesses(s).iter().map(|&(o, _)| o).collect();
        let monotone_runs = a
            .windows(3)
            .filter(|w| w[1].wrapping_sub(w[0]) == w[2].wrapping_sub(w[1]))
            .count();
        assert_eq!(monotone_runs, 0);
    }

    #[test]
    fn fill_matches_next_op_for_every_pattern() {
        use tint_spmd::SectionBody;
        // The batched engine pulls ops through `SectionBody::fill`; the
        // reference pipeline pulls them one at a time through `next_op`.
        // Both routes must yield the identical op stream for every pattern
        // (an odd buffer size exercises chunk boundaries).
        fn drain_fill(body: &mut dyn SectionBody) -> Vec<Op> {
            let mut out = Vec::new();
            let mut buf = [Op::Compute(0); 7];
            loop {
                let n = body.fill(&mut buf);
                out.extend_from_slice(&buf[..n]);
                if n < buf.len() {
                    return out;
                }
            }
        }
        let seq = Seq::new(VirtAddr(0), 1024, 128, 2, 5, 3);
        let taps = RandomTaps::new(VirtAddr(0x1000), 4096, 64, 100, 2, 3, 42);
        let alt = AlternatingStride::new(VirtAddr(0), 16 * 128, 128);
        let mix = Interleave::new(seq.clone(), taps.clone());
        assert_eq!(drain_fill(&mut seq.clone()), seq.collect::<Vec<_>>());
        assert_eq!(drain_fill(&mut taps.clone()), taps.collect::<Vec<_>>());
        assert_eq!(drain_fill(&mut alt.clone()), alt.collect::<Vec<_>>());
        assert_eq!(drain_fill(&mut mix.clone()), mix.collect::<Vec<_>>());
    }

    #[test]
    fn interleave_alternates_then_drains() {
        let a = (0..3).map(Op::Compute);
        let b = (10..12).map(Op::Compute);
        let got: Vec<_> = Interleave::new(a, b).collect();
        assert_eq!(
            got,
            vec![
                Op::Compute(0),
                Op::Compute(10),
                Op::Compute(1),
                Op::Compute(11),
                Op::Compute(2),
            ]
        );
    }
}
