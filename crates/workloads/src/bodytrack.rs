//! Parsec/bodytrack emulator — particle-filter body tracking.
//!
//! Character (paper: "sped up significantly"): per-frame parallel phases
//! where every worker reads a *shared read-only image* (master-loaded) and
//! updates its private particle set; moderate memory intensity with real
//! reuse of the particle state. Shared-image reads give remote traffic
//! under every policy; the private particle state is what coloring
//! localizes and isolates.

use crate::patterns::{Interleave, RandomTaps, Seq};
use crate::traits::{Scale, Workload};
use tint_spmd::{Program, SectionBody, SimThread};
use tintmalloc::System;

/// The bodytrack emulator.
#[derive(Debug, Clone)]
pub struct Bodytrack {
    /// Shared image data (master-owned), bytes.
    pub image_bytes: u64,
    /// Private particle state per thread, bytes.
    pub particle_bytes: u64,
    /// Frames processed (parallel sections).
    pub frames: u32,
    /// Image samples per thread per frame.
    pub samples: u64,
    /// Compute cycles per access.
    pub compute: u64,
}

impl Bodytrack {
    /// Defaults at `scale`: 2 MiB image, 256 KiB particles, 4 frames.
    pub fn new(scale: Scale) -> Self {
        Self {
            image_bytes: scale.bytes(2 << 20),
            particle_bytes: scale.bytes(640 << 10),
            frames: scale.count(4) as u32,
            samples: scale.count(1024),
            compute: 10,
        }
    }
}

impl Workload for Bodytrack {
    fn name(&self) -> &'static str {
        "bodytrack"
    }

    fn fingerprint(&self) -> u64 {
        crate::fingerprint::Fingerprint::new(self.name())
            .u64(self.image_bytes)
            .u64(self.particle_bytes)
            .u32(self.frames)
            .u64(self.samples)
            .u64(self.compute)
            .finish()
    }

    fn build(
        &self,
        sys: &mut System,
        threads: &[SimThread],
        seed: u64,
    ) -> Result<Program<'static>, tint_kernel::Errno> {
        let line = sys.machine().mapping.line_size();
        let master = threads[0].tid;
        // Frames are decoded from disk into page-cache pages (uncolored).
        let image = sys.malloc_pagecache(master, self.image_bytes)?;
        let particles: Vec<_> = threads
            .iter()
            .map(|t| sys.malloc(t.tid, self.particle_bytes))
            .collect::<Result<_, _>>()?;

        let mut program = Program::new();
        for frame in 0..self.frames {
            let bodies: Vec<Box<dyn SectionBody>> = particles
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    let sampling = RandomTaps::new(
                        image,
                        self.image_bytes,
                        line,
                        self.samples,
                        self.compute,
                        0,
                        seed ^ ((i as u64) << 10) ^ ((frame as u64) << 30),
                    );
                    // Particle update: two passes (weigh, then resample); the
                    // particle set does not divide evenly across threads.
                    let len = self.particle_bytes - (i as u64 % 4) * (self.particle_bytes / 128);
                    let update = Seq::new(p, len.max(line), line, 2, self.compute, 2);
                    Box::new(Interleave::new(sampling, update)) as Box<dyn SectionBody>
                })
                .collect();
            program = program.parallel(bodies);
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::machine::MachineConfig;
    use tint_hw::types::CoreId;

    #[test]
    fn builds_one_section_per_frame() {
        let mut sys = System::boot(MachineConfig::tiny());
        let threads = SimThread::spawn_all(&mut sys, &[CoreId(0), CoreId(1)]);
        let w = Bodytrack {
            image_bytes: 16 * 4096,
            particle_bytes: 8 * 4096,
            frames: 4,
            samples: 50,
            compute: 1,
        };
        let p = w.build(&mut sys, &threads, 0).unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn particle_reuse_warms_cache() {
        let mut sys = System::boot(MachineConfig::tiny());
        let mut threads = SimThread::spawn_all(&mut sys, &[CoreId(0)]);
        let w = Bodytrack {
            image_bytes: 16 * 4096,
            particle_bytes: 4 * 4096,
            frames: 3,
            samples: 10,
            compute: 0,
        };
        let p = w.build(&mut sys, &threads, 0).unwrap();
        p.run(&mut sys, &mut threads).unwrap();
        let st = sys.mem().stats().core(CoreId(0));
        assert!(st.cache_resolved > 0, "particle passes 2+ hit the caches");
    }
}
