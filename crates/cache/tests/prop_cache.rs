//! Property tests for the cache simulator: LRU laws, occupancy bounds, and
//! the color-partition guarantee of the hashed LLC index.

use proptest::prelude::*;
use tint_cache::{CacheHierarchy, HitLevel, IndexMode, SetAssocCache};
use tint_hw::machine::MachineConfig;
use tint_hw::types::{BankColor, CoreId, LlcColor, PhysAddr};

fn arb_addrs() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..(1 << 20), 1..300)
}

proptest! {
    /// Occupancy never exceeds sets × assoc, and an immediate re-access of
    /// the last line always hits (LRU keeps the MRU line).
    #[test]
    fn occupancy_bounded_and_mru_sticks(addrs in arb_addrs()) {
        let mut c = SetAssocCache::new(16, 2, 6);
        for &a in &addrs {
            c.access(CoreId(0), PhysAddr(a));
            prop_assert!(c.resident_lines() <= 32);
            let (hit, ev) = c.access(CoreId(0), PhysAddr(a));
            prop_assert!(hit, "immediate re-access must hit");
            prop_assert!(ev.is_none());
        }
    }

    /// probe() agrees with what access() would report, and never mutates.
    #[test]
    fn probe_agrees_with_access(addrs in arb_addrs(), probe in 0u64..(1 << 20)) {
        let mut c = SetAssocCache::new(16, 4, 6);
        for &a in &addrs {
            c.access(CoreId(0), PhysAddr(a));
        }
        let before_hits = c.hits();
        let p = c.probe(PhysAddr(probe));
        prop_assert_eq!(c.hits(), before_hits);
        let (hit, _) = c.access(CoreId(0), PhysAddr(probe));
        prop_assert_eq!(hit, p, "probe must predict the access outcome");
    }

    /// Hashed and modulo indexing agree on hit/miss for a working set that
    /// fits entirely (both are just placement functions).
    #[test]
    fn small_working_set_always_hits_after_warm(lines in 1u64..16) {
        for mode in [IndexMode::Modulo, IndexMode::Hash] {
            let mut c = SetAssocCache::with_index_mode(16, 2, 6, mode);
            let addrs: Vec<_> = (0..lines).map(|i| PhysAddr(i * 64)).collect();
            for &a in &addrs {
                c.access(CoreId(0), a);
            }
            for &a in &addrs {
                prop_assert!(c.probe(a), "{mode:?}: line {a} evicted from a fitting set");
            }
        }
    }

    /// ColorHash partition law: addresses of different colors never map to
    /// the same set, and each color's sets form a contiguous slice.
    #[test]
    fn color_hash_partitions_sets(addr in 0u64..(1 << 30)) {
        let c = SetAssocCache::with_index_mode(
            1 << 14,
            6,
            7,
            IndexMode::ColorHash { color_low: 16, color_bits: 5 },
        );
        let idx = c.set_index(PhysAddr(addr));
        let color = ((addr >> 16) & 31) as usize;
        let sets_per_color = (1 << 14) / 32;
        prop_assert_eq!(idx / sets_per_color, color, "set outside color slice: {}", idx);
    }

    /// Hierarchy inclusion-ish law: after an access, the line is findable at
    /// some level for the accessing core, and a different core sees at most
    /// the shared L3.
    #[test]
    fn hierarchy_visibility(addrs in prop::collection::vec(0u64..(1 << 22), 1..100)) {
        let m = MachineConfig::tiny();
        let mut h = CacheHierarchy::new(&m);
        for &a in &addrs {
            let a = PhysAddr(a % m.mapping.total_bytes());
            h.access(CoreId(0), a);
            prop_assert!(h.probe(CoreId(0), a).is_some(), "just-accessed line visible");
            let other = h.probe(CoreId(1), a);
            prop_assert!(
                other.is_none() || other == Some(HitLevel::L3),
                "private levels must stay private"
            );
        }
    }

    /// Per-core stats add up: hits + misses == accesses at L1.
    #[test]
    fn stats_conserve_accesses(addrs in arb_addrs()) {
        let m = MachineConfig::tiny();
        let mut h = CacheHierarchy::new(&m);
        for &a in &addrs {
            h.access(CoreId(0), PhysAddr(a % m.mapping.total_bytes()));
        }
        let s = h.stats().core(CoreId(0));
        prop_assert_eq!(s.l1_hits + s.l1_misses, addrs.len() as u64);
        prop_assert!(s.l2_hits + s.l2_misses <= s.l1_misses + s.l2_hits + s.l2_misses);
        prop_assert_eq!(s.l2_hits + s.l2_misses, s.l1_misses, "L2 lookups = L1 misses");
        prop_assert_eq!(s.l3_hits + s.l3_misses, s.l2_misses, "L3 lookups = L2 misses");
    }

    /// Disjoint LLC colors cannot interfere, whatever the access pattern.
    #[test]
    fn disjoint_colors_never_interfere(
        rows_a in prop::collection::vec(0u64..64, 1..40),
        rows_b in prop::collection::vec(0u64..64, 1..40),
    ) {
        let m = MachineConfig::tiny();
        let mut h = CacheHierarchy::new(&m);
        for (ra, rb) in rows_a.iter().zip(rows_b.iter().cycle()) {
            let fa = m.mapping.compose_frame(BankColor(0), LlcColor(0), *ra);
            let fb = m.mapping.compose_frame(BankColor(1), LlcColor(1), *rb);
            for off in (0..4096).step_by(512) {
                h.access(CoreId(0), fa.at(off));
                h.access(CoreId(1), fb.at(off));
            }
        }
        prop_assert_eq!(h.stats().total_llc_interference(), 0);
    }
}
