//! Property tests for the cache simulator: LRU laws, occupancy bounds, and
//! the color-partition guarantee of the hashed LLC index.
//!
//! Seeded-loop randomized tests over the workspace's deterministic PRNG —
//! no external property-testing framework required.

use tint_cache::{CacheHierarchy, HitLevel, IndexMode, SetAssocCache};
use tint_hw::machine::MachineConfig;
use tint_hw::rng::SplitMix64;
use tint_hw::types::{BankColor, CoreId, LlcColor, PhysAddr};

const CASES: u64 = 40;

fn arb_addrs(rng: &mut SplitMix64) -> Vec<u64> {
    let n = rng.gen_range_in(1, 300);
    (0..n).map(|_| rng.gen_range(1 << 20)).collect()
}

/// Occupancy never exceeds sets × assoc, and an immediate re-access of
/// the last line always hits (LRU keeps the MRU line).
#[test]
fn occupancy_bounded_and_mru_sticks() {
    let mut rng = SplitMix64::new(0x0cc);
    for _ in 0..CASES {
        let addrs = arb_addrs(&mut rng);
        let mut c = SetAssocCache::new(16, 2, 6);
        for &a in &addrs {
            c.access(CoreId(0), PhysAddr(a));
            assert!(c.resident_lines() <= 32);
            let (hit, ev) = c.access(CoreId(0), PhysAddr(a));
            assert!(hit, "immediate re-access must hit");
            assert!(ev.is_none());
        }
    }
}

/// probe() agrees with what access() would report, and never mutates.
#[test]
fn probe_agrees_with_access() {
    let mut rng = SplitMix64::new(0x9808e);
    for _ in 0..CASES {
        let addrs = arb_addrs(&mut rng);
        let probe = rng.gen_range(1 << 20);
        let mut c = SetAssocCache::new(16, 4, 6);
        for &a in &addrs {
            c.access(CoreId(0), PhysAddr(a));
        }
        let before_hits = c.hits();
        let p = c.probe(PhysAddr(probe));
        assert_eq!(c.hits(), before_hits);
        let (hit, _) = c.access(CoreId(0), PhysAddr(probe));
        assert_eq!(hit, p, "probe must predict the access outcome");
    }
}

/// Hashed and modulo indexing agree on hit/miss for a working set that
/// fits entirely (both are just placement functions).
#[test]
fn small_working_set_always_hits_after_warm() {
    for lines in 1u64..16 {
        for mode in [IndexMode::Modulo, IndexMode::Hash] {
            let mut c = SetAssocCache::with_index_mode(16, 2, 6, mode);
            let addrs: Vec<_> = (0..lines).map(|i| PhysAddr(i * 64)).collect();
            for &a in &addrs {
                c.access(CoreId(0), a);
            }
            for &a in &addrs {
                assert!(c.probe(a), "{mode:?}: line {a} evicted from a fitting set");
            }
        }
    }
}

/// ColorHash partition law: addresses of different colors never map to
/// the same set, and each color's sets form a contiguous slice.
#[test]
fn color_hash_partitions_sets() {
    let mut rng = SplitMix64::new(0xc01);
    let c = SetAssocCache::with_index_mode(
        1 << 14,
        6,
        7,
        IndexMode::ColorHash {
            color_low: 16,
            color_bits: 5,
        },
    );
    for _ in 0..2000 {
        let addr = rng.gen_range(1 << 30);
        let idx = c.set_index(PhysAddr(addr));
        let color = ((addr >> 16) & 31) as usize;
        let sets_per_color = (1 << 14) / 32;
        assert_eq!(
            idx / sets_per_color,
            color,
            "set outside color slice: {idx}"
        );
    }
}

/// Hierarchy inclusion-ish law: after an access, the line is findable at
/// some level for the accessing core, and a different core sees at most
/// the shared L3.
#[test]
fn hierarchy_visibility() {
    let mut rng = SplitMix64::new(0x415);
    for _ in 0..CASES {
        let n = rng.gen_range_in(1, 100);
        let m = MachineConfig::tiny();
        let mut h = CacheHierarchy::new(&m);
        for _ in 0..n {
            let a = PhysAddr(rng.gen_range(1 << 22) % m.mapping.total_bytes());
            h.access(CoreId(0), a);
            assert!(
                h.probe(CoreId(0), a).is_some(),
                "just-accessed line visible"
            );
            let other = h.probe(CoreId(1), a);
            assert!(
                other.is_none() || other == Some(HitLevel::L3),
                "private levels must stay private"
            );
        }
    }
}

/// Per-core stats add up: hits + misses == accesses at L1.
#[test]
fn stats_conserve_accesses() {
    let mut rng = SplitMix64::new(0x57a7);
    for _ in 0..CASES {
        let addrs = arb_addrs(&mut rng);
        let m = MachineConfig::tiny();
        let mut h = CacheHierarchy::new(&m);
        for &a in &addrs {
            h.access(CoreId(0), PhysAddr(a % m.mapping.total_bytes()));
        }
        let s = h.stats().core(CoreId(0));
        assert_eq!(s.l1_hits + s.l1_misses, addrs.len() as u64);
        assert_eq!(
            s.l2_hits + s.l2_misses,
            s.l1_misses,
            "L2 lookups = L1 misses"
        );
        assert_eq!(
            s.l3_hits + s.l3_misses,
            s.l2_misses,
            "L3 lookups = L2 misses"
        );
    }
}

/// Disjoint LLC colors cannot interfere, whatever the access pattern.
#[test]
fn disjoint_colors_never_interfere() {
    let mut rng = SplitMix64::new(0xd15);
    for _ in 0..CASES {
        let na = rng.gen_range_in(1, 40);
        let nb = rng.gen_range_in(1, 40);
        let rows_a: Vec<u64> = (0..na).map(|_| rng.gen_range(64)).collect();
        let rows_b: Vec<u64> = (0..nb).map(|_| rng.gen_range(64)).collect();
        let m = MachineConfig::tiny();
        let mut h = CacheHierarchy::new(&m);
        for (ra, rb) in rows_a.iter().zip(rows_b.iter().cycle()) {
            let fa = m.mapping.compose_frame(BankColor(0), LlcColor(0), *ra);
            let fb = m.mapping.compose_frame(BankColor(1), LlcColor(1), *rb);
            for off in (0..4096).step_by(512) {
                h.access(CoreId(0), fa.at(off));
                h.access(CoreId(1), fb.at(off));
            }
        }
        assert_eq!(h.stats().total_llc_interference(), 0);
    }
}
