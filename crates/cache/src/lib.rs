//! # tint-cache — cache hierarchy simulator
//!
//! Models the cache side of the paper's platform (§II.A): private per-core
//! L1 and L2 caches, and a shared, physically-indexed last-level cache (L3).
//!
//! The LLC is where *cache coloring* acts: the L3 set index contains the
//! physical-address color bits (12–16 on the Opteron preset), so a task whose
//! pages all carry one LLC color only ever touches that color's slice of L3
//! sets — other tasks cannot evict its lines (Fig. 9's interference scenario
//! disappears). The shared L3 therefore tracks, per line, the core that
//! filled it, and counts **cross-core evictions**: the direct, measurable
//! form of the paper's "one task's reference may replace data ... of another
//! task's prior references".
//!
//! Timing is hit-latency based ([`tint_hw::machine::CacheConfig`]); DRAM
//! latency on an L3 miss is supplied by the composed memory system in
//! `tint-mem`.

pub mod cache;
pub mod hierarchy;
pub mod stats;

pub use cache::{IndexMode, SetAssocCache};
pub use hierarchy::{CacheHierarchy, HitLevel};
pub use stats::{CoreCacheStats, HierarchyStats};
