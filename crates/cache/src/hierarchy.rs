//! The three-level hierarchy: private L1/L2 per core, shared L3.
//!
//! On an access the levels are walked in order; a hit at level *k* fills all
//! levels above it (non-inclusive fill, no back-invalidation — a deliberate
//! simplification documented in DESIGN.md). The walk returns where the
//! access was resolved and the cycles spent in the hierarchy; on
//! [`HitLevel::Memory`] the caller (tint-mem) adds interconnect + DRAM time.

use crate::cache::SetAssocCache;
use crate::stats::HierarchyStats;
use tint_hw::machine::MachineConfig;
use tint_hw::types::{CoreId, PhysAddr};

/// Where an access was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared LLC hit.
    L3,
    /// Missed everywhere — resolved in DRAM.
    Memory,
}

/// The full cache hierarchy of the machine.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: SetAssocCache,
    l1_lat: u64,
    l2_lat: u64,
    l3_lat: u64,
    line_shift: u32,
    /// Per-core one-entry MRU line filter: the line address this core
    /// touched last (`u64::MAX` = none yet). Invariant: after any access by
    /// core *c*, `mru_line[c]` is resident in *c*'s private L1 in its set's
    /// MRU way with *c* as owner — a repeat hit's move-to-MRU rotate is a
    /// no-op and its owner refresh is idempotent, so the walk can be
    /// skipped whole.
    mru_line: Vec<u64>,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Build the hierarchy described by `m`.
    pub fn new(m: &MachineConfig) -> Self {
        let line = m.mapping.line_size();
        let shift = m.mapping.line_shift;
        let cores = m.topology.core_count();
        // Private levels are hash-indexed so their placement is independent
        // of which bank/LLC colors back a page (see IndexMode::Hash).
        let mk = |lvl: &tint_hw::machine::CacheLevelConfig| {
            SetAssocCache::with_index_mode(
                lvl.sets(line),
                lvl.assoc,
                shift,
                crate::cache::IndexMode::Hash,
            )
        };
        // The shared L3 is physically indexed with a color-preserving hash:
        // the LLC color bits become the top set-index bits (colors partition
        // the cache, the property coloring relies on) and all other physical
        // bits spread within the slice.
        let l3 = SetAssocCache::with_index_mode(
            m.cache.l3.sets(line),
            m.cache.l3.assoc,
            shift,
            crate::cache::IndexMode::ColorHash {
                color_low: m.mapping.llc_color_low_bit(),
                color_bits: m.mapping.llc_bits,
            },
        );
        Self {
            l1: (0..cores).map(|_| mk(&m.cache.l1)).collect(),
            l2: (0..cores).map(|_| mk(&m.cache.l2)).collect(),
            l3,
            l1_lat: m.cache.l1.latency,
            l2_lat: m.cache.l2.latency,
            l3_lat: m.cache.l3.latency,
            line_shift: shift,
            mru_line: vec![u64::MAX; cores],
            stats: HierarchyStats::new(cores),
        }
    }

    /// Walk the hierarchy for `core` touching `addr`.
    ///
    /// Returns the resolution level and the hierarchy cycles spent (the
    /// *lookup chain* cost: L1 on a hit; L1+L2 when resolved at L2; and so
    /// on — a miss everywhere costs the full chain and the caller adds
    /// memory time).
    pub fn access(&mut self, core: CoreId, addr: PhysAddr) -> (HitLevel, u64) {
        let c = core.index();
        // Hot-line fast path: repeated hit on the line this core touched
        // last. The line sits in its L1 set's MRU way (see `mru_line`), so
        // the full walk would change nothing but the hit counters.
        if addr.0 >> self.line_shift == self.mru_line[c] {
            self.l1[c].record_filter_hit();
            self.stats.cores[c].l1_hits += 1;
            return (HitLevel::L1, self.l1_lat);
        }
        self.mru_line[c] = addr.0 >> self.line_shift;
        let st = &mut self.stats.cores[c];

        let (l1_hit, _) = self.l1[c].access(core, addr);
        if l1_hit {
            st.l1_hits += 1;
            return (HitLevel::L1, self.l1_lat);
        }
        st.l1_misses += 1;

        let (l2_hit, _) = self.l2[c].access(core, addr);
        if l2_hit {
            st.l2_hits += 1;
            return (HitLevel::L2, self.l1_lat + self.l2_lat);
        }
        st.l2_misses += 1;

        let (l3_hit, evicted) = self.l3.access(core, addr);
        if let Some(ev) = evicted {
            if ev.owner != core {
                // Interference: this fill displaced another core's line.
                self.stats.cores[ev.owner.index()].l3_evicted_by_others += 1;
            }
        }
        let st = &mut self.stats.cores[c];
        if l3_hit {
            st.l3_hits += 1;
            (HitLevel::L3, self.l1_lat + self.l2_lat + self.l3_lat)
        } else {
            st.l3_misses += 1;
            (HitLevel::Memory, self.l1_lat + self.l2_lat + self.l3_lat)
        }
    }

    /// Reference walk without the MRU fast path: always performs the full
    /// L1→L2→L3 lookup. Kept for equivalence testing — results and all
    /// counters must match [`Self::access`] exactly on any access sequence.
    pub fn access_reference(&mut self, core: CoreId, addr: PhysAddr) -> (HitLevel, u64) {
        let c = core.index();
        self.mru_line[c] = u64::MAX; // keep the filter cold for mixed use
        let st = &mut self.stats.cores[c];

        let (l1_hit, _) = self.l1[c].access(core, addr);
        if l1_hit {
            st.l1_hits += 1;
            return (HitLevel::L1, self.l1_lat);
        }
        st.l1_misses += 1;

        let (l2_hit, _) = self.l2[c].access(core, addr);
        if l2_hit {
            st.l2_hits += 1;
            return (HitLevel::L2, self.l1_lat + self.l2_lat);
        }
        st.l2_misses += 1;

        let (l3_hit, evicted) = self.l3.access(core, addr);
        if let Some(ev) = evicted {
            if ev.owner != core {
                self.stats.cores[ev.owner.index()].l3_evicted_by_others += 1;
            }
        }
        let st = &mut self.stats.cores[c];
        if l3_hit {
            st.l3_hits += 1;
            (HitLevel::L3, self.l1_lat + self.l2_lat + self.l3_lat)
        } else {
            st.l3_misses += 1;
            (HitLevel::Memory, self.l1_lat + self.l2_lat + self.l3_lat)
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Zero all counters (contents preserved).
    pub fn reset_stats(&mut self) {
        let cores = self.l1.len();
        self.stats = HierarchyStats::new(cores);
        for c in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            c.reset_stats();
        }
        self.l3.reset_stats();
    }

    /// The shared L3 (for occupancy inspection in tests).
    pub fn l3(&self) -> &SetAssocCache {
        &self.l3
    }

    /// Packed `(level, core, set)` keys — one per cache the walk for
    /// `addr` from `core` may touch — appended to `out`. Sorting a batch
    /// of these groups lookups by `(level, set stride)`, which is exactly
    /// the order [`Self::prefetch_key`] wants them issued in: the host can
    /// then overlap many independent tag-stride loads instead of chasing
    /// one dependent load per simulated access. Read-only.
    #[inline]
    pub fn prefetch_keys(&self, core: CoreId, addr: PhysAddr, out: &mut Vec<u64>) {
        let c = (core.index() as u64) << 32;
        out.push(c | self.l1[core.index()].set_index(addr) as u64);
        out.push((1 << 40) | c | self.l2[core.index()].set_index(addr) as u64);
        out.push((2 << 40) | self.l3.set_index(addr) as u64);
    }

    /// Issue the host prefetch for one key from [`Self::prefetch_keys`].
    #[inline]
    pub fn prefetch_key(&self, key: u64) {
        let set = (key & 0xFFFF_FFFF) as usize;
        let core = ((key >> 32) & 0xFF) as usize;
        match key >> 40 {
            0 => self.l1[core].prefetch_set(set),
            1 => self.l2[core].prefetch_set(set),
            _ => self.l3.prefetch_set(set),
        }
    }

    /// Does any level currently hold `addr` for `core`?
    pub fn probe(&self, core: CoreId, addr: PhysAddr) -> Option<HitLevel> {
        let c = core.index();
        if self.l1[c].probe(addr) {
            Some(HitLevel::L1)
        } else if self.l2[c].probe(addr) {
            Some(HitLevel::L2)
        } else if self.l3.probe(addr) {
            Some(HitLevel::L3)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::types::LlcColor;

    fn hierarchy() -> (MachineConfig, CacheHierarchy) {
        let m = MachineConfig::tiny();
        let h = CacheHierarchy::new(&m);
        (m, h)
    }

    #[test]
    fn cold_miss_then_l1_hit() {
        let (_, mut h) = hierarchy();
        let a = PhysAddr(0x1000);
        let (lvl, cyc) = h.access(CoreId(0), a);
        assert_eq!(lvl, HitLevel::Memory);
        assert_eq!(cyc, 3 + 12 + 38);
        let (lvl, cyc) = h.access(CoreId(0), a);
        assert_eq!(lvl, HitLevel::L1);
        assert_eq!(cyc, 3);
    }

    #[test]
    fn fill_populates_all_levels() {
        let (_, mut h) = hierarchy();
        let a = PhysAddr(0x2000);
        h.access(CoreId(0), a);
        assert_eq!(h.probe(CoreId(0), a), Some(HitLevel::L1));
        // Another core misses privately but hits shared L3.
        let (lvl, _) = h.access(CoreId(1), a);
        assert_eq!(lvl, HitLevel::L3);
    }

    #[test]
    fn l2_hit_after_l1_capacity_eviction() {
        let (m, mut h) = hierarchy();
        let line = m.mapping.line_size();
        let a = PhysAddr(0);
        h.access(CoreId(0), a);
        // Stream enough lines to evict `a` from tiny L1 (2 KiB) but not from
        // L2 (8 KiB).
        let l1_lines = m.cache.l1.bytes / line;
        for i in 1..=(l1_lines * 2) {
            h.access(CoreId(0), PhysAddr(i * line));
        }
        let lvl = h.probe(CoreId(0), a);
        assert!(
            matches!(lvl, Some(HitLevel::L2) | Some(HitLevel::L3)),
            "a should have fallen out of L1, got {lvl:?}"
        );
    }

    #[test]
    fn cross_core_llc_interference_is_counted() {
        let (m, mut h) = hierarchy();
        // Both cores stream disjoint data of the SAME LLC color — they fight
        // for the same L3 sets (Fig. 9).
        // Same bank color too: the bank bit is part of the L3 index in this
        // layout, so only same-(bank, llc) pages contend for the same sets.
        let llc = LlcColor(1);
        let frames_a: Vec<_> = (0..8)
            .map(|r| {
                m.mapping
                    .compose_frame(tint_hw::types::BankColor(0), llc, r)
            })
            .collect();
        let frames_b: Vec<_> = (8..16)
            .map(|r| {
                m.mapping
                    .compose_frame(tint_hw::types::BankColor(0), llc, r)
            })
            .collect();
        // Fill way beyond the color's L3 slice from both cores, interleaved.
        for round in 0..4 {
            let _ = round;
            for f in &frames_a {
                for off in (0..4096).step_by(64) {
                    h.access(CoreId(0), f.at(off));
                }
            }
            for f in &frames_b {
                for off in (0..4096).step_by(64) {
                    h.access(CoreId(1), f.at(off));
                }
            }
        }
        assert!(
            h.stats().total_llc_interference() > 0,
            "same-color streams must interfere in L3"
        );
    }

    #[test]
    fn disjoint_llc_colors_do_not_interfere() {
        let (m, mut h) = hierarchy();
        // Core 0 uses color 0, core 1 uses color 1; each working set fits in
        // its color's slice (64 sets × 2 ways × 64 B = 8 KiB per color).
        let fa = m
            .mapping
            .compose_frame(tint_hw::types::BankColor(0), LlcColor(0), 0);
        let fb = m
            .mapping
            .compose_frame(tint_hw::types::BankColor(1), LlcColor(1), 0);
        // Half a page (32 lines) fits the tiny 2 KiB L1 exactly.
        for _ in 0..4 {
            for off in (0..2048).step_by(64) {
                h.access(CoreId(0), fa.at(off));
                h.access(CoreId(1), fb.at(off));
            }
        }
        assert_eq!(
            h.stats().total_llc_interference(),
            0,
            "disjoint colors must not evict each other"
        );
        // After warm-up both cores hit in L1.
        let s0 = h.stats().core(CoreId(0));
        assert!(s0.l1_hits > s0.l1_misses);
    }

    #[test]
    fn llc_color_restricts_set_usage() {
        let (m, mut h) = hierarchy();
        // Touching one color's pages touches only that color's L3 sets:
        // stream one full page of color 2 and check the set indices used.
        let f = m
            .mapping
            .compose_frame(tint_hw::types::BankColor(0), LlcColor(2), 0);
        let l3_sets = h.l3().set_count();
        let sets_per_color = l3_sets / m.mapping.llc_color_count();
        let mut used = std::collections::HashSet::new();
        for off in (0..4096).step_by(64) {
            let a = f.at(off);
            used.insert(h.l3().set_index(a));
            h.access(CoreId(0), a);
        }
        assert!(used.len() <= sets_per_color);
        for s in used {
            assert_eq!(
                s / sets_per_color,
                2usize,
                "set {s} does not belong to color 2's slice"
            );
        }
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let (_, mut h) = hierarchy();
        let a = PhysAddr(0x3000);
        h.access(CoreId(0), a);
        h.reset_stats();
        assert_eq!(h.stats().core(CoreId(0)).accesses(), 0);
        let (lvl, _) = h.access(CoreId(0), a);
        assert_eq!(lvl, HitLevel::L1, "contents survived the reset");
    }

    #[test]
    fn mru_filter_matches_reference_walk_bit_for_bit() {
        use tint_hw::rng::SplitMix64;
        // Random access streams with deliberate same-line repeats (the case
        // the filter short-circuits), interleaved across cores so evictions
        // and cross-core interference are exercised too.
        for seed in 0..4u64 {
            let (m, mut fast) = hierarchy();
            let mut refr = CacheHierarchy::new(&m);
            let mut rng = SplitMix64::new(0xC0FFEE ^ seed);
            let mut last = [PhysAddr(0); 2];
            for step in 0..20_000u64 {
                let c = CoreId((rng.gen_range(2)) as usize);
                let a = if step > 0 && rng.gen_range(3) == 0 {
                    // Repeat the core's previous address (same line).
                    last[c.index()]
                } else {
                    PhysAddr((rng.gen_range(1 << 18) & !0x3F) | rng.gen_range(64))
                };
                last[c.index()] = a;
                assert_eq!(
                    fast.access(c, a),
                    refr.access_reference(c, a),
                    "seed {seed} step {step}: result diverged"
                );
            }
            for c in 0..2 {
                let (f, r) = (fast.stats().core(CoreId(c)), refr.stats().core(CoreId(c)));
                assert_eq!(f.l1_hits, r.l1_hits, "seed {seed} core {c}");
                assert_eq!(f.l1_misses, r.l1_misses, "seed {seed} core {c}");
                assert_eq!(f.l2_hits, r.l2_hits, "seed {seed} core {c}");
                assert_eq!(f.l3_hits, r.l3_hits, "seed {seed} core {c}");
                assert_eq!(f.l3_misses, r.l3_misses, "seed {seed} core {c}");
                assert_eq!(
                    f.l3_evicted_by_others, r.l3_evicted_by_others,
                    "seed {seed} core {c}"
                );
            }
        }
    }

    #[test]
    fn mru_filter_short_circuits_same_line_hits() {
        let (_, mut h) = hierarchy();
        let a = PhysAddr(0x5000);
        h.access(CoreId(0), a); // cold miss, fills + arms the filter
        for off in 0..8 {
            let (lvl, cyc) = h.access(CoreId(0), PhysAddr(0x5000 + off * 8));
            assert_eq!((lvl, cyc), (HitLevel::L1, 3), "same 64B line");
        }
        let st = h.stats().core(CoreId(0));
        assert_eq!(st.l1_hits, 8);
        assert_eq!(st.l1_misses, 1);
    }

    #[test]
    fn per_core_privacy_of_l1_l2() {
        let (_, mut h) = hierarchy();
        let a = PhysAddr(0x4000);
        h.access(CoreId(0), a);
        assert_eq!(
            h.probe(CoreId(1), a),
            Some(HitLevel::L3),
            "only shared L3 visible to core 1"
        );
    }
}
