//! Per-core, per-level cache counters.

use tint_hw::types::CoreId;

/// Counters for one core's view of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCacheStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 (LLC) hits.
    pub l3_hits: u64,
    /// L3 misses — these go to DRAM.
    pub l3_misses: u64,
    /// Lines this core had resident in L3 that *another* core evicted.
    /// The paper's LLC-interference phenomenon (Fig. 9), made countable.
    pub l3_evicted_by_others: u64,
}

impl CoreCacheStats {
    /// Total accesses issued by the core.
    pub fn accesses(&self) -> u64 {
        self.l1_hits + self.l1_misses
    }

    /// L3 miss rate relative to L3 lookups; `0` when no L3 lookups.
    pub fn l3_miss_rate(&self) -> f64 {
        let lookups = self.l3_hits + self.l3_misses;
        if lookups == 0 {
            0.0
        } else {
            self.l3_misses as f64 / lookups as f64
        }
    }
}

/// Whole-hierarchy counters.
#[derive(Debug, Clone, Default)]
pub struct HierarchyStats {
    /// One entry per core.
    pub cores: Vec<CoreCacheStats>,
}

impl HierarchyStats {
    /// Zeroed stats for `cores` cores.
    pub fn new(cores: usize) -> Self {
        Self {
            cores: vec![CoreCacheStats::default(); cores],
        }
    }

    /// Stats for one core.
    pub fn core(&self, c: CoreId) -> &CoreCacheStats {
        &self.cores[c.index()]
    }

    /// Total cross-core LLC evictions suffered machine-wide.
    pub fn total_llc_interference(&self) -> u64 {
        self.cores.iter().map(|c| c.l3_evicted_by_others).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CoreCacheStats {
            l1_hits: 6,
            l1_misses: 4,
            l3_hits: 1,
            l3_misses: 3,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 10);
        assert_eq!(s.l3_miss_rate(), 0.75);
        assert_eq!(CoreCacheStats::default().l3_miss_rate(), 0.0);
    }

    #[test]
    fn interference_totals() {
        let mut h = HierarchyStats::new(2);
        h.cores[0].l3_evicted_by_others = 5;
        h.cores[1].l3_evicted_by_others = 2;
        assert_eq!(h.total_llc_interference(), 7);
        assert_eq!(h.core(CoreId(0)).l3_evicted_by_others, 5);
    }
}
