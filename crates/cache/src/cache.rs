//! A generic set-associative cache with true-LRU replacement.
//!
//! Lines are identified by *line address* (`addr >> line_shift`). Each line
//! optionally records an owner tag (the core that filled it) so the shared
//! LLC can attribute evictions to inter-task interference.

use tint_hw::types::{CoreId, PhysAddr};

/// Fibonacci multiplicative spread: mixes all input bits into the high
/// output bits (take the top `k` bits for a `k`-bit hash index).
#[inline]
fn fibonacci_spread(v: u64) -> u64 {
    v.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Bits a line address may occupy (55-bit physical space / 64 B lines);
/// bounds-checked in debug builds so a tag word is always a pure line
/// address.
const ADDR_BITS: u32 = 56;
/// Mask a line address must fit under.
const ADDR_MASK: u64 = (1 << ADDR_BITS) - 1;

/// Result of a cache fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line address that was evicted.
    pub line_addr: u64,
    /// Core that owned the evicted line.
    pub owner: CoreId,
}

/// How a physical address maps to a set index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// Plain modulo indexing: `(addr >> line_shift) & (sets - 1)`.
    Modulo,
    /// XOR-fold every address bit above the line offset into the index
    /// (a hash-indexed cache). Used for the private L1/L2, whose modulo
    /// index would otherwise be restricted by the bank-select bits of
    /// bank-colored pages — an interaction page coloring does not have on
    /// real parts, where sub-page interleave bits feed the private indices.
    Hash,
    /// Color-preserving hashed indexing, as shared LLCs use: the color bit
    /// field `[color_low, color_low + color_bits)` becomes the *top* bits of
    /// the set index (so page colors partition the cache into contiguous
    /// slices, the property page coloring needs), while every remaining
    /// address bit above the line offset is XOR-folded into the low index
    /// bits (so pages spread over the whole slice regardless of which bank/
    /// rank/node/row they live in).
    ColorHash {
        /// Lowest bit of the color field.
        color_low: u32,
        /// Width of the color field.
        color_bits: u32,
    },
}

/// A set-associative cache with LRU replacement.
///
/// Storage is struct-of-arrays: a flat `tags` array of `sets × assoc` line
/// addresses (set `i` owns `tags[i*assoc .. (i+1)*assoc]`), a parallel
/// `owners` byte array, and a per-set occupancy count — no per-set
/// allocations, so a lookup touches exactly one contiguous tag stride.
/// Splitting the owner byte out of the tag word keeps the hot scan a pure
/// `u64 == u64` compare over a dense stride (no mask, trivially
/// vectorizable) and lets the engine's batch presort prefetch tag strides
/// for many independent lookups at once; the cold owner bytes are only
/// touched on hits and evictions. Each occupied stride is kept in LRU
/// order (most recent last); with the associativities in play (2–16) a
/// rotate within the stride beats fancier structures.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// Flat line-address storage, `set_count * assoc` slots.
    tags: Vec<u64>,
    /// Owning core per slot, parallel to `tags` (core ≤ 255 asserted).
    owners: Vec<u8>,
    /// Occupied slots per set (0..=assoc; assoc ≤ 255 asserted).
    lens: Vec<u8>,
    set_count: usize,
    assoc: usize,
    line_shift: u32,
    set_mask: u64,
    index_mode: IndexMode,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Build a cache with `sets` sets (power of two), `assoc` ways, and
    /// `line_shift` log2-line-size, using plain modulo indexing.
    pub fn new(sets: usize, assoc: usize, line_shift: u32) -> Self {
        Self::with_index_mode(sets, assoc, line_shift, IndexMode::Modulo)
    }

    /// Build a cache with an explicit [`IndexMode`].
    pub fn with_index_mode(
        sets: usize,
        assoc: usize,
        line_shift: u32,
        index_mode: IndexMode,
    ) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(assoc > 0 && assoc <= u8::MAX as usize);
        match index_mode {
            IndexMode::ColorHash {
                color_low,
                color_bits,
            } => {
                let idx_bits = sets.trailing_zeros();
                assert!(
                    color_bits < idx_bits,
                    "color field must leave hash bits in the index"
                );
                assert!(color_low >= line_shift, "color field below the line offset");
            }
            IndexMode::Hash => {
                // `set_index` shifts by `64 - idx_bits`; a 1-set cache would
                // shift by 64 (overflow). A 1-set cache is fully associative
                // anyway — use Modulo for it.
                assert!(sets >= 2, "hash indexing needs at least 2 sets");
            }
            IndexMode::Modulo => {}
        }
        Self {
            tags: vec![0; sets * assoc],
            owners: vec![0; sets * assoc],
            lens: vec![0; sets],
            set_count: sets,
            assoc,
            line_shift,
            set_mask: (sets - 1) as u64,
            index_mode,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.set_count
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.tags.len() as u64 * (1u64 << self.line_shift)
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Count a hit that the hierarchy's hot-line filter short-circuited.
    ///
    /// The filter only fires when a full [`Self::access`] would hit the MRU
    /// way with the owner already set to the accessing core — the rotate is
    /// a no-op and the owner write is idempotent — so the lookup can be
    /// skipped entirely as long as this counter still moves.
    #[inline]
    pub fn record_filter_hit(&mut self) {
        self.hits += 1;
    }

    /// Set index of an address.
    #[inline]
    pub fn set_index(&self, addr: PhysAddr) -> usize {
        match self.index_mode {
            IndexMode::Modulo => ((addr.0 >> self.line_shift) & self.set_mask) as usize,
            IndexMode::Hash => {
                let idx_bits = self.set_mask.count_ones();
                let v = addr.0 >> self.line_shift;
                (fibonacci_spread(v) >> (64 - idx_bits)) as usize
            }
            IndexMode::ColorHash {
                color_low,
                color_bits,
            } => {
                let idx_bits = self.set_mask.count_ones();
                let non_color = idx_bits - color_bits;
                let color = (addr.0 >> color_low) & ((1u64 << color_bits) - 1);
                // Every address bit above the line offset except the color
                // field, concatenated and spread multiplicatively.
                let low_bits = color_low - self.line_shift;
                let low = (addr.0 >> self.line_shift) & ((1u64 << low_bits) - 1);
                let high = addr.0 >> (color_low + color_bits);
                let v = (high << low_bits) | low;
                let spread = fibonacci_spread(v) >> (64 - non_color);
                ((color << non_color) | spread) as usize
            }
        }
    }

    #[inline]
    fn line_addr(&self, addr: PhysAddr) -> u64 {
        let la = addr.0 >> self.line_shift;
        debug_assert!(la <= ADDR_MASK, "line address must fit the packed field");
        la
    }

    /// Look up and touch `addr` for `core`. On a hit the line moves to MRU;
    /// on a miss the line is filled (evicting LRU if the set is full) and
    /// the eviction, if any, is returned.
    ///
    /// Returns `(hit, eviction)`.
    pub fn access(&mut self, core: CoreId, addr: PhysAddr) -> (bool, Option<Eviction>) {
        debug_assert!(core.index() < 256, "owner must fit a byte");
        let la = self.line_addr(addr);
        let idx = self.set_index(addr);
        let base = idx * self.assoc;
        let len = self.lens[idx] as usize;
        let tags = &mut self.tags[base..base + len];
        if let Some(pos) = tags.iter().position(|&t| t == la) {
            // Hit: move to MRU (end), refresh owner.
            tags[pos..].rotate_left(1);
            let owners = &mut self.owners[base..base + len];
            owners[pos..].rotate_left(1);
            owners[len - 1] = core.index() as u8;
            self.hits += 1;
            return (true, None);
        }
        self.misses += 1;
        if len == self.assoc {
            // Evict LRU (front), shift the rest down, fill the MRU slot.
            let victim = tags[0];
            tags.rotate_left(1);
            tags[len - 1] = la;
            let owners = &mut self.owners[base..base + len];
            let victim_owner = owners[0];
            owners.rotate_left(1);
            owners[len - 1] = core.index() as u8;
            (
                false,
                Some(Eviction {
                    line_addr: victim,
                    owner: CoreId(victim_owner as usize),
                }),
            )
        } else {
            self.tags[base + len] = la;
            self.owners[base + len] = core.index() as u8;
            self.lens[idx] = (len + 1) as u8;
            (false, None)
        }
    }

    /// Hint the host CPU to pull set `idx`'s tag stride (and its occupancy
    /// byte) into its own caches ahead of the walk. Purely a host-side
    /// prefetch: no simulated state or counter changes.
    #[inline]
    pub fn prefetch_set(&self, idx: usize) {
        debug_assert!(idx < self.set_count);
        let base = idx * self.assoc;
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `base` and `idx` are in bounds (asserted above); prefetch
        // itself is side-effect free.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.tags.as_ptr().add(base).cast(), _MM_HINT_T0);
            if self.assoc > 8 {
                // Tag strides above 8 ways span a second host cache line.
                _mm_prefetch(self.tags.as_ptr().add(base + 8).cast(), _MM_HINT_T0);
            }
            _mm_prefetch(self.lens.as_ptr().add(idx).cast(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            std::hint::black_box(&self.tags[base]);
            std::hint::black_box(&self.lens[idx]);
        }
    }

    /// Non-mutating lookup: does the cache currently hold `addr`?
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let la = self.line_addr(addr);
        let idx = self.set_index(addr);
        let base = idx * self.assoc;
        self.tags[base..base + self.lens[idx] as usize].contains(&la)
    }

    /// Drop a line if present (used for invalidation tests).
    pub fn invalidate(&mut self, addr: PhysAddr) -> bool {
        let la = self.line_addr(addr);
        let idx = self.set_index(addr);
        let base = idx * self.assoc;
        let len = self.lens[idx] as usize;
        let tags = &mut self.tags[base..base + len];
        if let Some(pos) = tags.iter().position(|&t| t == la) {
            tags[pos..].rotate_left(1);
            self.owners[base..base + len][pos..].rotate_left(1);
            self.lens[idx] = (len - 1) as u8;
            true
        } else {
            false
        }
    }

    /// Number of resident lines (for occupancy assertions).
    pub fn resident_lines(&self) -> usize {
        self.lens.iter().map(|&l| l as usize).sum()
    }

    /// Number of resident lines owned by `core`.
    pub fn resident_lines_of(&self, core: CoreId) -> usize {
        self.lens
            .iter()
            .enumerate()
            .flat_map(|(i, &len)| self.owners[i * self.assoc..i * self.assoc + len as usize].iter())
            .filter(|&&o| o as usize == core.index())
            .count()
    }

    /// Zero the hit/miss counters (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Empty the cache and reset stats.
    pub fn flush(&mut self) {
        self.lens.fill(0);
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);

    fn cache() -> SetAssocCache {
        // 4 sets × 2 ways × 64 B = 512 B.
        SetAssocCache::new(4, 2, 6)
    }

    #[test]
    fn geometry() {
        let c = cache();
        assert_eq!(c.set_count(), 4);
        assert_eq!(c.assoc(), 2);
        assert_eq!(c.capacity_bytes(), 512);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache();
        let a = PhysAddr(0x1000);
        assert_eq!(c.access(C0, a), (false, None));
        assert!(c.access(C0, a).0);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn same_line_different_offset_hits() {
        let mut c = cache();
        c.access(C0, PhysAddr(0x1000));
        assert!(c.access(C0, PhysAddr(0x103f)).0, "same 64B line");
        assert!(!c.access(C0, PhysAddr(0x1040)).0, "next line");
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cache();
        // Three lines mapping to set 0: line addresses 0, 4, 8 (set = la & 3).
        let a = PhysAddr(0 << 6);
        let b = PhysAddr(4 << 6);
        let d = PhysAddr(8 << 6);
        c.access(C0, a);
        c.access(C0, b);
        // Touch a so b becomes LRU.
        c.access(C0, a);
        let (_, ev) = c.access(C0, d);
        assert_eq!(ev.unwrap().line_addr, 4, "b was LRU");
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn eviction_reports_owner() {
        let mut c = cache();
        let a = PhysAddr(0 << 6);
        let b = PhysAddr(4 << 6);
        let d = PhysAddr(8 << 6);
        c.access(C1, a);
        c.access(C0, b);
        let (_, ev) = c.access(C0, d);
        let ev = ev.unwrap();
        assert_eq!(ev.owner, C1, "victim was core 1's line");
    }

    #[test]
    fn hit_refreshes_owner() {
        let mut c = cache();
        let a = PhysAddr(0x40);
        c.access(C0, a);
        c.access(C1, a);
        assert_eq!(c.resident_lines_of(C1), 1);
        assert_eq!(c.resident_lines_of(C0), 0);
    }

    #[test]
    fn disjoint_sets_no_eviction() {
        let mut c = cache();
        // 8 lines across 4 sets, 2 per set: fits exactly.
        for la in 0..8u64 {
            let (_, ev) = c.access(C0, PhysAddr(la << 6));
            assert!(ev.is_none());
        }
        assert_eq!(c.resident_lines(), 8);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = cache();
        let a = PhysAddr(0x1000);
        c.access(C0, a);
        assert!(c.invalidate(a));
        assert!(!c.probe(a));
        assert!(!c.invalidate(a));
    }

    #[test]
    fn flush_empties() {
        let mut c = cache();
        c.access(C0, PhysAddr(0x1000));
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert_eq!((c.hits(), c.misses()), (0, 0));
    }

    #[test]
    fn probe_does_not_count() {
        let mut c = cache();
        c.access(C0, PhysAddr(0));
        let before = (c.hits(), c.misses());
        c.probe(PhysAddr(0));
        c.probe(PhysAddr(0x4000));
        assert_eq!((c.hits(), c.misses()), before);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        SetAssocCache::new(3, 2, 6);
    }

    /// The SoA storage must be state-identical to the obvious per-set
    /// `Vec<(line, owner)>` LRU model: same hit/miss/eviction result on
    /// every step and the same resident contents afterwards, across random
    /// access/probe/invalidate streams (≥4 seeds × 20k steps).
    #[test]
    fn soa_matches_naive_model_bit_for_bit() {
        use tint_hw::rng::SplitMix64;

        struct Naive {
            sets: Vec<Vec<(u64, CoreId)>>,
            assoc: usize,
        }
        impl Naive {
            fn access(&mut self, idx: usize, la: u64, core: CoreId) -> (bool, Option<Eviction>) {
                let set = &mut self.sets[idx];
                if let Some(pos) = set.iter().position(|&(l, _)| l == la) {
                    set.remove(pos);
                    set.push((la, core));
                    return (true, None);
                }
                let ev = if set.len() == self.assoc {
                    let (l, o) = set.remove(0);
                    Some(Eviction {
                        line_addr: l,
                        owner: o,
                    })
                } else {
                    None
                };
                set.push((la, core));
                (false, ev)
            }
        }

        for seed in 0..4u64 {
            let mut rng = SplitMix64::new(0x50A ^ seed);
            // 16 sets × 4 ways, hash-indexed like the private levels.
            let mut c = SetAssocCache::with_index_mode(16, 4, 6, IndexMode::Hash);
            let mut n = Naive {
                sets: vec![Vec::new(); 16],
                assoc: 4,
            };
            for step in 0..20_000u64 {
                let addr = PhysAddr(rng.gen_range(1 << 16) & !0x3F);
                let core = CoreId(rng.gen_range(4) as usize);
                match rng.gen_range(10) {
                    0 => {
                        let idx = c.set_index(addr);
                        let la = addr.0 >> 6;
                        let got = c.invalidate(addr);
                        let set = &mut n.sets[idx];
                        let want = set.iter().position(|&(l, _)| l == la).map(|p| {
                            set.remove(p);
                        });
                        assert_eq!(got, want.is_some(), "invalidate step {step}");
                    }
                    1 => {
                        let idx = c.set_index(addr);
                        let la = addr.0 >> 6;
                        let want = n.sets[idx].iter().any(|&(l, _)| l == la);
                        assert_eq!(c.probe(addr), want, "probe step {step}");
                    }
                    _ => {
                        let idx = c.set_index(addr);
                        let la = addr.0 >> 6;
                        let want = n.access(idx, la, core);
                        assert_eq!(c.access(core, addr), want, "access step {step}");
                    }
                }
            }
            // Final state identity: every resident line, per owner.
            assert_eq!(
                c.resident_lines(),
                n.sets.iter().map(Vec::len).sum::<usize>()
            );
            for core in 0..4 {
                let want = n
                    .sets
                    .iter()
                    .flatten()
                    .filter(|&&(_, o)| o == CoreId(core))
                    .count();
                assert_eq!(c.resident_lines_of(CoreId(core)), want, "owner {core}");
            }
            for (idx, set) in n.sets.iter().enumerate() {
                for &(la, _) in set {
                    assert!(c.probe(PhysAddr(la << 6)), "line {la:#x} in set {idx}");
                }
            }
        }
    }
}
