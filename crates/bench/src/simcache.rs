//! Content-addressed simulation cell cache.
//!
//! Every figure in the reproduction is assembled from deterministic
//! *cells*: one `(workload, scheme, pinning, seed)` simulation on a fresh
//! machine. The same cells recur across figures — the fig13/fig14 sweep is
//! a strict subset of the fig11 matrix, `probe` re-runs matrix cells,
//! `repro fig13 fig14` used to run the whole sweep twice — so the runner
//! memoizes [`ExpResult`]s here, keyed by the *content* of the cell:
//!
//! * the workload's parameter fingerprint
//!   ([`tint_workloads::Workload::fingerprint`]), which covers the
//!   benchmark identity and every size/iteration parameter — `--scale` is
//!   folded in through the scaled parameter values themselves;
//! * the [`ColorScheme`] and [`PinConfig`];
//! * the repetition seed (each of the paper's repetitions is a distinct
//!   cell: the seed jitters the boot-time physical layout and the
//!   workloads' random streams, so seeds must never alias);
//! * the engine mode ([`tint_spmd::reference_pipeline`]), so the
//!   batched-vs-reference differential test keeps actually running both
//!   pipelines.
//!
//! Correctness rests on one invariant, asserted end-to-end by
//! `tests/cell_cache.rs`: cells are bit-deterministic, so serving a cached
//! result is indistinguishable from re-simulating. Figure output is
//! byte-identical with the cache on or off.
//!
//! The cache is process-global (figures within one `repro` invocation share
//! it; nothing persists across processes) and thread-safe (the matrix
//! executor fills it from worker threads). `TINT_SIM_CACHE=0` disables it;
//! tests can flip it programmatically via [`set_enabled`].

use crate::runner::ExpResult;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use tint_workloads::{PinConfig, Workload};
use tintmalloc::colors::ColorScheme;

/// Content-address of one simulation cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Workload parameter fingerprint (benchmark identity + all sizes).
    pub fingerprint: u64,
    /// Coloring policy applied to the thread team.
    pub scheme: ColorScheme,
    /// Thread→core pinning configuration.
    pub pin: PinConfig,
    /// Repetition seed (boot noise + workload random streams).
    pub seed: u64,
    /// True when `TINT_REFERENCE_PIPELINE=1` routes the engine through the
    /// reference heap loop — a different executable path that must never
    /// share cells with the batched pipeline.
    pub reference_pipeline: bool,
    /// True when the engine runs in sampled mode
    /// ([`tint_spmd::EngineMode::Sampled`]): its results are estimates and
    /// must never be served for an exact-mode request (or vice versa).
    pub sampled: bool,
}

impl CellKey {
    /// The key for running `workload` under `(scheme, pin, seed)` with the
    /// current engine mode.
    pub fn of(workload: &dyn Workload, scheme: ColorScheme, pin: PinConfig, seed: u64) -> Self {
        Self {
            fingerprint: workload.fingerprint(),
            scheme,
            pin,
            seed,
            reference_pipeline: tint_spmd::reference_pipeline(),
            sampled: tint_spmd::engine_mode() == tint_spmd::EngineMode::Sampled,
        }
    }
}

static CACHE: OnceLock<Mutex<HashMap<CellKey, ExpResult>>> = OnceLock::new();
static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

// Every lock below absorbs poisoning: a worker panic caught by the
// executor's `catch_unwind` while this mutex is held must not cascade
// panics into the surviving workers — the map holds plain completed
// results, valid regardless of where the panicking worker stopped.
fn cache() -> &'static Mutex<HashMap<CellKey, ExpResult>> {
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn enabled_flag() -> &'static AtomicBool {
    ENABLED.get_or_init(|| {
        let off = std::env::var_os("TINT_SIM_CACHE").is_some_and(|v| v == "0");
        AtomicBool::new(!off)
    })
}

/// Is the cell cache on? Defaults to on; `TINT_SIM_CACHE=0` (read once, at
/// first use) or [`set_enabled`] turn it off.
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Programmatically enable/disable the cache (tests; overrides the env).
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

/// Look up a cell. `None` when the cache is disabled or the cell has not
/// been simulated yet. Does **not** touch the hit/miss counters — the
/// executor accounts for served-vs-simulated cells itself (an in-batch
/// duplicate is a hit even though this probe missed).
pub fn lookup(key: &CellKey) -> Option<ExpResult> {
    if !enabled() {
        return None;
    }
    cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(key)
        .cloned()
}

/// Store a freshly simulated cell (no-op when disabled).
pub fn insert(key: CellKey, result: &ExpResult) {
    if enabled() {
        cache()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, result.clone());
    }
}

/// Store a batch of cells under one lock acquisition (no-op when
/// disabled). The journal replay path uses this: a farm replay can carry
/// thousands of cells, and taking the cache lock per cell would contend
/// with worker threads already simulating.
pub fn insert_many<'a, I>(items: I)
where
    I: IntoIterator<Item = (CellKey, &'a ExpResult)>,
{
    if !enabled() {
        return;
    }
    let mut map = cache().lock().unwrap_or_else(|e| e.into_inner());
    for (k, v) in items {
        map.insert(k, v.clone());
    }
}

/// Count `n` cells served without simulation (cache or in-batch dedup).
pub fn note_hits(n: u64) {
    HITS.fetch_add(n, Ordering::Relaxed);
}

/// Count `n` cells that had to be simulated.
pub fn note_misses(n: u64) {
    MISSES.fetch_add(n, Ordering::Relaxed);
}

/// Process-lifetime `(hits, misses)` counters. `repro` snapshots these
/// around each command to report per-command cache traffic.
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Number of cached cells (tests/diagnostics).
pub fn len() -> usize {
    cache().lock().unwrap_or_else(|e| e.into_inner()).len()
}

/// Drop every cached cell and zero the counters (tests).
pub fn clear() {
    cache().lock().unwrap_or_else(|e| e.into_inner()).clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}
