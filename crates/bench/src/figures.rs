//! Figure regeneration: one function per results figure of the paper.

use crate::runner::{
    any_poisoned, available_jobs, run_cells, run_cells_with_progress, run_once, run_reps, CellSpec,
    ExpResult, Summary,
};
use crate::table::{norm, norm_err, Table};
use std::collections::HashMap;
use tint_kernel::VictimPolicy;
use tint_spmd::{ChurnOutcome, PressureWindow, RoundRobin, SimThread};
use tint_workloads::traits::Scale;
use tint_workloads::{all_benchmarks, ChurnConfig, PinConfig, SoakConfig, Synthetic, Workload};
use tintmalloc::prelude::*;

/// Common experiment options.
#[derive(Debug, Clone, Copy)]
pub struct FigOpts {
    /// Seeded repetitions per cell (paper: 10).
    pub reps: u32,
    /// Workload scale factor (1.0 = DESIGN.md defaults).
    pub scale: f64,
    /// Emit CSV instead of aligned tables.
    pub csv: bool,
}

impl Default for FigOpts {
    fn default() -> Self {
        Self {
            reps: 3,
            scale: 1.0,
            csv: false,
        }
    }
}

impl FigOpts {
    fn scale_(&self) -> Scale {
        Scale(self.scale)
    }

    /// Render a table per the CSV flag.
    pub fn render(&self, t: &Table) -> String {
        if self.csv {
            t.to_csv()
        } else {
            t.render()
        }
    }
}

/// The coloring solutions Fig. 10 compares on the synthetic benchmark.
const FIG10_SCHEMES: [ColorScheme; 4] = [
    ColorScheme::Buddy,
    ColorScheme::LlcOnly,
    ColorScheme::MemOnly,
    ColorScheme::MemLlc,
];

/// The "other" coloring solutions Fig. 11 picks the best of.
const OTHER_SCHEMES: [ColorScheme; 4] = [
    ColorScheme::LlcOnly,
    ColorScheme::MemOnly,
    ColorScheme::MemLlcPart,
    ColorScheme::LlcMemPart,
];

/// Flatten `schemes × seeds 1..=reps` on one workload into a cell list.
fn cells_for<'a>(
    workload: &'a dyn Workload,
    schemes: &[ColorScheme],
    pin: PinConfig,
    reps: u32,
) -> Vec<CellSpec<'a>> {
    schemes
        .iter()
        .flat_map(|&scheme| {
            (1..=reps as u64).map(move |seed| CellSpec {
                workload,
                scheme,
                pin,
                seed,
            })
        })
        .collect()
}

/// **Figure 10** — synthetic benchmark execution time per coloring policy.
pub fn fig10(opts: &FigOpts) -> Table {
    let w = Synthetic::new(opts.scale_());
    let pin = PinConfig::T16N4;
    let mut t = Table::new(vec![
        "policy",
        "runtime_cycles",
        "normalized",
        "remote_frac",
        "row_hit_rate",
    ]);
    // One flattened batch over all four schemes' repetitions.
    let cells = cells_for(&w, &FIG10_SCHEMES, pin, opts.reps);
    let results = run_cells(&cells, available_jobs());
    let per_scheme: Vec<&[ExpResult]> = results.chunks(opts.reps as usize).collect();
    let base_bad = any_poisoned(per_scheme[0]);
    let base = Summary::runtime(per_scheme[0]).mean;
    for (i, scheme) in FIG10_SCHEMES.into_iter().enumerate() {
        let rs = per_scheme[i];
        let bad = any_poisoned(rs);
        let s = Summary::runtime(rs);
        let remote = Summary::of(rs, |r| r.remote_fraction).mean;
        let hit = Summary::of(rs, |r| r.row_hit_rate).mean;
        let val = |v: String| if bad { "ERR".to_string() } else { v };
        t.row(vec![
            scheme.label().to_string(),
            val(format!("{:.0}", s.mean)),
            if bad || base_bad {
                "ERR".to_string()
            } else {
                norm_err(s.mean / base, s.min / base, s.max / base)
            },
            val(format!("{remote:.3}")),
            val(format!("{hit:.3}")),
        ]);
    }
    t
}

/// Key for one cell of the benchmark matrix.
type Cell = (&'static str, PinConfig, ColorScheme);

/// The full benchmark sweep shared by Figures 11 and 12.
pub struct BenchMatrix {
    /// Repetition results per (benchmark, config, scheme).
    pub cells: HashMap<Cell, Vec<ExpResult>>,
    /// Benchmark names in figure order.
    pub benchmarks: Vec<&'static str>,
    /// Configs included.
    pub configs: Vec<PinConfig>,
}

/// All schemes the benchmark figures need.
fn matrix_schemes() -> Vec<ColorScheme> {
    let mut v = vec![ColorScheme::Buddy, ColorScheme::Bpm, ColorScheme::MemLlc];
    v.extend(OTHER_SCHEMES);
    v
}

/// Run the full (benchmark × config × scheme × reps) sweep as **one**
/// flattened work queue over every cell, drained by `--jobs`/`TINT_JOBS`
/// host threads. Cells differ ~100× in cost (lbm vs blackscholes), so the
/// queue — not a per-cell reps-way fan-out — is what load-balances the
/// sweep; the canonical-order merge keeps the assembled matrix independent
/// of job count.
pub fn run_matrix(opts: &FigOpts, configs: &[PinConfig]) -> BenchMatrix {
    let benches = all_benchmarks(opts.scale_());
    let schemes = matrix_schemes();
    let mut specs: Vec<CellSpec> = Vec::new();
    for w in &benches {
        for &pin in configs {
            for &scheme in &schemes {
                for seed in 1..=opts.reps as u64 {
                    specs.push(CellSpec {
                        workload: w.as_ref(),
                        scheme,
                        pin,
                        seed,
                    });
                }
            }
        }
    }
    let listed = specs.len();
    let results = run_cells_with_progress(&specs, available_jobs(), &move |done, total| {
        eprint!("\r[matrix] simulated {done}/{total} cells ({listed} listed)          ");
    });
    eprintln!();
    let mut cells = HashMap::new();
    let mut it = results.into_iter();
    for w in &benches {
        for &pin in configs {
            for &scheme in &schemes {
                let rs: Vec<ExpResult> = it.by_ref().take(opts.reps as usize).collect();
                cells.insert((w.name(), pin, scheme), rs);
            }
        }
    }
    BenchMatrix {
        cells,
        benchmarks: benches.iter().map(|w| w.name()).collect(),
        configs: configs.to_vec(),
    }
}

impl BenchMatrix {
    fn get(&self, b: &'static str, p: PinConfig, s: ColorScheme) -> &[ExpResult] {
        &self.cells[&(b, p, s)]
    }

    /// Best "other" scheme by mean of `metric` for a (benchmark, config).
    fn best_other(
        &self,
        b: &'static str,
        p: PinConfig,
        metric: impl Fn(&ExpResult) -> f64 + Copy,
    ) -> (ColorScheme, Summary) {
        OTHER_SCHEMES
            .iter()
            .map(|&s| (s, Summary::of(self.get(b, p, s), metric)))
            .min_by(|a, b| a.1.mean.total_cmp(&b.1.mean))
            .unwrap()
    }

    /// One figure table (normalized to buddy) for a metric: Fig. 11 uses
    /// runtime, Fig. 12 uses total idle.
    pub fn figure(&self, metric: impl Fn(&ExpResult) -> f64 + Copy, what: &str) -> Vec<Table> {
        let mut tables = Vec::new();
        for &pin in &self.configs {
            let mut t = Table::new(vec![
                "benchmark".to_string(),
                format!("buddy_{what}"),
                "BPM".to_string(),
                "MEM+LLC".to_string(),
                "best_other".to_string(),
                "best_other_scheme".to_string(),
            ]);
            for &b in &self.benchmarks {
                let base_rs = self.get(b, pin, ColorScheme::Buddy);
                let base_bad = any_poisoned(base_rs);
                let base = Summary::of(base_rs, metric);
                let nz = |v: f64| if base.mean > 0.0 { v / base.mean } else { 0.0 };
                let bpm = Summary::of(self.get(b, pin, ColorScheme::Bpm), metric);
                let ml = Summary::of(self.get(b, pin, ColorScheme::MemLlc), metric);
                let (bs, bsum) = self.best_other(b, pin, metric);
                // A poisoned repetition set renders as ERR; normalized
                // columns also depend on the buddy base being clean.
                let cell = |rs_bad: bool, v: String| {
                    if rs_bad || base_bad {
                        "ERR".to_string()
                    } else {
                        v
                    }
                };
                let bpm_bad = any_poisoned(self.get(b, pin, ColorScheme::Bpm));
                let ml_bad = any_poisoned(self.get(b, pin, ColorScheme::MemLlc));
                let other_bad = OTHER_SCHEMES
                    .iter()
                    .any(|&s| any_poisoned(self.get(b, pin, s)));
                t.row(vec![
                    b.to_string(),
                    cell(false, norm_err(1.0, nz(base.min), nz(base.max))),
                    cell(bpm_bad, norm_err(nz(bpm.mean), nz(bpm.min), nz(bpm.max))),
                    cell(ml_bad, norm_err(nz(ml.mean), nz(ml.min), nz(ml.max))),
                    cell(other_bad, norm(nz(bsum.mean))),
                    if other_bad {
                        "ERR".to_string()
                    } else {
                        bs.label().to_string()
                    },
                ]);
            }
            tables.push(t);
        }
        tables
    }

    /// **Figure 11** — normalized benchmark runtime per config.
    pub fn fig11(&self) -> Vec<Table> {
        self.figure(|r| r.metrics.runtime as f64, "runtime")
    }

    /// **Figure 12** — normalized total idle time per config.
    pub fn fig12(&self) -> Vec<Table> {
        self.figure(|r| r.metrics.total_idle() as f64, "idle")
    }
}

/// Hard bound asserted by `repro validate-sampled`: worst relative error
/// (per cent) allowed on any figure ratio metric in sampled mode.
pub const SAMPLED_ERR_BOUND_PCT: f64 = 2.0;

/// Ratios whose exact-mode value is below this are skipped in the error
/// sweep: the figures print two decimals, so a buddy-normalized ratio
/// under 0.02 renders as `0.0x` and its *relative* error is pure noise.
const SAMPLED_ERR_MIN_RATIO: f64 = 0.02;

/// Outcome of [`validate_sampled`].
pub struct SampledValidation {
    /// Per-figure error table (one row per figure metric).
    pub table: Table,
    /// Mean wall-clock of the exact matrix passes, milliseconds.
    pub exact_ms: f64,
    /// Mean wall-clock of the sampled matrix passes, milliseconds.
    pub sampled_ms: f64,
    /// `exact_ms / sampled_ms`.
    pub speedup: f64,
    /// Worst relative error over both figures, per cent.
    pub max_err_pct: f64,
    /// Every error within [`SAMPLED_ERR_BOUND_PCT`].
    pub passed: bool,
}

/// **validate-sampled** — the sampled-engine differential: run the
/// fig11/fig12 matrix in exact and in sampled mode and compare every
/// buddy-normalized ratio the two figures are built from (each non-buddy
/// scheme × benchmark × config, for runtime and total idle). Wall-clock is
/// measured from two interleaved A/B passes per mode with the cell cache
/// off — both passes really simulate, and host drift (thermal, page
/// cache) hits the two modes alike. The engine mode and cache state are
/// restored afterwards.
pub fn validate_sampled(opts: &FigOpts, configs: &[PinConfig]) -> SampledValidation {
    use std::time::Instant;
    use tint_spmd::{engine_mode, set_engine_mode, EngineMode};

    let cache_was = crate::simcache::enabled();
    let mode_was = engine_mode();
    crate::simcache::set_enabled(false);
    let mut exact: Option<BenchMatrix> = None;
    let mut sampled: Option<BenchMatrix> = None;
    let (mut exact_ns, mut sampled_ns) = (0u128, 0u128);
    for pass in 0..2 {
        eprintln!("[validate-sampled] pass {}/2: exact matrix", pass + 1);
        set_engine_mode(EngineMode::Exact);
        let t = Instant::now();
        exact = Some(run_matrix(opts, configs));
        exact_ns += t.elapsed().as_nanos();
        eprintln!("[validate-sampled] pass {}/2: sampled matrix", pass + 1);
        set_engine_mode(EngineMode::Sampled);
        let t = Instant::now();
        sampled = Some(run_matrix(opts, configs));
        sampled_ns += t.elapsed().as_nanos();
    }
    set_engine_mode(mode_was);
    crate::simcache::set_enabled(cache_was);
    let (exact, sampled) = (exact.unwrap(), sampled.unwrap());

    fn runtime_of(r: &ExpResult) -> f64 {
        r.metrics.runtime as f64
    }
    fn idle_of(r: &ExpResult) -> f64 {
        r.metrics.total_idle() as f64
    }
    type Metric = fn(&ExpResult) -> f64;
    let figures: [(&str, &str, Metric); 2] =
        [("fig11", "runtime", runtime_of), ("fig12", "idle", idle_of)];

    let mut table = Table::new(vec![
        "figure",
        "metric",
        "ratios",
        "skipped",
        "mean_err_%",
        "max_err_%",
        "bound_%",
        "status",
    ]);
    let mut max_all = 0.0f64;
    let schemes = matrix_schemes();
    for (fig, what, metric) in figures {
        let mut errs: Vec<f64> = Vec::new();
        let mut skipped = 0usize;
        for &pin in &exact.configs {
            for &b in &exact.benchmarks {
                let base_e_rs = exact.get(b, pin, ColorScheme::Buddy);
                let base_s_rs = sampled.get(b, pin, ColorScheme::Buddy);
                if any_poisoned(base_e_rs) || any_poisoned(base_s_rs) {
                    skipped += schemes.len() - 1;
                    continue;
                }
                let base_e = Summary::of(base_e_rs, metric).mean;
                let base_s = Summary::of(base_s_rs, metric).mean;
                if base_e <= 0.0 || base_s <= 0.0 {
                    skipped += schemes.len() - 1;
                    continue;
                }
                for &scheme in schemes.iter().filter(|&&s| s != ColorScheme::Buddy) {
                    let e_rs = exact.get(b, pin, scheme);
                    let s_rs = sampled.get(b, pin, scheme);
                    if any_poisoned(e_rs) || any_poisoned(s_rs) {
                        skipped += 1;
                        continue;
                    }
                    let re = Summary::of(e_rs, metric).mean / base_e;
                    let rs = Summary::of(s_rs, metric).mean / base_s;
                    if re < SAMPLED_ERR_MIN_RATIO {
                        skipped += 1;
                        continue;
                    }
                    errs.push(100.0 * (rs - re).abs() / re);
                }
            }
        }
        let mean = if errs.is_empty() {
            0.0
        } else {
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        let max = errs.iter().copied().fold(0.0f64, f64::max);
        max_all = max_all.max(max);
        table.row(vec![
            fig.to_string(),
            what.to_string(),
            errs.len().to_string(),
            skipped.to_string(),
            format!("{mean:.3}"),
            format!("{max:.3}"),
            format!("{SAMPLED_ERR_BOUND_PCT:.1}"),
            if max <= SAMPLED_ERR_BOUND_PCT {
                "ok".to_string()
            } else {
                "FAIL".to_string()
            },
        ]);
    }
    let exact_ms = exact_ns as f64 / 2.0 / 1e6;
    let sampled_ms = sampled_ns as f64 / 2.0 / 1e6;
    SampledValidation {
        table,
        exact_ms,
        sampled_ms,
        speedup: if sampled_ms > 0.0 {
            exact_ms / sampled_ms
        } else {
            0.0
        },
        max_err_pct: max_all,
        passed: max_all <= SAMPLED_ERR_BOUND_PCT,
    }
}

/// The schemes Figures 13/14 compare.
const FIG13_SCHEMES: [ColorScheme; 3] = [ColorScheme::Buddy, ColorScheme::Bpm, ColorScheme::MemLlc];

/// **Figures 13 & 14** — per-thread runtime and idle at 16_threads_4_nodes.
/// Returns (per-benchmark summary table, lbm per-thread detail table).
///
/// The whole `benchmark × scheme × rep` sweep is one flattened cell batch;
/// every cell is a strict subset of the fig11 matrix, so in an invocation
/// that already ran the matrix this function performs zero new simulations
/// (asserted by scripts/ci.sh against the cache counters).
pub fn fig13_14(opts: &FigOpts) -> (Table, Table) {
    let pin = PinConfig::T16N4;
    let benches = all_benchmarks(opts.scale_());
    let mut summary = Table::new(vec![
        "benchmark",
        "scheme",
        "max_thr_runtime",
        "min_thr_runtime",
        "spread",
        "max_thr_idle",
    ]);
    let mut lbm_detail = Table::new(vec![
        "thread",
        "buddy_runtime",
        "memllc_runtime",
        "buddy_idle",
        "memllc_idle",
    ]);
    let mut specs: Vec<CellSpec> = Vec::new();
    for w in &benches {
        specs.extend(cells_for(w.as_ref(), &FIG13_SCHEMES, pin, opts.reps));
    }
    let results = run_cells(&specs, available_jobs());
    let mut chunks = results.chunks(opts.reps as usize);
    for w in &benches {
        // Per-benchmark chunk layout follows FIG13_SCHEMES order; the
        // MemLlc chunk's first repetition (seed 1) doubles as the lbm
        // per-thread detail column, the same cell `run_once(.., 1)` used
        // to re-simulate.
        let mut lbm_memllc_first: Option<&ExpResult> = None;
        let mut lbm_buddy_first: Option<&ExpResult> = None;
        for scheme in FIG13_SCHEMES {
            let rs = chunks.next().expect("chunk per (benchmark, scheme)");
            let bad = any_poisoned(rs);
            let maxr = Summary::of(rs, |r| r.metrics.max_thread_runtime() as f64).mean;
            let minr = Summary::of(rs, |r| r.metrics.min_thread_runtime() as f64).mean;
            let spread = Summary::of(rs, |r| r.metrics.runtime_spread() as f64).mean;
            let maxi = Summary::of(rs, |r| r.metrics.max_thread_idle() as f64).mean;
            let val = |v: String| if bad { "ERR".to_string() } else { v };
            summary.row(vec![
                w.name().to_string(),
                scheme.label().to_string(),
                val(format!("{maxr:.0}")),
                val(format!("{minr:.0}")),
                val(format!("{spread:.0}")),
                val(format!("{maxi:.0}")),
            ]);
            if w.name() == "lbm" {
                match scheme {
                    ColorScheme::Buddy => lbm_buddy_first = Some(&rs[0]),
                    ColorScheme::MemLlc => lbm_memllc_first = Some(&rs[0]),
                    _ => {}
                }
            }
        }
        if let (Some(buddy), Some(ml)) = (lbm_buddy_first, lbm_memllc_first) {
            let bad = buddy.poisoned || ml.poisoned;
            let (m, ml) = (&buddy.metrics, &ml.metrics);
            let val = |v: u64| {
                if bad {
                    "ERR".to_string()
                } else {
                    format!("{v}")
                }
            };
            for i in 0..m.threads {
                lbm_detail.row(vec![
                    format!("{i}"),
                    val(m.thread_runtime[i]),
                    val(ml.thread_runtime[i]),
                    val(m.thread_idle[i]),
                    val(ml.thread_idle[i]),
                ]);
            }
        }
    }
    (summary, lbm_detail)
}

/// **§V claims (1)–(2)** — pointed latency microbenchmarks on the memory
/// system: local vs remote controller, bank sharing, LLC interference.
pub fn latency(_opts: &FigOpts) -> Table {
    use tint_hw::types::{BankColor, FrameNumber, LlcColor, PhysAddr};
    use tint_mem::MemorySystem;

    let machine = MachineConfig::opteron_6128();
    let mut t = Table::new(vec!["experiment", "cycles_or_rate", "note"]);
    let frame = |m: &MachineConfig, bc: u16, llc: u16, row: u64| -> FrameNumber {
        m.mapping.compose_frame(BankColor(bc), LlcColor(llc), row)
    };

    // 1. Unloaded DRAM latency by hop count (fresh rows → row misses).
    {
        let mut sys = MemorySystem::new(machine.clone());
        let cases = [
            ("local (0 hops)", 0u16),
            ("same socket (1 hop)", 32),
            ("cross socket (2 hops)", 96),
        ];
        for (i, (label, bc)) in cases.iter().enumerate() {
            let a = frame(&machine, *bc, 0, i as u64 + 1).base();
            let r = sys.access(CoreId(0), PhysAddr(a.0), Rw::Read, (i as u64) * 100_000);
            t.row(vec![
                format!("DRAM read, {label}"),
                format!("{}", r.latency),
                "unloaded, row miss".to_string(),
            ]);
        }
    }

    // 2. Bank sharing (Fig. 8's scenario): two cores each stream their own
    //    page (their own row). Same bank → the row buffer thrashes between
    //    the two rows; disjoint banks → each keeps its row open.
    {
        for (label, bc1) in [("same bank", 0u16), ("disjoint banks", 1u16)] {
            let mut sys = MemorySystem::new(machine.clone());
            let mut now = [0u64; 2];
            let n = 512u64;
            for i in 0..n {
                // Fresh lines (no cache reuse); each thread walks its own
                // rows sequentially. Interleaved, a shared bank ping-pongs
                // between the two open rows.
                let off = (i * 128) % 4096;
                let row = 1 + i / 32;
                let pa = frame(&machine, 0, 0, 2 * row);
                let pb = frame(&machine, bc1, 0, 2 * row + 1);
                let r0 = sys.access(CoreId(0), pa.at(off), Rw::Write, now[0]);
                now[0] += r0.latency;
                let r1 = sys.access(CoreId(1), pb.at(off), Rw::Write, now[1]);
                now[1] += r1.latency;
            }
            t.row(vec![
                format!("2-thread stream, {label}"),
                format!("{:.1}", (now[0] + now[1]) as f64 / (2 * n) as f64),
                "mean DRAM-bound access latency".to_string(),
            ]);
        }
    }

    // 3. LLC interference (Fig. 9's scenario): the victim rescans a working
    //    set larger than its private L2 but inside a 2-color LLC slice; the
    //    intruder streams pages of the same vs disjoint LLC colors.
    {
        for (label, intruder_colors) in [
            ("shared LLC colors", [0u16, 1, 2, 3]),
            ("disjoint LLC colors", [4u16, 5, 6, 7]),
        ] {
            let mut sys = MemorySystem::new(machine.clone());
            // Victim: 160 pages (640 KiB) over LLC colors {0..3} — bigger
            // than the private L2 (so rescans reach L3), comfortably inside
            // the 4-color slice (1.5 MiB).
            let vic: Vec<_> = (0..160u64)
                .map(|i| frame(&machine, (i % 4) as u16, (i % 4) as u16, 4 + i / 4))
                .collect();
            let mut clock = 0u64;
            let rescan = |sys: &mut MemorySystem, clock: &mut u64| {
                for f in &vic {
                    for off in (0..4096).step_by(128) {
                        let r = sys.access(CoreId(0), f.at(off), Rw::Read, *clock);
                        *clock += r.latency;
                    }
                }
            };
            rescan(&mut sys, &mut clock); // warm
            let misses0 = sys.hierarchy().stats().core(CoreId(0)).l3_misses;
            for round in 0..4u64 {
                // Intruder: 800 fresh pages (3.1 MiB) of its colors — enough
                // to overflow the 6-way sets it shares with the victim.
                for p in 0..800u64 {
                    let f = frame(
                        &machine,
                        8 + (p % 4) as u16,
                        intruder_colors[(p % 4) as usize],
                        (round * 800 + p) % 1024,
                    );
                    for off in (0..4096).step_by(128) {
                        let r = sys.access(CoreId(8), f.at(off), Rw::Read, clock);
                        clock += r.latency;
                    }
                }
                rescan(&mut sys, &mut clock);
            }
            let misses = sys.hierarchy().stats().core(CoreId(0)).l3_misses - misses0;
            t.row(vec![
                format!("victim L3 misses, {label}"),
                format!("{misses}"),
                "4 rescans of 640 KiB under intrusion".to_string(),
            ]);
        }
    }
    t
}

/// Diagnostic: one benchmark at one config, every scheme, with the latency /
/// locality / fault breakdown. Not a paper figure — a calibration tool.
pub fn probe(opts: &FigOpts, bench_name: &str, pin: PinConfig) -> Table {
    let benches = all_benchmarks(opts.scale_());
    let w = benches
        .iter()
        .find(|w| w.name() == bench_name)
        .unwrap_or_else(|| panic!("unknown benchmark {bench_name}"));
    let mut t = Table::new(vec![
        "scheme",
        "runtime",
        "idle",
        "mean_lat",
        "remote",
        "rowhit",
        "l3miss",
        "faults",
        "fault_cyc",
        "moves",
    ]);
    for &scheme in &matrix_schemes() {
        let r = run_once(w.as_ref(), scheme, pin, 1);
        let val = |v: String| if r.poisoned { "ERR".to_string() } else { v };
        t.row(vec![
            scheme.label().to_string(),
            val(format!("{}", r.metrics.runtime)),
            val(format!("{}", r.metrics.total_idle())),
            val(format!("{:.1}", r.mean_latency)),
            val(format!("{:.3}", r.remote_fraction)),
            val(format!("{:.3}", r.row_hit_rate)),
            val(format!("{:.3}", r.l3_miss_rate)),
            val(format!("{}", r.page_faults)),
            val(format!("{}", r.fault_cycles)),
            val(format!("{}", r.color_list_moves)),
        ]);
    }
    t
}

/// Ablation: full vs partial coloring as LLC pressure grows (the freqmine
/// exception, §V.B).
pub fn ablate_part(opts: &FigOpts) -> Table {
    let pin = PinConfig::T16N4;
    let benches = all_benchmarks(opts.scale_());
    let mut t = Table::new(vec![
        "benchmark",
        "MEM+LLC",
        "MEM+LLC(part)",
        "LLC+MEM(part)",
    ]);
    // Buddy first per benchmark (the normalization base), then the three
    // partial-coloring variants — all benchmarks in one flattened batch.
    let schemes = [
        ColorScheme::Buddy,
        ColorScheme::MemLlc,
        ColorScheme::MemLlcPart,
        ColorScheme::LlcMemPart,
    ];
    let mut specs: Vec<CellSpec> = Vec::new();
    for w in &benches {
        specs.extend(cells_for(w.as_ref(), &schemes, pin, opts.reps));
    }
    let results = run_cells(&specs, available_jobs());
    let mut chunks = results.chunks(opts.reps as usize);
    for w in &benches {
        let base_rs = chunks.next().expect("buddy chunk");
        let base_bad = any_poisoned(base_rs);
        let base = Summary::runtime(base_rs).mean;
        let cells: Vec<String> = (0..3)
            .map(|_| {
                let rs = chunks.next().expect("variant chunk");
                if base_bad || any_poisoned(rs) {
                    "ERR".to_string()
                } else {
                    norm(Summary::runtime(rs).mean / base)
                }
            })
            .collect();
        t.row(vec![
            w.name().to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    t
}

/// Ablation: legacy global buddy vs NUMA first-touch vs MEM coloring.
pub fn ablate_firsttouch(opts: &FigOpts) -> Table {
    let pin = PinConfig::T16N4;
    let w = Synthetic::new(opts.scale_());
    let mut t = Table::new(vec!["policy", "runtime_norm", "remote_frac"]);
    let base = Summary::runtime(&run_reps(&w, ColorScheme::Buddy, pin, opts.reps)).mean;
    for scheme in [
        ColorScheme::LegacyGlobal,
        ColorScheme::Buddy,
        ColorScheme::MemOnly,
        ColorScheme::MemLlc,
    ] {
        let rs = run_reps(&w, scheme, pin, opts.reps);
        let bad = any_poisoned(&rs);
        let s = Summary::runtime(&rs);
        let remote = Summary::of(&rs, |r| r.remote_fraction).mean;
        let val = |v: String| if bad { "ERR".to_string() } else { v };
        t.row(vec![
            scheme.label().to_string(),
            val(norm(s.mean / base)),
            val(format!("{remote:.3}")),
        ]);
    }
    t
}

/// Ablation (extension): dynamic recoloring. A team first-touches its data
/// uncolored (buddy), then adopts MEM+LLC colors and migrates — the second
/// pass should approach natively-colored speed, at a visible one-time cost.
pub fn ablate_migrate(opts: &FigOpts) -> Table {
    use tint_spmd::{Program, SectionBody, SimThread};
    use tint_workloads::patterns::Seq;

    let pin = PinConfig::T16N4;
    let bytes = Scale(opts.scale).bytes(1 << 20);
    let mut t = Table::new(vec!["measurement", "cycles", "note"]);

    fn stream_pass(
        sys: &mut System,
        threads: &mut [SimThread],
        regions: &[VirtAddr],
        bytes: u64,
    ) -> u64 {
        let line = sys.machine().mapping.line_size();
        let bodies: Vec<Box<dyn SectionBody>> = regions
            .iter()
            .map(|&r| Box::new(Seq::new(r, bytes, line, 1, 4, 2)) as Box<dyn SectionBody>)
            .collect();
        Program::new()
            .parallel(bodies)
            .run(sys, threads)
            .expect("pass runs")
            .runtime
    }

    fn team_with_policy(
        cores: &[CoreId],
        plan: Option<&[tintmalloc::colors::ThreadColors]>,
        bytes: u64,
    ) -> (System, Vec<SimThread>, Vec<VirtAddr>) {
        let mut sys = System::boot(MachineConfig::opteron_6128());
        let threads = SimThread::spawn_all(&mut sys, cores);
        for (i, th) in threads.iter().enumerate() {
            match plan {
                Some(p) => sys.apply_colors(th.tid, &p[i]).unwrap(),
                None => sys
                    .set_policy(th.tid, tint_kernel::HeapPolicy::FirstTouch)
                    .unwrap(),
            }
        }
        let regions = threads
            .iter()
            .map(|th| sys.malloc(th.tid, bytes).unwrap())
            .collect();
        (sys, threads, regions)
    }

    let cores = pin.cores();

    // Scenario A: buddy throughout (control).
    let (mut sys, mut threads, regions) = team_with_policy(&cores, None, bytes);
    let pass1 = stream_pass(&mut sys, &mut threads, &regions, bytes);
    let pass2_buddy = stream_pass(&mut sys, &mut threads, &regions, bytes);
    t.row(vec![
        "pass 1, buddy (cold)".to_string(),
        format!("{pass1}"),
        "first touch included".to_string(),
    ]);
    t.row(vec![
        "pass 2, buddy (control)".to_string(),
        format!("{pass2_buddy}"),
        "no migration".to_string(),
    ]);

    // Scenario B: same start, then adopt colors + migrate before pass 2.
    let (mut sys, mut threads, regions) = team_with_policy(&cores, None, bytes);
    let _ = stream_pass(&mut sys, &mut threads, &regions, bytes);
    let plan = ColorScheme::MemLlc.plan(sys.machine(), &cores);
    let mut migrate_cycles = 0u64;
    let mut migrated = 0u64;
    for ((th, p), &region) in threads.iter().zip(&plan).zip(&regions) {
        sys.apply_colors(th.tid, p).unwrap();
        // Range-scoped: each thread migrates only its own region (the
        // address space is shared across the team).
        let (pages, cyc) = sys.recolor_range(th.tid, region, bytes).unwrap();
        migrated += pages;
        migrate_cycles += cyc;
    }
    let pass2_recolored = stream_pass(&mut sys, &mut threads, &regions, bytes);
    t.row(vec![
        "migration cost".to_string(),
        format!("{migrate_cycles}"),
        format!("{migrated} pages moved"),
    ]);
    t.row(vec![
        "pass 2, after recolor".to_string(),
        format!("{pass2_recolored}"),
        "pages now MEM+LLC".to_string(),
    ]);

    // Scenario C: natively colored from the start (the target).
    let (mut sys, mut threads, regions) = team_with_policy(&cores, Some(&plan), bytes);
    let _ = stream_pass(&mut sys, &mut threads, &regions, bytes);
    let pass2_native = stream_pass(&mut sys, &mut threads, &regions, bytes);
    t.row(vec![
        "pass 2, natively colored".to_string(),
        format!("{pass2_native}"),
        "lower bound".to_string(),
    ]);
    t
}

/// §II.B bandwidth claim: "accesses to different banks and channels may
/// proceed in parallel ... improving memory bandwidth". 1/2/4 write streams
/// run over a shared bank, banks of one controller, and banks of different
/// controllers, reporting achieved lines/kilocycle. (Stream sizes are fixed;
/// `--scale` does not apply here.)
pub fn bandwidth(_opts: &FigOpts) -> Table {
    use tint_hw::types::{BankColor, FrameNumber, LlcColor, PhysAddr};
    use tint_mem::MemorySystem;

    let machine = MachineConfig::opteron_6128();
    let mut t = Table::new(vec!["streams", "banks", "lines_per_kcycle", "note"]);
    let frame = |bc: u16, llc: u16, row: u64| -> FrameNumber {
        machine
            .mapping
            .compose_frame(BankColor(bc), LlcColor(llc), row)
    };

    for (label, bank_of) in [
        ("same bank", (|_s: u64| 0u16) as fn(u64) -> u16),
        ("banks of one controller", |s| s as u16),
        ("banks of different controllers", |s| (s * 32) as u16),
    ] {
        for streams in [1u64, 2, 4] {
            let mut sys = MemorySystem::new(machine.clone());
            // One core per stream, each *local to its bank's node* so hop
            // latency never pollutes the bank-parallelism measurement.
            let mut clocks = vec![0u64; streams as usize];
            let lines_per_stream = 512u64;
            for l in 0..lines_per_stream {
                for s in 0..streams {
                    let bank = bank_of(s);
                    let node = bank as usize / 32;
                    let core = CoreId(node * 4 + (s as usize % 4));
                    let f = frame(bank, 0, (l / 32) * 8 + s);
                    let r = sys.access(
                        core,
                        PhysAddr(f.at((l % 32) * 128).0),
                        Rw::Write,
                        clocks[s as usize],
                    );
                    clocks[s as usize] += r.latency;
                }
            }
            let elapsed = clocks.iter().max().copied().unwrap_or(1).max(1);
            let total_lines = streams * lines_per_stream;
            t.row(vec![
                format!("{streams}"),
                label.to_string(),
                format!("{:.1}", total_lines as f64 * 1000.0 / elapsed as f64),
                "back-to-back writes".to_string(),
            ]);
        }
    }
    t
}

/// Ablation (extension): DRAM page policy. Under a closed-page controller
/// every access pays `tRCD + tCAS` regardless of sharing, so bank coloring
/// loses most of its row-buffer rationale — open-page is the regime the
/// paper's analysis assumes.
pub fn ablate_pagepolicy(opts: &FigOpts) -> Table {
    use tint_hw::machine::PagePolicy;
    use tint_spmd::SimThread;

    let mut t = Table::new(vec![
        "page_policy",
        "scheme",
        "runtime",
        "MEM_gain_vs_buddy",
    ]);
    for policy in [PagePolicy::Open, PagePolicy::Closed] {
        let mut runtimes = Vec::new();
        for scheme in [ColorScheme::Buddy, ColorScheme::MemOnly] {
            let mut machine = MachineConfig::opteron_6128();
            machine.dram.page_policy = policy;
            let mut sys = System::boot(machine);
            let cores = PinConfig::T16N4.cores();
            let mut threads = SimThread::spawn_all(&mut sys, &cores);
            for (th, p) in threads.iter().zip(&scheme.plan(sys.machine(), &cores)) {
                sys.apply_colors(th.tid, p).unwrap();
            }
            let w = Synthetic::new(opts.scale_());
            let program = w.build(&mut sys, &threads, 1).unwrap();
            let m = program.run(&mut sys, &mut threads).unwrap();
            runtimes.push(m.runtime);
            t.row(vec![
                format!("{policy:?}"),
                scheme.label().to_string(),
                format!("{}", m.runtime),
                if scheme == ColorScheme::MemOnly {
                    format!(
                        "{:.1}%",
                        100.0 * (1.0 - runtimes[1] as f64 / runtimes[0] as f64)
                    )
                } else {
                    "-".to_string()
                },
            ]);
        }
    }
    t
}

/// Ablation (extension): static vs dynamic scheduling under an imbalanced
/// chunk distribution — coloring attacks *memory-induced* divergence while
/// dynamic scheduling attacks *work-induced* divergence; they compose.
pub fn ablate_dynamic(opts: &FigOpts) -> Table {
    use tint_spmd::{Program, SectionBody, SimThread};
    use tint_workloads::patterns::Seq;

    let pin = PinConfig::T16N4;
    let chunk_base = Scale(opts.scale).bytes(64 << 10);
    let mut t = Table::new(vec!["scheduling", "scheme", "runtime", "total_idle"]);

    for scheme in [ColorScheme::Buddy, ColorScheme::MemLlc] {
        for dynamic in [false, true] {
            let cores = pin.cores();
            let mut sys = System::boot(MachineConfig::opteron_6128());
            let mut threads = SimThread::spawn_all(&mut sys, &cores);
            for (th, p) in threads.iter().zip(&scheme.plan(sys.machine(), &cores)) {
                sys.apply_colors(th.tid, p).unwrap();
            }
            // 256 fine-grained chunks; every fourth thread's static block
            // holds double-size chunks (work imbalance a static `omp for`
            // cannot fix), while the dynamic queue's tail stays one small
            // chunk.
            let line = sys.machine().mapping.line_size();
            let chunks: Vec<(VirtAddr, u64)> = (0..256u64)
                .map(|i| {
                    let len = if (i / 16) % 4 == 0 {
                        2 * chunk_base
                    } else {
                        chunk_base
                    };
                    let owner = threads[(i as usize) % threads.len()].tid;
                    (sys.malloc(owner, len).unwrap(), len)
                })
                .collect();
            let mk = |&(base, len): &(VirtAddr, u64)| {
                Box::new(Seq::new(base, len, line, 1, 4, 2)) as Box<dyn SectionBody>
            };
            let program = if dynamic {
                Program::new().parallel_dynamic(chunks.iter().map(mk).collect())
            } else {
                // Static: contiguous groups of 16 chunks per thread.
                let bodies: Vec<Box<dyn SectionBody>> = (0..threads.len())
                    .map(|i| {
                        let mine: Vec<_> = chunks[i * 16..(i + 1) * 16].iter().map(mk).collect();
                        Box::new(ChainBodies(mine, 0)) as Box<dyn SectionBody>
                    })
                    .collect();
                Program::new().parallel(bodies)
            };
            let m = program.run(&mut sys, &mut threads).unwrap();
            t.row(vec![
                if dynamic { "dynamic" } else { "static" }.to_string(),
                scheme.label().to_string(),
                format!("{}", m.runtime),
                format!("{}", m.total_idle()),
            ]);
        }
    }
    t
}

/// Run several bodies back to back as one section body.
struct ChainBodies<'a>(Vec<Box<dyn tint_spmd::SectionBody + 'a>>, usize);

impl tint_spmd::SectionBody for ChainBodies<'_> {
    fn next_op(&mut self) -> Option<tint_spmd::Op> {
        while self.1 < self.0.len() {
            if let Some(op) = self.0[self.1].next_op() {
                return Some(op);
            }
            self.1 += 1;
        }
        None
    }

    // Delegate to the inner bodies' (monomorphized) bulk fills rather than
    // taking the outer one-op-at-a-time default. A short inner fill means
    // that body is exhausted, so the next one continues filling the same
    // buffer; only when all bodies are drained does the outer fill come up
    // short.
    fn fill(&mut self, buf: &mut [tint_spmd::Op]) -> usize {
        let mut n = 0;
        while n < buf.len() && self.1 < self.0.len() {
            n += self.0[self.1].fill(&mut buf[n..]);
            if n < buf.len() {
                self.1 += 1;
            }
        }
        n
    }
}

/// Ablation (extension): graceful degradation under color-list pressure.
///
/// A hog thread pins down a growing fraction of the (bank 0, LLC 0)
/// color-pair supply; a victim colored the same way then tries to place a
/// fixed working set (a quarter of the pair) under each
/// [`ExhaustionPolicy`]. `Strict` reproduces the paper's contract — error
/// once the color runs dry; `NearestColor` borrows neighbouring colors;
/// `LocalUncolored` degrades to node-local uncolored pages, the behaviour
/// §III.C describes for tasks that outgrow their colors. The off-color
/// fraction is the price of survival: pages that no longer enjoy the
/// victim's bank/LLC isolation.
pub fn ablate_pressure(_opts: &FigOpts) -> Table {
    let mut t = Table::new(vec![
        "occupancy",
        "policy",
        "outcome",
        "pages_placed",
        "off_color_frac",
        "fault_cycles",
    ]);
    let occupancies = [0.0, 0.5, 0.8, 0.9, 0.95, 0.99];
    let policies = [
        (ExhaustionPolicy::Strict, "strict"),
        (ExhaustionPolicy::NearestColor, "nearest-color"),
        (ExhaustionPolicy::LocalUncolored, "local-uncolored"),
    ];
    for &occ in &occupancies {
        for (policy, label) in policies {
            let mut sys = System::boot(MachineConfig::tiny());
            let pair = sys.machine().mapping.frames_per_color_pair();
            let hog = sys.spawn(CoreId(0));
            sys.set_mem_color(hog, BankColor(0)).unwrap();
            sys.set_llc_color(hog, LlcColor(0)).unwrap();
            let hog_pages = (pair as f64 * occ) as u64;
            if hog_pages > 0 {
                let a = sys.malloc(hog, hog_pages * 4096).unwrap();
                sys.prefault(hog, a, hog_pages * 4096).unwrap();
            }
            let victim = sys.spawn(CoreId(1));
            sys.set_mem_color(victim, BankColor(0)).unwrap();
            sys.set_llc_color(victim, LlcColor(0)).unwrap();
            sys.set_exhaustion_policy(victim, policy).unwrap();
            let want = pair / 4;
            let st0 = *sys.kernel().stats();
            let mut placed = 0u64;
            let mut outcome = "ok".to_string();
            match sys.malloc(victim, want * 4096) {
                Err(e) => outcome = e.name().to_string(),
                Ok(base) => {
                    for p in 0..want {
                        match sys.access(victim, base.offset(p * 4096), Rw::Write, 0) {
                            Ok(_) => placed += 1,
                            Err(e) => {
                                outcome = e.name().to_string();
                                break;
                            }
                        }
                    }
                }
            }
            let st = sys.kernel().stats();
            let off = (st.off_color_allocs - st0.off_color_allocs)
                + (st.exhaustion_fallbacks - st0.exhaustion_fallbacks);
            let total = off + (st.colored_allocs - st0.colored_allocs);
            t.row(vec![
                format!("{occ:.2}"),
                label.to_string(),
                outcome,
                format!("{placed}"),
                norm(if total == 0 {
                    0.0
                } else {
                    off as f64 / total as f64
                }),
                format!("{}", st.fault_cycles - st0.fault_cycles),
            ]);
            sys.check_invariants();
        }
    }
    t
}

/// Ablation: the colored-free-list population overhead (§III.C): cost of the
/// first colored allocations vs steady state.
pub fn ablate_colorlist(_opts: &FigOpts) -> Table {
    let machine = MachineConfig::opteron_6128();
    let mut t = Table::new(vec!["phase", "mean_fault_cycles", "pages_moved"]);
    let mut sys = System::boot(machine);
    let cores = PinConfig::T4N4.cores();
    let threads = SimThread::spawn_all(&mut sys, &cores);
    let plan = ColorScheme::MemLlc.plan(sys.machine(), &cores);
    for (th, p) in threads.iter().zip(&plan) {
        sys.apply_colors(th.tid, p).unwrap();
    }
    let pages = 512u64;
    // Cold: first allocations must populate the color lists from the buddy
    // free list. Then free everything (pages return to the colored lists)
    // and allocate again: the steady state the paper describes for balanced
    // allocation/deallocation.
    let mut regions: Vec<(tint_kernel::Tid, tint_hw::types::VirtAddr)> = Vec::new();
    for phase in ["cold (populating)", "warm (balanced alloc/free)"] {
        let moved0 = sys.kernel().stats().pages_moved;
        let faults0 = sys.kernel().stats().page_faults;
        let cyc0 = sys.kernel().stats().fault_cycles;
        for th in &threads {
            let a = sys.malloc(th.tid, pages * 4096).unwrap();
            sys.prefault(th.tid, a, pages * 4096).unwrap();
            regions.push((th.tid, a));
        }
        let st = sys.kernel().stats();
        let faults = st.page_faults - faults0;
        t.row(vec![
            phase.to_string(),
            format!("{:.0}", (st.fault_cycles - cyc0) as f64 / faults as f64),
            format!("{}", st.pages_moved - moved0),
        ]);
        // Balanced deallocation: freed pages land in the colored free lists.
        for (tid, a) in regions.drain(..) {
            sys.free(tid, a).unwrap();
        }
    }
    t
}

/// Figure (extension): multi-tenant churn — throughput, off-color fraction,
/// and pool-population skew vs. task count and simulated uptime.
///
/// Tasks arrive as a seeded Poisson process ([`ChurnConfig`]), color
/// themselves, live a mixed read/write lifetime over a private region, and
/// exit through the kernel's full reclamation path, time-sliced by the
/// round-robin scheduler. Each cell asserts the reclamation contract
/// directly: after the last exit the buddy and color-list free populations
/// equal the post-boot baseline — zero leaked frames, zero pool skew —
/// with `check_invariants` running throughout the run. At `--scale 1.0`
/// every exhaustion policy sees ≥ 1,000 arrivals per load level; the
/// `mixed` rows cycle all three policies across one tenancy.
pub fn churn(opts: &FigOpts) -> Table {
    let mut t = Table::new(vec![
        "policy",
        "tasks",
        "completed",
        "failed",
        "uptime_mcycles",
        "tasks_per_mcycle",
        "off_color_frac",
        "leaked_frames",
        "pool_skew",
    ]);
    let base = ((1_000.0 * opts.scale).ceil() as u64).max(4);
    let mixes: [(&str, &[ExhaustionPolicy]); 4] = [
        ("strict", &[ExhaustionPolicy::Strict]),
        ("nearest-color", &[ExhaustionPolicy::NearestColor]),
        ("local-uncolored", &[ExhaustionPolicy::LocalUncolored]),
        (
            "mixed",
            &[
                ExhaustionPolicy::Strict,
                ExhaustionPolicy::NearestColor,
                ExhaustionPolicy::LocalUncolored,
            ],
        ),
    ];
    for (mi, (label, policies)) in mixes.iter().enumerate() {
        for (li, level) in [1u64, 2].into_iter().enumerate() {
            let machine = MachineConfig::tiny();
            let mut sys = System::boot(machine.clone());
            let baseline = sys.kernel().pool_snapshot();
            let st0 = *sys.kernel().stats();
            let arrivals = base * level;
            let mut cfg = ChurnConfig::new(0x9E37 + (mi as u64) * 16 + li as u64, arrivals);
            cfg.policies = policies.to_vec();
            let rr = RoundRobin {
                quantum: 5_000,
                check_every: 4_096,
                ..RoundRobin::default()
            };
            let out = rr.run(&mut sys, cfg.build_jobs(&machine));
            let (buddy, colors) = sys.kernel().pool_snapshot();
            let leaked = (baseline.0 + baseline.1) as i64 - (buddy + colors) as i64;
            let skew = colors as i64 - baseline.1 as i64;
            assert_eq!(leaked, 0, "{label}/{arrivals}: frames leaked across churn");
            assert_eq!(skew, 0, "{label}/{arrivals}: color-list population skew");
            assert_eq!(
                out.completed + out.failed(),
                arrivals,
                "{label}/{arrivals}: every arrival must exit"
            );
            sys.check_invariants();
            let st = sys.kernel().stats();
            let off = (st.off_color_allocs - st0.off_color_allocs)
                + (st.exhaustion_fallbacks - st0.exhaustion_fallbacks);
            let total = off + (st.colored_allocs - st0.colored_allocs);
            let uptime = out.makespan as f64 / 1e6;
            t.row(vec![
                label.to_string(),
                format!("{arrivals}"),
                format!("{}", out.completed),
                format!("{}", out.failed()),
                format!("{uptime:.2}"),
                format!(
                    "{:.1}",
                    if uptime > 0.0 {
                        (out.completed + out.failed()) as f64 / uptime
                    } else {
                        0.0
                    }
                ),
                norm(if total == 0 {
                    0.0
                } else {
                    off as f64 / total as f64
                }),
                format!("{leaked}"),
                format!("{skew}"),
            ]);
        }
    }
    t
}

/// The soak machine: the tiny preset shrunk to 2,048 frames (`row_bits`
/// 7), so a few hundred mid-size tenants genuinely over-commit it. The
/// L3 set-index coverage of the LLC color bits is unchanged (row bits are
/// the top bits); `validate()` holds.
pub fn soak_machine() -> MachineConfig {
    let mut m = MachineConfig::tiny();
    m.name = "tiny-soak".to_string();
    m.mapping.row_bits = 7;
    m.validate();
    m
}

/// One soak cell's results: the run outcome, its per-window trace, and
/// the kernel's pressure counters.
struct SoakCell {
    label: &'static str,
    out: ChurnOutcome,
    windows: Vec<PressureWindow>,
    oom_kills: u64,
    admission_rejects: u64,
    alloc_retries: u64,
}

/// Run one soak cell to completion and hard-assert its survival contract.
fn run_soak_cell(label: &'static str, guarded: bool, arrivals: u64) -> SoakCell {
    let machine = soak_machine();
    let mut sys = System::boot(machine.clone());
    let baseline = sys.kernel().pool_snapshot();
    let cfg = SoakConfig::new(0x50AC + guarded as u64, arrivals);
    sys.set_fault_plan(Some(cfg.fault_plan()));
    let rr = if guarded {
        RoundRobin {
            quantum: 5_000,
            audit_frames: 256,
            admission_control: true,
            oom: Some(VictimPolicy::LargestFootprint),
            ..RoundRobin::default()
        }
    } else {
        // The pre-pressure scheduler: no gate, no killer, no retries, and
        // only stop-the-world invariant checks.
        RoundRobin {
            quantum: 5_000,
            max_retries: 0,
            check_every: 16_384,
            ..RoundRobin::default()
        }
    };
    let window = (arrivals * cfg.mean_gap / 8).max(1);
    let (out, windows) = rr.run_with_windows(&mut sys, cfg.build_jobs(&machine), window);
    // The survival contract, asserted per cell: every arrival reaches a
    // terminal fate, and sustained pressure + faults + kills + rejects
    // leak nothing and skew no pool.
    assert!(
        !out.budget_exceeded,
        "{label}: soak must not hit the backstop"
    );
    assert_eq!(
        out.completed + out.failed(),
        arrivals,
        "{label}: every arrival must reach a terminal fate: {out:?}"
    );
    assert_eq!(out.exit_errors, 0, "{label}: no task exited twice");
    let (buddy, colors) = sys.kernel().pool_snapshot();
    assert_eq!(
        baseline.0 + baseline.1,
        buddy + colors,
        "{label}: frames leaked across the soak"
    );
    assert_eq!(colors, baseline.1, "{label}: color-list population skew");
    sys.check_invariants();
    let st = sys.kernel().stats();
    assert_eq!(st.oom_kills, out.killed_oom, "{label}: kill books disagree");
    SoakCell {
        label,
        out,
        windows,
        oom_kills: st.oom_kills,
        admission_rejects: st.admission_rejects,
        alloc_retries: st.alloc_retries,
    }
}

/// Figure (extension): the sustained-pressure soak — survival and its
/// price over simulated hours of over-committed churn.
///
/// Two cells run the same heavy-tailed, fault-injected [`SoakConfig`]
/// stream on the 2,048-frame [`soak_machine`]: **guarded** (watermark
/// admission control, `EAGAIN` backoff, the largest-footprint OOM killer,
/// and the incremental auditor) and **unguarded** (the pre-pressure
/// scheduler: every transient failure is terminal). Each row is one
/// uptime window: cumulative completions/kills/rejections/retries, live
/// tenants, the two pool populations, the largest free buddy order (the
/// fragmentation signal), the off-color fraction, and the frames the
/// incremental auditor has swept. Cells run on separate host threads when
/// `--jobs` allows; each simulation is single-threaded and deterministic,
/// so the table is byte-identical at any job count.
pub fn soak(opts: &FigOpts) -> Table {
    let mut t = Table::new(vec![
        "cell",
        "window",
        "end_kcycles",
        "completed",
        "killed_oom",
        "rejected",
        "retries",
        "live",
        "buddy_free",
        "color_pages",
        "largest_order",
        "off_color_frac",
        "audited_frames",
    ]);
    let arrivals = ((5_000.0 * opts.scale).ceil() as u64).max(40);
    let specs: [(&'static str, bool); 2] = [("guarded", true), ("unguarded", false)];
    let cells: Vec<SoakCell> = if available_jobs() > 1 {
        std::thread::scope(|s| {
            let handles: Vec<_> = specs
                .iter()
                .map(|&(label, guarded)| s.spawn(move || run_soak_cell(label, guarded, arrivals)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("soak cell panicked"))
                .collect()
        })
    } else {
        specs
            .iter()
            .map(|&(label, guarded)| run_soak_cell(label, guarded, arrivals))
            .collect()
    };
    // At figure scale the offered load is ~20× the service rate: the
    // guarded run must actually have exercised the machinery it exists to
    // prove out.
    if arrivals >= 1_000 {
        let g = &cells[0].out;
        assert!(g.killed_oom >= 1, "guarded soak never OOM-killed: {g:?}");
        assert!(
            g.rejected_admission >= 1,
            "guarded soak never rejected an admission: {g:?}"
        );
        assert!(g.alloc_retries >= 1, "guarded soak never retried: {g:?}");
    }
    for cell in &cells {
        crate::runner::note_pressure_stats(
            cell.oom_kills,
            cell.admission_rejects,
            cell.alloc_retries,
        );
        for (wi, w) in cell.windows.iter().enumerate() {
            let off_total = w.off_color_allocs + w.colored_allocs;
            t.row(vec![
                cell.label.to_string(),
                format!("{wi}"),
                format!("{}", w.end / 1_000),
                format!("{}", w.completed),
                format!("{}", w.killed_oom),
                format!("{}", w.rejected_admission),
                format!("{}", w.alloc_retries),
                format!("{}", w.live_tasks),
                format!("{}", w.buddy_free),
                format!("{}", w.color_pages),
                format!("{}", w.largest_free_order),
                norm(if off_total == 0 {
                    0.0
                } else {
                    w.off_color_allocs as f64 / off_total as f64
                }),
                format!("{}", w.audited_frames),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FigOpts {
        FigOpts {
            reps: 1,
            scale: 0.05,
            csv: false,
        }
    }

    #[test]
    fn fig10_has_four_policies() {
        let t = fig10(&quick());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn latency_table_has_all_experiments() {
        let t = latency(&quick());
        assert_eq!(t.len(), 3 + 2 + 2);
    }

    #[test]
    fn colorlist_ablation_cold_vs_warm() {
        let t = ablate_colorlist(&quick());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn churn_figure_reclaims_every_frame_in_every_cell() {
        let t = churn(&quick());
        assert_eq!(t.len(), 4 * 2, "policy mixes × load levels");
        for row in t.rows() {
            // The figure itself asserts reclamation per cell; the rendered
            // columns must agree: zero leaked frames, zero pool skew, and
            // every arrival accounted for as completed or failed.
            assert_eq!(row[7], "0", "leaked_frames column");
            assert_eq!(row[8], "0", "pool_skew column");
            let tasks: u64 = row[1].parse().unwrap();
            let done: u64 = row[2].parse().unwrap();
            let failed: u64 = row[3].parse().unwrap();
            assert_eq!(done + failed, tasks);
        }
    }

    #[test]
    fn soak_figure_is_identical_at_any_job_count() {
        // One test covers both properties (set_jobs is process-global): the
        // quick-scale soak emits window rows for both cells, and the table
        // — backoff and OOM schedules included — is byte-identical whether
        // the cells share one host thread or fan out across four.
        crate::runner::set_jobs(1);
        let serial = soak(&quick());
        crate::runner::set_jobs(4);
        let parallel = soak(&quick());
        crate::runner::set_jobs(0);
        assert_eq!(serial.rows(), parallel.rows());
        let cells: std::collections::HashSet<_> =
            serial.rows().iter().map(|r| r[0].clone()).collect();
        assert_eq!(cells.len(), 2, "guarded and unguarded cells present");
        for row in serial.rows() {
            let done: u64 = row[3].parse().unwrap();
            let killed: u64 = row[4].parse().unwrap();
            let rejected: u64 = row[5].parse().unwrap();
            assert!(done + killed + rejected <= 250, "cumulative counters");
        }
    }

    #[test]
    fn pressure_ablation_covers_grid_and_degrades_gracefully() {
        let t = ablate_pressure(&quick());
        assert_eq!(t.len(), 6 * 3, "occupancies × policies");
        let cell = |occ: &str, policy: &str, col: usize| {
            t.rows()
                .iter()
                .find(|r| r[0] == occ && r[1] == policy)
                .map(|r| r[col].clone())
                .unwrap()
        };
        // Under heavy pressure the paper's strict contract fails...
        assert_eq!(cell("0.99", "strict", 2), "ENOMEM");
        // ...while both graceful policies keep serving pages, paying with
        // an off-color fraction.
        for policy in ["nearest-color", "local-uncolored"] {
            assert_eq!(cell("0.99", policy, 2), "ok");
            assert!(cell("0.99", policy, 4).parse::<f64>().unwrap() > 0.5);
            // And with no pressure they are indistinguishable from strict.
            assert_eq!(cell("0.00", policy, 4), "0.000");
        }
    }
}
