//! Deterministic *host*-fault harness.
//!
//! PR 2 gave the simulated kernel a seeded `FaultPlan`; this is the same
//! idea one layer up: make the *harness's own* failure paths fire on a
//! deterministic schedule so every recovery path is exercised by ordinary
//! tests instead of waiting for a real crash. Two fault modes exist:
//!
//! * **`panic:<permille>:<seed>`** — worker threads panic at the top of a
//!   cell attempt, exercising the [`crate::runner`] recovery paths
//!   (catch_unwind isolation, seeded requeue, poisoned-cell accounting).
//!   Each cell *attempt* draws from a global attempt counter: attempt `n`
//!   panics iff `SplitMix64(seed ⊕ mix(n))` lands below `permille`/1000.
//!   Retries are new attempts with fresh draws, so at moderate rates a
//!   retried cell almost always succeeds, while `permille=1000` defeats
//!   every retry and forces the poisoned-cell path.
//!
//! * **`io:<permille>:<seed>`** — the [`crate::journal`]'s filesystem
//!   operations (create, append, truncate, sync, rename) fail on a seeded
//!   schedule with ENOSPC/EIO-shaped errors and *short writes* (the entry
//!   prefix lands on disk, then the write "fails"), exercising the
//!   journal's degradation contract: repair the entry boundary when
//!   possible, and on persistent failure warn once, disarm, and finish the
//!   run journal-less. Worker threads never panic in this mode. The io
//!   schedule draws from its own global operation counter, so with
//!   `--jobs 1` (one appender) it is fully deterministic.
//!
//! Armed via `TINT_HOST_FAULT=<mode>:<permille>:<seed>` (the `repro`
//! binary validates and applies it at startup) or programmatically with
//! [`set_plan`].
//!
//! For crash-atomicity fuzzing there is additionally a kill-point hook,
//! [`set_io_abort_at`]: the `n`-th journal io operation panics with
//! [`IO_ABORT_MARKER`], simulating SIGKILL at that exact filesystem step —
//! the GC atomicity test sweeps `n` over every operation of a compaction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tint_hw::rng::SplitMix64;

/// Marker embedded in injected panic payloads; the quiet panic hook and
/// tests key off it to distinguish injected faults from real bugs.
pub const PANIC_MARKER: &str = "injected host fault";

/// Marker embedded in the panic simulating a kill at an io operation
/// (see [`set_io_abort_at`]).
pub const IO_ABORT_MARKER: &str = "injected io kill point";

/// Which harness layer a fault plan targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Worker threads panic at the top of cell attempts.
    Panic,
    /// Journal filesystem operations fail (errors + short writes).
    Io,
}

/// One armed fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostFaultPlan {
    /// The targeted layer.
    pub mode: FaultMode,
    /// Per-mille fault probability per attempt/operation (0..=1000).
    pub per_mille: u16,
    /// Seed of the attempt-indexed SplitMix64 schedule.
    pub seed: u64,
}

impl HostFaultPlan {
    /// Parse `panic:<permille>:<seed>` or `io:<permille>:<seed>` (the
    /// `TINT_HOST_FAULT` syntax).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let mode = match parts.next().unwrap_or_default() {
            "panic" => FaultMode::Panic,
            "io" => FaultMode::Io,
            other => {
                return Err(format!(
                    "unknown host-fault mode {other:?} \
                     (expected panic:<permille>:<seed> or io:<permille>:<seed>)"
                ))
            }
        };
        let per_mille: u16 = parts
            .next()
            .ok_or("missing <permille> in TINT_HOST_FAULT")?
            .parse()
            .map_err(|_| "TINT_HOST_FAULT permille must be an integer 0..=1000".to_string())?;
        if per_mille > 1000 {
            return Err("TINT_HOST_FAULT permille must be <= 1000".to_string());
        }
        let seed: u64 = parts
            .next()
            .ok_or("missing <seed> in TINT_HOST_FAULT")?
            .parse()
            .map_err(|_| "TINT_HOST_FAULT seed must be a u64".to_string())?;
        if parts.next().is_some() {
            return Err("TINT_HOST_FAULT has trailing fields".to_string());
        }
        Ok(Self {
            mode,
            per_mille,
            seed,
        })
    }
}

static PLAN: Mutex<Option<HostFaultPlan>> = Mutex::new(None);
static ATTEMPT: AtomicU64 = AtomicU64::new(0);
static INJECTED: AtomicU64 = AtomicU64::new(0);
static IO_OPS: AtomicU64 = AtomicU64::new(0);
static IO_INJECTED: AtomicU64 = AtomicU64::new(0);
/// Kill-point hook: the io operation with this 1-based ordinal panics.
/// `u64::MAX` = unarmed.
static IO_ABORT_AT: AtomicU64 = AtomicU64::new(u64::MAX);

/// Arm (or with `None` disarm) the plan; resets the attempt/op counters so
/// a given `(plan, jobs=1)` run always sees the same schedule.
pub fn set_plan(plan: Option<HostFaultPlan>) {
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    ATTEMPT.store(0, Ordering::Relaxed);
    INJECTED.store(0, Ordering::Relaxed);
    IO_OPS.store(0, Ordering::Relaxed);
    IO_INJECTED.store(0, Ordering::Relaxed);
}

/// The armed plan, if any.
pub fn plan() -> Option<HostFaultPlan> {
    *PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Worker panics injected so far this process.
pub fn injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Journal io faults injected so far this process.
pub fn io_injected() -> u64 {
    IO_INJECTED.load(Ordering::Relaxed)
}

/// Called by the runner at the top of every cell attempt: panics when a
/// `panic:` schedule says this attempt fails. An `io:` plan never panics
/// workers. No-op when disarmed.
pub fn maybe_inject() {
    let Some(p) = plan() else { return };
    if p.mode != FaultMode::Panic || p.per_mille == 0 {
        return;
    }
    let n = ATTEMPT.fetch_add(1, Ordering::Relaxed);
    // Decorrelate consecutive attempts: mix the attempt index into the
    // seed with the SplitMix64 increment, then draw once.
    let mut rng = SplitMix64::new(p.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    if rng.gen_range(1000) < p.per_mille as u64 {
        INJECTED.fetch_add(1, Ordering::Relaxed);
        panic!("{PANIC_MARKER} (attempt {n})");
    }
}

/// What an injected io fault looks like to the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Write a prefix of the buffer, then report failure (torn entry).
    ShortWrite,
    /// `ENOSPC` — the disk is full.
    NoSpace,
    /// `EIO` — a host I/O error.
    Io,
}

impl IoFault {
    /// The `std::io::Error` this fault presents as (`ShortWrite` callers
    /// report the error *after* writing the prefix).
    pub fn as_error(self) -> std::io::Error {
        match self {
            // Raw errnos (Linux): 28 = ENOSPC, 5 = EIO. ShortWrite is
            // surfaced as ENOSPC — the classic torn-append cause.
            IoFault::ShortWrite | IoFault::NoSpace => std::io::Error::from_raw_os_error(28),
            IoFault::Io => std::io::Error::from_raw_os_error(5),
        }
    }
}

/// Arm (or with `None` disarm) the io kill-point hook: the `n`-th
/// (1-based) subsequent journal io operation panics with
/// [`IO_ABORT_MARKER`], simulating a SIGKILL at that exact filesystem
/// step. Resets the io operation counter so `n` is relative to now.
/// Crash-atomicity tests run the operation under `catch_unwind` and then
/// assert the on-disk state is still consistent.
pub fn set_io_abort_at(n: Option<u64>) {
    IO_OPS.store(0, Ordering::Relaxed);
    IO_ABORT_AT.store(n.unwrap_or(u64::MAX), Ordering::Relaxed);
}

/// Called by the journal before every filesystem operation on its write
/// path. Counts the operation, honors the kill-point hook, and — when an
/// `io:` plan is armed — returns the fault scheduled for this operation,
/// if any. The draw is indexed by a global operation counter, so a
/// single-appender run (`--jobs 1`) sees a fully deterministic schedule.
pub fn io_fault() -> Option<IoFault> {
    let n = IO_OPS.fetch_add(1, Ordering::Relaxed);
    if n + 1 == IO_ABORT_AT.load(Ordering::Relaxed) {
        panic!("{IO_ABORT_MARKER} (io op {n})");
    }
    let p = plan()?;
    if p.mode != FaultMode::Io || p.per_mille == 0 {
        return None;
    }
    let mut rng = SplitMix64::new(p.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    if rng.gen_range(1000) >= p.per_mille as u64 {
        return None;
    }
    IO_INJECTED.fetch_add(1, Ordering::Relaxed);
    Some(match rng.gen_range(3) {
        0 => IoFault::ShortWrite,
        1 => IoFault::NoSpace,
        _ => IoFault::Io,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_syntax() {
        assert_eq!(
            HostFaultPlan::parse("panic:250:42"),
            Ok(HostFaultPlan {
                mode: FaultMode::Panic,
                per_mille: 250,
                seed: 42
            })
        );
        assert_eq!(
            HostFaultPlan::parse("io:1000:7"),
            Ok(HostFaultPlan {
                mode: FaultMode::Io,
                per_mille: 1000,
                seed: 7
            })
        );
        assert_eq!(
            HostFaultPlan::parse("io:0:0"),
            Ok(HostFaultPlan {
                mode: FaultMode::Io,
                per_mille: 0,
                seed: 0
            })
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            // Unknown modes (and the empty string, whose mode is "").
            "oom:1:2",
            "",
            ":1:2",
            "IO:1:2",
            "panic ",
            // Missing fields.
            "panic",
            "panic:1",
            "io",
            "io:500",
            // Malformed permille.
            "panic:x:1",
            "io::1",
            "panic:-1:1",
            "io:1.5:1",
            // Out-of-range permille.
            "panic:1001:1",
            "io:99999:1",
            // Malformed seed and trailing fields.
            "panic:1:x",
            "io:1:",
            "panic:1:2:3",
            "io:1:2:extra",
        ] {
            assert!(
                HostFaultPlan::parse(bad).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn io_schedule_is_deterministic_and_mode_scoped() {
        // Two identical passes over the op counter draw identical faults.
        let plan = HostFaultPlan {
            mode: FaultMode::Io,
            per_mille: 500,
            seed: 99,
        };
        set_plan(Some(plan));
        let a: Vec<Option<IoFault>> = (0..64).map(|_| io_fault()).collect();
        set_plan(Some(plan));
        let b: Vec<Option<IoFault>> = (0..64).map(|_| io_fault()).collect();
        assert_eq!(a, b, "the io schedule must be seed-deterministic");
        assert!(a.iter().any(|f| f.is_some()), "permille=500 must fire");
        assert!(a.iter().any(|f| f.is_none()), "permille=500 must also pass");

        // An io plan never panics workers, and a panic plan never faults io.
        set_plan(Some(plan));
        for _ in 0..64 {
            maybe_inject(); // must not panic
        }
        assert_eq!(injected(), 0);
        set_plan(Some(HostFaultPlan {
            mode: FaultMode::Panic,
            per_mille: 1000,
            seed: 1,
        }));
        assert_eq!(io_fault(), None, "a panic plan must not inject io faults");
        set_plan(None);
    }
}
