//! Deterministic *host*-fault harness.
//!
//! PR 2 gave the simulated kernel a seeded `FaultPlan`; this is the same
//! idea one layer up: make the *harness's own worker threads* panic on a
//! deterministic schedule so every recovery path in [`crate::runner`]
//! (catch_unwind isolation, seeded requeue, poisoned-cell accounting) is
//! exercised by ordinary tests instead of waiting for a real crash.
//!
//! Armed via `TINT_HOST_FAULT=panic:<permille>:<seed>` (the `repro` binary
//! validates and applies it at startup) or programmatically with
//! [`set_plan`]. Each cell *attempt* draws from a global attempt counter:
//! attempt `n` panics iff `SplitMix64(seed ⊕ mix(n))` lands below
//! `permille`/1000. Retries are new attempts with fresh draws, so at
//! moderate rates a retried cell almost always succeeds, while
//! `permille=1000` defeats every retry and forces the poisoned-cell path.
//! With `--jobs 1` the attempt order — hence the entire fault schedule —
//! is fully deterministic, which is what the CI smoke hard-asserts on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tint_hw::rng::SplitMix64;

/// Marker embedded in injected panic payloads; the quiet panic hook and
/// tests key off it to distinguish injected faults from real bugs.
pub const PANIC_MARKER: &str = "injected host fault";

/// One armed fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostFaultPlan {
    /// Per-mille panic probability per cell attempt (0..=1000).
    pub per_mille: u16,
    /// Seed of the attempt-indexed SplitMix64 schedule.
    pub seed: u64,
}

impl HostFaultPlan {
    /// Parse `panic:<permille>:<seed>` (the `TINT_HOST_FAULT` syntax).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let mode = parts.next().unwrap_or_default();
        if mode != "panic" {
            return Err(format!(
                "unknown host-fault mode {mode:?} (expected panic:<permille>:<seed>)"
            ));
        }
        let per_mille: u16 = parts
            .next()
            .ok_or("missing <permille> in TINT_HOST_FAULT")?
            .parse()
            .map_err(|_| "TINT_HOST_FAULT permille must be an integer 0..=1000".to_string())?;
        if per_mille > 1000 {
            return Err("TINT_HOST_FAULT permille must be <= 1000".to_string());
        }
        let seed: u64 = parts
            .next()
            .ok_or("missing <seed> in TINT_HOST_FAULT")?
            .parse()
            .map_err(|_| "TINT_HOST_FAULT seed must be a u64".to_string())?;
        if parts.next().is_some() {
            return Err("TINT_HOST_FAULT has trailing fields".to_string());
        }
        Ok(Self { per_mille, seed })
    }
}

static PLAN: Mutex<Option<HostFaultPlan>> = Mutex::new(None);
static ATTEMPT: AtomicU64 = AtomicU64::new(0);
static INJECTED: AtomicU64 = AtomicU64::new(0);

/// Arm (or with `None` disarm) the plan; resets the attempt counter so a
/// given `(plan, jobs=1)` run always sees the same schedule.
pub fn set_plan(plan: Option<HostFaultPlan>) {
    *PLAN.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    ATTEMPT.store(0, Ordering::Relaxed);
    INJECTED.store(0, Ordering::Relaxed);
}

/// The armed plan, if any.
pub fn plan() -> Option<HostFaultPlan> {
    *PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

/// Faults injected so far this process.
pub fn injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Called by the runner at the top of every cell attempt: panics when the
/// schedule says this attempt fails. No-op (one relaxed load + mutex-free?
/// no — one mutex lock, but only cell-granular) when disarmed.
pub fn maybe_inject() {
    let Some(p) = plan() else { return };
    if p.per_mille == 0 {
        return;
    }
    let n = ATTEMPT.fetch_add(1, Ordering::Relaxed);
    // Decorrelate consecutive attempts: mix the attempt index into the
    // seed with the SplitMix64 increment, then draw once.
    let mut rng = SplitMix64::new(p.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    if rng.gen_range(1000) < p.per_mille as u64 {
        INJECTED.fetch_add(1, Ordering::Relaxed);
        panic!("{PANIC_MARKER} (attempt {n})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_syntax() {
        assert_eq!(
            HostFaultPlan::parse("panic:250:42"),
            Ok(HostFaultPlan {
                per_mille: 250,
                seed: 42
            })
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "oom:1:2",
            "panic",
            "panic:1",
            "panic:x:1",
            "panic:1001:1",
            "panic:1:x",
            "panic:1:2:3",
        ] {
            assert!(HostFaultPlan::parse(bad).is_err(), "{bad} must be rejected");
        }
    }
}
