//! # tint-bench — the experiment harness
//!
//! Regenerates every results figure of the TintMalloc paper (Figures 10–14
//! plus the latency claims of §V and the ablations listed in DESIGN.md).
//! The `repro` binary prints each figure's rows; the wall-clock benches
//! under `benches/` (driven by [`microbench`]) wrap the same experiments
//! for timing regressions.
//!
//! EXPERIMENTS.md records the paper-vs-measured comparison produced by
//! `cargo run --release -p tint-bench --bin repro -- all`.
//!
//! All simulation flows through two shared layers: the content-addressed
//! cell cache ([`simcache`], dedup across figures within one process) and
//! the flattened matrix executor ([`runner::run_cells`], `--jobs`-way
//! work queue). Figure output is byte-identical with the cache on or off
//! and at any job count.

pub mod figures;
pub mod microbench;
pub mod runner;
pub mod simcache;
pub mod table;

pub use runner::{run_cells, run_once, run_reps, CellSpec, ExpResult, Summary};
pub use table::Table;
