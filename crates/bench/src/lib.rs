//! # tint-bench — the experiment harness
//!
//! Regenerates every results figure of the TintMalloc paper (Figures 10–14
//! plus the latency claims of §V and the ablations listed in DESIGN.md).
//! The `repro` binary prints each figure's rows; the wall-clock benches
//! under `benches/` (driven by [`microbench`]) wrap the same experiments
//! for timing regressions.
//!
//! EXPERIMENTS.md records the paper-vs-measured comparison produced by
//! `cargo run --release -p tint-bench --bin repro -- all`.

pub mod figures;
pub mod microbench;
pub mod runner;
pub mod table;

pub use runner::{run_once, run_reps, ExpResult, Summary};
pub use table::Table;
