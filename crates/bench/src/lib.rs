//! # tint-bench — the experiment harness
//!
//! Regenerates every results figure of the TintMalloc paper (Figures 10–14
//! plus the latency claims of §V and the ablations listed in DESIGN.md).
//! The `repro` binary prints each figure's rows; the wall-clock benches
//! under `benches/` (driven by [`microbench`]) wrap the same experiments
//! for timing regressions.
//!
//! EXPERIMENTS.md records the paper-vs-measured comparison produced by
//! `cargo run --release -p tint-bench --bin repro -- all`.
//!
//! All simulation flows through three shared layers: the content-addressed
//! cell cache ([`simcache`], dedup across figures within one process), the
//! multi-process cell farm ([`journal`], sharded crash-safe on-disk store:
//! exact resume of a killed run, lock-free concurrent writers, generation
//! GC), and the flattened matrix executor ([`runner::run_cells`],
//! `--jobs`-way work queue with panic-isolated workers). Figure output is
//! byte-identical with the cache/journal on or off and at any job count.

pub mod benchjson;
pub mod figures;
pub mod hostfault;
pub mod journal;
pub mod lockfile;
pub mod microbench;
pub mod runner;
pub mod simcache;
pub mod table;

pub use runner::{run_cells, run_once, run_reps, CellSpec, ExpResult, Summary};
pub use table::Table;
