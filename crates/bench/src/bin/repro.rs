//! `repro` — regenerate every results figure of the TintMalloc paper.
//!
//! ```text
//! repro [--reps N] [--scale F] [--csv] [--configs 16t4n,8t4n,...] <command>
//!
//! commands:
//!   fig10              synthetic benchmark by coloring policy
//!   fig11              normalized benchmark runtimes (6 benchmarks × configs)
//!   fig12              normalized total idle times
//!   fig13              per-thread runtimes at 16_threads_4_nodes
//!   fig14              per-thread idle times at 16_threads_4_nodes
//!   latency            local/remote + bank + LLC latency microbenchmarks\n//!   bandwidth          bank/controller parallelism microbenchmark
//!   ablate-part        full vs partial coloring
//!   ablate-firsttouch  legacy buddy vs NUMA buddy vs MEM coloring
//!   ablate-migrate     dynamic recoloring via page migration (extension)\n//!   ablate-dynamic     static vs dynamic scheduling (extension)\n//!   ablate-pagepolicy  open- vs closed-page DRAM controllers (extension)
//!   ablate-colorlist   colored-free-list population overhead
//!   probe:<bench>      per-scheme diagnostics for one benchmark cell
//!   all                everything above (except probe)
//! ```

use tint_bench::figures::{
    ablate_colorlist, ablate_dynamic, ablate_firsttouch, ablate_migrate, ablate_pagepolicy,
    ablate_part, bandwidth, fig10, fig13_14, latency,
    probe, run_matrix, FigOpts,
};
use tint_workloads::PinConfig;

fn parse_config(s: &str) -> Option<PinConfig> {
    match s {
        "16t4n" => Some(PinConfig::T16N4),
        "8t4n" => Some(PinConfig::T8N4),
        "8t2n" => Some(PinConfig::T8N2),
        "4t4n" => Some(PinConfig::T4N4),
        "4t1n" => Some(PinConfig::T4N1),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = FigOpts::default();
    let mut configs: Vec<PinConfig> = PinConfig::ALL.to_vec();
    let mut cmd = String::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => {
                opts.reps = it.next().expect("--reps N").parse().expect("reps number")
            }
            "--scale" => {
                opts.scale = it.next().expect("--scale F").parse().expect("scale number")
            }
            "--csv" => opts.csv = true,
            "--configs" => {
                configs = it
                    .next()
                    .expect("--configs list")
                    .split(',')
                    .map(|s| parse_config(s).unwrap_or_else(|| panic!("unknown config {s}")))
                    .collect();
            }
            c if !c.starts_with('-') => cmd = c.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }
    if cmd.is_empty() {
        cmd = "all".to_string();
    }
    assert!(opts.reps >= 1, "--reps must be at least 1");
    assert!(opts.scale >= 0.0, "--scale must be non-negative");

    let all = cmd == "all";
    let header = |s: &str| println!("\n=== {s} ===");

    if let Some(bench) = cmd.strip_prefix("probe:") {
        header(&format!("Probe: {bench} at {}", configs[0]));
        print!("{}", opts.render(&probe(&opts, bench, configs[0])));
        return;
    }
    if all || cmd == "fig10" {
        header("Figure 10: synthetic benchmark by coloring policy (16 threads, 4 nodes)");
        print!("{}", opts.render(&fig10(&opts)));
    }
    if all || cmd == "fig11" || cmd == "fig12" {
        let m = run_matrix(&opts, &configs);
        if all || cmd == "fig11" {
            header("Figure 11: normalized benchmark runtime (lower is better)");
            for (t, pin) in m.fig11().iter().zip(&m.configs) {
                println!("-- {pin} --");
                print!("{}", opts.render(t));
            }
        }
        if all || cmd == "fig12" {
            header("Figure 12: normalized total idle time (lower is better)");
            for (t, pin) in m.fig12().iter().zip(&m.configs) {
                println!("-- {pin} --");
                print!("{}", opts.render(t));
            }
        }
    }
    if all || cmd == "fig13" || cmd == "fig14" {
        header("Figures 13/14: per-thread runtime and idle, 16_threads_4_nodes");
        let (summary, lbm) = fig13_14(&opts);
        print!("{}", opts.render(&summary));
        println!("-- lbm per-thread detail --");
        print!("{}", opts.render(&lbm));
    }
    if all || cmd == "latency" {
        header("§V latency claims: controller locality, bank sharing, LLC interference");
        print!("{}", opts.render(&latency(&opts)));
    }
    if all || cmd == "bandwidth" {
        header("§II.B: bank/controller parallelism (achieved bandwidth)");
        print!("{}", opts.render(&bandwidth(&opts)));
    }
    if all || cmd == "ablate-part" {
        header("Ablation: full vs partial coloring (normalized runtime vs buddy)");
        print!("{}", opts.render(&ablate_part(&opts)));
    }
    if all || cmd == "ablate-firsttouch" {
        header("Ablation: legacy global buddy vs NUMA buddy vs MEM coloring (synthetic)");
        print!("{}", opts.render(&ablate_firsttouch(&opts)));
    }
    if all || cmd == "ablate-migrate" {
        header("Ablation (extension): dynamic recoloring via page migration");
        print!("{}", opts.render(&ablate_migrate(&opts)));
    }
    if all || cmd == "ablate-dynamic" {
        header("Ablation (extension): static vs dynamic scheduling, buddy vs MEM+LLC");
        print!("{}", opts.render(&ablate_dynamic(&opts)));
    }
    if all || cmd == "ablate-pagepolicy" {
        header("Ablation (extension): DRAM page policy (open vs closed) x coloring");
        print!("{}", opts.render(&ablate_pagepolicy(&opts)));
    }
    if all || cmd == "ablate-colorlist" {
        header("Ablation: colored free-list population overhead (§III.C)");
        print!("{}", opts.render(&ablate_colorlist(&opts)));
    }
}
