//! `repro` — regenerate every results figure of the TintMalloc paper.
//!
//! ```text
//! repro [--reps N] [--scale F] [--csv] [--profile] [--jobs N]
//!       [--engine exact|sampled] [--strict-deadline]
//!       [--configs 16t4n,8t4n,...] <command>...
//!
//! commands:
//!   fig10              synthetic benchmark by coloring policy
//!   fig11              normalized benchmark runtimes (6 benchmarks × configs)
//!   fig12              normalized total idle times
//!   fig13              per-thread runtimes at 16_threads_4_nodes
//!   fig14              per-thread idle times at 16_threads_4_nodes
//!   latency            local/remote + bank + LLC latency microbenchmarks
//!   bandwidth          bank/controller parallelism microbenchmark
//!   ablate-part        full vs partial coloring
//!   ablate-firsttouch  legacy buddy vs NUMA buddy vs MEM coloring
//!   ablate-migrate     dynamic recoloring via page migration (extension)
//!   ablate-dynamic     static vs dynamic scheduling (extension)
//!   ablate-pagepolicy  open- vs closed-page DRAM controllers (extension)
//!   ablate-colorlist   colored-free-list population overhead
//!   ablate-pressure    exhaustion-policy degradation under color pressure (extension)
//!   churn              multi-tenant task churn: throughput, off-color fraction,
//!                      pool-population skew vs task count and uptime (extension)
//!   soak               sustained over-committed pressure: watermarks, backoff,
//!                      OOM kills, incremental auditing, per-window trace (extension)
//!   probe:<bench>      per-scheme diagnostics for one benchmark cell
//!   validate-sampled   exact-vs-sampled engine differential: interleaved A/B
//!                      wall-clock + figure-ratio error table, FAIL above bound
//!   gc-journal         compact the cell-farm journal into a fresh generation
//!   all                everything above (except probe, validate-sampled, and
//!                      gc-journal)
//! ```
//!
//! `--engine sampled` (equivalently `TINT_ENGINE=sampled`; the flag wins)
//! runs the sampling engine: short detailed windows through the exact
//! pipeline interleaved with functional warm-up whose cycles come from a
//! running per-thread DRAM-latency estimate (see `tint_spmd::engine`).
//! Sampled results are estimates — they are cached and journaled under
//! distinct cell keys and recorded with `"engine": "sampled"` in
//! `BENCH_repro.json`, so they can never be served for an exact request.
//! `validate-sampled` quantifies the trade: it runs the fig11/fig12 matrix
//! in both modes (cell cache off, passes interleaved A/B) and reports the
//! speedup plus the worst relative error across the buddy-normalized
//! figure ratios, exiting 1 if any error exceeds the bound.
//!
//! Multiple commands run in sequence within one process. Two layers keep
//! the sequence from repeating work: the `BenchMatrix` behind fig11/fig12
//! and the fig13/fig14 sweep are each computed at most once per invocation,
//! and underneath, every simulation cell flows through the content-addressed
//! cell cache (`tint_bench::simcache`), so any command whose cells were
//! already simulated — `fig13 fig14` after the fig11 matrix, `probe:<b>`
//! after `all` — serves them from memory. `TINT_SIM_CACHE=0` disables the
//! cache; figure output is byte-identical either way.
//!
//! `--jobs N` sets the simulation worker-thread count for the flattened
//! cell executor. Precedence: the `--jobs` flag wins over the `TINT_JOBS`
//! env var, which wins over the host's available parallelism; both the
//! flag and the env var must be a positive decimal integer — values like
//! `0`, `0x4`, `-2`, or an empty string are rejected with an error, never
//! silently clamped. Output is byte-identical at any job count — cells are
//! merged in canonical order.
//!
//! ## Crash safety, resume, and the cell farm
//!
//! Every completed simulation cell is appended to a crash-safe on-disk
//! journal (`.tint-journal/` by default; `TINT_JOURNAL=<dir>` relocates
//! it, `TINT_JOURNAL=0` disables it) and replayed into the cell cache at
//! startup, so re-running the same command after a crash, OOM kill, or
//! Ctrl-C simulates only the missing cells. Figure output is byte-identical
//! with the journal on, off, or after a kill-and-resume.
//!
//! The journal is a multi-process *cell farm* (see `tint_bench::journal`):
//! each `repro` process appends to its own `O_EXCL`-created shard inside
//! the current store generation, so any number of concurrent processes can
//! share one journal directory with no locks on the append path; replay
//! merges every shard. `repro gc-journal` compacts the store — live
//! deduped cells are rewritten into a fresh generation and committed with
//! one atomic rename (guarded by an `O_EXCL` lockfile with stale-lock
//! takeover), so a crash mid-GC leaves the old or new generation fully
//! intact. On persistent I/O failure (disk full, I/O errors — or the
//! seeded `TINT_HOST_FAULT=io:<permille>:<seed>` harness) the journal
//! warns once, disarms itself, and the run completes journal-less with
//! byte-identical figures.
//!
//! Workers are panic-isolated: a panicking cell is retried up to
//! `TINT_CELL_RETRIES` times (default 2), then recorded as a poisoned cell
//! that renders as `ERR` and makes the run exit 1 instead of aborting the
//! matrix. `TINT_CELL_TIMEOUT_S=<secs>` arms a watchdog that warns about
//! overdue cells; with `--strict-deadline` an overdue cell is poisoned and
//! a cell stuck past 20× the deadline aborts the (resumable) run with
//! exit code 124. SIGINT/SIGTERM drain workers at the next cell boundary,
//! flush the journal, and exit 130 with a resume notice.
//! `TINT_HOST_FAULT=panic:<permille>:<seed>` arms the deterministic
//! host-fault harness (worker panics on schedule) that exercises all of
//! the above in tests.
//!
//! After the run, a machine-readable `BENCH_repro.json` is written to the
//! working directory with per-command wall-clock milliseconds, simulated
//! cycles, and cell-cache hit/miss counts. The write is atomic (temp
//! file plus rename), and a truncated/corrupt existing file is quarantined to
//! `BENCH_repro.json.corrupt` and treated as empty rather than trusted.
//! An intact existing file is *merged into*, not clobbered: command
//! records are upserted by name, so `repro probe:lbm` after `repro all`
//! keeps the figure records. The `invocation` block describes only the
//! commands this run executed; the `total` block sums over every merged
//! record.
//!
//! `--profile` turns on the pipeline self-profile (see `tint_hw::profile`):
//! per-component wall time — scheduler, TLB, cache hierarchy, DRAM, frame
//! decode — printed as a table after each command and recorded in the JSON.
//! The timing probes themselves cost time, so wall_ms measured under
//! `--profile` is inflated; figure *tables* are unaffected.

use tint_bench::benchjson::{write_bench_json, CmdRecord, InvocationMeta};
use tint_bench::figures::{
    ablate_colorlist, ablate_dynamic, ablate_firsttouch, ablate_migrate, ablate_pagepolicy,
    ablate_part, ablate_pressure, bandwidth, churn, fig10, fig13_14, latency, probe, run_matrix,
    soak, validate_sampled, BenchMatrix, FigOpts, SAMPLED_ERR_BOUND_PCT,
};
use tint_bench::hostfault::{self, HostFaultPlan};
use tint_bench::journal;
use tint_bench::runner::{
    available_jobs, cell_retries, cell_timeout, install_cancel_handlers, parse_jobs,
    poisoned_cells, pressure_stats, retries_used, set_jobs, set_strict_deadline, simulated_cycles,
    validate_env_jobs,
};
use tint_bench::simcache;
use tint_bench::table::Table;
use tint_hw::profile::{self, Component, COMPONENT_COUNT};
use tint_spmd::{engine_mode, set_engine_mode, EngineMode};
use tint_workloads::PinConfig;

/// Exit with a one-line usage/config error (exit code 2: bad invocation).
fn fail(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn parse_config(s: &str) -> Option<PinConfig> {
    match s {
        "16t4n" => Some(PinConfig::T16N4),
        "8t4n" => Some(PinConfig::T8N4),
        "8t2n" => Some(PinConfig::T8N2),
        "4t4n" => Some(PinConfig::T4N4),
        "4t1n" => Some(PinConfig::T4N1),
        _ => None,
    }
}

/// Render one command's component profile as a table with derived rows.
/// `Engine` contains `Access`, which contains the four leaf components, so
/// the interesting shares are the subtractions.
fn profile_table(nanos: &[u64; COMPONENT_COUNT], wall_ms: f64) -> Table {
    let ms = |c: Component| nanos[c as usize] as f64 / 1e6;
    let engine = ms(Component::Engine);
    let presort = ms(Component::Presort);
    let access = ms(Component::Access);
    let warmup = ms(Component::Warmup);
    let detailed = ms(Component::Detailed);
    let leaves =
        ms(Component::Tlb) + ms(Component::Hierarchy) + ms(Component::Dram) + ms(Component::Decode);
    let mut t = Table::new(vec!["component", "ms", "share_of_engine"]);
    let share = |v: f64| {
        if engine > 0.0 {
            format!("{:.1}%", 100.0 * v / engine)
        } else {
            "-".to_string()
        }
    };
    let mut row = |name: &str, v: f64| t.row(vec![name.to_string(), format!("{v:.1}"), share(v)]);
    row("engine (sections total)", engine);
    row(
        "  scheduler (engine - presort - access)",
        engine - presort - access,
    );
    row("  presort (batch sort + prefetch)", presort);
    row("  access (System::access)", access);
    // Sampled mode splits Access into warm-up (estimated) and detailed
    // (exact) windows — an alternative decomposition of the same span: the
    // leaf components below are nested *inside* these two. In exact mode
    // both are zero and the rows are suppressed.
    if warmup > 0.0 || detailed > 0.0 {
        row("    warm-up (estimated)", warmup);
        row("    detailed windows (exact)", detailed);
    }
    row("    tlb + translate", ms(Component::Tlb));
    row("    cache hierarchy", ms(Component::Hierarchy));
    row("    dram timing", ms(Component::Dram));
    row("    frame decode", ms(Component::Decode));
    row("    access other", access - leaves);
    row("outside engine (setup, alloc)", wall_ms - engine);
    t
}

/// Per-invocation state shared across commands: the fig11/fig12 matrix is
/// expensive (6 benchmarks × configs × schemes × reps), so one invocation
/// computes it at most once. Each repetition boots a fresh machine, so the
/// cached result is identical to what a standalone `repro fig12` prints.
struct Ctx {
    opts: FigOpts,
    configs: Vec<PinConfig>,
    matrix: Option<BenchMatrix>,
    /// The fig13/fig14 `(summary, lbm detail)` tables — one sweep serves
    /// both commands, so `repro fig13 fig14` computes it once.
    fig13_14: Option<(Table, Table)>,
    /// The pressure-ablation table, kept for `BENCH_repro.json` (the sweep
    /// is the one result downstream tooling consumes cell-by-cell).
    pressure: Option<Table>,
    /// The churn-figure table, likewise recorded in `BENCH_repro.json`.
    churn: Option<Table>,
    /// The soak-figure table (per-window pressure trace), likewise recorded.
    soak: Option<Table>,
    /// Set when `validate-sampled` exceeded its error bound; the run still
    /// writes `BENCH_repro.json` and then exits 1.
    validation_failed: bool,
    /// Set when `gc-journal` failed (lock held, io fault before commit);
    /// the store is unchanged and the run exits 1.
    gc_failed: bool,
}

impl Ctx {
    fn matrix(&mut self) -> &BenchMatrix {
        if self.matrix.is_none() {
            self.matrix = Some(run_matrix(&self.opts, &self.configs));
        }
        self.matrix.as_ref().unwrap()
    }

    fn fig13_14(&mut self) -> &(Table, Table) {
        if self.fig13_14.is_none() {
            self.fig13_14 = Some(fig13_14(&self.opts));
        }
        self.fig13_14.as_ref().unwrap()
    }
}

fn header(s: &str) {
    println!("\n=== {s} ===");
}

/// Run one command by name, printing exactly what a single-command
/// invocation prints.
fn run_cmd(ctx: &mut Ctx, cmd: &str) {
    let all = cmd == "all";
    if let Some(bench) = cmd.strip_prefix("probe:") {
        header(&format!("Probe: {bench} at {}", ctx.configs[0]));
        print!(
            "{}",
            ctx.opts.render(&probe(&ctx.opts, bench, ctx.configs[0]))
        );
        return;
    }
    if cmd == "gc-journal" {
        header("Journal GC: compact the cell farm into a fresh generation");
        match journal::gc() {
            Ok(g) => {
                let mut t = Table::new(vec!["metric", "value"]);
                let mut row = |name: &str, v: String| t.row(vec![name.to_string(), v]);
                row("live cells", g.live_cells.to_string());
                row("shards merged", g.shards_merged.to_string());
                row("shards quarantined", g.quarantined.to_string());
                row("v1 cells absorbed", g.v1_absorbed.to_string());
                row("bytes before", g.bytes_before.to_string());
                row("bytes after", g.bytes_after.to_string());
                row(
                    "compaction ratio",
                    if g.bytes_after > 0 {
                        format!("{:.2}x", g.bytes_before as f64 / g.bytes_after as f64)
                    } else {
                        "-".to_string()
                    },
                );
                row("committed generation", g.generation.to_string());
                print!("{}", ctx.opts.render(&t));
            }
            Err(e) => {
                eprintln!("repro: gc-journal: {e}");
                ctx.gc_failed = true;
            }
        }
        return;
    }
    if cmd == "validate-sampled" {
        header("Sampled-engine validation: exact vs sampled figure ratios");
        let v = validate_sampled(&ctx.opts, &ctx.configs);
        print!("{}", ctx.opts.render(&v.table));
        println!(
            "wall: exact {:.0} ms, sampled {:.0} ms, speedup {:.1}x; \
             max ratio error {:.3}% (bound {SAMPLED_ERR_BOUND_PCT:.1}%): {}",
            v.exact_ms,
            v.sampled_ms,
            v.speedup,
            v.max_err_pct,
            if v.passed { "PASS" } else { "FAIL" },
        );
        if !v.passed {
            ctx.validation_failed = true;
        }
        return;
    }
    if all || cmd == "fig10" {
        header("Figure 10: synthetic benchmark by coloring policy (16 threads, 4 nodes)");
        print!("{}", ctx.opts.render(&fig10(&ctx.opts)));
    }
    if all || cmd == "fig11" || cmd == "fig12" {
        let opts = ctx.opts;
        let m = ctx.matrix();
        if all || cmd == "fig11" {
            header("Figure 11: normalized benchmark runtime (lower is better)");
            for (t, pin) in m.fig11().iter().zip(&m.configs) {
                println!("-- {pin} --");
                print!("{}", opts.render(t));
            }
        }
        if all || cmd == "fig12" {
            header("Figure 12: normalized total idle time (lower is better)");
            for (t, pin) in m.fig12().iter().zip(&m.configs) {
                println!("-- {pin} --");
                print!("{}", opts.render(t));
            }
        }
    }
    if all || cmd == "fig13" || cmd == "fig14" {
        header("Figures 13/14: per-thread runtime and idle, 16_threads_4_nodes");
        let opts = ctx.opts;
        let (summary, lbm) = ctx.fig13_14();
        print!("{}", opts.render(summary));
        println!("-- lbm per-thread detail --");
        print!("{}", opts.render(lbm));
    }
    if all || cmd == "latency" {
        header("§V latency claims: controller locality, bank sharing, LLC interference");
        print!("{}", ctx.opts.render(&latency(&ctx.opts)));
    }
    if all || cmd == "bandwidth" {
        header("§II.B: bank/controller parallelism (achieved bandwidth)");
        print!("{}", ctx.opts.render(&bandwidth(&ctx.opts)));
    }
    if all || cmd == "ablate-part" {
        header("Ablation: full vs partial coloring (normalized runtime vs buddy)");
        print!("{}", ctx.opts.render(&ablate_part(&ctx.opts)));
    }
    if all || cmd == "ablate-firsttouch" {
        header("Ablation: legacy global buddy vs NUMA buddy vs MEM coloring (synthetic)");
        print!("{}", ctx.opts.render(&ablate_firsttouch(&ctx.opts)));
    }
    if all || cmd == "ablate-migrate" {
        header("Ablation (extension): dynamic recoloring via page migration");
        print!("{}", ctx.opts.render(&ablate_migrate(&ctx.opts)));
    }
    if all || cmd == "ablate-dynamic" {
        header("Ablation (extension): static vs dynamic scheduling, buddy vs MEM+LLC");
        print!("{}", ctx.opts.render(&ablate_dynamic(&ctx.opts)));
    }
    if all || cmd == "ablate-pagepolicy" {
        header("Ablation (extension): DRAM page policy (open vs closed) x coloring");
        print!("{}", ctx.opts.render(&ablate_pagepolicy(&ctx.opts)));
    }
    if all || cmd == "ablate-colorlist" {
        header("Ablation: colored free-list population overhead (§III.C)");
        print!("{}", ctx.opts.render(&ablate_colorlist(&ctx.opts)));
    }
    if all || cmd == "ablate-pressure" {
        header("Ablation (extension): exhaustion policies under color pressure");
        let t = ablate_pressure(&ctx.opts);
        print!("{}", ctx.opts.render(&t));
        ctx.pressure = Some(t);
    }
    if all || cmd == "churn" {
        header("Extension: multi-tenant churn (round-robin scheduling, full task reclamation)");
        let t = churn(&ctx.opts);
        print!("{}", ctx.opts.render(&t));
        ctx.churn = Some(t);
    }
    if all || cmd == "soak" {
        header("Extension: sustained-pressure soak (watermarks, backoff, OOM kill, auditing)");
        let t = soak(&ctx.opts);
        print!("{}", ctx.opts.render(&t));
        ctx.soak = Some(t);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = FigOpts::default();
    let mut configs: Vec<PinConfig> = PinConfig::ALL.to_vec();
    let mut cmds: Vec<String> = Vec::new();
    let mut it = args.iter();
    // A missing or malformed flag argument is a usage error with a one-line
    // message and exit code 2 — never a panic.
    fn arg<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> &'a String {
        it.next()
            .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => {
                opts.reps = arg(&mut it, "--reps")
                    .parse()
                    .unwrap_or_else(|_| fail("--reps wants a positive integer"));
            }
            "--scale" => {
                opts.scale = arg(&mut it, "--scale")
                    .parse()
                    .unwrap_or_else(|_| fail("--scale wants a number"));
            }
            "--csv" => opts.csv = true,
            "--profile" => profile::set_enabled(true),
            "--engine" => match arg(&mut it, "--engine").as_str() {
                "exact" => set_engine_mode(EngineMode::Exact),
                "sampled" => set_engine_mode(EngineMode::Sampled),
                other => fail(&format!(
                    "--engine wants 'exact' or 'sampled', got {other:?}"
                )),
            },
            "--strict-deadline" => set_strict_deadline(true),
            "--jobs" => match parse_jobs(arg(&mut it, "--jobs")) {
                Ok(n) => set_jobs(n),
                Err(e) => fail(&format!("invalid --jobs: {e}")),
            },
            "--configs" => {
                configs = arg(&mut it, "--configs")
                    .split(',')
                    .map(|s| {
                        parse_config(s).unwrap_or_else(|| fail(&format!("unknown config {s:?}")))
                    })
                    .collect();
            }
            c if !c.starts_with('-') => cmds.push(c.to_string()),
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if cmds.is_empty() {
        cmds.push("all".to_string());
    }
    if opts.reps < 1 {
        fail("--reps must be at least 1");
    }
    if opts.scale.is_nan() || opts.scale < 0.0 {
        fail("--scale must be non-negative");
    }
    // Environment knobs are validated up front: a typo'd TINT_JOBS or
    // TINT_HOST_FAULT must stop the run before 20 minutes of simulation.
    if let Err(e) = validate_env_jobs() {
        fail(&e);
    }
    if let Ok(v) = std::env::var("TINT_HOST_FAULT") {
        match HostFaultPlan::parse(&v) {
            Ok(plan) => hostfault::set_plan(Some(plan)),
            Err(e) => fail(&format!("invalid TINT_HOST_FAULT: {e}")),
        }
    }
    let _ = cell_retries(); // surface a TINT_CELL_RETRIES warning early
    let _ = cell_timeout(); // likewise for TINT_CELL_TIMEOUT_S

    // Durability and graceful shutdown: arm the journal (TINT_JOURNAL=0
    // disables, TINT_JOURNAL=<dir> relocates), replay prior completed
    // cells into the cell cache, and convert SIGINT/SIGTERM into a
    // cooperative drain + journal flush + resume notice.
    install_cancel_handlers();
    journal::configure_default();
    let replay = journal::replay();
    if replay.replayed > 0 || replay.quarantined > 0 {
        eprintln!(
            "journal: replayed {} completed cells from {} shard(s){}{}{}",
            replay.replayed,
            replay.shards,
            if replay.v1_absorbed > 0 {
                format!(" ({} absorbed from a v1 journal)", replay.v1_absorbed)
            } else {
                String::new()
            },
            if replay.torn_dropped > 0 {
                " (dropped a torn final write)"
            } else {
                ""
            },
            if replay.quarantined > 0 {
                format!(" ({} corrupt journal(s) quarantined)", replay.quarantined)
            } else {
                String::new()
            },
        );
    }

    let mut ctx = Ctx {
        opts,
        configs,
        matrix: None,
        fig13_14: None,
        pressure: None,
        churn: None,
        soak: None,
        validation_failed: false,
        gc_failed: false,
    };
    let mut records = Vec::with_capacity(cmds.len());
    for cmd in &cmds {
        let cycles_before = simulated_cycles();
        let (hits_before, misses_before) = simcache::stats();
        profile::reset();
        let start = std::time::Instant::now();
        run_cmd(&mut ctx, cmd);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let (hits_after, misses_after) = simcache::stats();
        let (cache_hits, cache_misses) = (hits_after - hits_before, misses_after - misses_before);
        let prof = profile::enabled().then(profile::snapshot);
        if let Some(nanos) = &prof {
            println!("-- pipeline self-profile ({cmd}) --");
            print!("{}", ctx.opts.render(&profile_table(nanos, wall_ms)));
            println!("cell cache: {cache_hits} hits, {cache_misses} misses");
        }
        records.push(CmdRecord {
            name: cmd.clone(),
            wall_ms,
            sim_cycles: simulated_cycles() - cycles_before,
            reps: ctx.opts.reps,
            scale: ctx.opts.scale,
            cache_hits,
            cache_misses,
            engine: if engine_mode() == EngineMode::Sampled {
                "sampled"
            } else {
                "exact"
            },
            profile: prof,
        });
    }
    journal::flush();
    let (journal_hits, journal_appends, journal_replayed) = journal::counters();
    let (oom_kills, admission_rejects, alloc_retries) = pressure_stats();
    let meta = InvocationMeta {
        jobs: available_jobs(),
        cache_enabled: simcache::enabled(),
        journal_enabled: journal::enabled(),
        journal_replayed,
        journal_hits,
        journal_appends,
        journal_io_disarmed: journal::io_disarmed(),
        poisoned_cells: poisoned_cells(),
        host_faults_injected: hostfault::injected(),
        retries_used: retries_used(),
        oom_kills,
        admission_rejects,
        alloc_retries,
    };
    let config_names: Vec<String> = ctx.configs.iter().map(|c| c.to_string()).collect();
    if let Err(e) = write_bench_json(
        "BENCH_repro.json",
        &records,
        ctx.opts.reps,
        ctx.opts.scale,
        &config_names,
        ctx.pressure.as_ref(),
        ctx.churn.as_ref(),
        ctx.soak.as_ref(),
        &meta,
    ) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    if ctx.gc_failed {
        std::process::exit(1);
    }
    if ctx.validation_failed {
        eprintln!(
            "error: validate-sampled exceeded the {SAMPLED_ERR_BOUND_PCT:.1}% ratio error bound \
             (see table above)"
        );
        std::process::exit(1);
    }
    if poisoned_cells() > 0 {
        eprintln!(
            "error: {} cell(s) failed after {} retr{} and render as ERR above \
             ({} host fault(s) injected); rerun to retry them",
            poisoned_cells(),
            retries_used(),
            if retries_used() == 1 { "y" } else { "ies" },
            hostfault::injected(),
        );
        std::process::exit(1);
    }
}
