//! `repro` — regenerate every results figure of the TintMalloc paper.
//!
//! ```text
//! repro [--reps N] [--scale F] [--csv] [--profile] [--jobs N]
//!       [--engine exact|sampled] [--strict-deadline]
//!       [--configs 16t4n,8t4n,...] <command>...
//!
//! commands:
//!   fig10              synthetic benchmark by coloring policy
//!   fig11              normalized benchmark runtimes (6 benchmarks × configs)
//!   fig12              normalized total idle times
//!   fig13              per-thread runtimes at 16_threads_4_nodes
//!   fig14              per-thread idle times at 16_threads_4_nodes
//!   latency            local/remote + bank + LLC latency microbenchmarks
//!   bandwidth          bank/controller parallelism microbenchmark
//!   ablate-part        full vs partial coloring
//!   ablate-firsttouch  legacy buddy vs NUMA buddy vs MEM coloring
//!   ablate-migrate     dynamic recoloring via page migration (extension)
//!   ablate-dynamic     static vs dynamic scheduling (extension)
//!   ablate-pagepolicy  open- vs closed-page DRAM controllers (extension)
//!   ablate-colorlist   colored-free-list population overhead
//!   ablate-pressure    exhaustion-policy degradation under color pressure (extension)
//!   churn              multi-tenant task churn: throughput, off-color fraction,
//!                      pool-population skew vs task count and uptime (extension)
//!   soak               sustained over-committed pressure: watermarks, backoff,
//!                      OOM kills, incremental auditing, per-window trace (extension)
//!   probe:<bench>      per-scheme diagnostics for one benchmark cell
//!   validate-sampled   exact-vs-sampled engine differential: interleaved A/B
//!                      wall-clock + figure-ratio error table, FAIL above bound
//!   all                everything above (except probe and validate-sampled)
//! ```
//!
//! `--engine sampled` (equivalently `TINT_ENGINE=sampled`; the flag wins)
//! runs the sampling engine: short detailed windows through the exact
//! pipeline interleaved with functional warm-up whose cycles come from a
//! running per-thread DRAM-latency estimate (see `tint_spmd::engine`).
//! Sampled results are estimates — they are cached and journaled under
//! distinct cell keys and recorded with `"engine": "sampled"` in
//! `BENCH_repro.json`, so they can never be served for an exact request.
//! `validate-sampled` quantifies the trade: it runs the fig11/fig12 matrix
//! in both modes (cell cache off, passes interleaved A/B) and reports the
//! speedup plus the worst relative error across the buddy-normalized
//! figure ratios, exiting 1 if any error exceeds the bound.
//!
//! Multiple commands run in sequence within one process. Two layers keep
//! the sequence from repeating work: the `BenchMatrix` behind fig11/fig12
//! and the fig13/fig14 sweep are each computed at most once per invocation,
//! and underneath, every simulation cell flows through the content-addressed
//! cell cache (`tint_bench::simcache`), so any command whose cells were
//! already simulated — `fig13 fig14` after the fig11 matrix, `probe:<b>`
//! after `all` — serves them from memory. `TINT_SIM_CACHE=0` disables the
//! cache; figure output is byte-identical either way.
//!
//! `--jobs N` sets the simulation worker-thread count for the flattened
//! cell executor. Precedence: the `--jobs` flag wins over the `TINT_JOBS`
//! env var, which wins over the host's available parallelism; both the
//! flag and the env var must be a positive decimal integer — values like
//! `0`, `0x4`, `-2`, or an empty string are rejected with an error, never
//! silently clamped. Output is byte-identical at any job count — cells are
//! merged in canonical order.
//!
//! ## Crash safety and resume
//!
//! Every completed simulation cell is appended to a crash-safe on-disk
//! journal (`.tint-journal/` by default; `TINT_JOURNAL=<dir>` relocates
//! it, `TINT_JOURNAL=0` disables it) and replayed into the cell cache at
//! startup, so re-running the same command after a crash, OOM kill, or
//! Ctrl-C simulates only the missing cells. Figure output is byte-identical
//! with the journal on, off, or after a kill-and-resume.
//!
//! Workers are panic-isolated: a panicking cell is retried up to
//! `TINT_CELL_RETRIES` times (default 2), then recorded as a poisoned cell
//! that renders as `ERR` and makes the run exit 1 instead of aborting the
//! matrix. `TINT_CELL_TIMEOUT_S=<secs>` arms a watchdog that warns about
//! overdue cells; with `--strict-deadline` an overdue cell is poisoned and
//! a cell stuck past 20× the deadline aborts the (resumable) run with
//! exit code 124. SIGINT/SIGTERM drain workers at the next cell boundary,
//! flush the journal, and exit 130 with a resume notice.
//! `TINT_HOST_FAULT=panic:<permille>:<seed>` arms the deterministic
//! host-fault harness (worker panics on schedule) that exercises all of
//! the above in tests.
//!
//! After the run, a machine-readable `BENCH_repro.json` is written to the
//! working directory with per-command wall-clock milliseconds, simulated
//! cycles, and cell-cache hit/miss counts. The write is atomic (temp
//! file plus rename), and a truncated/corrupt existing file is quarantined to
//! `BENCH_repro.json.corrupt` and treated as empty rather than trusted.
//! An intact existing file is *merged into*, not clobbered: command
//! records are upserted by name, so `repro probe:lbm` after `repro all`
//! keeps the figure records. The `invocation` block describes only the
//! commands this run executed; the `total` block sums over every merged
//! record.
//!
//! `--profile` turns on the pipeline self-profile (see `tint_hw::profile`):
//! per-component wall time — scheduler, TLB, cache hierarchy, DRAM, frame
//! decode — printed as a table after each command and recorded in the JSON.
//! The timing probes themselves cost time, so wall_ms measured under
//! `--profile` is inflated; figure *tables* are unaffected.

use tint_bench::figures::{
    ablate_colorlist, ablate_dynamic, ablate_firsttouch, ablate_migrate, ablate_pagepolicy,
    ablate_part, ablate_pressure, bandwidth, churn, fig10, fig13_14, latency, probe, run_matrix,
    soak, validate_sampled, BenchMatrix, FigOpts, SAMPLED_ERR_BOUND_PCT,
};
use tint_bench::hostfault::{self, HostFaultPlan};
use tint_bench::journal;
use tint_bench::runner::{
    available_jobs, cell_retries, cell_timeout, install_cancel_handlers, parse_jobs,
    poisoned_cells, pressure_stats, retries_used, set_jobs, set_strict_deadline, simulated_cycles,
    validate_env_jobs,
};
use tint_bench::simcache;
use tint_bench::table::Table;
use tint_hw::profile::{self, Component, COMPONENT_COUNT};
use tint_spmd::{engine_mode, set_engine_mode, EngineMode};
use tint_workloads::PinConfig;

/// Exit with a one-line usage/config error (exit code 2: bad invocation).
fn fail(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn parse_config(s: &str) -> Option<PinConfig> {
    match s {
        "16t4n" => Some(PinConfig::T16N4),
        "8t4n" => Some(PinConfig::T8N4),
        "8t2n" => Some(PinConfig::T8N2),
        "4t4n" => Some(PinConfig::T4N4),
        "4t1n" => Some(PinConfig::T4N1),
        _ => None,
    }
}

/// One executed command's measurements for `BENCH_repro.json`.
struct CmdRecord {
    name: String,
    wall_ms: f64,
    sim_cycles: u64,
    reps: u32,
    scale: f64,
    /// Cells served without simulation while this command ran (cell cache
    /// or in-batch dedup).
    cache_hits: u64,
    /// Cells this command actually simulated.
    cache_misses: u64,
    /// Engine mode the command ran under (`"exact"` or `"sampled"`), so a
    /// wall_ms from a sampled run is never compared against an exact one.
    engine: &'static str,
    /// Per-component nanoseconds when `--profile` was on.
    profile: Option<[u64; COMPONENT_COUNT]>,
}

/// Render one command's component profile as a table with derived rows.
/// `Engine` contains `Access`, which contains the four leaf components, so
/// the interesting shares are the subtractions.
fn profile_table(nanos: &[u64; COMPONENT_COUNT], wall_ms: f64) -> Table {
    let ms = |c: Component| nanos[c as usize] as f64 / 1e6;
    let engine = ms(Component::Engine);
    let presort = ms(Component::Presort);
    let access = ms(Component::Access);
    let warmup = ms(Component::Warmup);
    let detailed = ms(Component::Detailed);
    let leaves =
        ms(Component::Tlb) + ms(Component::Hierarchy) + ms(Component::Dram) + ms(Component::Decode);
    let mut t = Table::new(vec!["component", "ms", "share_of_engine"]);
    let share = |v: f64| {
        if engine > 0.0 {
            format!("{:.1}%", 100.0 * v / engine)
        } else {
            "-".to_string()
        }
    };
    let mut row = |name: &str, v: f64| t.row(vec![name.to_string(), format!("{v:.1}"), share(v)]);
    row("engine (sections total)", engine);
    row(
        "  scheduler (engine - presort - access)",
        engine - presort - access,
    );
    row("  presort (batch sort + prefetch)", presort);
    row("  access (System::access)", access);
    // Sampled mode splits Access into warm-up (estimated) and detailed
    // (exact) windows — an alternative decomposition of the same span: the
    // leaf components below are nested *inside* these two. In exact mode
    // both are zero and the rows are suppressed.
    if warmup > 0.0 || detailed > 0.0 {
        row("    warm-up (estimated)", warmup);
        row("    detailed windows (exact)", detailed);
    }
    row("    tlb + translate", ms(Component::Tlb));
    row("    cache hierarchy", ms(Component::Hierarchy));
    row("    dram timing", ms(Component::Dram));
    row("    frame decode", ms(Component::Decode));
    row("    access other", access - leaves);
    row("outside engine (setup, alloc)", wall_ms - engine);
    t
}

/// Per-invocation state shared across commands: the fig11/fig12 matrix is
/// expensive (6 benchmarks × configs × schemes × reps), so one invocation
/// computes it at most once. Each repetition boots a fresh machine, so the
/// cached result is identical to what a standalone `repro fig12` prints.
struct Ctx {
    opts: FigOpts,
    configs: Vec<PinConfig>,
    matrix: Option<BenchMatrix>,
    /// The fig13/fig14 `(summary, lbm detail)` tables — one sweep serves
    /// both commands, so `repro fig13 fig14` computes it once.
    fig13_14: Option<(Table, Table)>,
    /// The pressure-ablation table, kept for `BENCH_repro.json` (the sweep
    /// is the one result downstream tooling consumes cell-by-cell).
    pressure: Option<Table>,
    /// The churn-figure table, likewise recorded in `BENCH_repro.json`.
    churn: Option<Table>,
    /// The soak-figure table (per-window pressure trace), likewise recorded.
    soak: Option<Table>,
    /// Set when `validate-sampled` exceeded its error bound; the run still
    /// writes `BENCH_repro.json` and then exits 1.
    validation_failed: bool,
}

impl Ctx {
    fn matrix(&mut self) -> &BenchMatrix {
        if self.matrix.is_none() {
            self.matrix = Some(run_matrix(&self.opts, &self.configs));
        }
        self.matrix.as_ref().unwrap()
    }

    fn fig13_14(&mut self) -> &(Table, Table) {
        if self.fig13_14.is_none() {
            self.fig13_14 = Some(fig13_14(&self.opts));
        }
        self.fig13_14.as_ref().unwrap()
    }
}

fn header(s: &str) {
    println!("\n=== {s} ===");
}

/// Run one command by name, printing exactly what a single-command
/// invocation prints.
fn run_cmd(ctx: &mut Ctx, cmd: &str) {
    let all = cmd == "all";
    if let Some(bench) = cmd.strip_prefix("probe:") {
        header(&format!("Probe: {bench} at {}", ctx.configs[0]));
        print!(
            "{}",
            ctx.opts.render(&probe(&ctx.opts, bench, ctx.configs[0]))
        );
        return;
    }
    if cmd == "validate-sampled" {
        header("Sampled-engine validation: exact vs sampled figure ratios");
        let v = validate_sampled(&ctx.opts, &ctx.configs);
        print!("{}", ctx.opts.render(&v.table));
        println!(
            "wall: exact {:.0} ms, sampled {:.0} ms, speedup {:.1}x; \
             max ratio error {:.3}% (bound {SAMPLED_ERR_BOUND_PCT:.1}%): {}",
            v.exact_ms,
            v.sampled_ms,
            v.speedup,
            v.max_err_pct,
            if v.passed { "PASS" } else { "FAIL" },
        );
        if !v.passed {
            ctx.validation_failed = true;
        }
        return;
    }
    if all || cmd == "fig10" {
        header("Figure 10: synthetic benchmark by coloring policy (16 threads, 4 nodes)");
        print!("{}", ctx.opts.render(&fig10(&ctx.opts)));
    }
    if all || cmd == "fig11" || cmd == "fig12" {
        let opts = ctx.opts;
        let m = ctx.matrix();
        if all || cmd == "fig11" {
            header("Figure 11: normalized benchmark runtime (lower is better)");
            for (t, pin) in m.fig11().iter().zip(&m.configs) {
                println!("-- {pin} --");
                print!("{}", opts.render(t));
            }
        }
        if all || cmd == "fig12" {
            header("Figure 12: normalized total idle time (lower is better)");
            for (t, pin) in m.fig12().iter().zip(&m.configs) {
                println!("-- {pin} --");
                print!("{}", opts.render(t));
            }
        }
    }
    if all || cmd == "fig13" || cmd == "fig14" {
        header("Figures 13/14: per-thread runtime and idle, 16_threads_4_nodes");
        let opts = ctx.opts;
        let (summary, lbm) = ctx.fig13_14();
        print!("{}", opts.render(summary));
        println!("-- lbm per-thread detail --");
        print!("{}", opts.render(lbm));
    }
    if all || cmd == "latency" {
        header("§V latency claims: controller locality, bank sharing, LLC interference");
        print!("{}", ctx.opts.render(&latency(&ctx.opts)));
    }
    if all || cmd == "bandwidth" {
        header("§II.B: bank/controller parallelism (achieved bandwidth)");
        print!("{}", ctx.opts.render(&bandwidth(&ctx.opts)));
    }
    if all || cmd == "ablate-part" {
        header("Ablation: full vs partial coloring (normalized runtime vs buddy)");
        print!("{}", ctx.opts.render(&ablate_part(&ctx.opts)));
    }
    if all || cmd == "ablate-firsttouch" {
        header("Ablation: legacy global buddy vs NUMA buddy vs MEM coloring (synthetic)");
        print!("{}", ctx.opts.render(&ablate_firsttouch(&ctx.opts)));
    }
    if all || cmd == "ablate-migrate" {
        header("Ablation (extension): dynamic recoloring via page migration");
        print!("{}", ctx.opts.render(&ablate_migrate(&ctx.opts)));
    }
    if all || cmd == "ablate-dynamic" {
        header("Ablation (extension): static vs dynamic scheduling, buddy vs MEM+LLC");
        print!("{}", ctx.opts.render(&ablate_dynamic(&ctx.opts)));
    }
    if all || cmd == "ablate-pagepolicy" {
        header("Ablation (extension): DRAM page policy (open vs closed) x coloring");
        print!("{}", ctx.opts.render(&ablate_pagepolicy(&ctx.opts)));
    }
    if all || cmd == "ablate-colorlist" {
        header("Ablation: colored free-list population overhead (§III.C)");
        print!("{}", ctx.opts.render(&ablate_colorlist(&ctx.opts)));
    }
    if all || cmd == "ablate-pressure" {
        header("Ablation (extension): exhaustion policies under color pressure");
        let t = ablate_pressure(&ctx.opts);
        print!("{}", ctx.opts.render(&t));
        ctx.pressure = Some(t);
    }
    if all || cmd == "churn" {
        header("Extension: multi-tenant churn (round-robin scheduling, full task reclamation)");
        let t = churn(&ctx.opts);
        print!("{}", ctx.opts.render(&t));
        ctx.churn = Some(t);
    }
    if all || cmd == "soak" {
        header("Extension: sustained-pressure soak (watermarks, backoff, OOM kill, auditing)");
        let t = soak(&ctx.opts);
        print!("{}", ctx.opts.render(&t));
        ctx.soak = Some(t);
    }
}

/// Minimal JSON string escaping (command names are ASCII, but be correct).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize a table as a JSON array of objects keyed by column name.
fn json_table(t: &Table, indent: &str) -> String {
    let mut s = String::from("[\n");
    for (i, row) in t.rows().iter().enumerate() {
        let cells: Vec<String> = t
            .columns()
            .iter()
            .zip(row)
            .map(|(c, v)| format!("\"{}\": \"{}\"", json_escape(c), json_escape(v)))
            .collect();
        s.push_str(&format!(
            "{indent}  {{{}}}{}\n",
            cells.join(", "),
            if i + 1 < t.rows().len() { "," } else { "" }
        ));
    }
    s.push_str(&format!("{indent}]"));
    s
}

/// Serialize one command record as a single JSON object line (no indent).
fn record_json(r: &CmdRecord) -> String {
    let mut s = format!(
        "{{\"name\": \"{}\", \"wall_ms\": {:.3}, \"sim_cycles\": {}, \"reps\": {}, \"scale\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"engine\": \"{}\"",
        json_escape(&r.name),
        r.wall_ms,
        r.sim_cycles,
        r.reps,
        r.scale,
        r.cache_hits,
        r.cache_misses,
        r.engine,
    );
    if let Some(nanos) = &r.profile {
        let fields: Vec<String> = profile::COMPONENT_NAMES
            .iter()
            .zip(nanos)
            .map(|(n, &v)| format!("\"{}_ms\": {:.3}", n, v as f64 / 1e6))
            .collect();
        s.push_str(&format!(", \"profile\": {{{}}}", fields.join(", ")));
    }
    s.push('}');
    s
}

/// What survives from an existing `BENCH_repro.json`: the per-command
/// records as `(name, raw JSON object)` pairs and the raw `"pressure"` and
/// `"churn"` table blocks. Only files this tool wrote are parsed (one
/// record per line); an unrecognizable file is treated as absent.
struct ExistingBench {
    records: Vec<(String, String)>,
    pressure_raw: Option<String>,
    churn_raw: Option<String>,
    soak_raw: Option<String>,
}

/// Parse the parts of an existing `BENCH_repro.json` worth preserving.
/// A truncated or otherwise corrupt file (a crash mid-write predating the
/// atomic-rename scheme, a disk error) is renamed to `<path>.corrupt` and
/// treated as absent — a bad perf log must never take the run down.
fn read_existing(path: &str) -> ExistingBench {
    let mut out = ExistingBench {
        records: Vec::new(),
        pressure_raw: None,
        churn_raw: None,
        soak_raw: None,
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    let intact = text.trim_start().starts_with('{') && text.trim_end().ends_with('}');
    if !intact {
        let quarantine = format!("{path}.corrupt");
        match std::fs::rename(path, &quarantine) {
            Ok(()) => eprintln!(
                "warning: {path} is truncated/corrupt; moved to {quarantine} and starting fresh"
            ),
            Err(e) => eprintln!("warning: {path} is corrupt and could not be quarantined ({e})"),
        }
        return out;
    }
    let mut in_commands = false;
    // `(key, lines)` of the table block currently being collected.
    let mut block: Option<(&str, Vec<String>)> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some((key, lines)) = block.as_mut() {
            if trimmed == "]" || trimmed == "]," {
                let raw = Some(lines.join("\n"));
                match *key {
                    "pressure" => out.pressure_raw = raw,
                    "soak" => out.soak_raw = raw,
                    _ => out.churn_raw = raw,
                }
                block = None;
            } else {
                lines.push(line.to_string());
            }
            continue;
        }
        if trimmed.starts_with("\"commands\"") {
            in_commands = true;
            continue;
        }
        if in_commands {
            if trimmed == "]" || trimmed == "]," {
                in_commands = false;
                continue;
            }
            let raw = trimmed.trim_end_matches(',');
            // `{"name": "X", ...}` — extract X.
            if let Some(rest) = raw.strip_prefix("{\"name\": \"") {
                if let Some(end) = rest.find('"') {
                    out.records.push((rest[..end].to_string(), raw.to_string()));
                }
            }
            continue;
        }
        if trimmed.starts_with("\"pressure\"") {
            block = Some(("pressure", Vec::new()));
        } else if trimmed.starts_with("\"churn\"") {
            block = Some(("churn", Vec::new()));
        } else if trimmed.starts_with("\"soak\"") {
            block = Some(("soak", Vec::new()));
        }
    }
    out
}

/// Extract a numeric field from a single-line JSON record this tool wrote
/// (`"field": 12.3,` or `"field": 45}` — terminated by `,` or `}`).
fn json_field_num(line: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Serialize the measurement records as `BENCH_repro.json`, merging with an
/// existing file: records are upserted by command name (an earlier `repro
/// all` is not clobbered by a later `repro probe:lbm`), and a previously
/// recorded pressure table survives unless this run regenerated it.
///
/// Two summary blocks follow the records. `invocation` covers only the
/// commands *this run* executed — its `sim_cycles` and cache counters are
/// what prove (or disprove) cross-figure cell reuse. `total` is recomputed
/// as the sum over every merged record, so it describes the whole file
/// rather than, misleadingly, whichever subset of commands ran last.
fn write_bench_json(
    records: &[CmdRecord],
    opts: &FigOpts,
    configs: &[PinConfig],
    pressure: Option<&Table>,
    churn: Option<&Table>,
    soak: Option<&Table>,
) -> Result<(), String> {
    let path = "BENCH_repro.json";
    let existing = read_existing(path);
    // Upsert: existing records keep their position, new commands append.
    let mut merged: Vec<(String, String)> = existing.records;
    for r in records {
        let line = record_json(r);
        match merged.iter_mut().find(|(n, _)| *n == r.name) {
            Some(slot) => slot.1 = line,
            None => merged.push((r.name.clone(), line)),
        }
    }
    let inv_ms: f64 = records.iter().map(|r| r.wall_ms).sum();
    let inv_cycles: u64 = records.iter().map(|r| r.sim_cycles).sum();
    let inv_hits: u64 = records.iter().map(|r| r.cache_hits).sum();
    let inv_misses: u64 = records.iter().map(|r| r.cache_misses).sum();
    let total_ms: f64 = merged
        .iter()
        .filter_map(|(_, l)| json_field_num(l, "wall_ms"))
        .sum();
    let total_cycles: u64 = merged
        .iter()
        .filter_map(|(_, l)| json_field_num(l, "sim_cycles"))
        .map(|v| v as u64)
        .sum();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"repro\",\n");
    s.push_str(&format!("  \"reps\": {},\n", opts.reps));
    s.push_str(&format!("  \"scale\": {},\n", opts.scale));
    s.push_str(&format!(
        "  \"configs\": [{}],\n",
        configs
            .iter()
            .map(|c| format!("\"{}\"", json_escape(&c.to_string())))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str("  \"commands\": [\n");
    for (i, (_, line)) in merged.iter().enumerate() {
        s.push_str(&format!(
            "    {line}{}\n",
            if i + 1 < merged.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    if let Some(t) = pressure {
        s.push_str(&format!("  \"pressure\": {},\n", json_table(t, "  ")));
    } else if let Some(raw) = &existing.pressure_raw {
        s.push_str(&format!("  \"pressure\": [\n{raw}\n  ],\n"));
    }
    if let Some(t) = churn {
        s.push_str(&format!("  \"churn\": {},\n", json_table(t, "  ")));
    } else if let Some(raw) = &existing.churn_raw {
        s.push_str(&format!("  \"churn\": [\n{raw}\n  ],\n"));
    }
    if let Some(t) = soak {
        s.push_str(&format!("  \"soak\": {},\n", json_table(t, "  ")));
    } else if let Some(raw) = &existing.soak_raw {
        s.push_str(&format!("  \"soak\": [\n{raw}\n  ],\n"));
    }
    let (journal_hits, journal_appends, journal_replayed) = journal::counters();
    let (oom_kills, admission_rejects, alloc_retries) = pressure_stats();
    s.push_str(&format!(
        "  \"invocation\": {{\"commands\": [{}], \"jobs\": {}, \"cache_enabled\": {}, \
         \"wall_ms\": {inv_ms:.3}, \"sim_cycles\": {inv_cycles}, \
         \"cache_hits\": {inv_hits}, \"cache_misses\": {inv_misses}, \
         \"journal\": {{\"enabled\": {}, \"replayed\": {journal_replayed}, \
         \"hits\": {journal_hits}, \"appended\": {journal_appends}}}, \
         \"poisoned_cells\": {}, \"host_faults_injected\": {}, \"retries_used\": {}, \
         \"oom_kills\": {oom_kills}, \"admission_rejects\": {admission_rejects}, \
         \"alloc_retries\": {alloc_retries}}},\n",
        records
            .iter()
            .map(|r| format!("\"{}\"", json_escape(&r.name)))
            .collect::<Vec<_>>()
            .join(", "),
        available_jobs(),
        simcache::enabled(),
        journal::enabled(),
        poisoned_cells(),
        hostfault::injected(),
        retries_used(),
    ));
    s.push_str(&format!(
        "  \"total\": {{\"wall_ms\": {total_ms:.3}, \"sim_cycles\": {total_cycles}}}\n"
    ));
    s.push_str("}\n");
    // Crash-safe: write a temp file in the same directory, then atomically
    // rename over the target — a kill mid-write can no longer leave a
    // half-written perf trajectory behind.
    let tmp = format!("{path}.tmp.{}", std::process::id());
    std::fs::write(&tmp, &s).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot rename {tmp} over {path}: {e}")
    })?;
    eprintln!("wrote {path}");
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = FigOpts::default();
    let mut configs: Vec<PinConfig> = PinConfig::ALL.to_vec();
    let mut cmds: Vec<String> = Vec::new();
    let mut it = args.iter();
    // A missing or malformed flag argument is a usage error with a one-line
    // message and exit code 2 — never a panic.
    fn arg<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> &'a String {
        it.next()
            .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => {
                opts.reps = arg(&mut it, "--reps")
                    .parse()
                    .unwrap_or_else(|_| fail("--reps wants a positive integer"));
            }
            "--scale" => {
                opts.scale = arg(&mut it, "--scale")
                    .parse()
                    .unwrap_or_else(|_| fail("--scale wants a number"));
            }
            "--csv" => opts.csv = true,
            "--profile" => profile::set_enabled(true),
            "--engine" => match arg(&mut it, "--engine").as_str() {
                "exact" => set_engine_mode(EngineMode::Exact),
                "sampled" => set_engine_mode(EngineMode::Sampled),
                other => fail(&format!(
                    "--engine wants 'exact' or 'sampled', got {other:?}"
                )),
            },
            "--strict-deadline" => set_strict_deadline(true),
            "--jobs" => match parse_jobs(arg(&mut it, "--jobs")) {
                Ok(n) => set_jobs(n),
                Err(e) => fail(&format!("invalid --jobs: {e}")),
            },
            "--configs" => {
                configs = arg(&mut it, "--configs")
                    .split(',')
                    .map(|s| {
                        parse_config(s).unwrap_or_else(|| fail(&format!("unknown config {s:?}")))
                    })
                    .collect();
            }
            c if !c.starts_with('-') => cmds.push(c.to_string()),
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if cmds.is_empty() {
        cmds.push("all".to_string());
    }
    if opts.reps < 1 {
        fail("--reps must be at least 1");
    }
    if opts.scale.is_nan() || opts.scale < 0.0 {
        fail("--scale must be non-negative");
    }
    // Environment knobs are validated up front: a typo'd TINT_JOBS or
    // TINT_HOST_FAULT must stop the run before 20 minutes of simulation.
    if let Err(e) = validate_env_jobs() {
        fail(&e);
    }
    if let Ok(v) = std::env::var("TINT_HOST_FAULT") {
        match HostFaultPlan::parse(&v) {
            Ok(plan) => hostfault::set_plan(Some(plan)),
            Err(e) => fail(&format!("invalid TINT_HOST_FAULT: {e}")),
        }
    }
    let _ = cell_retries(); // surface a TINT_CELL_RETRIES warning early
    let _ = cell_timeout(); // likewise for TINT_CELL_TIMEOUT_S

    // Durability and graceful shutdown: arm the journal (TINT_JOURNAL=0
    // disables, TINT_JOURNAL=<dir> relocates), replay prior completed
    // cells into the cell cache, and convert SIGINT/SIGTERM into a
    // cooperative drain + journal flush + resume notice.
    install_cancel_handlers();
    journal::configure_default();
    let replay = journal::replay();
    if replay.replayed > 0 || replay.quarantined {
        eprintln!(
            "journal: replayed {} completed cells{}{}",
            replay.replayed,
            if replay.torn_dropped > 0 {
                " (dropped a torn final write)"
            } else {
                ""
            },
            if replay.quarantined {
                " (corrupt journal quarantined)"
            } else {
                ""
            },
        );
    }

    let mut ctx = Ctx {
        opts,
        configs,
        matrix: None,
        fig13_14: None,
        pressure: None,
        churn: None,
        soak: None,
        validation_failed: false,
    };
    let mut records = Vec::with_capacity(cmds.len());
    for cmd in &cmds {
        let cycles_before = simulated_cycles();
        let (hits_before, misses_before) = simcache::stats();
        profile::reset();
        let start = std::time::Instant::now();
        run_cmd(&mut ctx, cmd);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let (hits_after, misses_after) = simcache::stats();
        let (cache_hits, cache_misses) = (hits_after - hits_before, misses_after - misses_before);
        let prof = profile::enabled().then(profile::snapshot);
        if let Some(nanos) = &prof {
            println!("-- pipeline self-profile ({cmd}) --");
            print!("{}", ctx.opts.render(&profile_table(nanos, wall_ms)));
            println!("cell cache: {cache_hits} hits, {cache_misses} misses");
        }
        records.push(CmdRecord {
            name: cmd.clone(),
            wall_ms,
            sim_cycles: simulated_cycles() - cycles_before,
            reps: ctx.opts.reps,
            scale: ctx.opts.scale,
            cache_hits,
            cache_misses,
            engine: if engine_mode() == EngineMode::Sampled {
                "sampled"
            } else {
                "exact"
            },
            profile: prof,
        });
    }
    journal::flush();
    if let Err(e) = write_bench_json(
        &records,
        &ctx.opts,
        &ctx.configs,
        ctx.pressure.as_ref(),
        ctx.churn.as_ref(),
        ctx.soak.as_ref(),
    ) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    if ctx.validation_failed {
        eprintln!(
            "error: validate-sampled exceeded the {SAMPLED_ERR_BOUND_PCT:.1}% ratio error bound \
             (see table above)"
        );
        std::process::exit(1);
    }
    if poisoned_cells() > 0 {
        eprintln!(
            "error: {} cell(s) failed after {} retr{} and render as ERR above \
             ({} host fault(s) injected); rerun to retry them",
            poisoned_cells(),
            retries_used(),
            if retries_used() == 1 { "y" } else { "ies" },
            hostfault::injected(),
        );
        std::process::exit(1);
    }
}
