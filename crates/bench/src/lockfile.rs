//! Advisory `O_EXCL` lockfiles with stale-lock takeover.
//!
//! Two harness paths need cross-*process* mutual exclusion on a shared
//! file-system resource: journal generation GC ([`crate::journal::gc`])
//! must never run twice concurrently over the same store, and concurrent
//! `repro` processes finishing at the same time must not interleave their
//! read-merge-write of `BENCH_repro.json`. Both use the same primitive: a
//! lockfile created with `O_CREAT|O_EXCL` (atomic on every POSIX
//! filesystem — exactly one creator wins) whose contents are the holder's
//! pid.
//!
//! A crashed holder leaves the lockfile behind, so acquisition performs
//! *stale-lock takeover*: if the recorded pid no longer names a live
//! process (checked via `/proc/<pid>`; an unreadable or unparsable pid is
//! treated as stale too), the lock is deleted and acquisition retried.
//! A live holder makes [`Lockfile::acquire`] fail fast — callers choose
//! whether to error out (GC) or wait briefly ([`Lockfile::acquire_wait`],
//! the BENCH_repro.json merge).
//!
//! The lock is released on [`Drop`], so an early return cannot leak it;
//! only a SIGKILL can, and that is exactly the case takeover handles.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A held lockfile; dropping it releases the lock.
#[derive(Debug)]
pub struct Lockfile {
    path: PathBuf,
}

/// Is `pid` a live process? Linux: `/proc/<pid>` exists. On non-Linux
/// hosts the check degrades to "assume live" so a lock is never stolen
/// from a process we cannot observe.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

impl Lockfile {
    /// Try to acquire `path` once (plus at most one stale-lock takeover).
    /// Returns `Err` with a human-readable reason when a live process
    /// holds the lock or the filesystem refuses the create.
    pub fn acquire(path: &Path) -> Result<Self, String> {
        for _ in 0..2 {
            match std::fs::OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(path)
            {
                Ok(mut f) => {
                    // Best-effort pid stamp; an empty lock is still a lock
                    // (it reads as stale-by-unparsable for takeover).
                    let _ = writeln!(f, "{}", std::process::id());
                    return Ok(Self {
                        path: path.to_path_buf(),
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if pid_alive(pid) => {
                            return Err(format!(
                                "{} is held by live process {pid}",
                                path.display()
                            ));
                        }
                        // Dead holder or unreadable/garbled lock: stale.
                        // Remove and retry the exclusive create once (a
                        // racing taker may beat us to recreation, which
                        // the second loop iteration reports honestly).
                        _ => {
                            let _ = std::fs::remove_file(path);
                        }
                    }
                }
                Err(e) => return Err(format!("cannot create {}: {e}", path.display())),
            }
        }
        Err(format!(
            "{} was recreated while taking over a stale lock",
            path.display()
        ))
    }

    /// [`Self::acquire`], retrying for up to `wait` while a live holder
    /// has the lock (10 ms poll). Returns the last error on timeout.
    pub fn acquire_wait(path: &Path, wait: Duration) -> Result<Self, String> {
        let deadline = Instant::now() + wait;
        loop {
            match Self::acquire(path) {
                Ok(l) => return Ok(l),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// The lockfile's path (diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Lockfile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tint-lock-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn exclusive_while_held_released_on_drop() {
        let dir = scratch("excl");
        let path = dir.join("x.lock");
        let held = Lockfile::acquire(&path).expect("first acquire succeeds");
        // Our own pid is alive, so a second acquire must fail fast.
        let err = Lockfile::acquire(&path).expect_err("held lock must refuse");
        assert!(err.contains("held by live process"), "{err}");
        drop(held);
        assert!(!path.exists(), "drop releases the lock");
        let _again = Lockfile::acquire(&path).expect("reacquire after drop");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_locks_are_taken_over() {
        let dir = scratch("stale");
        let path = dir.join("x.lock");
        // A dead pid: spawn a process and wait for it to exit.
        let dead_pid = std::process::Command::new("true")
            .spawn()
            .map(|mut c| {
                let pid = c.id();
                let _ = c.wait();
                pid
            })
            .expect("spawn true");
        std::fs::write(&path, format!("{dead_pid}\n")).unwrap();
        let _l = Lockfile::acquire(&path).expect("dead-pid lock is stale");
        drop(_l);
        // A garbled lock (unparsable pid) is also stale.
        std::fs::write(&path, "not-a-pid\n").unwrap();
        let _l = Lockfile::acquire(&path).expect("garbled lock is stale");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
