//! Persistent, crash-safe cell journal.
//!
//! The simcache ([`crate::simcache`]) makes cells free to reuse *within* a
//! process; this module makes completed cells survive the process. Every
//! simulated cell is appended to an on-disk journal as a self-delimiting,
//! CRC-protected record of its content key ([`CellKey`]) plus the full
//! [`ExpResult`]. On startup the journal is replayed into the simcache, so
//! a killed `repro` run resumes by simulating only the cells it never
//! finished — cells are bit-deterministic per content key, which is what
//! makes serving a journaled result indistinguishable from re-simulating.
//!
//! ## On-disk format (version 1)
//!
//! One file, `cells.v1.jnl`, inside the journal directory:
//!
//! ```text
//! magic "TINTJNL1" (8 bytes)
//! entry*:
//!   len:   u32 LE   payload length in bytes
//!   crc:   u32 LE   CRC-32 (IEEE) of the payload
//!   payload: len bytes — CellKey then ExpResult, little-endian fields
//! ```
//!
//! Each entry is appended with a single `write_all`, so a crash can only
//! tear the *final* entry. Replay distinguishes the two failure shapes:
//!
//! * **torn final write** — the file ends before the last entry's declared
//!   length: the fragment is dropped silently and the file truncated back
//!   to the last good entry (the normal SIGKILL case);
//! * **mid-stream corruption** — a CRC mismatch, an insane length, or an
//!   undecodable payload with more data after it: the whole file is
//!   quarantined (renamed to `cells.v1.jnl.corrupt`), the good prefix is
//!   kept — replayed and rewritten into a fresh journal — and the run
//!   continues; the journal never panics the harness.
//!
//! ## Activation
//!
//! The journal is inert until armed. The `repro` binary arms it at startup
//! ([`configure_default`]): `TINT_JOURNAL=0` (or empty) disables it,
//! `TINT_JOURNAL=<dir>` overrides the location, unset means
//! `.tint-journal/` in the working directory. Library tests arm a private
//! directory with [`set_dir`]. Replay requires the simcache (that is the
//! serving path): with `TINT_SIM_CACHE=0` the journal still records
//! completed cells but cannot serve them.
//!
//! Poisoned cells (worker panics, deadline kills — see
//! [`crate::runner`]) are never journaled: a resume retries them.

use crate::runner::ExpResult;
use crate::simcache::{self, CellKey};
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tint_spmd::RunMetrics;
use tint_workloads::PinConfig;
use tintmalloc::colors::ColorScheme;

/// Journal file name inside the journal directory (the `v1` is the format
/// version: readers reject other magics rather than guessing).
pub const FILE_NAME: &str = "cells.v1.jnl";

/// 8-byte file magic; the trailing `1` is the format version.
const MAGIC: &[u8; 8] = b"TINTJNL1";

/// Upper bound on one entry's payload (a cell record is ~200 bytes; a
/// length beyond this is corruption, not a big record).
const MAX_ENTRY: u32 = 1 << 20;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, in-tree (offline build: no crates)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data` — the per-entry integrity check.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Payload encoding (hand-rolled little-endian; no serde in the tree)
// ---------------------------------------------------------------------------

/// Stable wire code for a [`ColorScheme`] (declaration order; the wire
/// format must not depend on `ColorScheme::ALL`'s presentation order).
fn scheme_code(s: ColorScheme) -> u8 {
    match s {
        ColorScheme::Buddy => 0,
        ColorScheme::LegacyGlobal => 1,
        ColorScheme::LlcOnly => 2,
        ColorScheme::MemOnly => 3,
        ColorScheme::MemLlc => 4,
        ColorScheme::MemLlcPart => 5,
        ColorScheme::LlcMemPart => 6,
        ColorScheme::Bpm => 7,
        ColorScheme::Palloc => 8,
    }
}

fn scheme_from(code: u8) -> Option<ColorScheme> {
    Some(match code {
        0 => ColorScheme::Buddy,
        1 => ColorScheme::LegacyGlobal,
        2 => ColorScheme::LlcOnly,
        3 => ColorScheme::MemOnly,
        4 => ColorScheme::MemLlc,
        5 => ColorScheme::MemLlcPart,
        6 => ColorScheme::LlcMemPart,
        7 => ColorScheme::Bpm,
        8 => ColorScheme::Palloc,
        _ => return None,
    })
}

fn pin_code(p: PinConfig) -> u8 {
    match p {
        PinConfig::T16N4 => 0,
        PinConfig::T8N4 => 1,
        PinConfig::T8N2 => 2,
        PinConfig::T4N4 => 3,
        PinConfig::T4N1 => 4,
    }
}

fn pin_from(code: u8) -> Option<PinConfig> {
    Some(match code {
        0 => PinConfig::T16N4,
        1 => PinConfig::T8N4,
        2 => PinConfig::T8N2,
        3 => PinConfig::T4N4,
        4 => PinConfig::T4N1,
        _ => return None,
    })
}

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn vec_u64(&mut self, v: &[u64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
    fn vec_u64(&mut self) -> Option<Vec<u64>> {
        let n = self.u32()? as usize;
        if n > 4096 {
            return None; // larger than any thread team: corruption
        }
        (0..n).map(|_| self.u64()).collect()
    }
}

/// Serialize one `(key, result)` cell record.
fn encode(key: &CellKey, r: &ExpResult) -> Vec<u8> {
    let mut e = Enc(Vec::with_capacity(192));
    e.u64(key.fingerprint);
    e.u8(scheme_code(key.scheme));
    e.u8(pin_code(key.pin));
    // Engine-mode byte: 0 = exact batched, 1 = reference pipeline,
    // 2 = sampled. Values 0/1 predate sampled mode, so old v1 journals
    // decode unchanged.
    e.u8(if key.sampled {
        2
    } else {
        key.reference_pipeline as u8
    });
    e.u64(key.seed);
    let m = &r.metrics;
    e.u32(m.threads as u32);
    e.u64(m.runtime);
    e.vec_u64(&m.thread_runtime);
    e.vec_u64(&m.thread_idle);
    e.u64(m.serial_cycles);
    e.u32(m.parallel_sections as u32);
    e.f64(r.remote_fraction);
    e.u64(r.llc_interference);
    e.f64(r.row_hit_rate);
    e.u64(r.pages_moved);
    e.u64(r.page_faults);
    e.u64(r.fault_cycles);
    e.f64(r.l3_miss_rate);
    e.f64(r.mean_latency);
    e.u64(r.color_list_moves);
    e.0
}

/// Decode one cell record; `None` means the payload is not a well-formed
/// record (treated as corruption by the replayer).
fn decode(payload: &[u8]) -> Option<(CellKey, ExpResult)> {
    let mut d = Dec {
        buf: payload,
        at: 0,
    };
    let (fingerprint, scheme, pin) = (d.u64()?, scheme_from(d.u8()?)?, pin_from(d.u8()?)?);
    let (reference_pipeline, sampled) = match d.u8()? {
        0 => (false, false),
        1 => (true, false),
        2 => (false, true),
        _ => return None,
    };
    let key = CellKey {
        fingerprint,
        scheme,
        pin,
        reference_pipeline,
        sampled,
        seed: d.u64()?,
    };
    let threads = d.u32()? as usize;
    let runtime = d.u64()?;
    let thread_runtime = d.vec_u64()?;
    let thread_idle = d.vec_u64()?;
    if thread_runtime.len() != threads || thread_idle.len() != threads {
        return None;
    }
    let metrics = RunMetrics {
        threads,
        runtime,
        thread_runtime,
        thread_idle,
        serial_cycles: d.u64()?,
        parallel_sections: d.u32()? as usize,
    };
    let r = ExpResult {
        metrics,
        remote_fraction: d.f64()?,
        llc_interference: d.u64()?,
        row_hit_rate: d.f64()?,
        pages_moved: d.u64()?,
        page_faults: d.u64()?,
        fault_cycles: d.u64()?,
        l3_miss_rate: d.f64()?,
        mean_latency: d.f64()?,
        color_list_moves: d.u64()?,
        poisoned: false,
    };
    if d.at != payload.len() {
        return None; // trailing bytes: not a record this version wrote
    }
    Some((key, r))
}

/// One framed entry: `len | crc | payload`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------------
// Journal state
// ---------------------------------------------------------------------------

/// What replay found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Cell records replayed into the simcache.
    pub replayed: u64,
    /// Trailing bytes dropped as a torn final write.
    pub torn_dropped: u64,
    /// True when mid-stream corruption quarantined the file.
    pub quarantined: bool,
}

struct State {
    /// `None` = disabled/unarmed; `Some(dir)` = armed.
    dir: Option<PathBuf>,
    /// Open journal file, positioned at its (validated) end.
    file: Option<File>,
    /// Keys loaded from disk this process — the set behind the
    /// journal-hit counter that proves a resume reused prior work.
    replayed: HashSet<CellKey>,
    /// Replay already ran for the current `dir`.
    replay_done: bool,
    stats: ReplayStats,
}

static STATE: Mutex<Option<State>> = Mutex::new(None);
static HITS: AtomicU64 = AtomicU64::new(0);
static APPENDS: AtomicU64 = AtomicU64::new(0);

fn with_state<T>(f: impl FnOnce(&mut State) -> T) -> T {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let state = guard.get_or_insert_with(|| State {
        dir: None,
        file: None,
        replayed: HashSet::new(),
        replay_done: false,
        stats: ReplayStats::default(),
    });
    f(state)
}

/// Arm the journal the way the `repro` binary does: `TINT_JOURNAL=0`/empty
/// disables it, `TINT_JOURNAL=<dir>` relocates it, unset means
/// `.tint-journal/` in the working directory. Library code (tests) never
/// arms the journal implicitly — use [`set_dir`].
pub fn configure_default() {
    match std::env::var_os("TINT_JOURNAL") {
        Some(v) if v.is_empty() || v == *"0" => set_dir(None),
        Some(v) => set_dir(Some(Path::new(&v))),
        None => set_dir(Some(Path::new(".tint-journal"))),
    }
}

/// Arm the journal at `dir` (or disarm with `None`), resetting all journal
/// state: the open file, the replayed-key set, and the counters. Tests use
/// this to simulate process death — `set_dir` to the same directory again
/// behaves exactly like a fresh process finding the file on disk.
pub fn set_dir(dir: Option<&Path>) {
    with_state(|s| {
        s.dir = dir.map(Path::to_path_buf);
        s.file = None;
        s.replayed.clear();
        s.replay_done = false;
        s.stats = ReplayStats::default();
    });
    HITS.store(0, Ordering::Relaxed);
    APPENDS.store(0, Ordering::Relaxed);
}

/// Is the journal armed (a directory configured)?
pub fn enabled() -> bool {
    with_state(|s| s.dir.is_some())
}

/// `(journal hits, cells appended, cells replayed)` so far. A *journal
/// hit* is a cell served from the simcache whose value was loaded from
/// disk — the counter a resumed run uses to prove the completed prefix was
/// not re-simulated.
pub fn counters() -> (u64, u64, u64) {
    (
        HITS.load(Ordering::Relaxed),
        APPENDS.load(Ordering::Relaxed),
        with_state(|s| s.stats.replayed),
    )
}

/// Count a simcache hit as a journal hit when the key came from disk.
/// Called by the runner on every cache hit; cheap no-op when unarmed.
pub fn note_replayed_hit(key: &CellKey) {
    let replayed = with_state(|s| s.replay_done && s.replayed.contains(key));
    if replayed {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Replay the journal into the simcache (idempotent; also called lazily by
/// [`append`]). Returns what was found. Disabled/unarmed → all-zero stats.
pub fn replay() -> ReplayStats {
    with_state(|s| {
        if s.replay_done || s.dir.is_none() {
            return s.stats;
        }
        s.replay_done = true;
        s.stats = replay_locked(s);
        s.stats
    })
}

/// The replay body; `s.dir` is `Some`. Opens (creating if needed) the
/// journal file, validates every entry, loads the good prefix, repairs the
/// file (truncate a torn tail; quarantine mid-stream corruption) and
/// leaves `s.file` open at the end for appends.
fn replay_locked(s: &mut State) -> ReplayStats {
    let dir = s.dir.clone().expect("replay_locked requires an armed dir");
    let mut stats = ReplayStats::default();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "journal: cannot create {} ({e}); journaling disabled for this run",
            dir.display()
        );
        s.dir = None;
        return stats;
    }
    let path = dir.join(FILE_NAME);
    let bytes = std::fs::read(&path).unwrap_or_default();

    // Decide how much of the file is trustworthy.
    let mut good: Vec<(CellKey, ExpResult)> = Vec::new();
    let mut good_end = 0usize; // byte offset after the last good entry
    let mut quarantine = false;
    if bytes.len() < MAGIC.len() {
        // Empty or sub-magic fragment: start fresh (a torn first write).
        stats.torn_dropped = bytes.len() as u64;
    } else if &bytes[..MAGIC.len()] != MAGIC {
        quarantine = true;
    } else {
        good_end = MAGIC.len();
        let mut at = MAGIC.len();
        loop {
            let remaining = bytes.len() - at;
            if remaining == 0 {
                break;
            }
            if remaining < 8 {
                stats.torn_dropped += remaining as u64; // torn header
                break;
            }
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
            if len > MAX_ENTRY {
                quarantine = true; // insane length: corruption, not a tear
                break;
            }
            if remaining < 8 + len as usize {
                stats.torn_dropped += remaining as u64; // torn payload
                break;
            }
            let payload = &bytes[at + 8..at + 8 + len as usize];
            if crc32(payload) != crc {
                quarantine = true;
                break;
            }
            match decode(payload) {
                Some(kv) => good.push(kv),
                None => {
                    quarantine = true;
                    break;
                }
            }
            at += 8 + len as usize;
            good_end = at;
        }
    }

    // Load the good prefix into the simcache (the serving path) and the
    // replayed-key set (the journal-hit accounting).
    let mut dedup: HashMap<CellKey, ExpResult> = HashMap::new();
    for (k, v) in good {
        dedup.insert(k, v);
    }
    stats.replayed = dedup.len() as u64;
    for (k, v) in &dedup {
        if simcache::enabled() {
            simcache::insert(*k, v);
        }
        s.replayed.insert(*k);
    }

    let file = if quarantine {
        stats.quarantined = true;
        let corrupt = dir.join(format!("{FILE_NAME}.corrupt"));
        if let Err(e) = std::fs::rename(&path, &corrupt) {
            eprintln!("journal: quarantine rename failed ({e}); rewriting in place");
        } else {
            eprintln!(
                "journal: {} is corrupt mid-stream; quarantined to {} \
                 ({} good cells kept)",
                path.display(),
                corrupt.display(),
                stats.replayed
            );
        }
        // Fresh journal carrying the good prefix so it stays durable.
        fresh_file(&path, &dedup)
    } else {
        match OpenOptions::new().create(true).append(true).open(&path) {
            Ok(f) => {
                if good_end == 0 {
                    // New or sub-magic file: (re)write the magic.
                    f.set_len(0).ok();
                    let mut f = f;
                    if f.write_all(MAGIC).is_err() {
                        None
                    } else {
                        Some(f)
                    }
                } else {
                    // Drop any torn tail so appends restart on a boundary.
                    if (good_end as u64) < bytes.len() as u64 {
                        f.set_len(good_end as u64).ok();
                    }
                    Some(f)
                }
            }
            Err(e) => {
                eprintln!(
                    "journal: cannot open {} ({e}); journaling disabled",
                    path.display()
                );
                None
            }
        }
    };
    match file {
        Some(f) => s.file = Some(f),
        None => s.dir = None, // unusable: disable for this run
    }
    stats
}

/// Write a brand-new journal file containing `cells` (quarantine path).
fn fresh_file(path: &Path, cells: &HashMap<CellKey, ExpResult>) -> Option<File> {
    let mut f = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)
        .ok()?;
    f.write_all(MAGIC).ok()?;
    for (k, v) in cells {
        f.write_all(&frame(&encode(k, v))).ok()?;
    }
    Some(f)
}

/// Append one completed cell. Lazily replays first (so tests that only
/// append still find prior runs' cells). Poisoned results must not reach
/// the journal — the runner filters them; this is a debug-build backstop.
pub fn append(key: &CellKey, r: &ExpResult) {
    debug_assert!(!r.poisoned, "poisoned cells are never journaled");
    if !enabled() {
        return;
    }
    replay();
    let entry = frame(&encode(key, r));
    let ok = with_state(|s| match s.file.as_mut() {
        Some(f) => f.write_all(&entry).is_ok(),
        None => false,
    });
    if ok {
        APPENDS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Flush journal appends to the OS (graceful-shutdown path). Appends are
/// unbuffered single `write_all`s, so this is a best-effort `sync_data`
/// for the power-loss case; a SIGKILL already cannot tear more than the
/// final entry.
pub fn flush() {
    with_state(|s| {
        if let Some(f) = s.file.as_mut() {
            f.sync_data().ok();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard CRC-32 (IEEE) check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let key = CellKey {
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            scheme: ColorScheme::MemLlcPart,
            pin: PinConfig::T8N2,
            seed: 7,
            reference_pipeline: true,
            sampled: false,
        };
        let r = ExpResult {
            metrics: RunMetrics {
                threads: 3,
                runtime: 123,
                thread_runtime: vec![1, 2, 3],
                thread_idle: vec![4, 5, 6],
                serial_cycles: 9,
                parallel_sections: 2,
            },
            remote_fraction: 0.25,
            llc_interference: 11,
            row_hit_rate: 0.5,
            pages_moved: 13,
            page_faults: 17,
            fault_cycles: 19,
            l3_miss_rate: 0.125,
            mean_latency: 42.5,
            color_list_moves: 23,
            poisoned: false,
        };
        let (k2, r2) = decode(&encode(&key, &r)).expect("roundtrip decodes");
        assert_eq!(k2, key);
        assert_eq!(r2, r);

        // The mode byte also distinguishes sampled cells, and an exact-mode
        // record (code 0) never decodes as sampled.
        let sampled_key = CellKey {
            reference_pipeline: false,
            sampled: true,
            ..key
        };
        let (k3, _) = decode(&encode(&sampled_key, &r)).expect("sampled roundtrip decodes");
        assert_eq!(k3, sampled_key);
        let exact_key = CellKey {
            reference_pipeline: false,
            sampled: false,
            ..key
        };
        let (k4, _) = decode(&encode(&exact_key, &r)).expect("exact roundtrip decodes");
        assert!(!k4.sampled && !k4.reference_pipeline);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_garbage() {
        let key = CellKey {
            fingerprint: 1,
            scheme: ColorScheme::Buddy,
            pin: PinConfig::T4N1,
            seed: 1,
            reference_pipeline: false,
            sampled: false,
        };
        let r = ExpResult {
            metrics: RunMetrics::new(2),
            remote_fraction: 0.0,
            llc_interference: 0,
            row_hit_rate: 0.0,
            pages_moved: 0,
            page_faults: 0,
            fault_cycles: 0,
            l3_miss_rate: 0.0,
            mean_latency: 0.0,
            color_list_moves: 0,
            poisoned: false,
        };
        let full = encode(&key, &r);
        assert!(decode(&full[..full.len() - 1]).is_none());
        let mut extended = full.clone();
        extended.push(0);
        assert!(decode(&extended).is_none());
    }

    #[test]
    fn scheme_and_pin_codes_roundtrip() {
        for s in ColorScheme::ALL {
            assert_eq!(scheme_from(scheme_code(s)), Some(s));
        }
        for p in PinConfig::ALL {
            assert_eq!(pin_from(pin_code(p)), Some(p));
        }
        assert_eq!(scheme_from(200), None);
        assert_eq!(pin_from(200), None);
    }
}
