//! Persistent, crash-safe, multi-process **cell farm**.
//!
//! The simcache ([`crate::simcache`]) makes cells free to reuse *within* a
//! process; this module makes completed cells survive the process — and,
//! since v2, survive *concurrent* processes. Every simulated cell is
//! appended to an on-disk journal as a self-delimiting, CRC-protected
//! record of its content key ([`CellKey`]) plus the full [`ExpResult`]. On
//! startup the store is replayed into the simcache, so a killed `repro`
//! run resumes by simulating only the cells it never finished, and a fleet
//! of `repro` processes sharing one journal directory collectively only
//! ever simulates new cells — cells are bit-deterministic per content key,
//! which is what makes serving a journaled result indistinguishable from
//! re-simulating.
//!
//! ## On-disk layout (version 2)
//!
//! ```text
//! <journal dir>/
//!   cells.v1.jnl              legacy single-file journal (read-once; see below)
//!   cells.v1.jnl.migrated     marker: the v1 file has been absorbed
//!   cells.v2/                 the store root
//!     gc.lock                 O_EXCL GC lockfile (only while GC runs)
//!     gen-00000001/           a *generation*: a directory of shards
//!       <pid>-<nonce>.jnl     one append-only shard per writer process
//!     gen-00000002.tmp.<pid>  an uncommitted GC build (ignored by replay)
//!     <shard>.corrupt.<n>     quarantined corrupt shards (kept as evidence)
//! ```
//!
//! Each **shard** is owned by exactly one writer process: it is created
//! `O_CREAT|O_EXCL` under a pid+seeded-nonce name, so concurrent writers
//! never share a file and the append path needs no locks. A shard starts
//! with the magic `TINTJNL2` followed by framed entries:
//!
//! ```text
//! entry*:
//!   len:   u32 LE   payload length in bytes
//!   crc:   u32 LE   CRC-32 (IEEE) of the payload
//!   payload: len bytes — CellKey then ExpResult, little-endian fields
//! ```
//!
//! Replay scans every shard of the **current generation** (the
//! highest-numbered `gen-*` directory), merges them, and dedupes by
//! [`CellKey`]. Failure isolation is per shard, so one bad shard never
//! poisons its siblings:
//!
//! * **torn final write** — a shard ends before the last entry's declared
//!   length: the fragment is dropped *in memory only*. Foreign shards are
//!   never truncated or rewritten — a "torn tail" may be a live sibling's
//!   in-flight append. Dead tails are compacted away by GC.
//! * **mid-stream corruption** — a CRC mismatch, an insane length, or an
//!   undecodable payload with more data after it: that shard is
//!   quarantined (renamed to a unique `<name>.corrupt.<n>` in the store
//!   root, never clobbering a previous quarantine), its good prefix is
//!   rescued into this process's own shard, and replay continues with the
//!   other shards; the journal never panics the harness.
//!
//! ## Generations and GC
//!
//! Appends accumulate dead weight: superseded duplicates, dead torn
//! tails, shards of exited writers. [`gc`] (the `repro gc-journal`
//! command) compacts the store: it merges the current generation exactly
//! like replay, writes the live deduped cells into one fresh shard inside
//! a `gen-<N+1>.tmp.<pid>` build directory, fsyncs, and commits with a
//! **single atomic rename** to `gen-<N+1>` — so a crash at any point
//! leaves either the old or the new generation fully intact, and
//! concurrent readers of the old generation are unaffected. A `gc.lock`
//! `O_EXCL` lockfile (with stale-lock takeover, see [`crate::lockfile`])
//! keeps two GCs from racing. Old generations are removed only after the
//! commit rename.
//!
//! ## Fault tolerance (degradation contract)
//!
//! All journal write-path filesystem operations run under the seeded
//! [`crate::hostfault`] io shim (`TINT_HOST_FAULT=io:<permille>:<seed>`).
//! The journal **degrades gracefully**: a failed append repairs the entry
//! boundary (truncating its *own* shard back to the last good entry);
//! persistent failure (or an unusable journal directory) warns **once**,
//! disarms journaling, and the run completes correctly journal-less —
//! never a panic, never a corrupted good prefix. Figures are computed
//! from in-memory results and are unaffected.
//!
//! ## v1 migration
//!
//! A legacy `cells.v1.jnl` (magic `TINTJNL1`, same framing) is read once
//! on first v2 replay, absorbed into this process's shard, and a
//! `cells.v1.jnl.migrated` marker is dropped so later replays skip it;
//! the v1 file itself is left untouched (a corrupt v1 is quarantined to
//! `cells.v1.jnl.corrupt.<n>` like any shard).
//!
//! ## Activation
//!
//! The journal is inert until armed. The `repro` binary arms it at startup
//! ([`configure_default`]): `TINT_JOURNAL=0` (or empty) disables it,
//! `TINT_JOURNAL=<dir>` overrides the location, unset means
//! `.tint-journal/` in the working directory. Library tests arm a private
//! directory with [`set_dir`]. Replay requires the simcache (that is the
//! serving path): with `TINT_SIM_CACHE=0` the journal still records
//! completed cells but cannot serve them.
//!
//! Poisoned cells (worker panics, deadline kills — see
//! [`crate::runner`]) are never journaled: a resume retries them.

use crate::hostfault::{self, IoFault};
use crate::lockfile::Lockfile;
use crate::runner::ExpResult;
use crate::simcache::{self, CellKey};
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use tint_hw::rng::SplitMix64;
use tint_spmd::RunMetrics;
use tint_workloads::PinConfig;
use tintmalloc::colors::ColorScheme;

/// Legacy (v1) single-file journal name inside the journal directory.
pub const V1_FILE_NAME: &str = "cells.v1.jnl";

/// Marker dropped next to a v1 file once its cells have been absorbed
/// into the v2 store; later replays skip the v1 file when it exists.
pub const V1_MIGRATED_MARKER: &str = "cells.v1.jnl.migrated";

/// The v2 store root inside the journal directory.
pub const STORE_DIR: &str = "cells.v2";

/// The GC lockfile name inside the store root.
pub const GC_LOCK: &str = "gc.lock";

/// 8-byte v1 file magic; the trailing digit is the format version.
const V1_MAGIC: &[u8; 8] = b"TINTJNL1";

/// 8-byte v2 shard magic.
const SHARD_MAGIC: &[u8; 8] = b"TINTJNL2";

/// Upper bound on one entry's payload (a cell record is ~200 bytes; a
/// length beyond this is corruption, not a big record).
const MAX_ENTRY: u32 = 1 << 20;

/// Consecutive append failures before the journal disarms itself.
const MAX_IO_FAILURES: u8 = 3;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, in-tree (offline build: no crates)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data` — the per-entry integrity check.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Payload encoding (hand-rolled little-endian; no serde in the tree)
// ---------------------------------------------------------------------------

/// Stable wire code for a [`ColorScheme`] (declaration order; the wire
/// format must not depend on `ColorScheme::ALL`'s presentation order).
fn scheme_code(s: ColorScheme) -> u8 {
    match s {
        ColorScheme::Buddy => 0,
        ColorScheme::LegacyGlobal => 1,
        ColorScheme::LlcOnly => 2,
        ColorScheme::MemOnly => 3,
        ColorScheme::MemLlc => 4,
        ColorScheme::MemLlcPart => 5,
        ColorScheme::LlcMemPart => 6,
        ColorScheme::Bpm => 7,
        ColorScheme::Palloc => 8,
    }
}

fn scheme_from(code: u8) -> Option<ColorScheme> {
    Some(match code {
        0 => ColorScheme::Buddy,
        1 => ColorScheme::LegacyGlobal,
        2 => ColorScheme::LlcOnly,
        3 => ColorScheme::MemOnly,
        4 => ColorScheme::MemLlc,
        5 => ColorScheme::MemLlcPart,
        6 => ColorScheme::LlcMemPart,
        7 => ColorScheme::Bpm,
        8 => ColorScheme::Palloc,
        _ => return None,
    })
}

fn pin_code(p: PinConfig) -> u8 {
    match p {
        PinConfig::T16N4 => 0,
        PinConfig::T8N4 => 1,
        PinConfig::T8N2 => 2,
        PinConfig::T4N4 => 3,
        PinConfig::T4N1 => 4,
    }
}

fn pin_from(code: u8) -> Option<PinConfig> {
    Some(match code {
        0 => PinConfig::T16N4,
        1 => PinConfig::T8N4,
        2 => PinConfig::T8N2,
        3 => PinConfig::T4N4,
        4 => PinConfig::T4N1,
        _ => return None,
    })
}

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn vec_u64(&mut self, v: &[u64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u64(x);
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }
    fn vec_u64(&mut self) -> Option<Vec<u64>> {
        let n = self.u32()? as usize;
        if n > 4096 {
            return None; // larger than any thread team: corruption
        }
        (0..n).map(|_| self.u64()).collect()
    }
}

/// Serialize one `(key, result)` cell record.
fn encode(key: &CellKey, r: &ExpResult) -> Vec<u8> {
    let mut e = Enc(Vec::with_capacity(192));
    e.u64(key.fingerprint);
    e.u8(scheme_code(key.scheme));
    e.u8(pin_code(key.pin));
    // Engine-mode byte: 0 = exact batched, 1 = reference pipeline,
    // 2 = sampled. Values 0/1 predate sampled mode, so old v1 journals
    // decode unchanged.
    e.u8(if key.sampled {
        2
    } else {
        key.reference_pipeline as u8
    });
    e.u64(key.seed);
    let m = &r.metrics;
    e.u32(m.threads as u32);
    e.u64(m.runtime);
    e.vec_u64(&m.thread_runtime);
    e.vec_u64(&m.thread_idle);
    e.u64(m.serial_cycles);
    e.u32(m.parallel_sections as u32);
    e.f64(r.remote_fraction);
    e.u64(r.llc_interference);
    e.f64(r.row_hit_rate);
    e.u64(r.pages_moved);
    e.u64(r.page_faults);
    e.u64(r.fault_cycles);
    e.f64(r.l3_miss_rate);
    e.f64(r.mean_latency);
    e.u64(r.color_list_moves);
    e.0
}

/// Decode one cell record; `None` means the payload is not a well-formed
/// record (treated as corruption by the replayer).
fn decode(payload: &[u8]) -> Option<(CellKey, ExpResult)> {
    let mut d = Dec {
        buf: payload,
        at: 0,
    };
    let (fingerprint, scheme, pin) = (d.u64()?, scheme_from(d.u8()?)?, pin_from(d.u8()?)?);
    let (reference_pipeline, sampled) = match d.u8()? {
        0 => (false, false),
        1 => (true, false),
        2 => (false, true),
        _ => return None,
    };
    let key = CellKey {
        fingerprint,
        scheme,
        pin,
        reference_pipeline,
        sampled,
        seed: d.u64()?,
    };
    let threads = d.u32()? as usize;
    let runtime = d.u64()?;
    let thread_runtime = d.vec_u64()?;
    let thread_idle = d.vec_u64()?;
    if thread_runtime.len() != threads || thread_idle.len() != threads {
        return None;
    }
    let metrics = RunMetrics {
        threads,
        runtime,
        thread_runtime,
        thread_idle,
        serial_cycles: d.u64()?,
        parallel_sections: d.u32()? as usize,
    };
    let r = ExpResult {
        metrics,
        remote_fraction: d.f64()?,
        llc_interference: d.u64()?,
        row_hit_rate: d.f64()?,
        pages_moved: d.u64()?,
        page_faults: d.u64()?,
        fault_cycles: d.u64()?,
        l3_miss_rate: d.f64()?,
        mean_latency: d.f64()?,
        color_list_moves: d.u64()?,
        poisoned: false,
    };
    if d.at != payload.len() {
        return None; // trailing bytes: not a record this version wrote
    }
    Some((key, r))
}

/// One framed entry: `len | crc | payload`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------------
// Fault-shimmed filesystem primitives (write path only)
// ---------------------------------------------------------------------------
//
// Every state-changing filesystem operation the journal performs goes
// through one of these, which first consults the host-fault io schedule
// ([`hostfault::io_fault`]). Read-side operations are deliberately
// unshimmed: the degradation contract is about never *writing* badly.

fn fio_gate() -> std::io::Result<()> {
    match hostfault::io_fault() {
        Some(f) => Err(f.as_error()),
        None => Ok(()),
    }
}

fn fio_create_dir_all(p: &Path) -> std::io::Result<()> {
    fio_gate()?;
    std::fs::create_dir_all(p)
}

fn fio_open_excl(p: &Path) -> std::io::Result<File> {
    fio_gate()?;
    std::fs::OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(p)
}

/// Shimmed `write_all`. An injected [`IoFault::ShortWrite`] writes the
/// first half of `buf` for real and then reports failure — the torn-entry
/// shape a crash mid-`write` leaves behind.
fn fio_write_all(f: &mut File, buf: &[u8]) -> std::io::Result<()> {
    match hostfault::io_fault() {
        Some(IoFault::ShortWrite) => {
            let _ = f.write_all(&buf[..buf.len() / 2]);
            Err(IoFault::ShortWrite.as_error())
        }
        Some(fault) => Err(fault.as_error()),
        None => f.write_all(buf),
    }
}

fn fio_set_len(f: &File, len: u64) -> std::io::Result<()> {
    fio_gate()?;
    f.set_len(len)
}

fn fio_sync(f: &File) -> std::io::Result<()> {
    fio_gate()?;
    f.sync_data()
}

fn fio_rename(from: &Path, to: &Path) -> std::io::Result<()> {
    fio_gate()?;
    std::fs::rename(from, to)
}

// ---------------------------------------------------------------------------
// Store geometry
// ---------------------------------------------------------------------------

/// The v2 store root under a journal directory.
pub fn v2_root(dir: &Path) -> PathBuf {
    dir.join(STORE_DIR)
}

/// Directory name of generation `n`.
fn gen_name(n: u64) -> String {
    format!("gen-{n:08}")
}

/// The current (highest-numbered, committed) generation under `dir`'s
/// store root, if any. Uncommitted GC builds (`gen-*.tmp.<pid>`) and any
/// other stray names are ignored: only `gen-` followed by pure digits
/// counts, which is exactly what the atomic commit rename produces.
pub fn current_generation(dir: &Path) -> Option<(u64, PathBuf)> {
    let root = v2_root(dir);
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(&root).ok()?.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(digits) = name.strip_prefix("gen-") else {
            continue;
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let Ok(n) = digits.parse::<u64>() else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, entry.path()));
        }
    }
    best
}

/// First free `<file>.corrupt.<n>` (n = 1, 2, …) next to `root` for the
/// quarantine rename — never clobbers an earlier quarantine.
fn unique_corrupt_path(root: &Path, original: &Path) -> PathBuf {
    let base = original
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("shard.jnl")
        .to_string();
    for n in 1u64.. {
        let candidate = root.join(format!("{base}.corrupt.{n}"));
        if !candidate.exists() {
            return candidate;
        }
    }
    unreachable!("u64 quarantine slots exhausted");
}

// ---------------------------------------------------------------------------
// Journal state
// ---------------------------------------------------------------------------

/// What replay found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Distinct cell records replayed into the simcache.
    pub replayed: u64,
    /// Trailing bytes dropped (in memory) as torn final writes.
    pub torn_dropped: u64,
    /// Corrupt shards (or a corrupt v1 file) quarantined this replay.
    pub quarantined: u64,
    /// Healthy v2 shards merged.
    pub shards: u64,
    /// Cells absorbed from a legacy v1 journal.
    pub v1_absorbed: u64,
}

/// What a GC compaction did (the `repro gc-journal` report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Live deduped cells written into the new generation.
    pub live_cells: u64,
    /// Shards merged from the old generation.
    pub shards_merged: u64,
    /// Corrupt shards quarantined during the merge.
    pub quarantined: u64,
    /// Cells absorbed from a legacy v1 journal.
    pub v1_absorbed: u64,
    /// Store bytes before compaction (old generation + v1).
    pub bytes_before: u64,
    /// Store bytes after compaction (the new generation).
    pub bytes_after: u64,
    /// The committed generation number.
    pub generation: u64,
}

struct State {
    /// `None` = disabled/unarmed; `Some(dir)` = armed.
    dir: Option<PathBuf>,
    /// This process's own append shard, positioned at `shard_len`.
    shard: Option<File>,
    /// Validated length of the own shard (the repair boundary).
    shard_len: u64,
    /// Keys loaded from disk this process — the set behind the
    /// journal-hit counter that proves a resume reused prior work.
    replayed: HashSet<CellKey>,
    /// Replay already ran for the current `dir`.
    replay_done: bool,
    /// The journal disarmed itself after persistent io failure.
    io_disarmed: bool,
    /// Consecutive failed appends (reset by any success).
    io_fail_streak: u8,
    stats: ReplayStats,
}

static STATE: Mutex<Option<State>> = Mutex::new(None);
static HITS: AtomicU64 = AtomicU64::new(0);
static APPENDS: AtomicU64 = AtomicU64::new(0);
/// Mirror of `State::io_disarmed` readable without the lock (repro's
/// invocation JSON reads it after the run).
static IO_DISARMED: AtomicBool = AtomicBool::new(false);
/// Per-process shard-name nonce counter (mixed with pid + clock).
static NONCE: AtomicU64 = AtomicU64::new(0);

fn with_state<T>(f: impl FnOnce(&mut State) -> T) -> T {
    let mut guard = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let state = guard.get_or_insert_with(|| State {
        dir: None,
        shard: None,
        shard_len: 0,
        replayed: HashSet::new(),
        replay_done: false,
        io_disarmed: false,
        io_fail_streak: 0,
        stats: ReplayStats::default(),
    });
    f(state)
}

/// Arm the journal the way the `repro` binary does: `TINT_JOURNAL=0`/empty
/// disables it, `TINT_JOURNAL=<dir>` relocates it, unset means
/// `.tint-journal/` in the working directory. Library code (tests) never
/// arms the journal implicitly — use [`set_dir`].
pub fn configure_default() {
    match std::env::var_os("TINT_JOURNAL") {
        Some(v) if v.is_empty() || v == *"0" => set_dir(None),
        Some(v) => set_dir(Some(Path::new(&v))),
        None => set_dir(Some(Path::new(".tint-journal"))),
    }
}

/// Arm the journal at `dir` (or disarm with `None`), resetting all journal
/// state: the open shard, the replayed-key set, the disarm latch, and the
/// counters. Tests use this to simulate process death — `set_dir` to the
/// same directory again behaves exactly like a fresh process finding the
/// store on disk (including opening a *new* own shard, as a fresh process
/// would).
pub fn set_dir(dir: Option<&Path>) {
    with_state(|s| {
        s.dir = dir.map(Path::to_path_buf);
        s.shard = None;
        s.shard_len = 0;
        s.replayed.clear();
        s.replay_done = false;
        s.io_disarmed = false;
        s.io_fail_streak = 0;
        s.stats = ReplayStats::default();
    });
    HITS.store(0, Ordering::Relaxed);
    APPENDS.store(0, Ordering::Relaxed);
    IO_DISARMED.store(false, Ordering::Relaxed);
}

/// Is the journal armed (a directory configured)?
pub fn enabled() -> bool {
    with_state(|s| s.dir.is_some())
}

/// Did the journal disarm itself after persistent io failure? (The run
/// still completes correctly; its new cells just aren't persisted.)
pub fn io_disarmed() -> bool {
    IO_DISARMED.load(Ordering::Relaxed)
}

/// `(journal hits, cells appended, cells replayed)` so far. A *journal
/// hit* is a cell served from the simcache whose value was loaded from
/// disk — the counter a resumed run uses to prove the completed prefix was
/// not re-simulated.
pub fn counters() -> (u64, u64, u64) {
    (
        HITS.load(Ordering::Relaxed),
        APPENDS.load(Ordering::Relaxed),
        with_state(|s| s.stats.replayed),
    )
}

/// Count a simcache hit as a journal hit when the key came from disk.
/// Called by the runner on every cache hit; cheap no-op when unarmed.
pub fn note_replayed_hit(key: &CellKey) {
    let replayed = with_state(|s| s.replay_done && s.replayed.contains(key));
    if replayed {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Replay the store into the simcache (idempotent; also called lazily by
/// [`append`]). Returns what was found. Disabled/unarmed → all-zero stats.
pub fn replay() -> ReplayStats {
    with_state(|s| {
        if s.replay_done || s.dir.is_none() {
            return s.stats;
        }
        s.replay_done = true;
        s.stats = replay_locked(s);
        s.stats
    })
}

/// One scanned byte stream (a shard or a v1 file).
struct Scan {
    cells: Vec<(CellKey, ExpResult)>,
    /// Trailing bytes after the last whole good entry (torn write).
    torn: u64,
    /// Mid-stream corruption: bad magic, bad CRC, insane length, or an
    /// undecodable payload. `cells` still holds the good prefix.
    corrupt: bool,
}

/// Validate `bytes` against the framing format under `magic`. Never
/// touches the filesystem — callers decide what to do about tears and
/// corruption (the per-shard isolation policy lives in the callers).
fn scan_bytes(bytes: &[u8], magic: &[u8; 8]) -> Scan {
    let mut scan = Scan {
        cells: Vec::new(),
        torn: 0,
        corrupt: false,
    };
    if bytes.len() < magic.len() {
        // Sub-magic fragment: a torn first write, not corruption.
        scan.torn = bytes.len() as u64;
        return scan;
    }
    if &bytes[..magic.len()] != magic {
        scan.corrupt = true;
        return scan;
    }
    let mut at = magic.len();
    loop {
        let remaining = bytes.len() - at;
        if remaining == 0 {
            break;
        }
        if remaining < 8 {
            scan.torn = remaining as u64; // torn header
            break;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        if len > MAX_ENTRY {
            scan.corrupt = true; // insane length: corruption, not a tear
            break;
        }
        if remaining < 8 + len as usize {
            scan.torn = remaining as u64; // torn payload
            break;
        }
        let payload = &bytes[at + 8..at + 8 + len as usize];
        if crc32(payload) != crc {
            scan.corrupt = true;
            break;
        }
        match decode(payload) {
            Some(kv) => scan.cells.push(kv),
            None => {
                scan.corrupt = true;
                break;
            }
        }
        at += 8 + len as usize;
    }
    scan
}

/// The merged content of one generation directory.
struct GenScan {
    /// Deduped live cells across all shards (healthy + salvaged).
    merged: HashMap<CellKey, ExpResult>,
    /// Keys durably held by a *healthy* shard (no need to re-persist).
    healthy_keys: HashSet<CellKey>,
    shards: u64,
    torn: u64,
    quarantined: u64,
    /// Total bytes of the shards scanned (GC's before-size).
    bytes: u64,
}

/// Scan every `*.jnl` shard in `gen_dir`, merging healthy shards and
/// quarantining corrupt ones to `root` (the store root, so a later GC's
/// old-generation removal keeps the evidence). Corrupt shards' good
/// prefixes land in `merged` but not `healthy_keys` — the caller rescues
/// them into durable storage. Foreign torn tails are dropped in memory
/// only (they may be a live sibling's in-flight append).
fn scan_generation(root: &Path, gen_dir: &Path) -> GenScan {
    let mut g = GenScan {
        merged: HashMap::new(),
        healthy_keys: HashSet::new(),
        shards: 0,
        torn: 0,
        quarantined: 0,
        bytes: 0,
    };
    let mut shard_paths: Vec<PathBuf> = match std::fs::read_dir(gen_dir) {
        Ok(rd) => rd
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "jnl"))
            .collect(),
        Err(_) => return g,
    };
    shard_paths.sort(); // deterministic merge order
    for path in shard_paths {
        let bytes = std::fs::read(&path).unwrap_or_default();
        g.bytes += bytes.len() as u64;
        let scan = scan_bytes(&bytes, SHARD_MAGIC);
        g.torn += scan.torn;
        if scan.corrupt {
            g.quarantined += 1;
            let q = unique_corrupt_path(root, &path);
            match fio_rename(&path, &q) {
                Ok(()) => eprintln!(
                    "journal: shard {} is corrupt mid-stream; quarantined to {} \
                     ({} good cells rescued)",
                    path.display(),
                    q.display(),
                    scan.cells.len()
                ),
                Err(e) => eprintln!(
                    "journal: shard {} is corrupt and could not be quarantined ({e}); \
                     {} good cells rescued, shard left in place",
                    path.display(),
                    scan.cells.len()
                ),
            }
            for (k, v) in scan.cells {
                g.merged.insert(k, v);
            }
        } else {
            g.shards += 1;
            for (k, v) in scan.cells {
                g.healthy_keys.insert(k);
                g.merged.insert(k, v);
            }
        }
    }
    g
}

/// A scanned legacy v1 journal.
struct V1Scan {
    cells: Vec<(CellKey, ExpResult)>,
    corrupt: bool,
    bytes: u64,
    torn: u64,
}

/// Read the legacy v1 file if it exists and has not been migrated yet.
fn scan_v1(dir: &Path) -> Option<V1Scan> {
    if dir.join(V1_MIGRATED_MARKER).exists() {
        return None;
    }
    let path = dir.join(V1_FILE_NAME);
    let bytes = std::fs::read(&path).ok()?;
    let scan = scan_bytes(&bytes, V1_MAGIC);
    Some(V1Scan {
        cells: scan.cells,
        corrupt: scan.corrupt,
        bytes: bytes.len() as u64,
        torn: scan.torn,
    })
}

/// Handle a corrupt v1 file: quarantine it under a unique name (satellite
/// fix: never clobber a previous quarantine) so it is not re-read forever.
fn quarantine_v1(dir: &Path) {
    let path = dir.join(V1_FILE_NAME);
    let q = unique_corrupt_path(dir, &path);
    match fio_rename(&path, &q) {
        Ok(()) => eprintln!(
            "journal: {} is corrupt mid-stream; quarantined to {}",
            path.display(),
            q.display()
        ),
        Err(e) => eprintln!(
            "journal: {} is corrupt and could not be quarantined ({e})",
            path.display()
        ),
    }
}

/// The replay body; `s.dir` is `Some`. Merges the current generation's
/// shards plus an unmigrated v1 file into the simcache, rescues
/// non-durable cells (corrupt-shard salvage, v1 absorption) into this
/// process's own shard, and drops the v1 migration marker once its cells
/// are durably in v2.
fn replay_locked(s: &mut State) -> ReplayStats {
    let dir = s.dir.clone().expect("replay_locked requires an armed dir");
    let mut stats = ReplayStats::default();
    let root = v2_root(&dir);
    if let Err(e) = fio_create_dir_all(&root) {
        eprintln!(
            "journal: cannot create {} ({e}); journaling disabled for this run",
            root.display()
        );
        s.dir = None;
        s.io_disarmed = true; // the single warning for this run
        IO_DISARMED.store(true, Ordering::Relaxed);
        return stats;
    }

    let gen = current_generation(&dir).map(|(_, p)| scan_generation(&root, &p));
    let v1 = scan_v1(&dir);

    let mut merged: HashMap<CellKey, ExpResult> = HashMap::new();
    let mut healthy_keys: HashSet<CellKey> = HashSet::new();
    if let Some(g) = gen {
        stats.shards = g.shards;
        stats.torn_dropped += g.torn;
        stats.quarantined += g.quarantined;
        merged.extend(g.merged);
        healthy_keys.extend(g.healthy_keys);
    }
    let mut v1_healthy = false;
    if let Some(v) = v1 {
        stats.torn_dropped += v.torn;
        if v.corrupt {
            stats.quarantined += 1;
            quarantine_v1(&dir);
        } else {
            v1_healthy = true;
        }
        stats.v1_absorbed = v.cells.len() as u64;
        merged.extend(v.cells);
    }

    stats.replayed = merged.len() as u64;
    if simcache::enabled() {
        simcache::insert_many(merged.iter().map(|(k, v)| (*k, v)));
    }
    s.replayed.extend(merged.keys().copied());

    // Rescue cells that no healthy shard holds (corrupt-shard salvage and
    // v1 absorption) into our own shard so they stay durable. These are
    // not *new* work, so they do not count toward the append counter.
    let mut all_rescued = true;
    for (k, v) in merged.iter().filter(|(k, _)| !healthy_keys.contains(k)) {
        if !append_locked(s, k, v, false) {
            all_rescued = false;
        }
    }
    // The v1 file is migrated only once its cells are durable in v2.
    if v1_healthy && all_rescued && !s.io_disarmed {
        let _ = std::fs::write(dir.join(V1_MIGRATED_MARKER), b"absorbed\n");
    }
    stats
}

/// A fresh shard file name: `<pid>-<nonce>.jnl`. The nonce mixes a
/// process-local counter, the pid, and the clock through SplitMix64, so
/// concurrent writers (and successive `set_dir` "processes" in one test
/// binary) get distinct names; `O_EXCL` turns any residual collision into
/// a retry instead of silent sharing.
fn shard_file_name() -> String {
    let count = NONCE.fetch_add(1, Ordering::Relaxed);
    let clock = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    let pid = std::process::id() as u64;
    let nonce = SplitMix64::new(count ^ clock.rotate_left(17) ^ pid.rotate_left(43)).next_u64();
    format!("{}-{nonce:016x}.jnl", std::process::id())
}

/// Create this process's own append shard in the current generation
/// (creating `gen-00000001` on a virgin store). `false` = the journal
/// disarmed itself.
fn open_own_shard(s: &mut State) -> bool {
    let Some(dir) = s.dir.clone() else {
        return false;
    };
    let gen_dir = match current_generation(&dir) {
        Some((_, p)) => p,
        None => {
            let p = v2_root(&dir).join(gen_name(1));
            if let Err(e) = fio_create_dir_all(&p) {
                disarm_io(s, "create generation", &e);
                return false;
            }
            p
        }
    };
    for _ in 0..16 {
        let path = gen_dir.join(shard_file_name());
        match fio_open_excl(&path) {
            Ok(mut f) => {
                if let Err(e) = fio_write_all(&mut f, SHARD_MAGIC) {
                    // A magic-less fragment replays as a torn first write;
                    // harmless, and GC compacts it away.
                    disarm_io(s, "initialize shard", &e);
                    return false;
                }
                s.shard = Some(f);
                s.shard_len = SHARD_MAGIC.len() as u64;
                return true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => {
                disarm_io(s, "create shard", &e);
                return false;
            }
        }
    }
    disarm_io(
        s,
        "create shard",
        &std::io::Error::other("16 O_EXCL name collisions"),
    );
    false
}

/// Disarm journaling for the rest of the run, warning exactly once. The
/// run itself is unaffected — figures come from in-memory results; only
/// persistence of *new* cells stops.
fn disarm_io(s: &mut State, ctx: &str, e: &std::io::Error) {
    if !s.io_disarmed {
        eprintln!(
            "journal: {ctx} failed ({e}); journaling disabled for the rest of this run \
             (figures are unaffected; unjournaled cells will be re-simulated next time)"
        );
        s.io_disarmed = true;
        IO_DISARMED.store(true, Ordering::Relaxed);
    }
}

/// Append one `(key, result)` record to the own shard. On write failure
/// the entry boundary is repaired (own-shard truncate back to the last
/// good entry — never a foreign shard); persistent failure disarms.
/// `count` is false for rescue re-persists, which are not new work.
fn append_locked(s: &mut State, key: &CellKey, r: &ExpResult, count: bool) -> bool {
    if s.dir.is_none() || s.io_disarmed {
        return false;
    }
    if s.shard.is_none() && !open_own_shard(s) {
        return false;
    }
    let entry = frame(&encode(key, r));
    let pre = s.shard_len;
    let f = s.shard.as_mut().expect("own shard is open");
    match fio_write_all(f, &entry) {
        Ok(()) => {
            s.shard_len = pre + entry.len() as u64;
            s.io_fail_streak = 0;
            if count {
                APPENDS.fetch_add(1, Ordering::Relaxed);
            }
            true
        }
        Err(e) => {
            s.io_fail_streak = s.io_fail_streak.saturating_add(1);
            let repaired = fio_set_len(f, pre).is_ok();
            if !repaired || s.io_fail_streak >= MAX_IO_FAILURES {
                // Unrepairable boundary (the shard now ends in a torn
                // fragment — which replay tolerates) or a persistent
                // failure streak: stop writing.
                disarm_io(s, "append", &e);
            }
            false
        }
    }
}

/// Append one completed cell. Lazily replays first (so tests that only
/// append still find prior runs' cells). Poisoned results must not reach
/// the journal — the runner filters them; this is a debug-build backstop.
pub fn append(key: &CellKey, r: &ExpResult) {
    debug_assert!(!r.poisoned, "poisoned cells are never journaled");
    if !enabled() {
        return;
    }
    replay();
    with_state(|s| append_locked(s, key, r, true));
}

/// Flush shard appends to the OS (graceful-shutdown path). Appends are
/// unbuffered single `write_all`s, so this is a best-effort `sync_data`
/// for the power-loss case; a SIGKILL already cannot tear more than the
/// final entry.
pub fn flush() {
    with_state(|s| {
        if s.io_disarmed {
            return;
        }
        if let Some(f) = s.shard.take() {
            if let Err(e) = fio_sync(&f) {
                disarm_io(s, "sync", &e);
            } else {
                s.shard = Some(f);
            }
        }
    });
}

/// Compact the store: merge the current generation (and any unmigrated v1
/// file) exactly like replay, write the live deduped cells into one fresh
/// shard in a new generation, and commit it with a single atomic rename.
/// Guarded by the `gc.lock` `O_EXCL` lockfile with stale-lock takeover;
/// a second live GC fails fast. A crash at *any* point leaves either the
/// old or the new generation fully intact (the commit is one rename), and
/// concurrent readers of the old generation are unaffected. Old
/// generations and stray GC build directories are removed only after the
/// commit.
pub fn gc() -> Result<GcStats, String> {
    with_state(gc_locked)
}

fn gc_locked(s: &mut State) -> Result<GcStats, String> {
    let dir = s
        .dir
        .clone()
        .ok_or_else(|| "journal is disabled (TINT_JOURNAL=0?)".to_string())?;
    if s.io_disarmed {
        return Err("journal is disarmed after io failures; not compacting".to_string());
    }
    let root = v2_root(&dir);
    fio_create_dir_all(&root).map_err(|e| format!("cannot create {}: {e}", root.display()))?;
    let _lock = Lockfile::acquire(&root.join(GC_LOCK))
        .map_err(|e| format!("gc lock: {e} (is another gc-journal running?)"))?;

    let old = current_generation(&dir);
    let old_n = old.as_ref().map(|(n, _)| *n).unwrap_or(0);
    let mut stats = GcStats::default();
    let mut merged: HashMap<CellKey, ExpResult> = HashMap::new();
    if let Some((_, gen_dir)) = &old {
        let g = scan_generation(&root, gen_dir);
        stats.shards_merged = g.shards;
        stats.quarantined += g.quarantined;
        stats.bytes_before += g.bytes;
        merged.extend(g.merged);
    }
    let mut v1_healthy = false;
    if let Some(v) = scan_v1(&dir) {
        if v.corrupt {
            stats.quarantined += 1;
            quarantine_v1(&dir);
        } else {
            v1_healthy = true;
        }
        stats.v1_absorbed = v.cells.len() as u64;
        stats.bytes_before += v.bytes;
        merged.extend(v.cells);
    }
    stats.live_cells = merged.len() as u64;

    // Deterministic shard content: sort by encoded key fields.
    let mut cells: Vec<(&CellKey, &ExpResult)> = merged.iter().collect();
    cells.sort_by_key(|(k, _)| {
        (
            k.fingerprint,
            scheme_code(k.scheme),
            pin_code(k.pin),
            k.seed,
            k.reference_pipeline,
            k.sampled,
        )
    });

    let new_n = old_n + 1;
    let tmp = root.join(format!("{}.tmp.{}", gen_name(new_n), std::process::id()));
    let committed = root.join(gen_name(new_n));
    // A previous killed attempt may have left this very tmp dir (same
    // pid is possible across boots); a stale partial shard must not ride
    // into the committed generation.
    let _ = std::fs::remove_dir_all(&tmp);
    let build = |tmp: &Path| -> std::io::Result<u64> {
        fio_create_dir_all(tmp)?;
        let mut f = fio_open_excl(&tmp.join(shard_file_name()))?;
        fio_write_all(&mut f, SHARD_MAGIC)?;
        let mut bytes = SHARD_MAGIC.len() as u64;
        for (k, v) in &cells {
            let entry = frame(&encode(k, v));
            fio_write_all(&mut f, &entry)?;
            bytes += entry.len() as u64;
        }
        fio_sync(&f)?;
        fio_rename(tmp, &committed)?; // the commit point: one atomic rename
        Ok(bytes)
    };
    match build(&tmp) {
        Err(e) => {
            let _ = std::fs::remove_dir_all(&tmp);
            Err(format!("gc failed before commit: {e} (store unchanged)"))
        }
        Ok(bytes_after) => {
            stats.bytes_after = bytes_after;
            stats.generation = new_n;
            // Post-commit, best-effort cleanup: the new generation is
            // durable regardless of anything below.
            if v1_healthy {
                let _ = std::fs::write(dir.join(V1_MIGRATED_MARKER), b"absorbed\n");
            }
            if let Ok(rd) = std::fs::read_dir(&root) {
                for entry in rd.flatten() {
                    let name = entry.file_name();
                    let Some(name) = name.to_str() else { continue };
                    let is_old_gen = name
                        .strip_prefix("gen-")
                        .filter(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
                        .and_then(|d| d.parse::<u64>().ok())
                        .is_some_and(|n| n <= old_n);
                    let is_stale_tmp = name.starts_with("gen-") && name.contains(".tmp.");
                    if is_old_gen || is_stale_tmp {
                        let _ = std::fs::remove_dir_all(entry.path());
                    }
                }
            }
            // Our own shard (if any) lived in the old generation; future
            // appends must open a fresh shard in the new one.
            s.shard = None;
            s.shard_len = 0;
            Ok(stats)
        }
    }
}

/// Test fixture: write a legacy v1 journal file at `path` (migration
/// tests need real v1 bytes without keeping the v1 writer alive).
#[doc(hidden)]
pub fn write_legacy_v1(path: &Path, cells: &[(CellKey, ExpResult)]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(V1_MAGIC)?;
    for (k, v) in cells {
        f.write_all(&frame(&encode(k, v)))?;
    }
    f.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard CRC-32 (IEEE) check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let key = CellKey {
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            scheme: ColorScheme::MemLlcPart,
            pin: PinConfig::T8N2,
            seed: 7,
            reference_pipeline: true,
            sampled: false,
        };
        let r = ExpResult {
            metrics: RunMetrics {
                threads: 3,
                runtime: 123,
                thread_runtime: vec![1, 2, 3],
                thread_idle: vec![4, 5, 6],
                serial_cycles: 9,
                parallel_sections: 2,
            },
            remote_fraction: 0.25,
            llc_interference: 11,
            row_hit_rate: 0.5,
            pages_moved: 13,
            page_faults: 17,
            fault_cycles: 19,
            l3_miss_rate: 0.125,
            mean_latency: 42.5,
            color_list_moves: 23,
            poisoned: false,
        };
        let (k2, r2) = decode(&encode(&key, &r)).expect("roundtrip decodes");
        assert_eq!(k2, key);
        assert_eq!(r2, r);

        // The mode byte also distinguishes sampled cells, and an exact-mode
        // record (code 0) never decodes as sampled.
        let sampled_key = CellKey {
            reference_pipeline: false,
            sampled: true,
            ..key
        };
        let (k3, _) = decode(&encode(&sampled_key, &r)).expect("sampled roundtrip decodes");
        assert_eq!(k3, sampled_key);
        let exact_key = CellKey {
            reference_pipeline: false,
            sampled: false,
            ..key
        };
        let (k4, _) = decode(&encode(&exact_key, &r)).expect("exact roundtrip decodes");
        assert!(!k4.sampled && !k4.reference_pipeline);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_garbage() {
        let key = CellKey {
            fingerprint: 1,
            scheme: ColorScheme::Buddy,
            pin: PinConfig::T4N1,
            seed: 1,
            reference_pipeline: false,
            sampled: false,
        };
        let r = ExpResult {
            metrics: RunMetrics::new(2),
            remote_fraction: 0.0,
            llc_interference: 0,
            row_hit_rate: 0.0,
            pages_moved: 0,
            page_faults: 0,
            fault_cycles: 0,
            l3_miss_rate: 0.0,
            mean_latency: 0.0,
            color_list_moves: 0,
            poisoned: false,
        };
        let full = encode(&key, &r);
        assert!(decode(&full[..full.len() - 1]).is_none());
        let mut extended = full.clone();
        extended.push(0);
        assert!(decode(&extended).is_none());
    }

    #[test]
    fn scheme_and_pin_codes_roundtrip() {
        for s in ColorScheme::ALL {
            assert_eq!(scheme_from(scheme_code(s)), Some(s));
        }
        for p in PinConfig::ALL {
            assert_eq!(pin_from(pin_code(p)), Some(p));
        }
        assert_eq!(scheme_from(200), None);
        assert_eq!(pin_from(200), None);
    }

    #[test]
    fn unique_corrupt_paths_never_clobber() {
        let root = std::env::temp_dir().join(format!("tint-jnl-ucp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        let victim = root.join("a.jnl");
        let q1 = unique_corrupt_path(&root, &victim);
        assert_eq!(q1, root.join("a.jnl.corrupt.1"));
        std::fs::write(&q1, b"x").unwrap();
        let q2 = unique_corrupt_path(&root, &victim);
        assert_eq!(q2, root.join("a.jnl.corrupt.2"));
        assert_ne!(q1, q2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn generation_names_parse_and_tmp_dirs_are_ignored() {
        let dir = std::env::temp_dir().join(format!("tint-jnl-gen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let root = v2_root(&dir);
        std::fs::create_dir_all(root.join("gen-00000001")).unwrap();
        std::fs::create_dir_all(root.join("gen-00000003")).unwrap();
        std::fs::create_dir_all(root.join("gen-00000004.tmp.1234")).unwrap();
        std::fs::create_dir_all(root.join("gen-bogus")).unwrap();
        let (n, p) = current_generation(&dir).expect("a committed generation exists");
        assert_eq!(n, 3);
        assert_eq!(p, root.join("gen-00000003"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
