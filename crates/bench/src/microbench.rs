//! Tiny wall-clock micro-benchmark harness (std-only).
//!
//! A minimal stand-in for an external benchmarking framework: each
//! benchmark closure is warmed up once, an iteration count is chosen so a
//! sample takes a measurable amount of wall-clock time, and several samples
//! are timed with [`std::time::Instant`]. Results are printed as
//! `group/name ... ns/iter` lines. Invoked by the `[[bench]]` targets
//! (`cargo bench`), which pass harness flags we simply ignore.
//!
//! Set `TINT_BENCH_QUICK=1` to cut warmup and sample counts (useful in CI).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness; hands out named benchmark groups.
pub struct Harness {
    quick: bool,
}

impl Harness {
    /// New harness. Reads `TINT_BENCH_QUICK` and ignores CLI arguments
    /// (cargo passes `--bench`).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            quick: std::env::var_os("TINT_BENCH_QUICK").is_some(),
        }
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> Group {
        Group {
            name: name.into(),
            quick: self.quick,
        }
    }
}

/// A named collection of benchmarks sharing a report prefix.
pub struct Group {
    name: String,
    quick: bool,
}

impl Group {
    /// Accepted for API familiarity; sampling is controlled internally.
    pub fn sample_size(&mut self, _n: usize) {}

    /// Measure `f`, which must drive the provided [`Bencher`] via
    /// [`Bencher::iter`].
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        // Warmup + cost estimate with a single iteration.
        let mut probe = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut probe);
        let per_iter_ns = probe.elapsed.as_nanos().max(1);
        let target_ns = if self.quick { 2_000_000 } else { 20_000_000 };
        let iters = (target_ns / per_iter_ns).clamp(1, 10_000_000) as u64;
        let samples = if self.quick { 3 } else { 7 };

        let mut best = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let ns = b.elapsed.as_nanos() as f64 / iters as f64;
            best = best.min(ns);
            total += ns;
        }
        println!(
            "bench {}/{:<32} {:>12.1} ns/iter (min {:.1}, {} iters x {} samples)",
            self.name,
            id.to_string(),
            total / samples as f64,
            best,
            iters,
            samples
        );
    }

    /// End the group (reports are printed eagerly; kept for API symmetry).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the harness-chosen iteration count. The return value
    /// is passed through [`std::hint::black_box`] so the work is not
    /// optimized away.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}
