//! Run one (workload, scheme, pinning, seed) experiment on a fresh machine.

use std::sync::atomic::{AtomicU64, Ordering};
use tint_spmd::{RunMetrics, SimThread};
use tint_workloads::{PinConfig, Workload};
use tintmalloc::prelude::*;

/// Simulated cycles completed by every [`run_once`] in this process —
/// the benchmark-side progress counter `repro` snapshots around each
/// figure to report simulated work next to wall-clock time.
static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Total simulated cycles (sum of per-run `metrics.runtime`) executed so
/// far in this process.
pub fn simulated_cycles() -> u64 {
    SIM_CYCLES.load(Ordering::Relaxed)
}

/// Everything one run produces.
#[derive(Debug, Clone)]
pub struct ExpResult {
    /// SPMD metrics (runtime, per-thread runtime/idle).
    pub metrics: RunMetrics,
    /// Fraction of DRAM accesses served by remote nodes.
    pub remote_fraction: f64,
    /// Cross-core LLC evictions (interference events).
    pub llc_interference: u64,
    /// DRAM row-buffer hit rate.
    pub row_hit_rate: f64,
    /// Pages moved into color lists (Algorithm 2 volume).
    pub pages_moved: u64,
    /// Page faults taken.
    pub page_faults: u64,
    /// Total kernel cycles charged for faults (incl. color-list population).
    pub fault_cycles: u64,
    /// Machine-wide L3 miss rate (misses / L3 lookups).
    pub l3_miss_rate: f64,
    /// Machine-wide mean end-to-end access latency (cycles).
    pub mean_latency: f64,
    /// create_color_list invocations.
    pub color_list_moves: u64,
}

/// Run one experiment. The seed drives boot noise (physical-layout jitter
/// across the paper's 10 repetitions) and the workloads' random streams.
pub fn run_once(
    workload: &dyn Workload,
    scheme: ColorScheme,
    pin: PinConfig,
    seed: u64,
) -> ExpResult {
    let machine = MachineConfig::opteron_6128();
    let mut sys = System::boot(machine);
    // Jitter the physical layout: consume a pseudo-random number of low
    // frames, as a freshly booted system with prior activity would.
    sys.boot_noise((seed.wrapping_mul(2654435761) % 2048) * 4);

    let cores = pin.cores();
    let mut threads = SimThread::spawn_all(&mut sys, &cores);
    let plan = scheme.plan(sys.machine(), &cores);
    for (t, p) in threads.iter().zip(&plan) {
        sys.apply_colors(t.tid, p).expect("color plan applies");
    }

    let program = workload
        .build(&mut sys, &threads, seed)
        .expect("workload builds");
    let metrics = program.run(&mut sys, &mut threads).expect("program runs");

    let kstats = *sys.kernel().stats();
    let hier = sys.mem().hierarchy().stats();
    let (l3_hits, l3_misses) = hier
        .cores
        .iter()
        .fold((0u64, 0u64), |(h, m), c| (h + c.l3_hits, m + c.l3_misses));
    let mem = sys.mem().stats();
    let (acc, lat) = mem.cores.iter().fold((0u64, 0u64), |(a, l), c| {
        (a + c.accesses, l + c.total_latency)
    });
    SIM_CYCLES.fetch_add(metrics.runtime, Ordering::Relaxed);
    ExpResult {
        metrics,
        remote_fraction: mem.remote_fraction(),
        llc_interference: hier.total_llc_interference(),
        row_hit_rate: sys.mem().dram().stats().hit_rate(),
        pages_moved: kstats.pages_moved,
        page_faults: kstats.page_faults,
        fault_cycles: kstats.fault_cycles,
        l3_miss_rate: if l3_hits + l3_misses == 0 {
            0.0
        } else {
            l3_misses as f64 / (l3_hits + l3_misses) as f64
        },
        mean_latency: if acc == 0 {
            0.0
        } else {
            lat as f64 / acc as f64
        },
        color_list_moves: kstats.create_color_list_calls,
    }
}

/// Run `reps` seeded repetitions (the paper repeats everything 10×).
pub fn run_reps(
    workload: &dyn Workload,
    scheme: ColorScheme,
    pin: PinConfig,
    reps: u32,
) -> Vec<ExpResult> {
    run_reps_parallel(workload, scheme, pin, reps, available_jobs())
}

/// Number of worker threads the parallel driver uses by default.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run seeded repetitions across `jobs` host threads. Each repetition is an
/// independent deterministic simulation, so fanning them out changes only
/// wall-clock time, never results (asserted by a test below).
pub fn run_reps_parallel(
    workload: &dyn Workload,
    scheme: ColorScheme,
    pin: PinConfig,
    reps: u32,
    jobs: usize,
) -> Vec<ExpResult> {
    let jobs = jobs.max(1).min((reps as usize).max(1));
    if jobs <= 1 || reps <= 1 {
        return (0..reps as u64)
            .map(|seed| run_once(workload, scheme, pin, seed + 1))
            .collect();
    }
    let results: std::sync::Mutex<Vec<(u64, ExpResult)>> =
        std::sync::Mutex::new(Vec::with_capacity(reps as usize));
    let next = std::sync::atomic::AtomicU64::new(1);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let seed = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if seed > reps as u64 {
                    break;
                }
                let r = run_once(workload, scheme, pin, seed);
                results.lock().unwrap().push((seed, r));
            });
        }
    });
    let mut v = results.into_inner().unwrap();
    v.sort_by_key(|(seed, _)| *seed);
    v.into_iter().map(|(_, r)| r).collect()
}

/// Mean/min/max over repetitions of a scalar metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean over repetitions.
    pub mean: f64,
    /// Minimum (lower error bar).
    pub min: f64,
    /// Maximum (upper error bar).
    pub max: f64,
}

impl Summary {
    /// Summarize `f(result)` over a repetition set.
    pub fn of(results: &[ExpResult], f: impl Fn(&ExpResult) -> f64) -> Self {
        assert!(!results.is_empty());
        let vals: Vec<f64> = results.iter().map(f).collect();
        Self {
            mean: vals.iter().sum::<f64>() / vals.len() as f64,
            min: vals.iter().copied().fold(f64::INFINITY, f64::min),
            max: vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Benchmark runtime summary.
    pub fn runtime(results: &[ExpResult]) -> Self {
        Self::of(results, |r| r.metrics.runtime as f64)
    }

    /// Total idle summary.
    pub fn idle(results: &[ExpResult]) -> Self {
        Self::of(results, |r| r.metrics.total_idle() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_workloads::traits::Scale;
    use tint_workloads::Synthetic;

    fn tiny_synth() -> Synthetic {
        Synthetic {
            bytes_per_thread: 32 * 4096,
        }
    }

    #[test]
    fn run_once_is_deterministic_per_seed() {
        let w = tiny_synth();
        let a = run_once(&w, ColorScheme::Buddy, PinConfig::T4N4, 3);
        let b = run_once(&w, ColorScheme::Buddy, PinConfig::T4N4, 3);
        assert_eq!(a.metrics, b.metrics);
        // Under the node-oblivious legacy baseline, boot noise shifts the
        // global cursor and with it the node mix → runtimes differ. (The
        // NUMA-aware buddy is translation-invariant on this symmetric
        // workload, so it is not a good seed probe.)
        let c = run_once(&w, ColorScheme::LegacyGlobal, PinConfig::T4N4, 3);
        let d = run_once(&w, ColorScheme::LegacyGlobal, PinConfig::T4N4, 4);
        assert_ne!(c.metrics.runtime, d.metrics.runtime, "seed changes layout");
    }

    #[test]
    fn summary_math() {
        let w = tiny_synth();
        let rs = run_reps(&w, ColorScheme::MemLlc, PinConfig::T4N4, 3);
        assert_eq!(rs.len(), 3);
        let s = Summary::runtime(&rs);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn parallel_driver_matches_serial() {
        let w = tiny_synth();
        let serial = run_reps_parallel(&w, ColorScheme::MemLlc, PinConfig::T4N4, 4, 1);
        let parallel = run_reps_parallel(&w, ColorScheme::MemLlc, PinConfig::T4N4, 4, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.metrics, b.metrics, "fan-out must not change results");
        }
    }

    #[test]
    fn colored_run_moves_pages() {
        let w = tiny_synth();
        let r = run_once(&w, ColorScheme::MemLlc, PinConfig::T4N4, 1);
        assert!(r.pages_moved > 0);
        assert!(r.page_faults > 0);
        // MEM+LLC keeps everything local.
        assert_eq!(r.remote_fraction, 0.0);
    }

    #[test]
    fn scale_type_reexported_sanity() {
        let _ = Scale::default();
    }
}
