//! Run (workload, scheme, pinning, seed) experiment cells on fresh machines.
//!
//! Two layers sit between a figure and the simulator:
//!
//! * the **cell cache** ([`crate::simcache`]): every cell is deterministic,
//!   so results are memoized by content — figures within one invocation
//!   share cells (fig13/fig14 are a strict subset of the fig11 matrix)
//!   without knowing about each other;
//! * the **matrix executor** ([`run_cells`]): figures flatten their whole
//!   (benchmark × config × scheme × rep) cell list into one work queue
//!   drained by `--jobs`/`TINT_JOBS` host threads. Cells vary ~100× in cost
//!   (lbm vs blackscholes), so stealing from a single flattened queue is
//!   what load-balances a sweep; a per-cell ≤ reps-way fan-out cannot.
//!
//! Results are merged back in canonical (input) order, so figure output is
//! byte-identical at any job count and with the cache on or off.

use crate::simcache::{self, CellKey};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use tint_spmd::{RunMetrics, SimThread};
use tint_workloads::{PinConfig, Workload};
use tintmalloc::prelude::*;

/// Simulated cycles completed by every actual simulation in this process —
/// the benchmark-side progress counter `repro` snapshots around each
/// figure to report simulated work next to wall-clock time. Cache hits do
/// not add to it: it counts *new* simulation work, which is how
/// `BENCH_repro.json` proves a command was served from the cache.
static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Total simulated cycles (sum of per-run `metrics.runtime`) executed so
/// far in this process.
pub fn simulated_cycles() -> u64 {
    SIM_CYCLES.load(Ordering::Relaxed)
}

/// Everything one run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpResult {
    /// SPMD metrics (runtime, per-thread runtime/idle).
    pub metrics: RunMetrics,
    /// Fraction of DRAM accesses served by remote nodes.
    pub remote_fraction: f64,
    /// Cross-core LLC evictions (interference events).
    pub llc_interference: u64,
    /// DRAM row-buffer hit rate.
    pub row_hit_rate: f64,
    /// Pages moved into color lists (Algorithm 2 volume).
    pub pages_moved: u64,
    /// Page faults taken.
    pub page_faults: u64,
    /// Total kernel cycles charged for faults (incl. color-list population).
    pub fault_cycles: u64,
    /// Machine-wide L3 miss rate (misses / L3 lookups).
    pub l3_miss_rate: f64,
    /// Machine-wide mean end-to-end access latency (cycles).
    pub mean_latency: f64,
    /// create_color_list invocations.
    pub color_list_moves: u64,
}

/// One cell of a figure's sweep: `workload` run under `(scheme, pin)` with
/// repetition seed `seed`.
#[derive(Clone, Copy)]
pub struct CellSpec<'a> {
    /// The workload (immutable configuration; `Sync` by trait bound).
    pub workload: &'a dyn Workload,
    /// Coloring policy.
    pub scheme: ColorScheme,
    /// Thread→core pinning.
    pub pin: PinConfig,
    /// Repetition seed (the paper's 10 repetitions are seeds 1..=10).
    pub seed: u64,
}

/// Actually simulate one cell on a fresh machine (no cache involvement).
/// The seed drives boot noise (physical-layout jitter across the paper's
/// repetitions) and the workloads' random streams.
fn simulate_cell(
    workload: &dyn Workload,
    scheme: ColorScheme,
    pin: PinConfig,
    seed: u64,
) -> ExpResult {
    let machine = MachineConfig::opteron_6128();
    let mut sys = System::boot(machine);
    // Jitter the physical layout: consume a pseudo-random number of low
    // frames, as a freshly booted system with prior activity would.
    sys.boot_noise((seed.wrapping_mul(2654435761) % 2048) * 4);

    let cores = pin.cores();
    let mut threads = SimThread::spawn_all(&mut sys, &cores);
    let plan = scheme.plan(sys.machine(), &cores);
    for (t, p) in threads.iter().zip(&plan) {
        sys.apply_colors(t.tid, p).expect("color plan applies");
    }

    let program = workload
        .build(&mut sys, &threads, seed)
        .expect("workload builds");
    let metrics = program.run(&mut sys, &mut threads).expect("program runs");

    let kstats = *sys.kernel().stats();
    let hier = sys.mem().hierarchy().stats();
    let (l3_hits, l3_misses) = hier
        .cores
        .iter()
        .fold((0u64, 0u64), |(h, m), c| (h + c.l3_hits, m + c.l3_misses));
    let mem = sys.mem().stats();
    let (acc, lat) = mem.cores.iter().fold((0u64, 0u64), |(a, l), c| {
        (a + c.accesses, l + c.total_latency)
    });
    SIM_CYCLES.fetch_add(metrics.runtime, Ordering::Relaxed);
    ExpResult {
        metrics,
        remote_fraction: mem.remote_fraction(),
        llc_interference: hier.total_llc_interference(),
        row_hit_rate: sys.mem().dram().stats().hit_rate(),
        pages_moved: kstats.pages_moved,
        page_faults: kstats.page_faults,
        fault_cycles: kstats.fault_cycles,
        l3_miss_rate: if l3_hits + l3_misses == 0 {
            0.0
        } else {
            l3_misses as f64 / (l3_hits + l3_misses) as f64
        },
        mean_latency: if acc == 0 {
            0.0
        } else {
            lat as f64 / acc as f64
        },
        color_list_moves: kstats.create_color_list_calls,
    }
}

/// Run one experiment cell, through the cell cache.
pub fn run_once(
    workload: &dyn Workload,
    scheme: ColorScheme,
    pin: PinConfig,
    seed: u64,
) -> ExpResult {
    let key = CellKey::of(workload, scheme, pin, seed);
    if let Some(r) = simcache::lookup(&key) {
        simcache::note_hits(1);
        return r;
    }
    simcache::note_misses(1);
    let r = simulate_cell(workload, scheme, pin, seed);
    simcache::insert(key, &r);
    r
}

/// Run `reps` seeded repetitions (the paper repeats everything 10×) as one
/// flattened cell batch.
pub fn run_reps(
    workload: &dyn Workload,
    scheme: ColorScheme,
    pin: PinConfig,
    reps: u32,
) -> Vec<ExpResult> {
    let cells: Vec<CellSpec> = (1..=reps as u64)
        .map(|seed| CellSpec {
            workload,
            scheme,
            pin,
            seed,
        })
        .collect();
    run_cells(&cells, available_jobs())
}

/// `--jobs` override set by the `repro` binary; 0 = unset.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Set the worker-thread count used by [`run_reps`]/figure sweeps (the
/// `repro --jobs` flag). Passing 0 clears the override, falling back to
/// `TINT_JOBS` / host parallelism.
pub fn set_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// Number of worker threads the matrix executor uses by default:
/// the `--jobs` flag if given, else a `TINT_JOBS` env override, else the
/// host's available parallelism. Always ≥ 1.
pub fn available_jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("TINT_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run a batch of cells across `jobs` host threads with a shared work
/// queue, returning results in input order. See [`run_cells_with_progress`].
pub fn run_cells(cells: &[CellSpec<'_>], jobs: usize) -> Vec<ExpResult> {
    run_cells_with_progress(cells, jobs, &|_, _| {})
}

/// [`run_cells`] with a progress callback, invoked after each *simulated*
/// cell as `progress(done, to_simulate)` (cache hits are served instantly
/// and not reported; the callback may be called from worker threads).
///
/// Execution model: cached cells are filled first; the remaining misses
/// form a single flat queue drained by `min(jobs, misses)` scoped threads
/// via an atomic cursor — a cheap work-stealing scheme that load-balances
/// cells of wildly different cost. Each repetition is an independent
/// deterministic simulation, so the fan-out changes only wall-clock time,
/// never results: the canonical-order merge makes the output independent
/// of `jobs` (asserted by tests below and `tests/cell_cache.rs`).
///
/// In-batch duplicates (same content key appearing twice) are simulated
/// once and counted as cache hits when the cache is enabled; with the
/// cache disabled every occurrence is simulated, exactly as the pre-cache
/// harness did.
pub fn run_cells_with_progress(
    cells: &[CellSpec<'_>],
    jobs: usize,
    progress: &(dyn Fn(usize, usize) + Sync),
) -> Vec<ExpResult> {
    let jobs = jobs.max(1);
    let caching = simcache::enabled();
    let mut slots: Vec<Option<ExpResult>> = Vec::with_capacity(cells.len());
    let mut to_run: Vec<usize> = Vec::new();
    let mut pending: std::collections::HashMap<CellKey, usize> = std::collections::HashMap::new();
    let mut dups: Vec<(usize, usize)> = Vec::new();
    let mut hits = 0u64;
    for (i, c) in cells.iter().enumerate() {
        let key = CellKey::of(c.workload, c.scheme, c.pin, c.seed);
        if let Some(r) = simcache::lookup(&key) {
            slots.push(Some(r));
            hits += 1;
            continue;
        }
        slots.push(None);
        if caching {
            if let Some(&src) = pending.get(&key) {
                dups.push((i, src));
                hits += 1;
                continue;
            }
            pending.insert(key, i);
        }
        to_run.push(i);
    }
    simcache::note_hits(hits);
    simcache::note_misses(to_run.len() as u64);

    let total = to_run.len();
    if total > 0 {
        if jobs == 1 || total == 1 {
            for (done, &i) in to_run.iter().enumerate() {
                let c = &cells[i];
                slots[i] = Some(simulate_cell(c.workload, c.scheme, c.pin, c.seed));
                progress(done + 1, total);
            }
        } else {
            let next = AtomicUsize::new(0);
            let done = AtomicUsize::new(0);
            let results: Mutex<Vec<(usize, ExpResult)>> = Mutex::new(Vec::with_capacity(total));
            std::thread::scope(|s| {
                for _ in 0..jobs.min(total) {
                    s.spawn(|| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= total {
                            break;
                        }
                        let c = &cells[to_run[k]];
                        let r = simulate_cell(c.workload, c.scheme, c.pin, c.seed);
                        results.lock().unwrap().push((to_run[k], r));
                        progress(done.fetch_add(1, Ordering::Relaxed) + 1, total);
                    });
                }
            });
            for (i, r) in results.into_inner().unwrap() {
                slots[i] = Some(r);
            }
        }
        if caching {
            for &i in &to_run {
                let c = &cells[i];
                let key = CellKey::of(c.workload, c.scheme, c.pin, c.seed);
                simcache::insert(key, slots[i].as_ref().expect("simulated"));
            }
        }
    }
    for (i, src) in dups {
        slots[i] = slots[src].clone();
    }
    slots
        .into_iter()
        .map(|o| o.expect("every cell filled"))
        .collect()
}

/// Mean/min/max over repetitions of a scalar metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean over repetitions.
    pub mean: f64,
    /// Minimum (lower error bar).
    pub min: f64,
    /// Maximum (upper error bar).
    pub max: f64,
}

impl Summary {
    /// Summarize `f(result)` over a repetition set.
    pub fn of(results: &[ExpResult], f: impl Fn(&ExpResult) -> f64) -> Self {
        assert!(!results.is_empty());
        let vals: Vec<f64> = results.iter().map(f).collect();
        Self {
            mean: vals.iter().sum::<f64>() / vals.len() as f64,
            min: vals.iter().copied().fold(f64::INFINITY, f64::min),
            max: vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Benchmark runtime summary.
    pub fn runtime(results: &[ExpResult]) -> Self {
        Self::of(results, |r| r.metrics.runtime as f64)
    }

    /// Total idle summary.
    pub fn idle(results: &[ExpResult]) -> Self {
        Self::of(results, |r| r.metrics.total_idle() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_workloads::traits::Scale;
    use tint_workloads::Synthetic;

    fn tiny_synth() -> Synthetic {
        Synthetic {
            bytes_per_thread: 32 * 4096,
        }
    }

    #[test]
    fn run_once_is_deterministic_per_seed() {
        // Bypass the cache on purpose: a==b must hold because the simulator
        // is deterministic, not because a memo served the second call.
        let w = tiny_synth();
        let a = simulate_cell(&w, ColorScheme::Buddy, PinConfig::T4N4, 3);
        let b = simulate_cell(&w, ColorScheme::Buddy, PinConfig::T4N4, 3);
        assert_eq!(a.metrics, b.metrics);
        // Under the node-oblivious legacy baseline, boot noise shifts the
        // global cursor and with it the node mix → runtimes differ. (The
        // NUMA-aware buddy is translation-invariant on this symmetric
        // workload, so it is not a good seed probe.)
        let c = simulate_cell(&w, ColorScheme::LegacyGlobal, PinConfig::T4N4, 3);
        let d = simulate_cell(&w, ColorScheme::LegacyGlobal, PinConfig::T4N4, 4);
        assert_ne!(c.metrics.runtime, d.metrics.runtime, "seed changes layout");
    }

    #[test]
    fn summary_math() {
        let w = tiny_synth();
        let rs = run_reps(&w, ColorScheme::MemLlc, PinConfig::T4N4, 3);
        assert_eq!(rs.len(), 3);
        let s = Summary::runtime(&rs);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn flattened_executor_matches_serial_at_any_job_count() {
        // Mixed-cost cell list (two schemes × reps) through the flat queue.
        let w = tiny_synth();
        let cells: Vec<CellSpec> = [ColorScheme::MemLlc, ColorScheme::Buddy]
            .iter()
            .flat_map(|&scheme| {
                (1..=3u64)
                    .map(move |seed| (scheme, seed))
                    .collect::<Vec<_>>()
            })
            .map(|(scheme, seed)| CellSpec {
                workload: &w,
                scheme,
                pin: PinConfig::T4N4,
                seed,
            })
            .collect();
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 4);
        assert_eq!(serial.len(), cells.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.metrics, b.metrics, "fan-out must not change results");
        }
    }

    #[test]
    fn run_once_and_run_reps_share_cells() {
        // Seed 2 of run_reps is the same content cell as run_once(seed=2);
        // whether it came from cache or a fresh simulation, the values are
        // identical — the invariant byte-identical figures rest on.
        let w = tiny_synth();
        let one = run_once(&w, ColorScheme::MemOnly, PinConfig::T4N4, 2);
        let reps = run_reps(&w, ColorScheme::MemOnly, PinConfig::T4N4, 2);
        assert_eq!(one.metrics, reps[1].metrics);
    }

    #[test]
    fn colored_run_moves_pages() {
        let w = tiny_synth();
        let r = run_once(&w, ColorScheme::MemLlc, PinConfig::T4N4, 1);
        assert!(r.pages_moved > 0);
        assert!(r.page_faults > 0);
        // MEM+LLC keeps everything local.
        assert_eq!(r.remote_fraction, 0.0);
    }

    #[test]
    fn jobs_override_and_env_clamp() {
        // The override wins over everything and 0 clears it. (TINT_JOBS
        // itself is exercised end-to-end by scripts/ci.sh; mutating the
        // environment here would race sibling tests.)
        set_jobs(3);
        assert_eq!(available_jobs(), 3);
        set_jobs(0);
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn scale_type_reexported_sanity() {
        let _ = Scale::default();
    }
}
