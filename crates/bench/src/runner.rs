//! Run (workload, scheme, pinning, seed) experiment cells on fresh machines.
//!
//! Three layers sit between a figure and the simulator:
//!
//! * the **cell cache** ([`crate::simcache`]): every cell is deterministic,
//!   so results are memoized by content — figures within one invocation
//!   share cells (fig13/fig14 are a strict subset of the fig11 matrix)
//!   without knowing about each other;
//! * the **cell farm** ([`crate::journal`]): completed cells are also
//!   appended to a crash-safe on-disk store (when armed), replayed into
//!   the cache at startup, so a killed run resumes without re-simulating
//!   its completed prefix. The store is sharded per writer process
//!   (`O_EXCL`-created append shards inside a generation directory), so
//!   any number of concurrent `repro` processes can share one journal
//!   directory lock-free and collectively only ever simulate new cells;
//!   on persistent io failure the journal disarms itself (one warning)
//!   and the run completes journal-less with identical figures;
//! * the **matrix executor** ([`run_cells`]): figures flatten their whole
//!   (benchmark × config × scheme × rep) cell list into one work queue
//!   drained by `--jobs`/`TINT_JOBS` host threads. Cells vary ~100× in cost
//!   (lbm vs blackscholes), so stealing from a single flattened queue is
//!   what load-balances a sweep; a per-cell ≤ reps-way fan-out cannot.
//!
//! Results are merged back in canonical (input) order, so figure output is
//! byte-identical at any job count and with the cache/journal on or off.
//!
//! ## Worker isolation
//!
//! Each cell attempt runs under `catch_unwind`: a panicking cell (a real
//! bug, or a scheduled [`crate::hostfault`] injection) is retried up to
//! `TINT_CELL_RETRIES` times (default 2) — an immediate, backoff-free
//! requeue on the same worker — and only after every attempt fails is it
//! recorded as a **poisoned** cell: a zeroed sentinel result with
//! [`ExpResult::poisoned`] set, rendered as `ERR` in figure tables and
//! counted by [`poisoned_cells`] so the `repro` binary can exit nonzero
//! without aborting the rest of the matrix. Poisoned results are never
//! cached or journaled; a later run retries them.
//!
//! A watchdog thread (armed by `TINT_CELL_TIMEOUT_S`) warns about cells
//! exceeding the soft deadline; in strict-deadline mode
//! ([`set_strict_deadline`], the `repro --strict-deadline` flag) an
//! overdue cell's eventual result is discarded and the cell poisoned, and
//! a cell stuck past 20× the deadline aborts the whole process (exit 124,
//! journal flushed — a resume skips everything that completed) so a
//! livelocked simulation cannot hang CI forever.
//!
//! SIGINT/SIGTERM (when the binary armed [`install_cancel_handlers`]) flip
//! a cooperative cancel flag: workers drain at the next cell boundary, the
//! journal is flushed, and the process exits 130 with a resume notice.

use crate::hostfault;
use crate::journal;
use crate::simcache::{self, CellKey};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};
use tint_spmd::{RunMetrics, SimThread};
use tint_workloads::{PinConfig, Workload};
use tintmalloc::prelude::*;

/// Simulated cycles completed by every actual simulation in this process —
/// the benchmark-side progress counter `repro` snapshots around each
/// figure to report simulated work next to wall-clock time. Cache hits do
/// not add to it: it counts *new* simulation work, which is how
/// `BENCH_repro.json` proves a command was served from the cache.
static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);

/// Total simulated cycles (sum of per-run `metrics.runtime`) executed so
/// far in this process.
pub fn simulated_cycles() -> u64 {
    SIM_CYCLES.load(Ordering::Relaxed)
}

/// Everything one run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpResult {
    /// SPMD metrics (runtime, per-thread runtime/idle).
    pub metrics: RunMetrics,
    /// Fraction of DRAM accesses served by remote nodes.
    pub remote_fraction: f64,
    /// Cross-core LLC evictions (interference events).
    pub llc_interference: u64,
    /// DRAM row-buffer hit rate.
    pub row_hit_rate: f64,
    /// Pages moved into color lists (Algorithm 2 volume).
    pub pages_moved: u64,
    /// Page faults taken.
    pub page_faults: u64,
    /// Total kernel cycles charged for faults (incl. color-list population).
    pub fault_cycles: u64,
    /// Machine-wide L3 miss rate (misses / L3 lookups).
    pub l3_miss_rate: f64,
    /// Machine-wide mean end-to-end access latency (cycles).
    pub mean_latency: f64,
    /// create_color_list invocations.
    pub color_list_moves: u64,
    /// True when this is a sentinel for a cell whose every attempt
    /// panicked (or blew its strict deadline): the numbers above are
    /// zeros, figures render the affected rows as `ERR`, and the cell is
    /// never cached or journaled.
    pub poisoned: bool,
}

/// One cell of a figure's sweep: `workload` run under `(scheme, pin)` with
/// repetition seed `seed`.
#[derive(Clone, Copy)]
pub struct CellSpec<'a> {
    /// The workload (immutable configuration; `Sync` by trait bound).
    pub workload: &'a dyn Workload,
    /// Coloring policy.
    pub scheme: ColorScheme,
    /// Thread→core pinning.
    pub pin: PinConfig,
    /// Repetition seed (the paper's 10 repetitions are seeds 1..=10).
    pub seed: u64,
}

impl CellSpec<'_> {
    /// Human-readable cell identity for warnings and poisoned-cell logs.
    fn describe(&self) -> String {
        format!(
            "{} / {} / {} / seed {}",
            self.workload.name(),
            self.scheme.label(),
            self.pin,
            self.seed
        )
    }
}

/// Actually simulate one cell on a fresh machine (no cache involvement).
/// The seed drives boot noise (physical-layout jitter across the paper's
/// repetitions) and the workloads' random streams.
fn simulate_cell(
    workload: &dyn Workload,
    scheme: ColorScheme,
    pin: PinConfig,
    seed: u64,
) -> ExpResult {
    let machine = MachineConfig::opteron_6128();
    let mut sys = System::boot(machine);
    // Jitter the physical layout: consume a pseudo-random number of low
    // frames, as a freshly booted system with prior activity would.
    sys.boot_noise((seed.wrapping_mul(2654435761) % 2048) * 4);

    let cores = pin.cores();
    let mut threads = SimThread::spawn_all(&mut sys, &cores);
    let plan = scheme.plan(sys.machine(), &cores);
    for (t, p) in threads.iter().zip(&plan) {
        sys.apply_colors(t.tid, p).expect("color plan applies");
    }

    let program = workload
        .build(&mut sys, &threads, seed)
        .expect("workload builds");
    let metrics = program.run(&mut sys, &mut threads).expect("program runs");

    let kstats = *sys.kernel().stats();
    let hier = sys.mem().hierarchy().stats();
    let (l3_hits, l3_misses) = hier
        .cores
        .iter()
        .fold((0u64, 0u64), |(h, m), c| (h + c.l3_hits, m + c.l3_misses));
    let mem = sys.mem().stats();
    let (acc, lat) = mem.cores.iter().fold((0u64, 0u64), |(a, l), c| {
        (a + c.accesses, l + c.total_latency)
    });
    SIM_CYCLES.fetch_add(metrics.runtime, Ordering::Relaxed);
    ExpResult {
        metrics,
        remote_fraction: mem.remote_fraction(),
        llc_interference: hier.total_llc_interference(),
        row_hit_rate: sys.mem().dram().stats().hit_rate(),
        pages_moved: kstats.pages_moved,
        page_faults: kstats.page_faults,
        fault_cycles: kstats.fault_cycles,
        l3_miss_rate: if l3_hits + l3_misses == 0 {
            0.0
        } else {
            l3_misses as f64 / (l3_hits + l3_misses) as f64
        },
        mean_latency: if acc == 0 {
            0.0
        } else {
            lat as f64 / acc as f64
        },
        color_list_moves: kstats.create_color_list_calls,
        poisoned: false,
    }
}

// ---------------------------------------------------------------------------
// Worker isolation: retries, poisoned cells, deadlines, cancellation
// ---------------------------------------------------------------------------

/// Cells that exhausted every attempt this process (each is an `ERR` row
/// driver and a reason for `repro` to exit nonzero).
static POISONED: AtomicU64 = AtomicU64::new(0);

/// Panicked attempts that were requeued (retry accounting for tests/JSON).
static RETRIES_USED: AtomicU64 = AtomicU64::new(0);

/// Number of cells poisoned so far this process.
pub fn poisoned_cells() -> u64 {
    POISONED.load(Ordering::Relaxed)
}

/// Number of panicked attempts that were retried so far this process.
pub fn retries_used() -> u64 {
    RETRIES_USED.load(Ordering::Relaxed)
}

/// Zero the poisoned/retry counters (tests).
pub fn reset_fault_counters() {
    POISONED.store(0, Ordering::Relaxed);
    RETRIES_USED.store(0, Ordering::Relaxed);
}

/// Memory-pressure events observed by figures this process: OOM victim
/// kills, watermark admission rejections, and `EAGAIN` allocation retries
/// (fed by the `soak` figure; reported in `BENCH_repro.json`).
static OOM_KILLS: AtomicU64 = AtomicU64::new(0);
static ADMISSION_REJECTS: AtomicU64 = AtomicU64::new(0);
static ALLOC_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Accumulate one simulated system's pressure counters into the
/// process-wide totals.
pub fn note_pressure_stats(oom_kills: u64, admission_rejects: u64, alloc_retries: u64) {
    OOM_KILLS.fetch_add(oom_kills, Ordering::Relaxed);
    ADMISSION_REJECTS.fetch_add(admission_rejects, Ordering::Relaxed);
    ALLOC_RETRIES.fetch_add(alloc_retries, Ordering::Relaxed);
}

/// `(oom_kills, admission_rejects, alloc_retries)` accumulated so far.
pub fn pressure_stats() -> (u64, u64, u64) {
    (
        OOM_KILLS.load(Ordering::Relaxed),
        ADMISSION_REJECTS.load(Ordering::Relaxed),
        ALLOC_RETRIES.load(Ordering::Relaxed),
    )
}

/// Zero the pressure counters (tests).
pub fn reset_pressure_stats() {
    OOM_KILLS.store(0, Ordering::Relaxed);
    ADMISSION_REJECTS.store(0, Ordering::Relaxed);
    ALLOC_RETRIES.store(0, Ordering::Relaxed);
}

/// Sentinel retry override; `usize::MAX` = unset (fall back to env).
static RETRIES_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Programmatic `TINT_CELL_RETRIES` override (tests); `None` restores the
/// env / default-2 lookup.
pub fn set_cell_retries(retries: Option<u32>) {
    RETRIES_OVERRIDE.store(
        retries.map(|r| r as usize).unwrap_or(usize::MAX),
        Ordering::Relaxed,
    );
}

/// Retries per panicking cell: the override, else `TINT_CELL_RETRIES`,
/// else 2. An unparsable env value warns once and falls back.
pub fn cell_retries() -> u32 {
    let forced = RETRIES_OVERRIDE.load(Ordering::Relaxed);
    if forced != usize::MAX {
        return forced as u32;
    }
    if let Ok(v) = std::env::var("TINT_CELL_RETRIES") {
        match v.trim().parse::<u32>() {
            Ok(n) => return n,
            Err(_) => {
                static WARN: Once = Once::new();
                WARN.call_once(|| {
                    eprintln!("warning: ignoring unparsable TINT_CELL_RETRIES={v:?} (want a u32)")
                });
            }
        }
    }
    2
}

/// Sentinel timeout override in milliseconds; `u64::MAX` = unset.
static TIMEOUT_OVERRIDE_MS: AtomicU64 = AtomicU64::new(u64::MAX);

/// Programmatic `TINT_CELL_TIMEOUT_S` override (tests); `None` restores
/// the env lookup.
pub fn set_cell_timeout_ms(ms: Option<u64>) {
    TIMEOUT_OVERRIDE_MS.store(ms.unwrap_or(u64::MAX), Ordering::Relaxed);
}

/// The soft per-cell deadline, if armed: the override, else a positive
/// `TINT_CELL_TIMEOUT_S` (seconds, fractional ok). Unparsable env values
/// warn once and disarm.
pub fn cell_timeout() -> Option<Duration> {
    let forced = TIMEOUT_OVERRIDE_MS.load(Ordering::Relaxed);
    if forced != u64::MAX {
        return Some(Duration::from_millis(forced));
    }
    let v = std::env::var("TINT_CELL_TIMEOUT_S").ok()?;
    match v.trim().parse::<f64>() {
        Ok(s) if s > 0.0 && s.is_finite() => Some(Duration::from_secs_f64(s)),
        _ => {
            static WARN: Once = Once::new();
            WARN.call_once(|| {
                eprintln!(
                    "warning: ignoring unparsable TINT_CELL_TIMEOUT_S={v:?} (want seconds > 0)"
                )
            });
            None
        }
    }
}

/// Strict-deadline mode: overdue cells are poisoned instead of merely
/// warned about (the `repro --strict-deadline` flag).
static STRICT_DEADLINE: AtomicBool = AtomicBool::new(false);

/// Enable/disable strict-deadline mode.
pub fn set_strict_deadline(on: bool) {
    STRICT_DEADLINE.store(on, Ordering::Relaxed);
}

/// Is strict-deadline mode on?
pub fn strict_deadline() -> bool {
    STRICT_DEADLINE.load(Ordering::Relaxed)
}

/// Cooperative cancellation flag, flipped by SIGINT/SIGTERM once the
/// binary has armed the handlers.
static CANCELLED: AtomicBool = AtomicBool::new(false);
/// True once [`install_cancel_handlers`] ran: only then may the executor
/// exit the process on cancellation (library tests never arm this).
static CANCEL_ARMED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_cancel_signal(_sig: i32) {
    // Async-signal-safe: a single atomic store.
    CANCELLED.store(true, Ordering::SeqCst);
}

/// Install SIGINT/SIGTERM handlers that request cooperative cancellation:
/// workers drain at the next cell boundary, the journal is flushed, and
/// the process exits 130 with a resume notice. Binary entry points only —
/// library code must never install process-wide handlers.
pub fn install_cancel_handlers() {
    type Handler = extern "C" fn(i32);
    extern "C" {
        // The platform libc every Rust std binary already links.
        fn signal(signum: i32, handler: Handler) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_cancel_signal);
        signal(SIGTERM, on_cancel_signal);
    }
    CANCEL_ARMED.store(true, Ordering::SeqCst);
}

/// Has a cancellation been requested (signal received)?
pub fn cancel_requested() -> bool {
    CANCELLED.load(Ordering::SeqCst)
}

/// The zeroed sentinel recorded for a cell that exhausted every attempt.
fn poisoned_sentinel(c: &CellSpec<'_>) -> ExpResult {
    ExpResult {
        metrics: RunMetrics::new(c.pin.cores().len()),
        remote_fraction: 0.0,
        llc_interference: 0,
        row_hit_rate: 0.0,
        pages_moved: 0,
        page_faults: 0,
        fault_cycles: 0,
        l3_miss_rate: 0.0,
        mean_latency: 0.0,
        color_list_moves: 0,
        poisoned: true,
    }
}

/// True when any repetition in `rs` is a poisoned sentinel — figures use
/// this to render the affected row's value cells as `ERR`.
pub fn any_poisoned(rs: &[ExpResult]) -> bool {
    rs.iter().any(|r| r.poisoned)
}

/// Run one cell attempt-isolated: `catch_unwind` around the simulation
/// (plus the host-fault injection point), immediate requeue up to
/// [`cell_retries`] times, then a poisoned sentinel. Simulation is
/// deterministic, so a successful retry returns exactly what an
/// undisturbed run would have.
fn run_cell_guarded(c: &CellSpec<'_>) -> ExpResult {
    let attempts = 1 + cell_retries() as u64;
    for attempt in 1..=attempts {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            hostfault::maybe_inject();
            simulate_cell(c.workload, c.scheme, c.pin, c.seed)
        }));
        match outcome {
            Ok(r) => return r,
            Err(_) if attempt < attempts => {
                RETRIES_USED.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "worker: cell [{}] panicked (attempt {attempt}/{attempts}); requeueing",
                    c.describe()
                );
            }
            Err(_) => {
                POISONED.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "worker: cell [{}] poisoned after {attempts} attempts — \
                     it will render as ERR and the run will exit nonzero",
                    c.describe()
                );
            }
        }
    }
    poisoned_sentinel(c)
}

/// Shared worker↔watchdog state for one `run_cells` batch.
struct Watch {
    /// Per-worker: `(cell index, start)` while a cell is being simulated.
    active: Mutex<Vec<Option<(usize, Instant)>>>,
    /// Cells flagged overdue by the watchdog (strict mode: reject result).
    flagged: Mutex<std::collections::HashSet<usize>>,
    /// Cells already warned about (warn once each).
    warned: Mutex<std::collections::HashSet<usize>>,
    /// Workers still draining the queue; the watchdog exits at zero.
    workers_alive: AtomicUsize,
}

impl Watch {
    fn new(workers: usize) -> Self {
        Self {
            active: Mutex::new(vec![None; workers]),
            flagged: Mutex::new(std::collections::HashSet::new()),
            warned: Mutex::new(std::collections::HashSet::new()),
            workers_alive: AtomicUsize::new(workers),
        }
    }

    fn begin(&self, worker: usize, cell: usize) {
        self.active.lock().unwrap_or_else(|e| e.into_inner())[worker] =
            Some((cell, Instant::now()));
    }

    /// Clear the worker's slot; returns true when strict-deadline mode
    /// flagged this cell while it ran (its result must be discarded).
    fn end(&self, worker: usize, cell: usize) -> bool {
        self.active.lock().unwrap_or_else(|e| e.into_inner())[worker] = None;
        strict_deadline()
            && self
                .flagged
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .contains(&cell)
    }

    fn worker_done(&self) {
        self.workers_alive.fetch_sub(1, Ordering::Release);
    }
}

/// Watchdog body: wake a few times per deadline, warn about overdue cells
/// (once each), flag them in strict mode, and — strict mode, armed binary
/// only — abort the process if a cell is stuck past 20× the deadline (the
/// journal holds everything completed, so an abort is resumable).
fn watchdog_loop(watch: &Watch, cells: &[CellSpec<'_>], timeout: Duration) {
    let tick = (timeout / 4)
        .min(Duration::from_millis(200))
        .max(Duration::from_millis(10));
    let hard_kill = timeout.saturating_mul(20);
    while watch.workers_alive.load(Ordering::Acquire) > 0 {
        std::thread::sleep(tick);
        let overdue: Vec<(usize, Duration)> = {
            let active = watch.active.lock().unwrap_or_else(|e| e.into_inner());
            active
                .iter()
                .flatten()
                .filter(|(_, start)| start.elapsed() > timeout)
                .map(|&(i, start)| (i, start.elapsed()))
                .collect()
        };
        for (i, elapsed) in overdue {
            let first = watch
                .warned
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(i);
            if first {
                eprintln!(
                    "watchdog: cell [{}] running {:.1}s, past the {:.1}s deadline{}",
                    cells[i].describe(),
                    elapsed.as_secs_f64(),
                    timeout.as_secs_f64(),
                    if strict_deadline() {
                        " — its result will be discarded (strict-deadline)"
                    } else {
                        ""
                    }
                );
            }
            if strict_deadline() {
                watch
                    .flagged
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(i);
                if elapsed > hard_kill && CANCEL_ARMED.load(Ordering::SeqCst) {
                    journal::flush();
                    eprintln!(
                        "watchdog: cell [{}] stuck for {:.1}s (20x the deadline); \
                         aborting — completed cells are journaled, resume with the same command",
                        cells[i].describe(),
                        elapsed.as_secs_f64()
                    );
                    std::process::exit(124);
                }
            }
        }
    }
}

/// Run one experiment cell, through the cell cache and journal, isolated
/// like any executor cell (a panic poisons the result, never the process).
pub fn run_once(
    workload: &dyn Workload,
    scheme: ColorScheme,
    pin: PinConfig,
    seed: u64,
) -> ExpResult {
    let key = CellKey::of(workload, scheme, pin, seed);
    if let Some(r) = simcache::lookup(&key) {
        simcache::note_hits(1);
        journal::note_replayed_hit(&key);
        return r;
    }
    simcache::note_misses(1);
    let spec = CellSpec {
        workload,
        scheme,
        pin,
        seed,
    };
    let r = run_cell_guarded(&spec);
    if !r.poisoned {
        simcache::insert(key, &r);
        journal::append(&key, &r);
    }
    r
}

/// Run `reps` seeded repetitions (the paper repeats everything 10×) as one
/// flattened cell batch.
pub fn run_reps(
    workload: &dyn Workload,
    scheme: ColorScheme,
    pin: PinConfig,
    reps: u32,
) -> Vec<ExpResult> {
    let cells: Vec<CellSpec> = (1..=reps as u64)
        .map(|seed| CellSpec {
            workload,
            scheme,
            pin,
            seed,
        })
        .collect();
    run_cells(&cells, available_jobs())
}

/// `--jobs` override set by the `repro` binary; 0 = unset.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Set the worker-thread count used by [`run_reps`]/figure sweeps (the
/// `repro --jobs` flag). Passing 0 clears the override, falling back to
/// `TINT_JOBS` / host parallelism.
pub fn set_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// Parse a worker count: a positive decimal integer. `0`, signs, hex
/// (`0x4`), empty, and non-numeric strings are rejected — silent clamping
/// hid typos like `TINT_JOBS=-2` behind a serial run.
pub fn parse_jobs(s: &str) -> Result<usize, String> {
    let t = s.trim();
    if t.is_empty() {
        return Err("job count is empty".to_string());
    }
    if !t.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("job count {t:?} is not a positive decimal integer"));
    }
    match t.parse::<usize>() {
        Ok(0) => Err("job count must be >= 1".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("job count {t:?} is out of range")),
    }
}

/// Validate the executor-related environment up front (`repro` startup):
/// a bad `TINT_JOBS` is a hard error there, not a silent fallback.
pub fn validate_env_jobs() -> Result<(), String> {
    match std::env::var("TINT_JOBS") {
        Ok(v) => parse_jobs(&v)
            .map(|_| ())
            .map_err(|e| format!("invalid TINT_JOBS: {e}")),
        Err(_) => Ok(()),
    }
}

/// Number of worker threads the matrix executor uses by default: the
/// `--jobs` flag if given, else a valid `TINT_JOBS` env override, else the
/// host's available parallelism. Always ≥ 1. (Precedence: the flag wins;
/// an invalid env value warns once and is ignored here — the `repro`
/// binary rejects it up front via [`validate_env_jobs`].)
pub fn available_jobs() -> usize {
    let forced = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("TINT_JOBS") {
        match parse_jobs(&v) {
            Ok(n) => return n,
            Err(e) => {
                static WARN: Once = Once::new();
                WARN.call_once(|| eprintln!("warning: ignoring invalid TINT_JOBS: {e}"));
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run a batch of cells across `jobs` host threads with a shared work
/// queue, returning results in input order. See [`run_cells_with_progress`].
pub fn run_cells(cells: &[CellSpec<'_>], jobs: usize) -> Vec<ExpResult> {
    run_cells_with_progress(cells, jobs, &|_, _| {})
}

/// [`run_cells`] with a progress callback, invoked after each *simulated*
/// cell as `progress(done, to_simulate)` (cache hits are served instantly
/// and not reported; the callback may be called from worker threads).
///
/// Execution model: cached cells are filled first; the remaining misses
/// form a single flat queue drained by `min(jobs, misses)` scoped threads
/// via an atomic cursor — a cheap work-stealing scheme that load-balances
/// cells of wildly different cost. Each repetition is an independent
/// deterministic simulation, so the fan-out changes only wall-clock time,
/// never results: the canonical-order merge makes the output independent
/// of `jobs` (asserted by tests below and `tests/cell_cache.rs`).
///
/// Every simulated cell runs panic-isolated (see the module docs); each
/// completed cell is appended to the journal at the moment it finishes, so
/// a crash loses at most in-flight cells. On cooperative cancellation
/// (SIGINT/SIGTERM in the `repro` binary) workers stop picking up new
/// cells, the journal is flushed, and the process exits 130.
///
/// In-batch duplicates (same content key appearing twice) are simulated
/// once and counted as cache hits when the cache is enabled; with the
/// cache disabled every occurrence is simulated, exactly as the pre-cache
/// harness did.
pub fn run_cells_with_progress(
    cells: &[CellSpec<'_>],
    jobs: usize,
    progress: &(dyn Fn(usize, usize) + Sync),
) -> Vec<ExpResult> {
    let jobs = jobs.max(1);
    let caching = simcache::enabled();
    let keys: Vec<CellKey> = cells
        .iter()
        .map(|c| CellKey::of(c.workload, c.scheme, c.pin, c.seed))
        .collect();
    let mut slots: Vec<Option<ExpResult>> = Vec::with_capacity(cells.len());
    let mut to_run: Vec<usize> = Vec::new();
    let mut pending: std::collections::HashMap<CellKey, usize> = std::collections::HashMap::new();
    let mut dups: Vec<(usize, usize)> = Vec::new();
    let mut hits = 0u64;
    for (i, key) in keys.iter().enumerate() {
        if let Some(r) = simcache::lookup(key) {
            slots.push(Some(r));
            hits += 1;
            journal::note_replayed_hit(key);
            continue;
        }
        slots.push(None);
        if caching {
            if let Some(&src) = pending.get(key) {
                dups.push((i, src));
                hits += 1;
                continue;
            }
            pending.insert(*key, i);
        }
        to_run.push(i);
    }
    simcache::note_hits(hits);
    simcache::note_misses(to_run.len() as u64);

    let total = to_run.len();
    if total > 0 {
        let workers = jobs.min(total);
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, ExpResult)>> = Mutex::new(Vec::with_capacity(total));
        let watch = Watch::new(workers);
        let timeout = cell_timeout();
        std::thread::scope(|s| {
            if let Some(t) = timeout {
                let watch = &watch;
                s.spawn(move || watchdog_loop(watch, cells, t));
            }
            for w in 0..workers {
                let (watch, next, done, results) = (&watch, &next, &done, &results);
                let (to_run, keys) = (&to_run, &keys);
                s.spawn(move || {
                    loop {
                        if cancel_requested() {
                            break;
                        }
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= total {
                            break;
                        }
                        let i = to_run[k];
                        let c = &cells[i];
                        watch.begin(w, i);
                        let mut r = run_cell_guarded(c);
                        if watch.end(w, i) && !r.poisoned {
                            // Strict deadline: the cell finished, but too
                            // late — treat like a failed cell.
                            POISONED.fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "worker: cell [{}] exceeded the strict deadline; \
                                 result discarded (ERR)",
                                c.describe()
                            );
                            r = poisoned_sentinel(c);
                        }
                        if !r.poisoned {
                            journal::append(&keys[i], &r);
                        }
                        results
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push((i, r));
                        progress(done.fetch_add(1, Ordering::Relaxed) + 1, total);
                    }
                    watch.worker_done();
                });
            }
        });
        for (i, r) in results.into_inner().unwrap_or_else(|e| e.into_inner()) {
            slots[i] = Some(r);
        }
        if caching {
            for &i in &to_run {
                match slots[i].as_ref() {
                    Some(r) if !r.poisoned => simcache::insert(keys[i], r),
                    _ => {}
                }
            }
        }
    }
    // Graceful shutdown: everything completed so far is journaled; tell
    // the user how to pick the run back up and stop here.
    if CANCEL_ARMED.load(Ordering::SeqCst) && cancel_requested() {
        journal::flush();
        eprintln!(
            "\nrepro: interrupted — completed cells are journaled; \
             resume by re-running the same command"
        );
        std::process::exit(130);
    }
    // A cancelled batch without armed handlers (library use) can leave
    // unfilled slots; that never happens in practice because only the
    // binary arms cancellation, but fail soft rather than panicking.
    for (i, slot) in slots.iter_mut().enumerate() {
        if slot.is_none() && !dups.iter().any(|&(d, _)| d == i) {
            *slot = Some(poisoned_sentinel(&cells[i]));
        }
    }
    for (i, src) in dups {
        slots[i] = slots[src].clone();
    }
    slots
        .into_iter()
        .map(|o| o.expect("every cell filled"))
        .collect()
}

/// Mean/min/max over repetitions of a scalar metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean over repetitions.
    pub mean: f64,
    /// Minimum (lower error bar).
    pub min: f64,
    /// Maximum (upper error bar).
    pub max: f64,
}

impl Summary {
    /// Summarize `f(result)` over a repetition set.
    pub fn of(results: &[ExpResult], f: impl Fn(&ExpResult) -> f64) -> Self {
        assert!(!results.is_empty());
        let vals: Vec<f64> = results.iter().map(f).collect();
        Self {
            mean: vals.iter().sum::<f64>() / vals.len() as f64,
            min: vals.iter().copied().fold(f64::INFINITY, f64::min),
            max: vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Benchmark runtime summary.
    pub fn runtime(results: &[ExpResult]) -> Self {
        Self::of(results, |r| r.metrics.runtime as f64)
    }

    /// Total idle summary.
    pub fn idle(results: &[ExpResult]) -> Self {
        Self::of(results, |r| r.metrics.total_idle() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_workloads::traits::Scale;
    use tint_workloads::Synthetic;

    fn tiny_synth() -> Synthetic {
        Synthetic {
            bytes_per_thread: 32 * 4096,
        }
    }

    #[test]
    fn run_once_is_deterministic_per_seed() {
        // Bypass the cache on purpose: a==b must hold because the simulator
        // is deterministic, not because a memo served the second call.
        let w = tiny_synth();
        let a = simulate_cell(&w, ColorScheme::Buddy, PinConfig::T4N4, 3);
        let b = simulate_cell(&w, ColorScheme::Buddy, PinConfig::T4N4, 3);
        assert_eq!(a.metrics, b.metrics);
        // Under the node-oblivious legacy baseline, boot noise shifts the
        // global cursor and with it the node mix → runtimes differ. (The
        // NUMA-aware buddy is translation-invariant on this symmetric
        // workload, so it is not a good seed probe.)
        let c = simulate_cell(&w, ColorScheme::LegacyGlobal, PinConfig::T4N4, 3);
        let d = simulate_cell(&w, ColorScheme::LegacyGlobal, PinConfig::T4N4, 4);
        assert_ne!(c.metrics.runtime, d.metrics.runtime, "seed changes layout");
    }

    #[test]
    fn summary_math() {
        let w = tiny_synth();
        let rs = run_reps(&w, ColorScheme::MemLlc, PinConfig::T4N4, 3);
        assert_eq!(rs.len(), 3);
        let s = Summary::runtime(&rs);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn flattened_executor_matches_serial_at_any_job_count() {
        // Mixed-cost cell list (two schemes × reps) through the flat queue.
        let w = tiny_synth();
        let cells: Vec<CellSpec> = [ColorScheme::MemLlc, ColorScheme::Buddy]
            .iter()
            .flat_map(|&scheme| {
                (1..=3u64)
                    .map(move |seed| (scheme, seed))
                    .collect::<Vec<_>>()
            })
            .map(|(scheme, seed)| CellSpec {
                workload: &w,
                scheme,
                pin: PinConfig::T4N4,
                seed,
            })
            .collect();
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 4);
        assert_eq!(serial.len(), cells.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.metrics, b.metrics, "fan-out must not change results");
        }
    }

    #[test]
    fn run_once_and_run_reps_share_cells() {
        // Seed 2 of run_reps is the same content cell as run_once(seed=2);
        // whether it came from cache or a fresh simulation, the values are
        // identical — the invariant byte-identical figures rest on.
        let w = tiny_synth();
        let one = run_once(&w, ColorScheme::MemOnly, PinConfig::T4N4, 2);
        let reps = run_reps(&w, ColorScheme::MemOnly, PinConfig::T4N4, 2);
        assert_eq!(one.metrics, reps[1].metrics);
    }

    #[test]
    fn colored_run_moves_pages() {
        let w = tiny_synth();
        let r = run_once(&w, ColorScheme::MemLlc, PinConfig::T4N4, 1);
        assert!(r.pages_moved > 0);
        assert!(r.page_faults > 0);
        // MEM+LLC keeps everything local.
        assert_eq!(r.remote_fraction, 0.0);
    }

    #[test]
    fn jobs_override_and_env_clamp() {
        // The override wins over everything and 0 clears it. (TINT_JOBS
        // itself is exercised end-to-end by scripts/ci.sh; mutating the
        // environment here would race sibling tests.)
        set_jobs(3);
        assert_eq!(available_jobs(), 3);
        set_jobs(0);
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn parse_jobs_rejects_nonsense() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert_eq!(parse_jobs(" 8 "), Ok(8));
        for bad in ["0", "0x4", "-2", "", "  ", "four", "1.5", "+3"] {
            assert!(parse_jobs(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn scale_type_reexported_sanity() {
        let _ = Scale::default();
    }
}
