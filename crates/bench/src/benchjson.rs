//! `BENCH_repro.json` — the machine-readable perf log, concurrent-writer
//! safe.
//!
//! After a run, `repro` records per-command wall-clock milliseconds,
//! simulated cycles, and cell-cache hit/miss counts. This module owns the
//! file format and the merge discipline:
//!
//! * **atomic writes** — a temp file in the same directory, then a rename
//!   over the target, so a kill mid-write never leaves a half-written perf
//!   trajectory behind;
//! * **upsert by command name** — an intact existing file is *merged
//!   into*, not clobbered: `repro probe:lbm` after `repro all` keeps the
//!   figure records;
//! * **concurrent-writer safety** — the read-merge-write runs under a
//!   `<path>.lock` [`Lockfile`] (`O_EXCL` + stale-lock takeover, see
//!   [`crate::lockfile`]), so two `repro` processes finishing at the same
//!   time serialize their merges instead of silently dropping each other's
//!   blocks. A live holder is waited on briefly; on timeout the write
//!   proceeds unlocked with a warning — losing a perf record beats hanging
//!   the run;
//! * **quarantine, don't trust** — a truncated/corrupt existing file is
//!   renamed to `<path>.corrupt` and treated as absent.
//!
//! The `repro` binary supplies the measurements ([`CmdRecord`]) and the
//! run-wide counters ([`InvocationMeta`]); this module never reads global
//! state, which is what makes interleaved-writer tests possible.

use crate::lockfile::Lockfile;
use crate::table::Table;
use std::path::Path;
use std::time::Duration;
use tint_hw::profile::{self, COMPONENT_COUNT};

/// How long a writer waits for a live sibling's `<path>.lock`.
const LOCK_WAIT: Duration = Duration::from_secs(5);

/// One executed command's measurements.
pub struct CmdRecord {
    pub name: String,
    pub wall_ms: f64,
    pub sim_cycles: u64,
    pub reps: u32,
    pub scale: f64,
    /// Cells served without simulation while this command ran (cell cache
    /// or in-batch dedup).
    pub cache_hits: u64,
    /// Cells this command actually simulated.
    pub cache_misses: u64,
    /// Engine mode the command ran under (`"exact"` or `"sampled"`), so a
    /// wall_ms from a sampled run is never compared against an exact one.
    pub engine: &'static str,
    /// Per-component nanoseconds when `--profile` was on.
    pub profile: Option<[u64; COMPONENT_COUNT]>,
}

/// Run-wide counters for the `invocation` block, collected by the caller
/// (the `repro` binary snapshots its global counters into this).
#[derive(Debug, Clone, Copy, Default)]
pub struct InvocationMeta {
    pub jobs: usize,
    pub cache_enabled: bool,
    pub journal_enabled: bool,
    pub journal_replayed: u64,
    pub journal_hits: u64,
    pub journal_appends: u64,
    /// The journal disarmed itself after persistent io failure
    /// (`TINT_HOST_FAULT=io:...`) — the run still completed correctly.
    pub journal_io_disarmed: bool,
    pub poisoned_cells: u64,
    pub host_faults_injected: u64,
    pub retries_used: u64,
    pub oom_kills: u64,
    pub admission_rejects: u64,
    pub alloc_retries: u64,
}

/// Minimal JSON string escaping (command names are ASCII, but be correct).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize a table as a JSON array of objects keyed by column name.
fn json_table(t: &Table, indent: &str) -> String {
    let mut s = String::from("[\n");
    for (i, row) in t.rows().iter().enumerate() {
        let cells: Vec<String> = t
            .columns()
            .iter()
            .zip(row)
            .map(|(c, v)| format!("\"{}\": \"{}\"", json_escape(c), json_escape(v)))
            .collect();
        s.push_str(&format!(
            "{indent}  {{{}}}{}\n",
            cells.join(", "),
            if i + 1 < t.rows().len() { "," } else { "" }
        ));
    }
    s.push_str(&format!("{indent}]"));
    s
}

/// Serialize one command record as a single JSON object line (no indent).
fn record_json(r: &CmdRecord) -> String {
    let mut s = format!(
        "{{\"name\": \"{}\", \"wall_ms\": {:.3}, \"sim_cycles\": {}, \"reps\": {}, \"scale\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"engine\": \"{}\"",
        json_escape(&r.name),
        r.wall_ms,
        r.sim_cycles,
        r.reps,
        r.scale,
        r.cache_hits,
        r.cache_misses,
        r.engine,
    );
    if let Some(nanos) = &r.profile {
        let fields: Vec<String> = profile::COMPONENT_NAMES
            .iter()
            .zip(nanos)
            .map(|(n, &v)| format!("\"{}_ms\": {:.3}", n, v as f64 / 1e6))
            .collect();
        s.push_str(&format!(", \"profile\": {{{}}}", fields.join(", ")));
    }
    s.push('}');
    s
}

/// What survives from an existing `BENCH_repro.json`: the per-command
/// records as `(name, raw JSON object)` pairs and the raw `"pressure"`,
/// `"churn"`, and `"soak"` table blocks. Only files this tool wrote are
/// parsed (one record per line); an unrecognizable file is treated as
/// absent.
struct ExistingBench {
    records: Vec<(String, String)>,
    pressure_raw: Option<String>,
    churn_raw: Option<String>,
    soak_raw: Option<String>,
}

/// Parse the parts of an existing `BENCH_repro.json` worth preserving.
/// A truncated or otherwise corrupt file (a crash mid-write predating the
/// atomic-rename scheme, a disk error) is renamed to `<path>.corrupt` and
/// treated as absent — a bad perf log must never take the run down.
fn read_existing(path: &str) -> ExistingBench {
    let mut out = ExistingBench {
        records: Vec::new(),
        pressure_raw: None,
        churn_raw: None,
        soak_raw: None,
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    let intact = text.trim_start().starts_with('{') && text.trim_end().ends_with('}');
    if !intact {
        let quarantine = format!("{path}.corrupt");
        match std::fs::rename(path, &quarantine) {
            Ok(()) => eprintln!(
                "warning: {path} is truncated/corrupt; moved to {quarantine} and starting fresh"
            ),
            Err(e) => eprintln!("warning: {path} is corrupt and could not be quarantined ({e})"),
        }
        return out;
    }
    let mut in_commands = false;
    // `(key, lines)` of the table block currently being collected.
    let mut block: Option<(&str, Vec<String>)> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        if let Some((key, lines)) = block.as_mut() {
            if trimmed == "]" || trimmed == "]," {
                let raw = Some(lines.join("\n"));
                match *key {
                    "pressure" => out.pressure_raw = raw,
                    "soak" => out.soak_raw = raw,
                    _ => out.churn_raw = raw,
                }
                block = None;
            } else {
                lines.push(line.to_string());
            }
            continue;
        }
        if trimmed.starts_with("\"commands\"") {
            in_commands = true;
            continue;
        }
        if in_commands {
            if trimmed == "]" || trimmed == "]," {
                in_commands = false;
                continue;
            }
            let raw = trimmed.trim_end_matches(',');
            // `{"name": "X", ...}` — extract X.
            if let Some(rest) = raw.strip_prefix("{\"name\": \"") {
                if let Some(end) = rest.find('"') {
                    out.records.push((rest[..end].to_string(), raw.to_string()));
                }
            }
            continue;
        }
        if trimmed.starts_with("\"pressure\"") {
            block = Some(("pressure", Vec::new()));
        } else if trimmed.starts_with("\"churn\"") {
            block = Some(("churn", Vec::new()));
        } else if trimmed.starts_with("\"soak\"") {
            block = Some(("soak", Vec::new()));
        }
    }
    out
}

/// Extract a numeric field from a single-line JSON record this tool wrote
/// (`"field": 12.3,` or `"field": 45}` — terminated by `,` or `}`).
fn json_field_num(line: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Serialize the measurement records as `<path>`, merging with an existing
/// file under the `<path>.lock` lockfile: records are upserted by command
/// name (an earlier `repro all` is not clobbered by a later `repro
/// probe:lbm`, and a concurrently finishing sibling process is not
/// clobbered either), and a previously recorded pressure/churn/soak table
/// survives unless this run regenerated it.
///
/// Two summary blocks follow the records. `invocation` covers only the
/// commands *this run* executed — its `sim_cycles` and cache counters are
/// what prove (or disprove) cross-figure cell reuse. `total` is recomputed
/// as the sum over every merged record, so it describes the whole file
/// rather than, misleadingly, whichever subset of commands ran last.
#[allow(clippy::too_many_arguments)]
pub fn write_bench_json(
    path: &str,
    records: &[CmdRecord],
    reps: u32,
    scale: f64,
    config_names: &[String],
    pressure: Option<&Table>,
    churn: Option<&Table>,
    soak: Option<&Table>,
    meta: &InvocationMeta,
) -> Result<(), String> {
    // Serialize read-merge-write against sibling processes. Timing out on
    // a live (possibly wedged) holder degrades to the pre-lock behavior
    // rather than hanging the whole run on a perf log.
    let lock_path = format!("{path}.lock");
    let _lock = match Lockfile::acquire_wait(Path::new(&lock_path), LOCK_WAIT) {
        Ok(l) => Some(l),
        Err(e) => {
            eprintln!("warning: proceeding without {lock_path} ({e})");
            None
        }
    };
    let existing = read_existing(path);
    // Upsert: existing records keep their position, new commands append.
    let mut merged: Vec<(String, String)> = existing.records;
    for r in records {
        let line = record_json(r);
        match merged.iter_mut().find(|(n, _)| *n == r.name) {
            Some(slot) => slot.1 = line,
            None => merged.push((r.name.clone(), line)),
        }
    }
    let inv_ms: f64 = records.iter().map(|r| r.wall_ms).sum();
    let inv_cycles: u64 = records.iter().map(|r| r.sim_cycles).sum();
    let inv_hits: u64 = records.iter().map(|r| r.cache_hits).sum();
    let inv_misses: u64 = records.iter().map(|r| r.cache_misses).sum();
    let total_ms: f64 = merged
        .iter()
        .filter_map(|(_, l)| json_field_num(l, "wall_ms"))
        .sum();
    let total_cycles: u64 = merged
        .iter()
        .filter_map(|(_, l)| json_field_num(l, "sim_cycles"))
        .map(|v| v as u64)
        .sum();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"repro\",\n");
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str(&format!("  \"scale\": {scale},\n"));
    s.push_str(&format!(
        "  \"configs\": [{}],\n",
        config_names
            .iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str("  \"commands\": [\n");
    for (i, (_, line)) in merged.iter().enumerate() {
        s.push_str(&format!(
            "    {line}{}\n",
            if i + 1 < merged.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    if let Some(t) = pressure {
        s.push_str(&format!("  \"pressure\": {},\n", json_table(t, "  ")));
    } else if let Some(raw) = &existing.pressure_raw {
        s.push_str(&format!("  \"pressure\": [\n{raw}\n  ],\n"));
    }
    if let Some(t) = churn {
        s.push_str(&format!("  \"churn\": {},\n", json_table(t, "  ")));
    } else if let Some(raw) = &existing.churn_raw {
        s.push_str(&format!("  \"churn\": [\n{raw}\n  ],\n"));
    }
    if let Some(t) = soak {
        s.push_str(&format!("  \"soak\": {},\n", json_table(t, "  ")));
    } else if let Some(raw) = &existing.soak_raw {
        s.push_str(&format!("  \"soak\": [\n{raw}\n  ],\n"));
    }
    s.push_str(&format!(
        "  \"invocation\": {{\"commands\": [{}], \"jobs\": {}, \"cache_enabled\": {}, \
         \"wall_ms\": {inv_ms:.3}, \"sim_cycles\": {inv_cycles}, \
         \"cache_hits\": {inv_hits}, \"cache_misses\": {inv_misses}, \
         \"journal\": {{\"enabled\": {}, \"replayed\": {}, \
         \"hits\": {}, \"appended\": {}, \"io_disarmed\": {}}}, \
         \"poisoned_cells\": {}, \"host_faults_injected\": {}, \"retries_used\": {}, \
         \"oom_kills\": {}, \"admission_rejects\": {}, \
         \"alloc_retries\": {}}},\n",
        records
            .iter()
            .map(|r| format!("\"{}\"", json_escape(&r.name)))
            .collect::<Vec<_>>()
            .join(", "),
        meta.jobs,
        meta.cache_enabled,
        meta.journal_enabled,
        meta.journal_replayed,
        meta.journal_hits,
        meta.journal_appends,
        meta.journal_io_disarmed,
        meta.poisoned_cells,
        meta.host_faults_injected,
        meta.retries_used,
        meta.oom_kills,
        meta.admission_rejects,
        meta.alloc_retries,
    ));
    s.push_str(&format!(
        "  \"total\": {{\"wall_ms\": {total_ms:.3}, \"sim_cycles\": {total_cycles}}}\n"
    ));
    s.push_str("}\n");
    // Crash-safe: write a temp file in the same directory, then atomically
    // rename over the target — a kill mid-write can no longer leave a
    // half-written perf trajectory behind.
    let tmp = format!("{path}.tmp.{}", std::process::id());
    std::fs::write(&tmp, &s).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("cannot rename {tmp} over {path}: {e}")
    })?;
    eprintln!("wrote {path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn rec(name: &str, wall_ms: f64) -> CmdRecord {
        CmdRecord {
            name: name.to_string(),
            wall_ms,
            sim_cycles: 100,
            reps: 1,
            scale: 1.0,
            cache_hits: 0,
            cache_misses: 1,
            engine: "exact",
            profile: None,
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tint-benchjson-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write_one(path: &str, name: &str, wall_ms: f64) {
        write_bench_json(
            path,
            &[rec(name, wall_ms)],
            1,
            1.0,
            &["16_threads_4_nodes".to_string()],
            None,
            None,
            None,
            &InvocationMeta::default(),
        )
        .expect("write succeeds");
    }

    #[test]
    fn upsert_merges_and_replaces_by_name() {
        let dir = scratch("upsert");
        let path = dir.join("BENCH_repro.json");
        let path = path.to_str().unwrap();
        write_one(path, "fig11", 10.0);
        write_one(path, "fig12", 20.0);
        write_one(path, "fig11", 30.0); // replaces, does not duplicate
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.matches("\"name\": \"fig11\"").count(), 1);
        assert_eq!(text.matches("\"name\": \"fig12\"").count(), 1);
        assert!(text.contains("\"wall_ms\": 30.000"), "fig11 was upserted");
        assert!(text.contains("\"io_disarmed\": false"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interleaved_writers_drop_no_records() {
        // Two "processes" (threads exercising the same lockfile-guarded
        // read-merge-write) each upsert their own command repeatedly; at
        // the end both commands' records must have survived with their
        // final values.
        let dir = scratch("interleave");
        let path = dir.join("BENCH_repro.json");
        let path_str = path.to_str().unwrap().to_string();
        let mk = |name: &'static str| {
            let path = path_str.clone();
            std::thread::spawn(move || {
                for i in 1..=20u32 {
                    write_one(&path, name, i as f64);
                }
            })
        };
        let a = mk("proc-a");
        let b = mk("proc-b");
        a.join().unwrap();
        b.join().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        for name in ["proc-a", "proc-b"] {
            let pat = format!("\"name\": \"{name}\"");
            assert_eq!(
                text.matches(&pat).count(),
                1,
                "{name}'s record must survive the interleaved writes"
            );
            // Each writer's last write (wall_ms = 20) is what remains.
            let line = text.lines().find(|l| l.contains(&pat)).unwrap();
            assert_eq!(json_field_num(line, "wall_ms"), Some(20.0), "{name}");
        }
        // The lock is released at the end.
        assert!(!dir.join("BENCH_repro.json.lock").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_existing_file_is_quarantined_not_trusted() {
        let dir = scratch("corrupt");
        let path = dir.join("BENCH_repro.json");
        std::fs::write(&path, "{ \"bench\": \"repro\", \"commands\": [\n  {\"trunc").unwrap();
        let path_str = path.to_str().unwrap();
        write_one(path_str, "fig11", 1.0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"name\": \"fig11\""));
        assert!(!text.contains("trunc"));
        assert!(dir.join("BENCH_repro.json.corrupt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
