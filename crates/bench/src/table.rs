//! Plain-text table rendering for figure output (markdown-ish and CSV).

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn columns(&self) -> &[String] {
        &self.header
    }

    /// The data rows (for machine-readable serialization).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", c, w = width[i] + 2);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = width.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        out.push_str(&self.header.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a normalized value like `0.83`.
pub fn norm(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a normalized value with min/max error bars.
pub fn norm_err(mean: f64, min: f64, max: f64) -> String {
    format!("{mean:.3} [{min:.3},{max:.3}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer", "2.5"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn norm_formats() {
        assert_eq!(norm(0.25), "0.250");
        assert_eq!(norm_err(1.0, 0.9, 1.1), "1.000 [0.900,1.100]");
    }
}
