//! Golden-shape regression tests: pin the *shape* of the headline figure
//! results so performance refactors of the simulation pipeline cannot
//! silently drift the science. Absolute cycle counts are allowed to move
//! with model changes; orderings and headline ratios are not.
//!
//! Runs use `reps = 3` (not the paper's 10) to keep the suite fast; the
//! asserted bands are wide enough to be stable across rep counts.

use tint_bench::runner::{run_reps, Summary};
use tint_workloads::lbm::Lbm;
use tint_workloads::traits::Scale;
use tint_workloads::{PinConfig, Synthetic};
use tintmalloc::colors::ColorScheme;

const REPS: u32 = 3;

fn mean_runtime(w: &dyn tint_workloads::Workload, scheme: ColorScheme) -> f64 {
    Summary::runtime(&run_reps(w, scheme, PinConfig::T16N4, REPS)).mean
}

/// Figure 10's synthetic-benchmark ordering, plus the paper's headline
/// BPM claim (§V / Fig. 11): controller-aware MEM coloring beats buddy,
/// while bank+LLC partitioning *without* controller awareness (BPM) loses
/// even to buddy.
#[test]
fn fig10_ordering_mem_beats_buddy_beats_bpm() {
    let w = Synthetic::new(Scale::default());
    let buddy = mean_runtime(&w, ColorScheme::Buddy);
    let mem = mean_runtime(&w, ColorScheme::MemOnly);
    let mem_llc = mean_runtime(&w, ColorScheme::MemLlc);
    let bpm = mean_runtime(&w, ColorScheme::Bpm);

    assert!(
        mem < buddy,
        "MEM coloring must beat buddy (MEM {mem:.0} vs buddy {buddy:.0})"
    );
    assert!(
        mem_llc < buddy,
        "MEM+LLC must beat buddy (MEM+LLC {mem_llc:.0} vs buddy {buddy:.0})"
    );
    assert!(
        buddy < bpm,
        "controller-oblivious BPM must lose to buddy (buddy {buddy:.0} vs BPM {bpm:.0})"
    );
}

/// The lbm headline cell: at 16 threads / 4 nodes, MEM+LLC runs at
/// ≈ 0.63× the buddy baseline (EXPERIMENTS.md Fig. 11). Band is ±0.09
/// around the measured 0.633 to absorb rep-count and boot-noise jitter.
#[test]
fn lbm_16t4n_memllc_ratio_near_0_63() {
    let w = Lbm::new(Scale::default());
    let buddy = mean_runtime(&w, ColorScheme::Buddy);
    let mem_llc = mean_runtime(&w, ColorScheme::MemLlc);
    let ratio = mem_llc / buddy;
    assert!(
        (0.55..=0.72).contains(&ratio),
        "lbm@16t4n MEM+LLC/buddy ratio {ratio:.3} left the golden band \
         [0.55, 0.72] (MEM+LLC {mem_llc:.0}, buddy {buddy:.0})"
    );
}
