//! Cell-farm differential tests: concurrent-writer shards, v1 migration,
//! io-fault degradation, and generation GC atomicity.
//!
//! The load-bearing invariants:
//!
//! 1. **Merge**: writers append to private shards; replay merges every
//!    shard of the current generation and dedupes by key, so a fleet of
//!    processes collectively only ever simulates new cells.
//! 2. **Migration**: a legacy v1 journal is absorbed into the v2 store on
//!    first replay and then left untouched (marker file), including mixed
//!    v1+v2 startup with overlapping keys.
//! 3. **Degradation**: under injected io faults the journal disarms
//!    itself; the run completes with byte-identical figures and the
//!    surviving on-disk prefix stays replayable — never quarantined.
//! 4. **GC atomicity**: `gc` commits a compacted generation with one
//!    atomic rename; killed at *any* io operation it leaves a store that
//!    replays the full live set, and the `gc.lock` never lingers.
//!
//! Journal/cache/fault state is process-global: tests serialize on
//! [`LOCK`]; "process death" is [`journal::set_dir`] + [`simcache::clear`]
//! (a re-armed journal opens a fresh shard, exactly like a new process).

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use tint_bench::figures::{fig10, FigOpts};
use tint_bench::hostfault::{self, FaultMode, HostFaultPlan, IO_ABORT_MARKER};
use tint_bench::journal;
use tint_bench::runner::{reset_fault_counters, set_cell_retries, set_jobs, ExpResult};
use tint_bench::simcache::{self, CellKey};
use tint_spmd::RunMetrics;
use tint_workloads::PinConfig;
use tintmalloc::colors::ColorScheme;

/// Serializes tests that touch the process-global journal/cache/counters.
static LOCK: Mutex<()> = Mutex::new(());

fn quick(scale: f64) -> FigOpts {
    FigOpts {
        reps: 2,
        scale,
        csv: false,
    }
}

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tint-farm-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn isolated<T>(f: impl FnOnce() -> T) -> T {
    let cache_was = simcache::enabled();
    simcache::clear();
    simcache::set_enabled(true);
    journal::set_dir(None);
    hostfault::set_plan(None);
    hostfault::set_io_abort_at(None);
    reset_fault_counters();
    set_cell_retries(None);
    set_jobs(1);
    let out = f();
    set_jobs(0);
    set_cell_retries(None);
    hostfault::set_plan(None);
    hostfault::set_io_abort_at(None);
    reset_fault_counters();
    journal::set_dir(None);
    simcache::set_enabled(cache_was);
    simcache::clear();
    out
}

/// A synthetic, decodable cell for direct-append tests.
fn cell(i: u64) -> (CellKey, ExpResult) {
    let key = CellKey {
        fingerprint: 0xFA43_0000 + i,
        scheme: ColorScheme::MemLlc,
        pin: PinConfig::T8N2,
        seed: i,
        reference_pipeline: false,
        sampled: false,
    };
    let r = ExpResult {
        metrics: RunMetrics {
            threads: 2,
            runtime: 1000 + i,
            thread_runtime: vec![500 + i, 500],
            thread_idle: vec![1, 2],
            serial_cycles: 7,
            parallel_sections: 1,
        },
        remote_fraction: 0.5,
        llc_interference: i,
        row_hit_rate: 0.75,
        pages_moved: 0,
        page_faults: 3,
        fault_cycles: 4,
        l3_miss_rate: 0.1,
        mean_latency: 100.0,
        color_list_moves: 2,
        poisoned: false,
    };
    (key, r)
}

/// Every shard file in `dir`'s current store generation, sorted.
fn shard_paths(dir: &Path) -> Vec<PathBuf> {
    let Some((_, gen_dir)) = journal::current_generation(dir) else {
        return Vec::new();
    };
    let mut v: Vec<PathBuf> = std::fs::read_dir(gen_dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "jnl"))
        .collect();
    v.sort();
    v
}

/// "Process death" + fresh arm at `dir`.
fn rebirth(dir: &Path) {
    journal::set_dir(Some(dir));
    simcache::clear();
}

// ---------------------------------------------------------------------------
// 1. Concurrent-writer shards merge; the farm only simulates new cells
// ---------------------------------------------------------------------------

#[test]
fn two_writers_merge_and_a_third_run_simulates_nothing() {
    let _g = LOCK.lock().unwrap();
    let dir = scratch("merge");
    isolated(|| {
        // Writer A: fig10 at scale 0.02.
        let opts_a = quick(0.02);
        journal::set_dir(Some(&dir));
        journal::replay();
        let out_a = opts_a.render(&fig10(&opts_a));
        journal::flush();
        let (_, appended_a, _) = journal::counters();
        assert!(appended_a > 0);

        // Writer B: a different cell population (scale 0.03) lands in its
        // own shard — B never rewrites A's shard.
        let opts_b = quick(0.03);
        rebirth(&dir);
        journal::replay();
        let out_b = opts_b.render(&fig10(&opts_b));
        journal::flush();
        let (_, appended_b, _) = journal::counters();
        assert!(appended_b > 0, "scale 0.03 cells are new");
        assert_eq!(shard_paths(&dir).len(), 2, "two writers, two shards");

        // "Third process": the merged farm serves every cell of both
        // writers; nothing is re-simulated.
        rebirth(&dir);
        let stats = journal::replay();
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.replayed, appended_a + appended_b);
        assert_eq!(stats.quarantined, 0);
        let misses_before = simcache::stats().1;
        let again_a = opts_a.render(&fig10(&opts_a));
        let again_b = opts_b.render(&fig10(&opts_b));
        assert_eq!(
            simcache::stats().1 - misses_before,
            0,
            "the merged farm must serve every cell"
        );
        assert_eq!(again_a, out_a, "byte-identical across the farm");
        assert_eq!(again_b, out_b, "byte-identical across the farm");
        let (_, appended_c, _) = journal::counters();
        assert_eq!(appended_c, 0, "nothing new to journal");
    });
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// 2. v1 migration: absorbed once, left untouched
// ---------------------------------------------------------------------------

#[test]
fn v1_journal_is_absorbed_once_and_left_untouched() {
    let _g = LOCK.lock().unwrap();
    let dir = scratch("v1");
    isolated(|| {
        std::fs::create_dir_all(&dir).unwrap();
        let cells: Vec<_> = (0..5).map(cell).collect();
        let v1_path = dir.join(journal::V1_FILE_NAME);
        journal::write_legacy_v1(&v1_path, &cells).unwrap();
        let v1_bytes = std::fs::read(&v1_path).unwrap();

        // First v2 replay absorbs the v1 cells into an own shard and
        // drops the migration marker.
        journal::set_dir(Some(&dir));
        let stats = journal::replay();
        assert_eq!(stats.v1_absorbed, 5);
        assert_eq!(stats.replayed, 5);
        assert_eq!(stats.quarantined, 0);
        assert!(dir.join(journal::V1_MIGRATED_MARKER).exists());
        assert_eq!(shard_paths(&dir).len(), 1, "absorbed into one shard");
        assert_eq!(
            std::fs::read(&v1_path).unwrap(),
            v1_bytes,
            "the v1 file itself is left untouched"
        );
        for (k, _) in &cells {
            assert!(simcache::lookup(k).is_some(), "absorbed cell serves");
        }

        // Second replay: the marker short-circuits the v1 read; the cells
        // now come from the v2 shard.
        rebirth(&dir);
        let again = journal::replay();
        assert_eq!(again.v1_absorbed, 0, "absorbed exactly once");
        assert_eq!(again.replayed, 5);
        assert_eq!(again.shards, 1);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mixed_v1_and_v2_startup_merges_and_dedupes() {
    let _g = LOCK.lock().unwrap();
    let dir = scratch("mixed");
    isolated(|| {
        // v2 shard holding keys 0..5 (a prior v2 process).
        journal::set_dir(Some(&dir));
        for i in 0..5 {
            let (k, r) = cell(i);
            journal::append(&k, &r);
        }
        journal::flush();
        // A v1 file holding keys 3..8 — 3 and 4 overlap the shard.
        let cells: Vec<_> = (3..8).map(cell).collect();
        journal::write_legacy_v1(&dir.join(journal::V1_FILE_NAME), &cells).unwrap();

        rebirth(&dir);
        let stats = journal::replay();
        assert_eq!(stats.v1_absorbed, 5, "all five v1 records were read");
        assert_eq!(stats.replayed, 8, "0..8 distinct keys after dedup");
        assert_eq!(stats.shards, 1);
        assert!(dir.join(journal::V1_MIGRATED_MARKER).exists());
        for i in 0..8 {
            assert!(simcache::lookup(&cell(i).0).is_some(), "key {i} serves");
        }

        // Third start: both shards (original + rescue), no v1 re-read.
        rebirth(&dir);
        let again = journal::replay();
        assert_eq!(again.v1_absorbed, 0);
        assert_eq!(again.replayed, 8);
        assert_eq!(again.shards, 2);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// 3. io-fault degradation: disarm, never corrupt
// ---------------------------------------------------------------------------

#[test]
fn full_io_fault_rate_disarms_and_the_run_completes_identically() {
    let _g = LOCK.lock().unwrap();
    let dir = scratch("io1000");
    let opts = quick(0.02);
    isolated(|| {
        // Clean reference with no journal at all.
        let clean = opts.render(&fig10(&opts));
        simcache::clear();

        // io:1000 — every journal filesystem op fails. Arming the journal
        // must not panic anything; it disarms and the figure is identical.
        hostfault::set_plan(Some(HostFaultPlan {
            mode: FaultMode::Io,
            per_mille: 1000,
            seed: 42,
        }));
        journal::set_dir(Some(&dir));
        let stats = journal::replay();
        assert_eq!(stats.replayed, 0);
        assert!(!journal::enabled(), "the journal disarmed itself");
        assert!(journal::io_disarmed());
        let faulted = opts.render(&fig10(&opts));
        assert_eq!(faulted, clean, "figures are unaffected by journal loss");
        assert!(
            hostfault::io_injected() > 0,
            "the io schedule must actually fire"
        );
        // Worker panics are a different mode entirely.
        assert_eq!(hostfault::injected(), 0, "io mode never panics workers");
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn low_rate_io_faults_never_corrupt_the_good_prefix() {
    let _g = LOCK.lock().unwrap();
    let dir = scratch("iolow");
    let opts = quick(0.02);
    isolated(|| {
        let clean = opts.render(&fig10(&opts));
        simcache::clear();

        // Arm the journal on a healthy disk first (store creation
        // succeeds), then inject faults into the append stream.
        journal::set_dir(Some(&dir));
        journal::replay();
        hostfault::set_plan(Some(HostFaultPlan {
            mode: FaultMode::Io,
            per_mille: 300,
            seed: 7,
        }));
        let faulted = opts.render(&fig10(&opts));
        journal::flush();
        assert_eq!(faulted, clean, "io faults never reach the figures");
        assert!(hostfault::io_injected() > 0, "the schedule must fire");

        // Whatever survived on disk is a *good prefix*: a healthy process
        // replays it without quarantine and completes the figure exactly.
        hostfault::set_plan(None);
        rebirth(&dir);
        let stats = journal::replay();
        assert_eq!(
            stats.quarantined, 0,
            "failed appends must never corrupt a shard mid-stream"
        );
        let resumed = opts.render(&fig10(&opts));
        assert_eq!(resumed, clean);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// 4. Generation GC: compaction, atomicity under kill, locking
// ---------------------------------------------------------------------------

#[test]
fn gc_compacts_duplicates_across_shards_and_preserves_every_cell() {
    let _g = LOCK.lock().unwrap();
    let dir = scratch("gc");
    isolated(|| {
        // Writer A: keys 0..10.
        journal::set_dir(Some(&dir));
        for i in 0..10 {
            let (k, r) = cell(i);
            journal::append(&k, &r);
        }
        journal::flush();
        // Writer B: keys 0..15 — 10 duplicates land in a second shard
        // (direct appends model a writer that raced A and re-simulated).
        rebirth(&dir);
        for i in 0..15 {
            let (k, r) = cell(i);
            journal::append(&k, &r);
        }
        journal::flush();
        assert_eq!(shard_paths(&dir).len(), 2);

        let stats = journal::gc().expect("gc succeeds");
        assert_eq!(stats.live_cells, 15);
        assert_eq!(stats.shards_merged, 2);
        assert_eq!(stats.quarantined, 0);
        assert_eq!(stats.generation, 2);
        assert!(
            stats.bytes_after < stats.bytes_before,
            "dropping 10 duplicate records must shrink the store \
             ({} -> {})",
            stats.bytes_before,
            stats.bytes_after
        );
        // The old generation is gone; one compacted shard remains.
        let root = journal::v2_root(&dir);
        assert!(!root.join("gen-00000001").exists());
        assert!(!root.join(journal::GC_LOCK).exists(), "lock released");
        assert_eq!(shard_paths(&dir).len(), 1);

        // The compacted store serves everything.
        rebirth(&dir);
        let replayed = journal::replay();
        assert_eq!(replayed.replayed, 15);
        assert_eq!(replayed.shards, 1);
        assert_eq!(replayed.quarantined, 0);
        for i in 0..15 {
            assert!(simcache::lookup(&cell(i).0).is_some(), "key {i} survives");
        }

        // Post-GC appends open a shard in the *new* generation.
        let (k, r) = cell(99);
        journal::append(&k, &r);
        journal::flush();
        assert_eq!(shard_paths(&dir).len(), 2, "fresh shard in generation 2");
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_killed_at_every_io_op_leaves_old_or_new_generation_intact() {
    let _g = LOCK.lock().unwrap();
    let dir = scratch("gckill");
    isolated(|| {
        journal::set_dir(Some(&dir));
        for i in 0..20 {
            let (k, r) = cell(i);
            journal::append(&k, &r);
        }
        journal::flush();
        let root = journal::v2_root(&dir);

        // Sweep the kill point over every io operation of the compaction:
        // op k panics (simulated SIGKILL at that filesystem step). After
        // each kill the store must still replay the full live set — the
        // commit is a single atomic rename, so there is no in-between.
        let mut kill_points = 0u64;
        let mut committed_at = None;
        for k in 1..=200u64 {
            journal::set_dir(Some(&dir)); // fresh "process" runs the GC
            hostfault::set_io_abort_at(Some(k));
            let res = std::panic::catch_unwind(journal::gc);
            hostfault::set_io_abort_at(None);
            match res {
                Ok(Ok(stats)) => {
                    // The kill point lies beyond the compaction's op
                    // count: GC ran to completion.
                    assert_eq!(stats.live_cells, 20);
                    committed_at = Some(k);
                    break;
                }
                Ok(Err(e)) => panic!("gc must only die by kill, got: {e}"),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .unwrap_or_default();
                    assert!(
                        msg.contains(IO_ABORT_MARKER),
                        "only the injected kill may panic, got: {msg}"
                    );
                    kill_points += 1;
                }
            }
            assert!(
                !root.join(journal::GC_LOCK).exists(),
                "kill point {k}: the gc lock must never linger"
            );
            rebirth(&dir);
            let stats = journal::replay();
            assert_eq!(
                stats.replayed, 20,
                "kill point {k}: the store must replay the full live set"
            );
            assert_eq!(stats.quarantined, 0, "kill point {k}: no corruption");
        }
        let committed_at = committed_at.expect("gc eventually runs clean");
        assert!(
            kill_points >= 20,
            "the sweep must cover >= 20 kill points (got {kill_points}, \
             committed at {committed_at})"
        );

        // After the clean commit: exactly one generation, fully intact,
        // and no stray tmp build dirs from the killed attempts.
        let names: Vec<String> = std::fs::read_dir(&root)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().all(|n| !n.contains(".tmp.")),
            "stray GC build dirs must be cleaned up: {names:?}"
        );
        rebirth(&dir);
        let final_stats = journal::replay();
        assert_eq!(final_stats.replayed, 20);
        assert_eq!(final_stats.shards, 1, "compacted into one shard");
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gc_refuses_a_live_lock_and_takes_over_a_stale_one() {
    let _g = LOCK.lock().unwrap();
    let dir = scratch("gclock");
    isolated(|| {
        journal::set_dir(Some(&dir));
        for i in 0..3 {
            let (k, r) = cell(i);
            journal::append(&k, &r);
        }
        journal::flush();
        let lock = journal::v2_root(&dir).join(journal::GC_LOCK);

        // A live holder (our own pid) makes gc fail fast, store untouched.
        std::fs::write(&lock, format!("{}\n", std::process::id())).unwrap();
        let err = journal::gc().expect_err("live lock must refuse");
        assert!(err.contains("held by live process"), "{err}");
        assert!(journal::v2_root(&dir).join("gen-00000001").exists());
        std::fs::remove_file(&lock).unwrap();

        // A stale holder (dead pid) is taken over.
        let dead_pid = std::process::Command::new("true")
            .spawn()
            .map(|mut c| {
                let pid = c.id();
                let _ = c.wait();
                pid
            })
            .unwrap();
        std::fs::write(&lock, format!("{dead_pid}\n")).unwrap();
        let stats = journal::gc().expect("stale lock is taken over");
        assert_eq!(stats.live_cells, 3);
        assert!(!lock.exists(), "lock released after gc");
    });
    let _ = std::fs::remove_dir_all(&dir);
}
