//! Figure-level equivalence of the batched and reference pipelines.
//!
//! `TINT_REFERENCE_PIPELINE=1` routes every SPMD section through the
//! original one-op-at-a-time heap loop (see `tint_spmd::engine`). The
//! batched pipeline — op batching, flat min-scan scheduling, compute
//! fusion, the hot-line filter — must be a pure optimization: the rendered
//! tables and the simulated cycle totals have to match byte for byte.
//! The unit tests in `tint-spmd` check single sections; this exercises the
//! whole stack (boot, allocator, TLB, caches, DRAM, stats, rendering) on a
//! small fig10-style matrix.

use tint_bench::figures::{fig10, probe, FigOpts};
use tint_bench::runner::simulated_cycles;
use tint_workloads::PinConfig;

/// Render a reduced fig10 + one probe cell and report the rendered text
/// plus the simulated cycles the runs accumulated.
fn small_matrix() -> (String, u64) {
    let opts = FigOpts {
        reps: 1,
        scale: 1.0,
        csv: false,
    };
    let before = simulated_cycles();
    let mut out = String::new();
    out.push_str(&opts.render(&fig10(&opts)));
    out.push_str(&opts.render(&probe(&opts, "lbm", PinConfig::T16N4)));
    (out, simulated_cycles() - before)
}

// One test only: the env var is process-global, and integration-test files
// run as their own process, so nothing else can observe the flag.
#[test]
fn batched_and_reference_pipelines_agree_bit_for_bit() {
    std::env::remove_var("TINT_REFERENCE_PIPELINE");
    let (batched_tables, batched_cycles) = small_matrix();
    std::env::set_var("TINT_REFERENCE_PIPELINE", "1");
    let (reference_tables, reference_cycles) = small_matrix();
    std::env::remove_var("TINT_REFERENCE_PIPELINE");
    assert_eq!(
        batched_tables, reference_tables,
        "batched pipeline drifted from the reference tables"
    );
    assert_eq!(
        batched_cycles, reference_cycles,
        "batched pipeline simulated a different number of cycles"
    );
}
