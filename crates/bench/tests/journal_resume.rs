//! Crash-safety differential tests: the on-disk cell farm and the
//! panic-isolated workers.
//!
//! The load-bearing invariants:
//!
//! 1. A killed run resumes **exactly**: every cell the dead process
//!    completed is replayed from its shard and never re-simulated, and
//!    the resumed figures are byte-identical to an undisturbed run.
//! 2. A damaged store is never fatal. A torn final write (the only tear
//!    a SIGKILL can produce) is dropped in memory — the shard itself is
//!    *not* rewritten, because a torn tail on a foreign shard may be a
//!    live sibling's in-flight append; mid-stream corruption quarantines
//!    that one shard (unique name, good prefix rescued) and never poisons
//!    its siblings.
//! 3. Injected worker panics are masked by deterministic retries; a cell
//!    that fails every attempt renders as `ERR` instead of aborting the
//!    matrix.
//!
//! Journal state, the cell cache, and the fault counters are
//! process-global, so every test serializes on [`LOCK`] and restores what
//! it found. "Process death" is simulated by [`journal::set_dir`] to the
//! same directory (which drops all in-memory journal state, and — like a
//! real fresh process — opens a *new* shard on the next append) plus
//! [`simcache::clear`].

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use tint_bench::figures::{fig10, FigOpts};
use tint_bench::hostfault::{self, FaultMode, HostFaultPlan};
use tint_bench::journal;
use tint_bench::runner::{
    poisoned_cells, reset_fault_counters, retries_used, set_cell_retries, set_jobs,
};
use tint_bench::simcache;

/// Serializes tests that touch the process-global journal/cache/counters.
static LOCK: Mutex<()> = Mutex::new(());

/// Small-but-nontrivial options (mirrors `cell_cache.rs`).
fn quick() -> FigOpts {
    FigOpts {
        reps: 2,
        scale: 0.02,
        csv: false,
    }
}

/// A unique scratch directory for one test's journal.
fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tint-journal-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Run `f` with a clean cache (forced on), clean journal (unarmed), and
/// clean fault state; restore/disarm everything afterwards.
fn isolated<T>(cache_on: bool, f: impl FnOnce() -> T) -> T {
    let cache_was = simcache::enabled();
    simcache::clear();
    simcache::set_enabled(cache_on);
    journal::set_dir(None);
    hostfault::set_plan(None);
    hostfault::set_io_abort_at(None);
    reset_fault_counters();
    set_cell_retries(None);
    set_jobs(1); // deterministic queue order (and fault schedule)
    let out = f();
    set_jobs(0);
    set_cell_retries(None);
    hostfault::set_plan(None);
    hostfault::set_io_abort_at(None);
    reset_fault_counters();
    journal::set_dir(None);
    simcache::set_enabled(cache_was);
    simcache::clear();
    out
}

/// Every shard file in `dir`'s current store generation, sorted.
fn shard_paths(dir: &Path) -> Vec<PathBuf> {
    let Some((_, gen_dir)) = journal::current_generation(dir) else {
        return Vec::new();
    };
    let mut v: Vec<PathBuf> = std::fs::read_dir(gen_dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "jnl"))
        .collect();
    v.sort();
    v
}

// ---------------------------------------------------------------------------
// Kill-and-resume: completed prefix is never re-simulated
// ---------------------------------------------------------------------------

#[test]
fn resume_replays_completed_cells_and_matches_bytes() {
    let _g = LOCK.lock().unwrap();
    let dir = scratch("resume");
    let opts = quick();
    isolated(true, || {
        // "First process": run a figure with the journal armed.
        journal::set_dir(Some(&dir));
        journal::replay();
        let first = opts.render(&fig10(&opts));
        let (_, appended, _) = journal::counters();
        assert!(appended > 0, "the first run must journal its cells");
        assert_eq!(shard_paths(&dir).len(), 1, "one writer, one shard");

        // "Second process": all in-memory state is gone; only the store
        // survives.
        journal::set_dir(Some(&dir));
        simcache::clear();
        let stats = journal::replay();
        assert_eq!(stats.replayed, appended, "every appended cell replays");
        assert_eq!(stats.torn_dropped, 0);
        assert_eq!(stats.quarantined, 0);
        assert_eq!(stats.shards, 1);

        let misses_before = simcache::stats().1;
        let resumed = opts.render(&fig10(&opts));
        let misses_after = simcache::stats().1;
        assert_eq!(
            misses_after - misses_before,
            0,
            "a resumed run must not re-simulate the completed prefix"
        );
        let (hits, appended2, replayed) = journal::counters();
        assert!(replayed > 0);
        assert!(
            hits >= replayed,
            "every replayed cell is served at least once"
        );
        assert_eq!(appended2, 0, "nothing new to journal on a full resume");
        assert_eq!(first, resumed, "resumed figures are byte-identical");
    });
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Damaged shards: torn tail vs mid-stream corruption
// ---------------------------------------------------------------------------

/// Journal a figure's cells and return the (single) shard path + bytes.
fn journaled_run(dir: &Path) -> (PathBuf, Vec<u8>) {
    journal::set_dir(Some(dir));
    journal::replay();
    let opts = quick();
    let _ = opts.render(&fig10(&opts));
    journal::flush();
    let shards = shard_paths(dir);
    assert_eq!(shards.len(), 1, "one writer, one shard");
    let path = shards.into_iter().next().unwrap();
    let bytes = std::fs::read(&path).expect("shard file exists");
    (path, bytes)
}

/// Byte offset just past the `n`-th entry (a shard starts with an 8-byte
/// magic; entries are `[len u32 LE][crc u32 LE][payload]`).
fn entry_end(bytes: &[u8], n: usize) -> usize {
    let mut at = 8;
    for _ in 0..n {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 8 + len;
    }
    at
}

#[test]
fn torn_final_write_is_dropped_in_memory_without_touching_the_shard() {
    let _g = LOCK.lock().unwrap();
    let dir = scratch("torn");
    isolated(true, || {
        let (path, bytes) = journaled_run(&dir);
        let (_, appended, _) = journal::counters();
        assert!(appended >= 2, "need at least two entries to tear one");
        // Tear the final entry mid-payload, as a crash during the last
        // write would.
        let keep = entry_end(&bytes, appended as usize - 1) + 5;
        std::fs::write(&path, &bytes[..keep]).unwrap();

        journal::set_dir(Some(&dir)); // process death
        simcache::clear();
        let stats = journal::replay();
        assert_eq!(
            stats.replayed,
            appended - 1,
            "all but the torn entry replay"
        );
        assert!(stats.torn_dropped > 0);
        assert_eq!(stats.quarantined, 0, "a tear is not corruption");
        // Foreign-shard safety: the torn shard is NOT truncated or
        // rewritten — for all the replayer knows, that tail is a live
        // sibling's append in flight. (GC compacts dead tails away.)
        assert_eq!(
            std::fs::read(&path).unwrap().len(),
            keep,
            "replay must never rewrite a foreign shard"
        );
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn midstream_bitflip_quarantines_that_shard_and_rescues_the_prefix() {
    let _g = LOCK.lock().unwrap();
    let dir = scratch("bitflip");
    isolated(true, || {
        let (path, mut bytes) = journaled_run(&dir);
        let (_, appended, _) = journal::counters();
        assert!(appended >= 2);
        // Flip one bit inside the *second* entry's payload: data follows
        // it, so this is mid-stream corruption, not a tear.
        let flip_at = entry_end(&bytes, 1) + 10;
        bytes[flip_at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        journal::set_dir(Some(&dir)); // process death
        simcache::clear();
        let stats = journal::replay();
        assert_eq!(stats.quarantined, 1, "CRC mismatch mid-stream quarantines");
        assert_eq!(stats.replayed, 1, "the good prefix (first entry) survives");
        // The damaged shard moved to the store root under a unique name.
        let shard_name = path.file_name().unwrap().to_str().unwrap();
        let corrupt = journal::v2_root(&dir).join(format!("{shard_name}.corrupt.1"));
        assert!(corrupt.exists(), "damaged shard is kept for inspection");
        assert!(!path.exists(), "the corrupt shard left the generation");

        // The rescue re-persisted the good prefix: a third "process"
        // replays it from a healthy shard without complaint.
        journal::set_dir(Some(&dir));
        simcache::clear();
        let again = journal::replay();
        assert_eq!(again.replayed, 1);
        assert_eq!(again.quarantined, 0);
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn successive_corruptions_quarantine_to_unique_names() {
    let _g = LOCK.lock().unwrap();
    let dir = scratch("requarantine");
    isolated(true, || {
        // First corruption: bad magic on the process's own shard.
        let (path, _) = journaled_run(&dir);
        let shard_name = path.file_name().unwrap().to_str().unwrap().to_string();
        std::fs::write(&path, b"NOTJRNL!garbage").unwrap();
        journal::set_dir(Some(&dir));
        simcache::clear();
        let first = journal::replay();
        assert_eq!(first.quarantined, 1);
        let root = journal::v2_root(&dir);
        let q1 = root.join(format!("{shard_name}.corrupt.1"));
        assert!(q1.exists());
        let q1_bytes = std::fs::read(&q1).unwrap();

        // Second corruption of a *same-named* shard (recreate it by hand,
        // as a pathological writer might): the quarantine must take the
        // next slot, never overwrite the first body of evidence.
        let (_, gen_dir) = journal::current_generation(&dir).unwrap();
        std::fs::write(gen_dir.join(&shard_name), b"NOTJRNL!other-garbage").unwrap();
        journal::set_dir(Some(&dir));
        simcache::clear();
        let second = journal::replay();
        assert_eq!(second.quarantined, 1);
        let q2 = root.join(format!("{shard_name}.corrupt.2"));
        assert!(q2.exists(), "second quarantine takes the next slot");
        assert_eq!(
            std::fs::read(&q1).unwrap(),
            q1_bytes,
            "the first quarantine is untouched"
        );
    });
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Host faults: retries mask them; total failure poisons and renders ERR
// ---------------------------------------------------------------------------

#[test]
fn injected_faults_are_masked_by_retries() {
    let _g = LOCK.lock().unwrap();
    let opts = quick();
    isolated(false, || {
        let clean = opts.render(&fig10(&opts));

        // 10% of attempts panic; with 10 retries a cell failing for good
        // needs 11 consecutive bad draws — the fixed seed never does.
        set_cell_retries(Some(10));
        hostfault::set_plan(Some(HostFaultPlan {
            mode: FaultMode::Panic,
            per_mille: 100,
            seed: 11,
        }));
        reset_fault_counters();
        let faulted = opts.render(&fig10(&opts));

        assert!(hostfault::injected() > 0, "the plan must actually fire");
        assert!(retries_used() > 0);
        assert_eq!(poisoned_cells(), 0, "retries must absorb every fault");
        assert_eq!(clean, faulted, "masked faults leave no trace in the output");
    });
}

/// The `--jobs 4` crash-consistency case: a worker that panics mid-cell may
/// die between the cell cache's `lookup` and `insert`, poisoning the
/// process-global mutex for every surviving worker. The cache absorbs the
/// poison (`simcache`'s locks recover via `into_inner`), so subsequent gets
/// and inserts must keep succeeding, the failed cells must be accounted as
/// poisoned and render as `ERR`, and a disarmed re-run over the same cache
/// must heal to a byte-identical clean figure.
#[test]
fn parallel_faulted_run_keeps_cache_usable_and_accounts_err() {
    let _g = LOCK.lock().unwrap();
    let opts = quick();
    isolated(true, || {
        // Clean reference, computed with the cache bypassed so the faulted
        // run below still simulates (and can panic in) every cell.
        simcache::set_enabled(false);
        let reference = opts.render(&fig10(&opts));
        simcache::set_enabled(true);

        set_jobs(4); // the repro binary's `--jobs 4`
        set_cell_retries(Some(1));
        hostfault::set_plan(Some(HostFaultPlan {
            mode: FaultMode::Panic,
            per_mille: 1000,
            seed: 3,
        }));
        reset_fault_counters();
        let faulted = opts.render(&fig10(&opts));
        assert!(hostfault::injected() > 0, "the plan must actually fire");
        assert!(
            poisoned_cells() > 0,
            "permille=1000 must poison cells across 4 workers"
        );
        assert!(
            faulted.contains("ERR"),
            "poisoned cells render as ERR:\n{faulted}"
        );
        assert!(
            hostfault::injected() >= poisoned_cells() * 2,
            "every poisoned cell burned its retry too"
        );

        // The panicking workers must not have wedged the cache: direct
        // probes (these take the same mutex) and a full figure re-run —
        // every get and insert on the heal path — still succeed.
        hostfault::set_plan(None);
        let len_before = simcache::len();
        let healed = opts.render(&fig10(&opts));
        assert!(
            simcache::len() >= len_before,
            "post-panic inserts must land in the cache"
        );
        assert!(
            simcache::stats().1 > 0,
            "healing re-simulates the poisoned cells (cache misses)"
        );
        assert_eq!(
            healed, reference,
            "a disarmed re-run heals to the clean figure byte-for-byte"
        );
    });
}

#[test]
fn total_fault_rate_poisons_cells_and_renders_err() {
    let _g = LOCK.lock().unwrap();
    let opts = quick();
    isolated(false, || {
        set_cell_retries(Some(1));
        hostfault::set_plan(Some(HostFaultPlan {
            mode: FaultMode::Panic,
            per_mille: 1000,
            seed: 1,
        }));
        reset_fault_counters();
        let table = opts.render(&fig10(&opts));

        assert!(poisoned_cells() > 0, "permille=1000 defeats every retry");
        assert!(
            table.contains("ERR"),
            "poisoned cells render as ERR:\n{table}"
        );
        assert!(hostfault::injected() >= poisoned_cells() * 2);
    });
}
