//! Differential tests for the content-addressed cell cache and the
//! flattened matrix executor.
//!
//! The load-bearing invariant: **figure output is byte-identical** with the
//! cache on or off and at any `--jobs` count. Cells are bit-deterministic
//! per `(workload fingerprint, scheme, pin, seed)`, so serving a cached
//! result must be indistinguishable from re-simulating it — these tests
//! render whole figure tables both ways and compare the strings.
//!
//! The cache and its hit/miss counters are process-global, and Rust runs
//! the `#[test]`s of one binary concurrently, so every test serializes on
//! [`LOCK`] and restores the cache state it found.

use std::sync::Mutex;
use tint_bench::figures::{fig10, fig13_14, run_matrix, validate_sampled, FigOpts};
use tint_bench::runner::{run_cells, set_jobs, CellSpec};
use tint_bench::simcache::{self, CellKey};
use tint_spmd::{engine_mode, set_engine_mode, EngineMode};
use tint_workloads::traits::Scale;
use tint_workloads::{all_benchmarks, PinConfig, Synthetic, Workload};
use tintmalloc::colors::ColorScheme;

/// Serializes tests that touch the process-global cache/counters/jobs.
static LOCK: Mutex<()> = Mutex::new(());

/// Small-but-nontrivial options: 2 seeds so rep merging is exercised, a
/// scale large enough that workloads don't degenerate to empty loops.
fn quick() -> FigOpts {
    FigOpts {
        reps: 2,
        scale: 0.02,
        csv: false,
    }
}

/// Run `f` with the cache forced to `on`, starting from an empty cache,
/// restoring the previous enabled state afterwards.
fn with_cache<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let was = simcache::enabled();
    simcache::clear();
    simcache::set_enabled(on);
    let out = f();
    simcache::set_enabled(was);
    simcache::clear();
    out
}

// ---------------------------------------------------------------------------
// Byte-identity: cache on vs cache off
// ---------------------------------------------------------------------------

#[test]
fn figures_byte_identical_cache_on_vs_off() {
    let _g = LOCK.lock().unwrap();
    let opts = quick();
    let render = || {
        let mut s = String::new();
        s.push_str(&opts.render(&fig10(&opts)));
        let m = run_matrix(&opts, &[PinConfig::T16N4, PinConfig::T4N4]);
        for t in m.fig11().iter().chain(m.fig12().iter()) {
            s.push_str(&opts.render(t));
        }
        let (summary, lbm) = fig13_14(&opts);
        s.push_str(&opts.render(&summary));
        s.push_str(&opts.render(&lbm));
        s
    };
    let cached = with_cache(true, render);
    let uncached = with_cache(false, render);
    assert_eq!(
        cached, uncached,
        "rendered figures must be byte-identical with the cell cache on and off"
    );
}

// ---------------------------------------------------------------------------
// Byte-identity: jobs 1 vs jobs 4
// ---------------------------------------------------------------------------

#[test]
fn figures_byte_identical_jobs_1_vs_4() {
    let _g = LOCK.lock().unwrap();
    let opts = quick();
    // Cache off so both runs actually execute every cell through the
    // executor rather than the second run being served from memory.
    let render = |jobs: usize| {
        set_jobs(jobs);
        let mut s = String::new();
        s.push_str(&opts.render(&fig10(&opts)));
        let (summary, lbm) = fig13_14(&opts);
        s.push_str(&opts.render(&summary));
        s.push_str(&opts.render(&lbm));
        s
    };
    let (serial, fanned) = with_cache(false, || {
        let serial = render(1);
        let fanned = render(4);
        (serial, fanned)
    });
    set_jobs(0);
    assert_eq!(
        serial, fanned,
        "rendered figures must be byte-identical at --jobs 1 and --jobs 4"
    );
}

// ---------------------------------------------------------------------------
// Fingerprints and cell keys
// ---------------------------------------------------------------------------

#[test]
fn same_params_same_fingerprint() {
    let a = Synthetic::new(Scale(0.5));
    let b = Synthetic::new(Scale(0.5));
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn different_params_different_fingerprint() {
    let a = Synthetic::new(Scale(0.5));
    let b = Synthetic::new(Scale(0.25));
    assert_ne!(
        a.fingerprint(),
        b.fingerprint(),
        "scale changes the parameter set, so the fingerprint must change"
    );
}

#[test]
fn all_benchmarks_have_distinct_fingerprints() {
    let benches = all_benchmarks(Scale(0.1));
    for (i, a) in benches.iter().enumerate() {
        for b in &benches[i + 1..] {
            assert_ne!(
                a.fingerprint(),
                b.fingerprint(),
                "{} and {} must not collide",
                a.name(),
                b.name()
            );
        }
    }
    // And the same benchmark at a different scale is a different cell.
    let rescaled = all_benchmarks(Scale(0.2));
    for (a, b) in benches.iter().zip(&rescaled) {
        assert_ne!(a.fingerprint(), b.fingerprint(), "{}", a.name());
    }
}

#[test]
fn seed_is_part_of_the_cell_key() {
    let w = Synthetic::new(Scale(0.1));
    let k1 = CellKey::of(&w, ColorScheme::Buddy, PinConfig::T16N4, 1);
    let k2 = CellKey::of(&w, ColorScheme::Buddy, PinConfig::T16N4, 2);
    assert_ne!(k1, k2, "each repetition seed must be a distinct cell");
    let k1_again = CellKey::of(&w, ColorScheme::Buddy, PinConfig::T16N4, 1);
    assert_eq!(k1, k1_again);
}

// ---------------------------------------------------------------------------
// Cross-figure reuse: fig13/fig14 after the fig11 matrix is all hits
// ---------------------------------------------------------------------------

#[test]
fn fig13_14_after_matrix_is_all_cache_hits() {
    let _g = LOCK.lock().unwrap();
    let opts = quick();
    with_cache(true, || {
        run_matrix(&opts, &[PinConfig::T16N4]);
        let (_, misses_before) = simcache::stats();
        fig13_14(&opts);
        let (hits, misses_after) = simcache::stats();
        assert_eq!(
            misses_after - misses_before,
            0,
            "every fig13/fig14 cell is in the fig11 matrix, so the sweep \
             must simulate nothing new"
        );
        assert!(hits > 0, "the sweep must have been served from the cache");
    });
}

// ---------------------------------------------------------------------------
// Executor accounting: in-batch duplicates are simulated once
// ---------------------------------------------------------------------------

#[test]
fn duplicate_cells_in_one_batch_simulate_once() {
    let _g = LOCK.lock().unwrap();
    let w = Synthetic::new(Scale(0.05));
    let spec = CellSpec {
        workload: &w,
        scheme: ColorScheme::Buddy,
        pin: PinConfig::T16N4,
        seed: 1,
    };
    with_cache(true, || {
        let results = run_cells(&[spec, spec, spec], 1);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        let (hits, misses) = simcache::stats();
        assert_eq!(misses, 1, "one unique cell content, one simulation");
        assert_eq!(hits, 2, "the two duplicates are served, not re-run");
    });
}

// ---------------------------------------------------------------------------
// Sampled engine mode (engine mode is process-global: serialize + restore)
// ---------------------------------------------------------------------------

/// Run `f` with the engine forced to `mode`, restoring the previous mode.
fn with_engine<T>(mode: EngineMode, f: impl FnOnce() -> T) -> T {
    let was = engine_mode();
    set_engine_mode(mode);
    let out = f();
    set_engine_mode(was);
    out
}

#[test]
fn sampled_mode_is_a_distinct_cell_key() {
    let _g = LOCK.lock().unwrap();
    let w = Synthetic::new(Scale(0.1));
    let key = |mode| {
        with_engine(mode, || {
            CellKey::of(&w, ColorScheme::Buddy, PinConfig::T16N4, 1)
        })
    };
    assert_ne!(
        key(EngineMode::Exact),
        key(EngineMode::Sampled),
        "exact and sampled runs of the same cell must never share a cache entry"
    );
    // And behaviorally: a figure fully cached in exact mode is re-simulated
    // from scratch in sampled mode — zero hits cross the mode boundary.
    let opts = quick();
    with_cache(true, || {
        with_engine(EngineMode::Exact, || fig10(&opts));
        let (_, misses_exact) = simcache::stats();
        let hits_before = simcache::stats().0;
        with_engine(EngineMode::Sampled, || fig10(&opts));
        let (hits_after, misses_sampled) = simcache::stats();
        assert_eq!(
            hits_after, hits_before,
            "no exact cell serves a sampled run"
        );
        assert!(
            misses_sampled > misses_exact,
            "the sampled pass must simulate its own cells"
        );
    });
}

#[test]
fn sampled_figures_byte_identical_jobs_1_vs_4() {
    let _g = LOCK.lock().unwrap();
    let opts = quick();
    // The sampled schedule is seeded per (core, period), not per host
    // thread, so the rendered tables must not depend on `--jobs`.
    let render = |jobs: usize| {
        set_jobs(jobs);
        let mut s = String::new();
        s.push_str(&opts.render(&fig10(&opts)));
        let (summary, lbm) = fig13_14(&opts);
        s.push_str(&opts.render(&summary));
        s.push_str(&opts.render(&lbm));
        s
    };
    let (serial, fanned) = with_cache(false, || {
        with_engine(EngineMode::Sampled, || (render(1), render(4)))
    });
    set_jobs(0);
    assert_eq!(
        serial, fanned,
        "sampled-mode figures must be byte-identical at --jobs 1 and --jobs 4"
    );
}

#[test]
fn validate_sampled_holds_error_bound_on_reduced_matrix() {
    let _g = LOCK.lock().unwrap();
    let opts = FigOpts {
        reps: 1,
        scale: 0.05,
        csv: false,
    };
    // validate_sampled manages cache and engine mode itself; run it on one
    // pin config and hard-assert the shipped default knobs hold the bound.
    let v = validate_sampled(&opts, &[PinConfig::T16N4]);
    assert!(
        v.passed,
        "default sampled knobs must stay within the error bound, got max {:.3}%",
        v.max_err_pct
    );
    assert!(v.table.len() >= 2, "one row per validated figure metric");
    assert_eq!(engine_mode(), EngineMode::Exact, "mode restored after run");
}
