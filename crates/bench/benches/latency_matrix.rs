//! Wall-clock bench for the §V latency claims: prints the latency table and
//! benchmarks single simulated accesses (local vs remote, hit vs miss) —
//! the hot path of the whole simulator.

use tint_bench::figures::{latency, FigOpts};
use tint_bench::microbench::Harness;
use tint_hw::types::{BankColor, CoreId, LlcColor, Rw};
use tint_mem::MemorySystem;
use tintmalloc::prelude::MachineConfig;

fn bench(c: &mut Harness) {
    println!(
        "\n=== §V latency claims ===\n{}",
        latency(&FigOpts::default()).render()
    );

    let machine = MachineConfig::opteron_6128();
    let mut g = c.benchmark_group("latency_matrix");
    for (label, bc) in [("local", 0u16), ("1hop", 32), ("2hop", 96)] {
        let mut sys = MemorySystem::new(machine.clone());
        let mut row = 0u64;
        let mut clock = 0u64;
        g.bench_function(format!("dram_access/{label}"), |b| {
            b.iter(|| {
                row = (row + 1) % 1024;
                clock += 1000;
                let f =
                    machine
                        .mapping
                        .compose_frame(BankColor(bc), LlcColor((row % 32) as u16), row);
                sys.access(CoreId(0), f.base(), Rw::Read, clock).latency
            })
        });
    }
    // The pure cache-hit path.
    let mut sys = MemorySystem::new(machine.clone());
    let f = machine.mapping.compose_frame(BankColor(0), LlcColor(0), 0);
    sys.access(CoreId(0), f.base(), Rw::Read, 0);
    g.bench_function("cache_hit/l1", |b| {
        b.iter(|| sys.access(CoreId(0), f.base(), Rw::Read, 1_000_000).latency)
    });
    g.finish();
}

fn main() {
    bench(&mut Harness::new());
}
