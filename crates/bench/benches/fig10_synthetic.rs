//! Wall-clock bench for **Figure 10**: the synthetic alternating-stride
//! benchmark under each coloring policy. Prints the figure table once, then
//! benchmarks each policy's full simulated run (the harness numbers track
//! simulator throughput; the figure numbers are the simulated cycles).

use tint_bench::figures::{fig10, FigOpts};
use tint_bench::microbench::Harness;
use tint_bench::runner::run_once;
use tint_workloads::traits::Scale;
use tint_workloads::{PinConfig, Synthetic};
use tintmalloc::prelude::*;

fn bench(c: &mut Harness) {
    let opts = FigOpts {
        reps: 1,
        scale: 0.25,
        csv: false,
    };
    println!(
        "\n=== Figure 10 (scale {}) ===\n{}",
        opts.scale,
        fig10(&opts).render()
    );

    let mut g = c.benchmark_group("fig10_synthetic");
    g.sample_size(10);
    let w = Synthetic::new(Scale(0.1));
    for scheme in [
        ColorScheme::Buddy,
        ColorScheme::LlcOnly,
        ColorScheme::MemOnly,
        ColorScheme::MemLlc,
    ] {
        g.bench_function(scheme.label(), |b| {
            b.iter(|| run_once(&w, scheme, PinConfig::T16N4, 1).metrics.runtime)
        });
    }
    g.finish();
}

fn main() {
    bench(&mut Harness::new());
}
