//! Wall-clock bench for the §III.C overhead: populating the colored free
//! lists (Algorithm 2) vs serving from already-populated lists. Prints the
//! cold/warm ablation table, then benchmarks the kernel allocation paths.

use tint_bench::figures::{ablate_colorlist, FigOpts};
use tint_bench::microbench::Harness;
use tint_hw::addrmap::AddressMapping;
use tint_hw::topology::Topology;
use tint_hw::types::CoreId;
use tint_kernel::kernel::{COLOR_ALLOC, SET_LLC_COLOR, SET_MEM_COLOR};
use tint_kernel::{Kernel, KernelCosts};

fn bench(c: &mut Harness) {
    println!(
        "\n=== §III.C colored free-list population ===\n{}",
        ablate_colorlist(&FigOpts::default()).render()
    );

    let mut g = c.benchmark_group("colorlist_population");

    // Cold path: every iteration boots a kernel and takes the first colored
    // fault (includes the buddy free-list traversal + Algorithm 2).
    g.bench_function("first_colored_fault", |b| {
        b.iter(|| {
            let mut k = Kernel::new(
                AddressMapping::opteron_6128(),
                Topology::new(2, 2, 4),
                KernelCosts::default(),
            );
            let t = k.create_task(CoreId(0));
            k.sys_mmap(t, SET_MEM_COLOR, 0, COLOR_ALLOC).unwrap();
            k.sys_mmap(t, SET_LLC_COLOR, 0, COLOR_ALLOC).unwrap();
            let base = k.sys_mmap(t, 0, 4096, 0).unwrap();
            k.translate(t, base).unwrap().fault_cycles
        })
    });

    // Warm path: lists are populated; faults pop in O(1).
    let mut k = Kernel::new(
        AddressMapping::opteron_6128(),
        Topology::new(2, 2, 4),
        KernelCosts::default(),
    );
    let t = k.create_task(CoreId(0));
    k.sys_mmap(t, SET_MEM_COLOR, 0, COLOR_ALLOC).unwrap();
    k.sys_mmap(t, SET_LLC_COLOR, 0, COLOR_ALLOC).unwrap();
    let region = k.sys_mmap(t, 0, 4096 * 512, 0).unwrap();
    k.translate(t, region).unwrap(); // populate
    let mut page = 1u64;
    g.bench_function("warm_colored_fault", |b| {
        b.iter(|| {
            page = page % 511 + 1;
            // Re-fault fresh pages by cycling through the region; once the
            // region is fully mapped this measures the translate fast path.
            k.translate(t, region.offset(page * 4096))
                .unwrap()
                .fault_cycles
        })
    });

    // The uncolored buddy fault path for comparison.
    let mut k2 = Kernel::new(
        AddressMapping::opteron_6128(),
        Topology::new(2, 2, 4),
        KernelCosts::default(),
    );
    let t2 = k2.create_task(CoreId(0));
    let region2 = k2.sys_mmap(t2, 0, 4096 * 100_000, 0).unwrap();
    let mut p2 = 0u64;
    g.bench_function("legacy_fault", |b| {
        b.iter(|| {
            p2 += 1;
            k2.translate(t2, region2.offset((p2 % 100_000) * 4096))
                .map(|tr| tr.fault_cycles)
                .unwrap_or(0)
        })
    });
    g.finish();
}

fn main() {
    bench(&mut Harness::new());
}
