//! Wall-clock bench for **Figure 13**: per-thread runtimes at
//! 16_threads_4_nodes. Prints the per-benchmark spread summary and
//! benchmarks the per-thread-metric extraction for lbm.

use tint_bench::figures::{fig13_14, FigOpts};
use tint_bench::microbench::Harness;
use tint_bench::runner::run_once;
use tint_workloads::lbm::Lbm;
use tint_workloads::traits::Scale;
use tint_workloads::PinConfig;
use tintmalloc::prelude::*;

fn bench(c: &mut Harness) {
    let opts = FigOpts {
        reps: 1,
        scale: 0.25,
        csv: false,
    };
    let (summary, _) = fig13_14(&opts);
    println!(
        "\n=== Figure 13 (scale {}) ===\n{}",
        opts.scale,
        summary.render()
    );

    let mut g = c.benchmark_group("fig13_thread_runtime");
    g.sample_size(10);
    let w = Lbm::new(Scale(0.1));
    for scheme in [ColorScheme::Buddy, ColorScheme::MemLlc] {
        g.bench_function(format!("lbm/{}", scheme.label()), |b| {
            b.iter(|| {
                let m = run_once(&w, scheme, PinConfig::T16N4, 1).metrics;
                (
                    m.max_thread_runtime(),
                    m.min_thread_runtime(),
                    m.runtime_spread(),
                )
            })
        });
    }
    g.finish();
}

fn main() {
    bench(&mut Harness::new());
}
