//! Wall-clock bench for **Figure 11**: normalized benchmark runtimes.
//! Prints a reduced figure (16_threads_4_nodes) and benchmarks the
//! buddy-vs-MEM+LLC cell for every benchmark.

use tint_bench::figures::{run_matrix, FigOpts};
use tint_bench::microbench::Harness;
use tint_bench::runner::run_once;
use tint_workloads::traits::Scale;
use tint_workloads::{all_benchmarks, PinConfig};
use tintmalloc::prelude::*;

fn bench(c: &mut Harness) {
    let opts = FigOpts {
        reps: 1,
        scale: 0.25,
        csv: false,
    };
    let m = run_matrix(&opts, &[PinConfig::T16N4]);
    println!(
        "\n=== Figure 11 (scale {}, 16_threads_4_nodes) ===",
        opts.scale
    );
    for t in m.fig11() {
        println!("{}", t.render());
    }

    let mut g = c.benchmark_group("fig11_runtime");
    g.sample_size(10);
    for w in all_benchmarks(Scale(0.1)) {
        for scheme in [ColorScheme::Buddy, ColorScheme::MemLlc] {
            g.bench_function(format!("{}/{}", w.name(), scheme.label()), |b| {
                b.iter(|| {
                    run_once(w.as_ref(), scheme, PinConfig::T16N4, 1)
                        .metrics
                        .runtime
                })
            });
        }
    }
    g.finish();
}

fn main() {
    bench(&mut Harness::new());
}
