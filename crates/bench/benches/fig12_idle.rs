//! Wall-clock bench for **Figure 12**: normalized total idle time at
//! barriers. Prints the reduced figure and benchmarks the idle-accounting
//! path (a full run returning the Algorithm-3 totals).

use tint_bench::figures::{run_matrix, FigOpts};
use tint_bench::microbench::Harness;
use tint_bench::runner::run_once;
use tint_workloads::lbm::Lbm;
use tint_workloads::traits::Scale;
use tint_workloads::PinConfig;
use tintmalloc::prelude::*;

fn bench(c: &mut Harness) {
    let opts = FigOpts {
        reps: 1,
        scale: 0.25,
        csv: false,
    };
    let m = run_matrix(&opts, &[PinConfig::T16N4]);
    println!(
        "\n=== Figure 12 (scale {}, 16_threads_4_nodes) ===",
        opts.scale
    );
    for t in m.fig12() {
        println!("{}", t.render());
    }

    let mut g = c.benchmark_group("fig12_idle");
    g.sample_size(10);
    let w = Lbm::new(Scale(0.1));
    for scheme in [ColorScheme::Buddy, ColorScheme::Bpm, ColorScheme::MemLlc] {
        g.bench_function(scheme.label(), |b| {
            b.iter(|| {
                run_once(&w, scheme, PinConfig::T16N4, 1)
                    .metrics
                    .total_idle()
            })
        });
    }
    g.finish();
}

fn main() {
    bench(&mut Harness::new());
}
