//! Wall-clock bench for **Figure 14**: per-thread idle times at
//! 16_threads_4_nodes. Prints the lbm per-thread detail and benchmarks the
//! idle extraction.

use tint_bench::figures::{fig13_14, FigOpts};
use tint_bench::microbench::Harness;
use tint_bench::runner::run_once;
use tint_workloads::lbm::Lbm;
use tint_workloads::traits::Scale;
use tint_workloads::PinConfig;
use tintmalloc::prelude::*;

fn bench(c: &mut Harness) {
    let opts = FigOpts {
        reps: 1,
        scale: 0.25,
        csv: false,
    };
    let (_, lbm_detail) = fig13_14(&opts);
    println!(
        "\n=== Figure 14: lbm per-thread idle (scale {}) ===\n{}",
        opts.scale,
        lbm_detail.render()
    );

    let mut g = c.benchmark_group("fig14_thread_idle");
    g.sample_size(10);
    let w = Lbm::new(Scale(0.1));
    for scheme in [ColorScheme::Buddy, ColorScheme::MemLlc] {
        g.bench_function(format!("lbm/{}", scheme.label()), |b| {
            b.iter(|| {
                run_once(&w, scheme, PinConfig::T16N4, 1)
                    .metrics
                    .max_thread_idle()
            })
        });
    }
    g.finish();
}

fn main() {
    bench(&mut Harness::new());
}
