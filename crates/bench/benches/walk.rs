//! Microbenchmark for the dependent-load wall in the cache walk.
//!
//! Two regimes over the same seeded address stream:
//!
//! - `*_hot`: a tight lookup loop. The host's out-of-order window already
//!   overlaps consecutive walks here, so the layouts should be close —
//!   this pair is the control, not the motivation.
//! - `*_interleaved`: each lookup is followed by a slug of unrelated work
//!   (a streaming write burst, standing in for the engine's decode / DRAM
//!   / scheduler code between walks) that pushes tag strides out of the
//!   host's near caches. This is the regime the engine actually runs in,
//!   and where `soa_prefetch_interleaved` — software-pipelined
//!   [`SetAssocCache::prefetch_set`] hints issued [`LOOKAHEAD`] ops ahead
//!   — overlaps the tag fetches with the unrelated work. The AoS layout
//!   cannot express this: the tag stride's address is behind the per-set
//!   pointer, so a hint needs the dependent load it was meant to hide.
//!
//! The AoS baseline is a bench-local replica of the old array-of-structs
//! layout (one heap `Vec` of `{tag, owner}` lines per set) doing the same
//! per-op work (LRU rotate, hit/miss counters, eviction reporting).

use tint_bench::microbench::Harness;
use tint_cache::SetAssocCache;
use tint_hw::types::{CoreId, PhysAddr};

/// L3-shaped geometry: big enough that the tag array misses host L1/L2,
/// which is where the layout difference shows.
const SETS: usize = 4096;
const ASSOC: usize = 16;
const LINE_SHIFT: u32 = 6;
/// Working set ~4× the cache, so the stream mixes hits and misses.
const FOOTPRINT_LINES: u64 = (SETS * ASSOC * 4) as u64;
const STREAM_LEN: usize = 1 << 15;
/// Prefetch lookahead for the software-pipelined variant: far enough that
/// the stride arrives, near enough that the slug traffic has not yet
/// evicted it again.
const LOOKAHEAD: usize = 8;
/// Streaming-write slug per op in the interleaved regime (bytes).
const SLUG: usize = 512;
/// Pollution ring, sized past the host L2 so slugs keep evicting tags.
const RING: usize = 8 << 20;

/// SplitMix64 — the same generator the engine's sampling schedule uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn stream(seed: u64) -> Vec<PhysAddr> {
    let mut s = seed;
    (0..STREAM_LEN)
        .map(|_| PhysAddr((splitmix64(&mut s) % FOOTPRINT_LINES) << LINE_SHIFT))
        .collect()
}

/// The stand-in for engine work between walks: stream `SLUG` bytes of
/// writes through a ring that does not fit the host's near caches.
#[inline]
fn slug(ring: &mut [u64], pos: &mut usize) -> u64 {
    let words = SLUG / 8;
    let start = *pos;
    *pos = (*pos + words) % (ring.len() - words);
    let mut acc = 0u64;
    for w in &mut ring[start..start + words] {
        *w = w.wrapping_add(1);
        acc = acc.wrapping_add(*w);
    }
    acc
}

/// The pre-refactor layout: one separately allocated line vector per set.
/// Kept semantically identical to [`SetAssocCache`] (LRU rotate on hit,
/// LRU evict on full-set fill, hit/miss counters, eviction reporting) so
/// the two walks do the same work per op and only the layout differs.
struct AosCache {
    sets: Vec<Vec<AosLine>>,
    assoc: usize,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

#[derive(Clone, Copy)]
struct AosLine {
    tag: u64,
    owner: u8,
}

impl AosCache {
    fn new(sets: usize, assoc: usize) -> Self {
        Self {
            sets: (0..sets).map(|_| Vec::with_capacity(assoc)).collect(),
            assoc,
            set_mask: (sets - 1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn access(&mut self, core: CoreId, addr: PhysAddr) -> (bool, Option<(u64, u8)>) {
        let la = addr.0 >> LINE_SHIFT;
        let set = &mut self.sets[(la & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|l| l.tag == la) {
            set[pos..].rotate_left(1);
            let len = set.len();
            set[len - 1].owner = core.index() as u8;
            self.hits += 1;
            return (true, None);
        }
        self.misses += 1;
        let line = AosLine {
            tag: la,
            owner: core.index() as u8,
        };
        if set.len() == self.assoc {
            let victim = set[0];
            set.rotate_left(1);
            let len = set.len();
            set[len - 1] = line;
            (false, Some((victim.tag, victim.owner)))
        } else {
            set.push(line);
            (false, None)
        }
    }
}

fn bench(c: &mut Harness) {
    let addrs = stream(0x5A3D);
    let mut g = c.benchmark_group("walk");

    // --- control: tight loops ---------------------------------------------

    let mut aos = AosCache::new(SETS, ASSOC);
    for &a in &addrs {
        aos.access(CoreId(0), a); // warm: steady-state occupancy
    }
    g.bench_function("aos_hot", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &a in &addrs {
                hits += aos.access(CoreId(0), a).0 as u64;
            }
            hits
        })
    });

    let mut soa = SetAssocCache::new(SETS, ASSOC, LINE_SHIFT);
    for &a in &addrs {
        soa.access(CoreId(0), a);
    }
    g.bench_function("soa_hot", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &a in &addrs {
                hits += soa.access(CoreId(0), a).0 as u64;
            }
            hits
        })
    });

    // --- the engine regime: walks interleaved with unrelated work ---------

    let mut ring = vec![0u64; RING / 8];
    let mut pos = 0usize;

    let mut aos_i = AosCache::new(SETS, ASSOC);
    for &a in &addrs {
        aos_i.access(CoreId(0), a);
    }
    g.bench_function("aos_interleaved", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc += aos_i.access(CoreId(0), a).0 as u64;
                acc = acc.wrapping_add(slug(&mut ring, &mut pos));
            }
            acc
        })
    });

    let mut soa_i = SetAssocCache::new(SETS, ASSOC, LINE_SHIFT);
    for &a in &addrs {
        soa_i.access(CoreId(0), a);
    }
    g.bench_function("soa_interleaved", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &a in &addrs {
                acc += soa_i.access(CoreId(0), a).0 as u64;
                acc = acc.wrapping_add(slug(&mut ring, &mut pos));
            }
            acc
        })
    });

    let mut soa_p = SetAssocCache::new(SETS, ASSOC, LINE_SHIFT);
    for &a in &addrs {
        soa_p.access(CoreId(0), a);
    }
    g.bench_function("soa_prefetch_interleaved", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..addrs.len() {
                // Software-pipelined: hint the stride a few ops ahead, so
                // the fetch overlaps the interleaved work instead of the
                // walk stalling on it. Only possible because the stride's
                // address is pure arithmetic on the target address.
                if let Some(&ahead) = addrs.get(i + LOOKAHEAD) {
                    soa_p.prefetch_set(soa_p.set_index(ahead));
                }
                acc += soa_p.access(CoreId(0), addrs[i]).0 as u64;
                acc = acc.wrapping_add(slug(&mut ring, &mut pos));
            }
            acc
        })
    });

    g.finish();
}

fn main() {
    bench(&mut Harness::new());
}
