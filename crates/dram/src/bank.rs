//! Per-bank row-buffer state machine.
//!
//! A DRAM bank holds at most one *open row* in its row buffer (§II.B of the
//! paper). An access to the open row is a **row hit** (column strobe only);
//! an access when no row is open is a **row miss** (activate + column); an
//! access to a different row is a **row conflict** (precharge + activate +
//! column). Refresh closes the open row and makes the bank unavailable for
//! `tRFC` every `tREFI`.

use tint_hw::machine::{DramConfig, PagePolicy};

/// Outcome of the row-buffer check for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOutcome {
    /// The requested row was already open: column access only (`tCAS`).
    Hit,
    /// No row open (cold bank or just refreshed): `tRCD + tCAS`.
    Miss,
    /// A different row was open: `tRP + tRCD + tCAS`.
    Conflict,
}

impl RowOutcome {
    /// Device cycles the outcome costs under `t`.
    #[inline]
    pub fn cost(self, t: &DramConfig) -> u64 {
        match self {
            RowOutcome::Hit => t.t_cas,
            RowOutcome::Miss => t.t_rcd + t.t_cas,
            RowOutcome::Conflict => t.t_rp + t.t_rcd + t.t_cas,
        }
    }
}

/// Timing state of a single bank.
#[derive(Debug, Clone)]
pub struct BankState {
    /// Currently open row, if any.
    open_row: Option<u64>,
    /// Cycle at which the bank next becomes free.
    busy_until: u64,
    /// Next scheduled refresh start (when refresh modeling is enabled).
    next_refresh: u64,
}

impl BankState {
    /// A cold bank (no open row, idle, first refresh after one interval).
    pub fn new(t: &DramConfig) -> Self {
        Self {
            open_row: None,
            busy_until: 0,
            next_refresh: if t.t_refi == 0 { u64::MAX } else { t.t_refi },
        }
    }

    /// Currently open row (testing / stats hook).
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Cycle at which the bank becomes free.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Account for any refresh windows that begin at or before `at`,
    /// returning the (possibly pushed back) earliest start time. Each refresh
    /// closes the open row and occupies the bank for `tRFC`.
    fn apply_refresh(&mut self, mut at: u64, t: &DramConfig) -> u64 {
        while self.next_refresh <= at {
            let refresh_end = self.next_refresh + t.t_rfc;
            self.open_row = None;
            if refresh_end > at {
                at = refresh_end;
            }
            if refresh_end > self.busy_until {
                self.busy_until = refresh_end;
            }
            self.next_refresh += t.t_refi;
        }
        at
    }

    /// Serve an access to `row` that is ready to issue at `ready`: waits for
    /// the bank, resolves the row-buffer outcome, opens `row`, and returns
    /// `(outcome, start_cycle, done_cycle)` where `done_cycle` is when the
    /// bank array has the data ready for the channel.
    pub fn access(&mut self, row: u64, ready: u64, t: &DramConfig) -> (RowOutcome, u64, u64) {
        let mut start = ready.max(self.busy_until);
        start = self.apply_refresh(start, t);
        start = start.max(self.busy_until);
        let outcome = match self.open_row {
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Miss,
        };
        let done = start + outcome.cost(t);
        // Closed-page controllers auto-precharge: the next access always
        // activates a closed row (never a hit, never a conflict).
        self.open_row = match t.page_policy {
            PagePolicy::Open => Some(row),
            PagePolicy::Closed => None,
        };
        self.busy_until = done;
        (outcome, start, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> DramConfig {
        DramConfig {
            t_cas: 27,
            t_rcd: 27,
            t_rp: 27,
            t_transfer: 24,
            ctrl_overhead: 10,
            t_refi: 0,
            t_rfc: 0,
            page_policy: PagePolicy::Open,
        }
    }

    fn timing_refresh() -> DramConfig {
        DramConfig {
            t_refi: 1000,
            t_rfc: 100,
            ..timing()
        }
    }

    #[test]
    fn cold_access_is_row_miss() {
        let t = timing();
        let mut b = BankState::new(&t);
        let (o, start, done) = b.access(5, 0, &t);
        assert_eq!(o, RowOutcome::Miss);
        assert_eq!(start, 0);
        assert_eq!(done, t.t_rcd + t.t_cas);
        assert_eq!(b.open_row(), Some(5));
    }

    #[test]
    fn same_row_hits() {
        let t = timing();
        let mut b = BankState::new(&t);
        b.access(5, 0, &t);
        let (o, _, done) = b.access(5, 100, &t);
        assert_eq!(o, RowOutcome::Hit);
        assert_eq!(done, 100 + t.t_cas);
    }

    #[test]
    fn different_row_conflicts() {
        let t = timing();
        let mut b = BankState::new(&t);
        b.access(5, 0, &t);
        let (o, _, done) = b.access(6, 100, &t);
        assert_eq!(o, RowOutcome::Conflict);
        assert_eq!(done, 100 + t.t_rp + t.t_rcd + t.t_cas);
        assert_eq!(b.open_row(), Some(6));
    }

    #[test]
    fn back_to_back_requests_serialize_on_the_bank() {
        let t = timing();
        let mut b = BankState::new(&t);
        let (_, _, done1) = b.access(5, 0, &t);
        // Second request arrives while the bank is still busy.
        let (o, start2, _) = b.access(5, 1, &t);
        assert_eq!(o, RowOutcome::Hit);
        assert_eq!(start2, done1, "second access must wait for the bank");
    }

    #[test]
    fn row_conflict_costs_more_than_hit() {
        let t = timing();
        assert!(RowOutcome::Conflict.cost(&t) > RowOutcome::Miss.cost(&t));
        assert!(RowOutcome::Miss.cost(&t) > RowOutcome::Hit.cost(&t));
    }

    #[test]
    fn refresh_closes_row_and_delays() {
        let t = timing_refresh();
        let mut b = BankState::new(&t);
        b.access(5, 0, &t);
        // Arrive just past the refresh point: the open row is gone and the
        // access is pushed past the refresh window.
        let (o, start, _) = b.access(5, 1000, &t);
        assert_eq!(o, RowOutcome::Miss, "refresh closed the row");
        assert_eq!(start, 1100, "access waits out tRFC");
    }

    #[test]
    fn multiple_elapsed_refreshes_apply() {
        let t = timing_refresh();
        let mut b = BankState::new(&t);
        b.access(5, 0, &t);
        // Arriving at 3500 skips refreshes at 1000, 2000, 3000 — only the
        // last one can still delay us, and the row is closed.
        let (o, start, _) = b.access(5, 3500, &t);
        assert_eq!(o, RowOutcome::Miss);
        assert_eq!(start, 3500);
    }

    #[test]
    fn refresh_disabled_never_fires() {
        let t = timing();
        let mut b = BankState::new(&t);
        b.access(5, 0, &t);
        let (o, _, _) = b.access(5, u64::MAX / 2, &t);
        assert_eq!(o, RowOutcome::Hit);
    }

    #[test]
    fn closed_page_policy_never_hits_or_conflicts() {
        let t = DramConfig {
            page_policy: PagePolicy::Closed,
            ..timing()
        };
        let mut b = BankState::new(&t);
        let (o1, _, done) = b.access(5, 0, &t);
        assert_eq!(o1, RowOutcome::Miss);
        // Same row again: still a miss (auto-precharged), not a hit.
        let (o2, _, _) = b.access(5, done, &t);
        assert_eq!(o2, RowOutcome::Miss);
        // Different row: a plain miss, not a conflict (no precharge stall).
        let (o3, _, _) = b.access(6, 2 * done, &t);
        assert_eq!(o3, RowOutcome::Miss);
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn interleaved_rows_thrash() {
        // The Fig. 8 scenario: two request streams to the same bank with
        // different rows — every access is a conflict after the first.
        let t = timing();
        let mut b = BankState::new(&t);
        let mut now = 0;
        let mut conflicts = 0;
        for i in 0..10 {
            let row = i % 2;
            let (o, _, done) = b.access(row, now, &t);
            if o == RowOutcome::Conflict {
                conflicts += 1;
            }
            now = done;
        }
        assert_eq!(conflicts, 9);
    }
}
