//! # tint-dram — DRAM timing simulator
//!
//! Models the memory side of the paper's platform (§II.B): per-node memory
//! controllers, channels, ranks, and banks with **row buffers**, controller
//! front-end serialization, channel data-bus occupancy, and periodic refresh.
//!
//! The simulator is a *reservation* (busy-until) model: each shared resource
//! (controller front-end, bank, channel data bus) carries the cycle at which
//! it next becomes free. A request arriving at cycle `now` experiences
//!
//! ```text
//! wait(controller) → wait(bank) → row-buffer outcome → wait(channel bus)
//! ```
//!
//! which reproduces the contention phenomena the paper builds on:
//!
//! * two threads interleaving accesses to **the same bank with different
//!   rows** thrash the row buffer → every access pays
//!   `tRP + tRCD + tCAS` instead of `tCAS` (Fig. 8's scenario);
//! * threads on **disjoint banks** proceed in parallel, paying only the
//!   (much smaller) channel/controller serialization;
//! * refresh periodically closes rows and steals `tRFC` per bank.
//!
//! Latency numbers come from [`tint_hw::machine::DramConfig`]; everything is
//! in core cycles.

//! ```
//! use tint_dram::{DramSystem, RowOutcome};
//! use tint_hw::machine::MachineConfig;
//! use tint_hw::types::{BankColor, LlcColor, Rw};
//!
//! let m = MachineConfig::opteron_6128();
//! let mut dram = DramSystem::new(m.mapping, m.dram);
//! let a = m.mapping.compose_frame(BankColor(0), LlcColor(0), 7).base();
//! let first = dram.access(a, Rw::Read, 0);
//! assert_eq!(first.outcome, RowOutcome::Miss); // cold bank
//! let again = dram.access(a, Rw::Read, first.complete_at);
//! assert_eq!(again.outcome, RowOutcome::Hit); // open row
//! assert!(again.latency < first.latency);
//! ```

pub mod bank;
pub mod stats;
pub mod system;

pub use bank::{BankState, RowOutcome};
pub use stats::{BankStats, DramStats};
pub use system::{DramAccess, DramSystem};
