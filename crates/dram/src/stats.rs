//! Counters collected by the DRAM simulator.

use crate::bank::RowOutcome;
use tint_hw::types::{BankColor, NodeId};

/// Per-bank counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row misses (activate on a closed bank).
    pub row_misses: u64,
    /// Row conflicts (precharge + activate).
    pub row_conflicts: u64,
    /// Cycles requests spent waiting for this bank to become free.
    pub bank_wait_cycles: u64,
}

impl BankStats {
    /// Total accesses to the bank.
    pub fn accesses(&self) -> u64 {
        self.row_hits + self.row_misses + self.row_conflicts
    }

    /// Row-buffer hit rate in `[0, 1]`; `0` when idle.
    pub fn hit_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.row_hits as f64 / n as f64
        }
    }

    pub(crate) fn record(&mut self, outcome: RowOutcome, waited: u64) {
        match outcome {
            RowOutcome::Hit => self.row_hits += 1,
            RowOutcome::Miss => self.row_misses += 1,
            RowOutcome::Conflict => self.row_conflicts += 1,
        }
        self.bank_wait_cycles += waited;
    }
}

/// Machine-wide DRAM counters, indexable per bank and per node.
#[derive(Debug, Clone, Default)]
pub struct DramStats {
    /// One entry per bank color (global flattened bank coordinate).
    pub banks: Vec<BankStats>,
    /// Requests served per node (controller).
    pub node_requests: Vec<u64>,
    /// Cycles spent waiting at controller front-ends, total.
    pub ctrl_wait_cycles: u64,
    /// Cycles spent waiting for channel data buses, total.
    pub channel_wait_cycles: u64,
    /// Total requests.
    pub requests: u64,
    /// Sum of end-to-end DRAM latencies (excludes cache/interconnect).
    pub total_latency: u64,
}

impl DramStats {
    /// Zeroed stats for `banks` bank colors over `nodes` nodes.
    pub fn new(banks: usize, nodes: usize) -> Self {
        Self {
            banks: vec![BankStats::default(); banks],
            node_requests: vec![0; nodes],
            ..Default::default()
        }
    }

    /// Stats for one bank color.
    pub fn bank(&self, bc: BankColor) -> &BankStats {
        &self.banks[bc.index()]
    }

    /// Requests served by one node's controller.
    pub fn node(&self, n: NodeId) -> u64 {
        self.node_requests[n.index()]
    }

    /// Mean end-to-end DRAM latency per request; `0` when idle.
    pub fn mean_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.requests as f64
        }
    }

    /// Aggregate row-buffer hit rate.
    pub fn hit_rate(&self) -> f64 {
        let (hits, total) = self
            .banks
            .iter()
            .fold((0u64, 0u64), |(h, t), b| (h + b.row_hits, t + b.accesses()));
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_stats_record_and_rate() {
        let mut s = BankStats::default();
        s.record(RowOutcome::Hit, 2);
        s.record(RowOutcome::Hit, 0);
        s.record(RowOutcome::Conflict, 5);
        s.record(RowOutcome::Miss, 0);
        assert_eq!(s.accesses(), 4);
        assert_eq!(s.hit_rate(), 0.5);
        assert_eq!(s.bank_wait_cycles, 7);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = BankStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        let d = DramStats::new(4, 2);
        assert_eq!(d.mean_latency(), 0.0);
        assert_eq!(d.hit_rate(), 0.0);
    }

    #[test]
    fn dram_stats_aggregate_hit_rate() {
        let mut d = DramStats::new(2, 1);
        d.banks[0].record(RowOutcome::Hit, 0);
        d.banks[1].record(RowOutcome::Conflict, 0);
        assert_eq!(d.hit_rate(), 0.5);
    }
}
