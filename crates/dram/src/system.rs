//! The machine-wide DRAM system: controllers → channels → banks.
//!
//! [`DramSystem::access`] is the single entry point: given a physical
//! address, an access direction, and the cycle at which the request reaches
//! memory, it routes the request through its node's controller front-end,
//! the addressed bank's row buffer, and the channel data bus, returning the
//! completion cycle and a latency breakdown.

use crate::bank::{BankState, RowOutcome};
use crate::stats::DramStats;
use tint_hw::addrmap::AddressMapping;
use tint_hw::decoder::FrameDecoder;
use tint_hw::machine::DramConfig;
use tint_hw::types::{BankColor, NodeId, PhysAddr, Rw};

/// Result of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Cycle at which the data transfer completes.
    pub complete_at: u64,
    /// End-to-end DRAM cycles (complete_at − request arrival).
    pub latency: u64,
    /// Row-buffer outcome at the bank.
    pub outcome: RowOutcome,
    /// Node whose controller served the request.
    pub node: NodeId,
    /// Bank color that served the request.
    pub bank_color: BankColor,
    /// Cycles spent queued at the controller front-end.
    pub ctrl_wait: u64,
    /// Cycles spent waiting for the bank.
    pub bank_wait: u64,
    /// Cycles spent waiting for the channel data bus.
    pub channel_wait: u64,
}

/// Machine-wide DRAM timing state.
#[derive(Debug, Clone)]
pub struct DramSystem {
    timing: DramConfig,
    mapping: AddressMapping,
    /// Precomputed frame→(node, bank, channel, row) decode for the access
    /// inner loop; pure derived state, rebuilt from `mapping` on construction.
    decoder: FrameDecoder,
    /// One bank per bank color (the flattened global bank coordinate).
    banks: Vec<BankState>,
    /// Controller front-end availability, per node.
    ctrl_free_at: Vec<u64>,
    /// Channel data-bus availability, per global channel.
    channel_free_at: Vec<u64>,
    stats: DramStats,
}

impl DramSystem {
    /// Build the DRAM system for a mapping and timing set.
    pub fn new(mapping: AddressMapping, timing: DramConfig) -> Self {
        let banks = (0..mapping.bank_color_count())
            .map(|_| BankState::new(&timing))
            .collect();
        let nodes = mapping.node_count();
        let channels = nodes * mapping.channels_per_node();
        Self {
            timing,
            decoder: FrameDecoder::new(&mapping),
            mapping,
            banks,
            ctrl_free_at: vec![0; nodes],
            channel_free_at: vec![0; channels],
            stats: DramStats::new(mapping.bank_color_count(), nodes),
        }
    }

    /// The address mapping this system decodes with.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Zero all counters (timing state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::new(self.mapping.bank_color_count(), self.mapping.node_count());
    }

    /// Serve an access to `addr` arriving at the memory system at cycle
    /// `now`. `rw` currently shares timing between reads and writes (the
    /// paper's synthetic benchmark measures write latency; the row-buffer
    /// dynamics are identical in this model).
    pub fn access(&mut self, addr: PhysAddr, _rw: Rw, now: u64) -> DramAccess {
        let frame = addr.frame();
        assert!(
            frame.0 < self.decoder.frame_count(),
            "physical address {addr} beyond installed memory"
        );
        let d = self.decoder.info(frame);
        let node = NodeId(d.node as usize);
        let bc = BankColor(d.bank_color);
        let chan = d.global_channel as usize;
        let row = self.decoder.dram_row(frame);

        // 1. Controller front-end: demultiplexes requests serially (§II.B).
        let ctrl_start = now.max(self.ctrl_free_at[node.index()]);
        let ctrl_wait = ctrl_start - now;
        let issued = ctrl_start + self.timing.ctrl_overhead;
        self.ctrl_free_at[node.index()] = issued;

        // 2. Bank: row-buffer state machine.
        let (outcome, bank_start, bank_done) =
            self.banks[bc.index()].access(row, issued, &self.timing);
        let bank_wait = bank_start - issued;

        // 3. Channel data bus: one line transfer.
        let bus_start = bank_done.max(self.channel_free_at[chan]);
        let channel_wait = bus_start - bank_done;
        let complete_at = bus_start + self.timing.t_transfer;
        self.channel_free_at[chan] = complete_at;

        // Book-keeping.
        let latency = complete_at - now;
        self.stats.banks[bc.index()].record(outcome, bank_wait);
        self.stats.node_requests[node.index()] += 1;
        self.stats.ctrl_wait_cycles += ctrl_wait;
        self.stats.channel_wait_cycles += channel_wait;
        self.stats.requests += 1;
        self.stats.total_latency += latency;

        DramAccess {
            complete_at,
            latency,
            outcome,
            node,
            bank_color: bc,
            ctrl_wait,
            bank_wait,
            channel_wait,
        }
    }

    /// Unloaded best-case latency: a row hit on an idle bank and bus.
    pub fn unloaded_hit_latency(&self) -> u64 {
        self.timing.ctrl_overhead + self.timing.t_cas + self.timing.t_transfer
    }

    /// Unloaded row-conflict latency.
    pub fn unloaded_conflict_latency(&self) -> u64 {
        self.timing.ctrl_overhead
            + self.timing.t_rp
            + self.timing.t_rcd
            + self.timing.t_cas
            + self.timing.t_transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::machine::MachineConfig;
    use tint_hw::types::{FrameNumber, LlcColor};

    fn sys() -> DramSystem {
        let m = MachineConfig::opteron_6128();
        let mut t = m.dram;
        t.t_refi = 0; // deterministic tests without refresh
        DramSystem::new(m.mapping, t)
    }

    fn addr_of(sys: &DramSystem, bc: u16, llc: u16, row: u64, off: u64) -> PhysAddr {
        sys.mapping()
            .compose_frame(BankColor(bc), LlcColor(llc), row)
            .at(off)
    }

    #[test]
    fn first_access_is_row_miss() {
        let mut s = sys();
        let a = addr_of(&s, 0, 0, 0, 0);
        let r = s.access(a, Rw::Read, 0);
        assert_eq!(r.outcome, RowOutcome::Miss);
        assert_eq!(
            r.latency,
            s.timing.ctrl_overhead + s.timing.t_rcd + s.timing.t_cas + s.timing.t_transfer
        );
    }

    #[test]
    fn second_access_same_row_hits() {
        let mut s = sys();
        let a = addr_of(&s, 0, 0, 0, 0);
        let b = addr_of(&s, 0, 0, 0, 128);
        let r1 = s.access(a, Rw::Read, 0);
        let r2 = s.access(b, Rw::Read, r1.complete_at);
        assert_eq!(r2.outcome, RowOutcome::Hit);
        assert!(r2.latency < r1.latency);
    }

    #[test]
    fn same_bank_different_llc_color_is_a_row_switch() {
        // Frames of different LLC colors are different DRAM rows even in the
        // same bank: page-granular coloring cannot share open rows.
        let mut s = sys();
        let a = addr_of(&s, 0, 0, 0, 0);
        let b = addr_of(&s, 0, 1, 0, 0);
        let r1 = s.access(a, Rw::Read, 0);
        let r2 = s.access(b, Rw::Read, r1.complete_at);
        assert_eq!(r2.outcome, RowOutcome::Conflict);
    }

    #[test]
    fn within_page_accesses_row_hit() {
        let mut s = sys();
        let a = addr_of(&s, 0, 0, 0, 0);
        let b = addr_of(&s, 0, 0, 0, 3968);
        let r1 = s.access(a, Rw::Read, 0);
        let r2 = s.access(b, Rw::Read, r1.complete_at);
        assert_eq!(r2.outcome, RowOutcome::Hit, "a page is one open row");
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut s = sys();
        let a = addr_of(&s, 0, 0, 0, 0);
        let b = addr_of(&s, 0, 0, 1, 0);
        let r1 = s.access(a, Rw::Read, 0);
        let r2 = s.access(b, Rw::Read, r1.complete_at);
        assert_eq!(r2.outcome, RowOutcome::Conflict);
    }

    #[test]
    fn disjoint_banks_overlap_in_time() {
        // Two simultaneous requests to different banks on different nodes:
        // no shared resource, both complete with unloaded latency.
        let mut s = sys();
        let a = addr_of(&s, 0, 0, 0, 0); // node 0
        let b = addr_of(&s, 96, 0, 0, 0); // node 3
        let r1 = s.access(a, Rw::Read, 0);
        let r2 = s.access(b, Rw::Read, 0);
        assert_eq!(r1.latency, r2.latency, "no contention across nodes");
        assert_eq!(r2.ctrl_wait + r2.bank_wait + r2.channel_wait, 0);
    }

    #[test]
    fn same_bank_contention_inflates_latency() {
        // The Fig. 8 scenario: two concurrent streams to the same bank with
        // different rows — the second pays wait + conflict.
        let mut s = sys();
        let a = addr_of(&s, 0, 0, 0, 0);
        let b = addr_of(&s, 0, 0, 1, 0);
        let r1 = s.access(a, Rw::Read, 0);
        let r2 = s.access(b, Rw::Read, 0);
        assert!(r2.latency > r1.latency);
        assert_eq!(r2.outcome, RowOutcome::Conflict);
        assert!(r2.bank_wait > 0, "second stream waited for the bank");
    }

    #[test]
    fn same_controller_different_banks_pay_frontend_only() {
        let mut s = sys();
        // Bank colors 0 and 8: same node 0, different channels? bc=8 is
        // node 0 (colors 0..32). Use bc 0 and 1 (same channel? bank differs).
        let a = addr_of(&s, 0, 0, 0, 0);
        let b = addr_of(&s, 1, 0, 0, 0);
        let r1 = s.access(a, Rw::Read, 0);
        let r2 = s.access(b, Rw::Read, 0);
        assert!(r2.ctrl_wait > 0, "controller front-end serializes");
        assert!(
            r2.latency < r1.latency + s.timing.t_rp,
            "but far cheaper than bank conflict serialization"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut s = sys();
        let a = addr_of(&s, 5, 0, 0, 0);
        s.access(a, Rw::Read, 0);
        s.access(a, Rw::Write, 1000);
        let st = s.stats();
        assert_eq!(st.requests, 2);
        assert_eq!(st.bank(BankColor(5)).accesses(), 2);
        assert_eq!(st.bank(BankColor(5)).row_hits, 1);
        assert_eq!(st.node(NodeId(0)), 2);
        assert!(st.mean_latency() > 0.0);
        s.reset_stats();
        assert_eq!(s.stats().requests, 0);
    }

    #[test]
    fn unloaded_latencies_ordered() {
        let s = sys();
        assert!(s.unloaded_conflict_latency() > s.unloaded_hit_latency());
    }

    #[test]
    fn frame_routes_to_its_color_bank() {
        let mut s = sys();
        for bc in [0u16, 31, 32, 127] {
            let f = s.mapping().compose_frame(BankColor(bc), LlcColor(0), 3);
            let r = s.access(f.base(), Rw::Read, 0);
            assert_eq!(r.bank_color, BankColor(bc));
            assert_eq!(r.node, s.mapping().node_of_bank_color(BankColor(bc)));
        }
        let _ = FrameNumber(0);
    }
}
