//! Property tests for the DRAM timing model.

use proptest::prelude::*;
use tint_dram::{DramSystem, RowOutcome};
use tint_hw::machine::MachineConfig;
use tint_hw::types::{BankColor, LlcColor, Rw};

fn arb_accesses() -> impl Strategy<Value = Vec<(u16, u16, u64, u64)>> {
    // (bank color, llc color, row, inter-arrival gap)
    prop::collection::vec((0u16..128, 0u16..32, 0u64..32, 0u64..200), 1..200)
}

proptest! {
    /// Completion times are causally consistent: an access completes after
    /// it arrives, and per-bank completions are monotone.
    #[test]
    fn completions_are_causal_and_banks_serialize(accs in arb_accesses()) {
        let m = MachineConfig::opteron_6128();
        let mut dram = DramSystem::new(m.mapping, m.dram);
        let mut now = 0u64;
        let mut last_done_per_bank = std::collections::HashMap::new();
        for (bc, llc, row, gap) in accs {
            now += gap;
            let addr = m.mapping.compose_frame(BankColor(bc), LlcColor(llc), row).base();
            let r = dram.access(addr, Rw::Read, now);
            prop_assert!(r.complete_at > now, "completion after arrival");
            prop_assert_eq!(r.latency, r.complete_at - now);
            prop_assert_eq!(r.bank_color, BankColor(bc));
            if let Some(&prev) = last_done_per_bank.get(&bc) {
                prop_assert!(
                    r.complete_at > prev,
                    "bank {bc} must serialize its accesses"
                );
            }
            last_done_per_bank.insert(bc, r.complete_at);
        }
    }

    /// The row-buffer law: an access to the currently-open row is a Hit and
    /// is never slower than any other outcome at the same arrival time.
    #[test]
    fn row_hits_are_cheapest(bc in 0u16..128, rows in prop::collection::vec(0u64..8, 2..50)) {
        let m = MachineConfig::opteron_6128();
        let mut dram = DramSystem::new(m.mapping, {
            let mut t = m.dram;
            t.t_refi = 0; // isolate the row logic from refresh
            t
        });
        let mut now = 0u64;
        let mut open: Option<u64> = None;
        for row in rows {
            let addr = m.mapping.compose_frame(BankColor(bc), LlcColor(0), row).base();
            let r = dram.access(addr, Rw::Write, now);
            match open {
                Some(o) if o == row => prop_assert_eq!(r.outcome, RowOutcome::Hit),
                Some(_) => prop_assert_eq!(r.outcome, RowOutcome::Conflict),
                None => prop_assert_eq!(r.outcome, RowOutcome::Miss),
            }
            open = Some(row);
            now = r.complete_at + 1;
        }
    }

    /// Stats conservation: requests == sum of per-bank outcomes == sum of
    /// per-node request counts.
    #[test]
    fn stats_conserve(accs in arb_accesses()) {
        let m = MachineConfig::opteron_6128();
        let mut dram = DramSystem::new(m.mapping, m.dram);
        let mut now = 0;
        for (bc, llc, row, gap) in &accs {
            now += gap;
            let addr = m.mapping.compose_frame(BankColor(*bc), LlcColor(*llc), *row).base();
            dram.access(addr, Rw::Read, now);
        }
        let s = dram.stats();
        prop_assert_eq!(s.requests, accs.len() as u64);
        let bank_total: u64 = s.banks.iter().map(|b| b.accesses()).sum();
        prop_assert_eq!(bank_total, s.requests);
        let node_total: u64 = s.node_requests.iter().sum();
        prop_assert_eq!(node_total, s.requests);
        prop_assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
    }

    /// Idle banks in parallel: simultaneous accesses to N distinct banks on
    /// distinct nodes all see the unloaded latency.
    #[test]
    fn distinct_nodes_fully_parallel(rows in prop::collection::vec(1u64..1000, 4..=4)) {
        let m = MachineConfig::opteron_6128();
        let mut dram = DramSystem::new(m.mapping, m.dram);
        let mut lat = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let bc = BankColor((i * 32) as u16); // one bank per node
            let addr = m.mapping.compose_frame(bc, LlcColor(0), *row).base();
            lat.push(dram.access(addr, Rw::Read, 0).latency);
        }
        for w in lat.windows(2) {
            prop_assert_eq!(w[0], w[1], "no shared resource between nodes");
        }
    }
}
