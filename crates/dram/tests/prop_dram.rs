//! Property tests for the DRAM timing model.
//!
//! Seeded-loop randomized tests over the workspace's deterministic PRNG —
//! no external property-testing framework required.

use tint_dram::{DramSystem, RowOutcome};
use tint_hw::machine::MachineConfig;
use tint_hw::rng::SplitMix64;
use tint_hw::types::{BankColor, LlcColor, Rw};

const CASES: u64 = 30;

// (bank color, llc color, row, inter-arrival gap)
fn arb_accesses(rng: &mut SplitMix64) -> Vec<(u16, u16, u64, u64)> {
    let n = rng.gen_range_in(1, 200);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(128) as u16,
                rng.gen_range(32) as u16,
                rng.gen_range(32),
                rng.gen_range(200),
            )
        })
        .collect()
}

/// Completion times are causally consistent: an access completes after
/// it arrives, and per-bank completions are monotone.
#[test]
fn completions_are_causal_and_banks_serialize() {
    let mut rng = SplitMix64::new(0xca05a1);
    for _ in 0..CASES {
        let accs = arb_accesses(&mut rng);
        let m = MachineConfig::opteron_6128();
        let mut dram = DramSystem::new(m.mapping, m.dram);
        let mut now = 0u64;
        let mut last_done_per_bank = std::collections::HashMap::new();
        for (bc, llc, row, gap) in accs {
            now += gap;
            let addr = m
                .mapping
                .compose_frame(BankColor(bc), LlcColor(llc), row)
                .base();
            let r = dram.access(addr, Rw::Read, now);
            assert!(r.complete_at > now, "completion after arrival");
            assert_eq!(r.latency, r.complete_at - now);
            assert_eq!(r.bank_color, BankColor(bc));
            if let Some(&prev) = last_done_per_bank.get(&bc) {
                assert!(
                    r.complete_at > prev,
                    "bank {bc} must serialize its accesses"
                );
            }
            last_done_per_bank.insert(bc, r.complete_at);
        }
    }
}

/// The row-buffer law: an access to the currently-open row is a Hit and
/// is never slower than any other outcome at the same arrival time.
#[test]
fn row_hits_are_cheapest() {
    let mut rng = SplitMix64::new(0x70b);
    for _ in 0..CASES {
        let bc = rng.gen_range(128) as u16;
        let n = rng.gen_range_in(2, 50);
        let rows: Vec<u64> = (0..n).map(|_| rng.gen_range(8)).collect();
        let m = MachineConfig::opteron_6128();
        let mut dram = DramSystem::new(m.mapping, {
            let mut t = m.dram;
            t.t_refi = 0; // isolate the row logic from refresh
            t
        });
        let mut now = 0u64;
        let mut open: Option<u64> = None;
        for row in rows {
            let addr = m
                .mapping
                .compose_frame(BankColor(bc), LlcColor(0), row)
                .base();
            let r = dram.access(addr, Rw::Write, now);
            match open {
                Some(o) if o == row => assert_eq!(r.outcome, RowOutcome::Hit),
                Some(_) => assert_eq!(r.outcome, RowOutcome::Conflict),
                None => assert_eq!(r.outcome, RowOutcome::Miss),
            }
            open = Some(row);
            now = r.complete_at + 1;
        }
    }
}

/// Stats conservation: requests == sum of per-bank outcomes == sum of
/// per-node request counts.
#[test]
fn stats_conserve() {
    let mut rng = SplitMix64::new(0x57a75);
    for _ in 0..CASES {
        let accs = arb_accesses(&mut rng);
        let m = MachineConfig::opteron_6128();
        let mut dram = DramSystem::new(m.mapping, m.dram);
        let mut now = 0;
        for (bc, llc, row, gap) in &accs {
            now += gap;
            let addr = m
                .mapping
                .compose_frame(BankColor(*bc), LlcColor(*llc), *row)
                .base();
            dram.access(addr, Rw::Read, now);
        }
        let s = dram.stats();
        assert_eq!(s.requests, accs.len() as u64);
        let bank_total: u64 = s.banks.iter().map(|b| b.accesses()).sum();
        assert_eq!(bank_total, s.requests);
        let node_total: u64 = s.node_requests.iter().sum();
        assert_eq!(node_total, s.requests);
        assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
    }
}

/// Idle banks in parallel: simultaneous accesses to N distinct banks on
/// distinct nodes all see the unloaded latency.
#[test]
fn distinct_nodes_fully_parallel() {
    let mut rng = SplitMix64::new(0x9a7a);
    for _ in 0..CASES {
        let rows: Vec<u64> = (0..4).map(|_| rng.gen_range_in(1, 1000)).collect();
        let m = MachineConfig::opteron_6128();
        let mut dram = DramSystem::new(m.mapping, m.dram);
        let mut lat = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let bc = BankColor((i * 32) as u16); // one bank per node
            let addr = m.mapping.compose_frame(bc, LlcColor(0), *row).base();
            lat.push(dram.access(addr, Rw::Read, 0).latency);
        }
        for w in lat.windows(2) {
            assert_eq!(w[0], w[1], "no shared resource between nodes");
        }
    }
}
