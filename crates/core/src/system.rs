//! The top-level [`System`]: simulated machine + kernel + per-task heaps.
//!
//! `System` is what an application links against in this reproduction. It
//! wires the simulated kernel (frame allocation, Algorithm 1) to the
//! simulated memory system (caches, interconnect, DRAM timing) and exposes
//! the paper's user model:
//!
//! 1. [`System::spawn`] a task pinned to a core;
//! 2. one [`System::set_mem_color`] / [`System::set_llc_color`] call per
//!    color ("just 1–2 lines of code suffice", §III.B);
//! 3. plain [`System::malloc`] — pages arrive colored;
//! 4. [`System::access`] drives the timing model and returns per-access
//!    latency, which the SPMD engine turns into thread runtimes.

use crate::colors::ThreadColors;
use crate::heap::{Heap, PageSource};
use std::collections::HashMap;
use tint_cache::HitLevel;
use tint_hw::machine::MachineConfig;
use tint_hw::pci::PciConfigSpace;
use tint_hw::profile::{self, Component};
use tint_hw::rng::SplitMix64;
use tint_hw::types::{BankColor, CoreId, FrameNumber, LlcColor, NodeId, PhysAddr, Rw, VirtAddr};
use tint_kernel::kernel::{COLOR_ALLOC, SET_LLC_COLOR, SET_MEM_COLOR};
use tint_kernel::{
    AuditCursor, Errno, ExhaustionPolicy, FaultPlan, HeapPolicy, Kernel, KernelCosts, MemPressure,
    OomKill, Tid, VictimPolicy, Watermarks,
};
use tint_mem::{AccessResult, MemorySystem};

/// One memory access as seen by the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// End-to-end cycles, including any page-fault cost on first touch.
    pub latency: u64,
    /// Whether this access took a page fault.
    pub faulted: bool,
    /// Memory-system detail (level, hops, DRAM breakdown).
    pub detail: AccessResult,
}

/// Simulated machine + kernel + heaps behind the paper's API.
#[derive(Debug, Clone)]
pub struct System {
    machine: MachineConfig,
    kernel: Kernel,
    mem: MemorySystem,
    heaps: HashMap<Tid, Heap>,
    tlb: Tlb,
    /// Warm-up/detailed schedule for the sampled engine; `None` until
    /// [`System::configure_sampling`] (exact mode never installs one).
    sampling: Option<Sampling>,
}

/// Warm-up/detailed interleave for the sampled engine: per-core access
/// counters with one detailed measurement window per period. Period 0's
/// window starts at access 0 (so the latency estimator is warm before the
/// first estimated op); later windows sit at a seeded per-(core, period)
/// offset so successive periods sample different program phases.
#[derive(Debug, Clone)]
struct Sampling {
    /// Detailed-window length, in accesses per core.
    window: u64,
    /// Period length (one window per period), in accesses per core.
    period: u64,
    /// Schedule seed (mixed with core and period index).
    seed: u64,
    cores: Vec<CoreSample>,
    /// One in `warm_touch` TLB-resident warm-up accesses runs the full
    /// functional path (translation + cache-hierarchy update) instead of
    /// replaying a latency, so cache contents track the access stream
    /// between detailed windows. `1` disables the replay fast path
    /// entirely (every warm-up access walks).
    warm_touch: u64,
    /// Per-core rings of recent exact access latencies (all hit levels),
    /// fed by the detailed windows and replayed round-robin by the warm-up
    /// fast path — the replayed stream reproduces both the mean and the
    /// spread of the core's real latency mixture, which the idle-time
    /// metric (a cross-thread *difference* of clocks) is sensitive to.
    rings: Vec<LatRing>,
}

/// One core's position in the sampling schedule.
#[derive(Debug, Clone, Copy)]
struct CoreSample {
    /// Accesses issued by this core so far.
    seq: u64,
    /// Detailed window of the current period: `[win_start, win_end)`.
    win_start: u64,
    win_end: u64,
    /// First access index past the current period.
    period_end: u64,
    /// Index of the current period.
    period_idx: u64,
    /// Warm-up accesses taken by this core's fast path; every
    /// `warm_touch`-th is promoted to a full functional access so the
    /// caches stay approximately warm between detailed windows.
    warm_seq: u64,
}

/// Capacity of one core's latency-replay ring.
const LAT_RING: usize = 64;

/// Fixed-capacity ring of recent exact latencies with an independent
/// round-robin replay cursor.
#[derive(Debug, Clone)]
struct LatRing {
    buf: [u64; LAT_RING],
    /// Filled entries (saturates at [`LAT_RING`]).
    len: u32,
    /// Next write slot.
    write: u32,
    /// Next replay slot (wraps at `len`).
    read: u32,
}

impl LatRing {
    fn new() -> Self {
        Self {
            buf: [0; LAT_RING],
            len: 0,
            write: 0,
            read: 0,
        }
    }

    #[inline]
    fn push(&mut self, v: u64) {
        self.buf[self.write as usize] = v;
        self.write = (self.write + 1) % LAT_RING as u32;
        self.len = (self.len + 1).min(LAT_RING as u32);
    }

    /// Next replayed latency; `None` until the first push.
    #[inline]
    fn replay(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let v = self.buf[self.read as usize];
        self.read += 1;
        if self.read >= self.len {
            self.read = 0;
        }
        Some(v)
    }
}

/// Slots in the software TLB (direct-mapped).
const TLB_SLOTS: usize = 1 << 13;

/// One direct-mapped TLB slot. A slot is live only when its `epoch` equals
/// the kernel's current translation epoch, so invalidating every cached
/// translation is a counter bump, not a sweep.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    /// Address-space index the translation belongs to.
    vm: u32,
    /// Kernel translation epoch when this slot was filled.
    epoch: u64,
    /// Virtual page number.
    page: u64,
    /// Frame backing the page.
    frame: FrameNumber,
}

/// Software TLB over [`Kernel::translate`], the [`System::access`] fast
/// path. A direct-mapped table of (address space, page) → frame
/// translations plus the task-struct fields `access` needs every call
/// (address space, pinned core). Coherence is epoch-based: the kernel
/// bumps its [`translation_epoch`](Kernel::translation_epoch) whenever an
/// existing translation dies (`munmap`, recolor migration), which strands
/// every slot filled under the old epoch — exactly the
/// shoot-down-everything model of a hardware TLB without ASID tracking,
/// and cheap because remap events are rare next to accesses.
#[derive(Debug, Clone)]
struct Tlb {
    /// Direct-mapped slots; conflicting pages simply evict each other.
    entries: Vec<TlbEntry>,
    /// `tid.0` → (vm index, pinned core); tids are small and sequential.
    /// Tasks never migrate, and tids are never reused, so an entry stays
    /// valid for the task's whole life; [`System::exit`] clears the slot
    /// when the task dies.
    tasks: Vec<Option<(usize, CoreId)>>,
}

impl Default for Tlb {
    fn default() -> Self {
        Self {
            // `epoch: u64::MAX` can never equal the kernel's epoch history
            // (it would take 2^64 invalidations), so all slots start dead.
            entries: vec![
                TlbEntry {
                    vm: u32::MAX,
                    epoch: u64::MAX,
                    page: u64::MAX,
                    frame: FrameNumber(0),
                };
                TLB_SLOTS
            ],
            tasks: Vec::new(),
        }
    }
}

impl Tlb {
    /// Slot index for a translation: per-VM pages stream through distinct
    /// slots; the multiplied VM index keeps different address spaces from
    /// colliding on the same low page numbers.
    #[inline]
    fn slot(vm: usize, page: u64) -> usize {
        (page ^ (vm as u64).wrapping_mul(0x9E37_79B9)) as usize & (TLB_SLOTS - 1)
    }
}

/// Bridges the user-level heap's page requests to the kernel's `mmap`.
struct KernelPages<'a> {
    kernel: &'a mut Kernel,
    tid: Tid,
}

impl PageSource for KernelPages<'_> {
    fn map_pages(&mut self, pages: u64) -> Result<VirtAddr, Errno> {
        self.kernel
            .sys_mmap(self.tid, 0, pages * tint_hw::types::PAGE_SIZE, 0)
    }
    fn unmap_pages(&mut self, base: VirtAddr, pages: u64) -> Result<(), Errno> {
        self.kernel
            .sys_munmap(self.tid, base, pages * tint_hw::types::PAGE_SIZE)
    }
}

impl System {
    /// Boot the machine: program the PCI configuration space the way the
    /// BIOS would and let the kernel derive the address mapping from it at
    /// boot, exactly as §III.A describes.
    pub fn boot(machine: MachineConfig) -> Self {
        Self::boot_with_costs(machine, KernelCosts::default())
    }

    /// Boot with explicit kernel cost parameters.
    pub fn boot_with_costs(machine: MachineConfig, costs: KernelCosts) -> Self {
        machine.validate();
        let pci = PciConfigSpace::programmed_by_bios(&machine.mapping);
        let kernel = Kernel::boot_from_pci(&pci, machine.topology.clone(), costs)
            .expect("BIOS-programmed PCI space must derive cleanly");
        let mem = MemorySystem::new(machine.clone());
        Self {
            machine,
            kernel,
            mem,
            heaps: HashMap::new(),
            tlb: Tlb::default(),
            sampling: None,
        }
    }

    /// The machine configuration.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The simulated kernel (stats, inspection).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The memory system (stats, inspection).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Simulate pre-existing allocation activity (per-repetition jitter).
    pub fn boot_noise(&mut self, pages: u64) {
        self.kernel.consume_boot_noise(pages);
    }

    /// Create a task pinned to `core` with a fresh address space and an
    /// empty heap (a new process / OpenMP group leader).
    pub fn spawn(&mut self, core: CoreId) -> Tid {
        let tid = self.kernel.create_task(core);
        self.heaps.insert(tid, Heap::new());
        tid
    }

    /// Create a thread pinned to `core` sharing `leader`'s address space
    /// (the OpenMP team model). The thread gets its own heap arena — its
    /// `malloc`s carve fresh regions of the *shared* space, so first touch
    /// by owner applies.
    pub fn spawn_thread(&mut self, core: CoreId, leader: Tid) -> Result<Tid, Errno> {
        let tid = self.kernel.create_thread(core, leader)?;
        self.heaps.insert(tid, Heap::new());
        Ok(tid)
    }

    /// The paper's one-line initialization call for a memory color:
    /// `mmap(c | SET_MEM_COLOR, 0, prot | COLOR_ALLOC, ...)`.
    pub fn set_mem_color(&mut self, tid: Tid, color: BankColor) -> Result<(), Errno> {
        self.kernel
            .sys_mmap(tid, SET_MEM_COLOR | color.raw() as u64, 0, COLOR_ALLOC)
            .map(|_| ())
    }

    /// The paper's one-line initialization call for an LLC color.
    pub fn set_llc_color(&mut self, tid: Tid, color: LlcColor) -> Result<(), Errno> {
        self.kernel
            .sys_mmap(tid, SET_LLC_COLOR | color.raw() as u64, 0, COLOR_ALLOC)
            .map(|_| ())
    }

    /// Set the uncolored base policy (buddy vs first-touch baselines).
    pub fn set_policy(&mut self, tid: Tid, policy: HeapPolicy) -> Result<(), Errno> {
        self.kernel.set_policy(tid, policy)
    }

    /// Set what a thread's colored allocations do when the color supply is
    /// exhausted (strict ENOMEM, nearest-color borrowing, or node-local
    /// uncolored fallback).
    pub fn set_exhaustion_policy(
        &mut self,
        tid: Tid,
        policy: ExhaustionPolicy,
    ) -> Result<(), Errno> {
        self.kernel.set_exhaustion_policy(tid, policy)
    }

    /// Arm (or with `None` disarm) deterministic kernel fault injection.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.kernel.set_fault_plan(plan);
    }

    /// Run the kernel's whole-machine consistency check (panics on
    /// violation). For tests and fuzzing — O(frames).
    pub fn check_invariants(&self) {
        self.kernel.check_invariants();
    }

    /// One bounded slice of the incremental invariant audit (see
    /// [`Kernel::audit_step`]): up to `frames` frames from `cursor`, plus
    /// the O(tasks) conservation check. Returns the frames examined.
    pub fn audit_step(&self, cursor: &mut AuditCursor, frames: u64) -> u64 {
        self.kernel.audit_step(cursor, frames)
    }

    /// The kernel's memory-pressure signal (free frames vs watermarks).
    pub fn mem_pressure(&self) -> MemPressure {
        self.kernel.mem_pressure()
    }

    /// Replace the kernel's free-frame watermarks.
    pub fn set_watermarks(&mut self, w: Watermarks) {
        self.kernel.set_watermarks(w);
    }

    /// Kill one task to relieve memory pressure: deterministic victim
    /// selection in the kernel, then the same user-level cleanup as
    /// [`System::exit`] — the victim's heap arena and cached TLB task entry
    /// die with it, so a later syscall on the dead tid is a clean `ESRCH`.
    pub fn oom_kill(&mut self, policy: VictimPolicy) -> Result<OomKill, Errno> {
        let kill = self.kernel.oom_kill(policy)?;
        self.heaps.remove(&kill.victim);
        let ti = kill.victim.0 as usize;
        if ti < self.tlb.tasks.len() {
            self.tlb.tasks[ti] = None;
        }
        Ok(kill)
    }

    /// Record a pressure-deferred admission in the kernel's ledger.
    pub fn note_admission_reject(&mut self) {
        self.kernel.note_admission_reject();
    }

    /// Record an allocation retried after a transient `EAGAIN`.
    pub fn note_alloc_retry(&mut self) {
        self.kernel.note_alloc_retry();
    }

    /// Mutable kernel access for kernel-level experiments (raw syscalls,
    /// fuzzing). The software TLB keys its entries by translation epoch, so
    /// direct kernel mutations stay coherent with later [`System::access`]
    /// calls — but heap metadata is *not* aware of raw kernel changes, so
    /// don't unmap regions the heap owns.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Apply a planned color set: the base policy plus one `mmap()` call per
    /// color, exactly as an application's init section would.
    pub fn apply_colors(&mut self, tid: Tid, plan: &ThreadColors) -> Result<(), Errno> {
        self.set_policy(tid, plan.policy)?;
        for &c in &plan.mem {
            self.set_mem_color(tid, c)?;
        }
        for &c in &plan.llc {
            self.set_llc_color(tid, c)?;
        }
        Ok(())
    }

    /// Allocate `size` bytes on `tid`'s heap (plain `malloc`).
    pub fn malloc(&mut self, tid: Tid, size: u64) -> Result<VirtAddr, Errno> {
        let heap = self.heaps.get_mut(&tid).ok_or(Errno::Esrch)?;
        heap.malloc(
            &mut KernelPages {
                kernel: &mut self.kernel,
                tid,
            },
            size,
        )
    }

    /// `calloc(count, size)`.
    pub fn calloc(&mut self, tid: Tid, count: u64, size: u64) -> Result<VirtAddr, Errno> {
        let heap = self.heaps.get_mut(&tid).ok_or(Errno::Esrch)?;
        heap.calloc(
            &mut KernelPages {
                kernel: &mut self.kernel,
                tid,
            },
            count,
            size,
        )
    }

    /// `realloc(addr, new_size)`.
    pub fn realloc(&mut self, tid: Tid, addr: VirtAddr, new_size: u64) -> Result<VirtAddr, Errno> {
        let heap = self.heaps.get_mut(&tid).ok_or(Errno::Esrch)?;
        heap.realloc(
            &mut KernelPages {
                kernel: &mut self.kernel,
                tid,
            },
            addr,
            new_size,
        )
    }

    /// `free(addr)`.
    pub fn free(&mut self, tid: Tid, addr: VirtAddr) -> Result<(), Errno> {
        let heap = self.heaps.get_mut(&tid).ok_or(Errno::Esrch)?;
        heap.free(
            &mut KernelPages {
                kernel: &mut self.kernel,
                tid,
            },
            addr,
        )
    }

    /// The task's heap (stats).
    pub fn heap(&self, tid: Tid) -> Result<&Heap, Errno> {
        self.heaps.get(&tid).ok_or(Errno::Esrch)
    }

    /// Exit a task: drop its heap arena and cached TLB task entry, then let
    /// the kernel run the full reclamation — address-space teardown when the
    /// last sharer exits, provenance-routed frame returns, TCB removal, and
    /// a translation-epoch bump that strands every cached translation of the
    /// torn-down space. Heap metadata needs no unwinding of its own: all
    /// heap memory lives in the task's address space, which the kernel
    /// reclaims wholesale.
    pub fn exit(&mut self, tid: Tid) -> Result<(), Errno> {
        self.kernel.sys_exit(tid)?;
        self.heaps.remove(&tid);
        let ti = tid.0 as usize;
        if ti < self.tlb.tasks.len() {
            self.tlb.tasks[ti] = None;
        }
        Ok(())
    }

    /// Issue one memory access from `tid` at cycle `now`: translates
    /// (faulting on first touch, which allocates a frame under the task's
    /// coloring) and drives the timing model. Warm translations come from
    /// the software [`Tlb`]; only TLB misses and first touches reach
    /// [`Kernel::translate`].
    pub fn access(
        &mut self,
        tid: Tid,
        addr: VirtAddr,
        rw: Rw,
        now: u64,
    ) -> Result<MemAccess, Errno> {
        let (core, phys, fault_cycles) = self.translate_for_access(tid, addr)?;
        let detail = self.mem.access(core, phys, rw, now + fault_cycles);
        // Latency-estimator hook: when a sampling schedule is installed
        // (sampled cells only; exact cells never configure one), every
        // exact latency feeds the core's replay ring, whatever its hit
        // level — the warm-up fast path replays the full latency mixture.
        // Pure observation, no timing influence.
        if let Some(s) = self.sampling.as_mut() {
            s.rings[core.index()].push(detail.latency);
        }
        Ok(MemAccess {
            latency: fault_cycles + detail.latency,
            faulted: fault_cycles > 0,
            detail,
        })
    }

    /// Shared front half of [`Self::access`] / [`Self::access_estimated`]:
    /// the task-entry fill and the software-TLB translate (faulting on
    /// first touch).
    #[inline]
    fn translate_for_access(
        &mut self,
        tid: Tid,
        addr: VirtAddr,
    ) -> Result<(CoreId, PhysAddr, u64), Errno> {
        let ti = tid.0 as usize;
        let (vm, core) = match self.tlb.tasks.get(ti).copied().flatten() {
            Some(entry) => entry,
            None => {
                let t = self.kernel.task(tid)?;
                let entry = (t.vm.0, t.core);
                if ti >= self.tlb.tasks.len() {
                    self.tlb.tasks.resize(ti + 1, None);
                }
                self.tlb.tasks[ti] = Some(entry);
                entry
            }
        };

        // Any destroyed/changed translation bumps the kernel epoch, which
        // strands every slot filled earlier.
        let tt = profile::start();
        let epoch = self.kernel.translation_epoch();
        let page = addr.page();
        let slot = Tlb::slot(vm, page.0);
        let e = self.tlb.entries[slot];
        let (phys, fault_cycles) = if e.page == page.0 && e.vm == vm as u32 && e.epoch == epoch {
            (e.frame.at(addr.page_offset()), 0)
        } else {
            let tr = self.kernel.translate(tid, addr)?;
            // `translate` can only install translations (a fault), never
            // destroy one, so the entry we cache is current.
            self.tlb.entries[slot] = TlbEntry {
                vm: vm as u32,
                epoch,
                page: page.0,
                frame: tr.phys.frame(),
            };
            (tr.phys, tr.fault_cycles)
        };
        profile::stop(Component::Tlb, tt);
        Ok((core, phys, fault_cycles))
    }

    /// Warm-up counterpart of [`Self::access`] for the sampled engine.
    ///
    /// Fast path (the overwhelming majority of warm-up accesses): the page
    /// is TLB-resident and this is not a periodic warming touch, so the
    /// access replays the next latency from the core's ring of recent exact
    /// latencies — no translation, no cache walk. The replayed stream has
    /// the same mean and spread as the core's real latency mixture, which
    /// keeps both the runtime (a sum of latencies) and the idle time (a
    /// cross-thread difference of sums) honest.
    ///
    /// Slow path (TLB misses, every `warm_touch`-th resident access, and
    /// everything before the first replay sample): real translation — page
    /// faults are real state, so first-touch placement is exact in sampled
    /// mode — and [`MemorySystem::access_warm`], which is the exact timing
    /// path minus bookkeeping: cache contents, DRAM row buffers, and link
    /// ports all advance for real, so detailed windows sample from live
    /// contention state and slow-path latencies are exact.
    pub fn access_estimated(
        &mut self,
        tid: Tid,
        addr: VirtAddr,
        rw: Rw,
        now: u64,
    ) -> Result<MemAccess, Errno> {
        if let Some(s) = self.sampling.as_mut() {
            if let Some((vm, core)) = self.tlb.tasks.get(tid.0 as usize).copied().flatten() {
                let page = addr.page();
                let e = self.tlb.entries[Tlb::slot(vm, page.0)];
                if e.page == page.0
                    && e.vm == vm as u32
                    && e.epoch == self.kernel.translation_epoch()
                {
                    let c = core.index();
                    let cs = &mut s.cores[c];
                    cs.warm_seq += 1;
                    if s.warm_touch > 1 && cs.warm_seq % s.warm_touch != 0 {
                        if let Some(latency) = s.rings[c].replay() {
                            return Ok(MemAccess {
                                latency,
                                faulted: false,
                                detail: AccessResult {
                                    latency,
                                    level: HitLevel::L1,
                                    hops: 0,
                                    home_node: NodeId(0),
                                    dram: None,
                                },
                            });
                        }
                    }
                }
            }
        }
        let (core, phys, fault_cycles) = self.translate_for_access(tid, addr)?;
        let detail = self.mem.access_warm(core, phys, rw, now + fault_cycles);
        // Warming accesses are exact in everything but bookkeeping, so
        // their latencies are as good as detailed ones for the replay
        // ring — and much more frequent.
        if let Some(s) = self.sampling.as_mut() {
            s.rings[core.index()].push(detail.latency);
        }
        Ok(MemAccess {
            latency: fault_cycles + detail.latency,
            faulted: fault_cycles > 0,
            detail,
        })
    }

    /// Read-only translation probe for the engine's batch presort: the
    /// task's pinned core and the physical address, but only when both the
    /// task entry and the translation are already TLB-resident under the
    /// current epoch. `None` (cold TLB / first touch) means "skip this op
    /// in the presort" — never fault, never mutate.
    #[inline]
    pub fn peek_translate(&self, tid: Tid, addr: VirtAddr) -> Option<(CoreId, PhysAddr)> {
        let (vm, core) = (*self.tlb.tasks.get(tid.0 as usize)?)?;
        let page = addr.page();
        let e = self.tlb.entries[Tlb::slot(vm, page.0)];
        (e.page == page.0 && e.vm == vm as u32 && e.epoch == self.kernel.translation_epoch())
            .then(|| (core, e.frame.at(addr.page_offset())))
    }

    /// Install (idempotently) the sampled engine's warm-up/detailed
    /// schedule: a `window`-access detailed window once per `period`
    /// accesses, per core, placed by `seed`. `period == window` makes every
    /// access detailed.
    pub fn configure_sampling(&mut self, window: u64, period: u64, seed: u64, warm_touch: u64) {
        assert!(window >= 1, "sampling window must be at least one access");
        assert!(period >= window, "sampling period must cover the window");
        assert!(warm_touch >= 1, "warm-touch stride must be at least 1");
        if let Some(s) = &self.sampling {
            if (s.window, s.period, s.seed, s.warm_touch) == (window, period, seed, warm_touch) {
                return;
            }
        }
        let cores = self.machine.topology.core_count();
        self.sampling = Some(Sampling {
            window,
            period,
            seed,
            cores: vec![
                CoreSample {
                    seq: 0,
                    win_start: 0,
                    win_end: window,
                    period_end: period,
                    period_idx: 0,
                    warm_seq: 0,
                };
                cores
            ],
            warm_touch,
            rings: vec![LatRing::new(); cores],
        });
    }

    /// Whether a sampling schedule is installed.
    pub fn sampling_configured(&self) -> bool {
        self.sampling.is_some()
    }

    /// Advance `core`'s position in the sampling schedule by one access and
    /// report whether that access falls in a detailed window. Without a
    /// schedule installed every access is detailed.
    #[inline]
    pub fn sample_is_detailed(&mut self, core: CoreId) -> bool {
        let Some(s) = self.sampling.as_mut() else {
            return true;
        };
        let cs = &mut s.cores[core.index()];
        let seq = cs.seq;
        cs.seq += 1;
        while seq >= cs.period_end {
            cs.period_idx += 1;
            let start = cs.period_idx * s.period;
            cs.period_end = start + s.period;
            let off = if s.period > s.window {
                let mut r = SplitMix64::new(s.seed ^ ((core.index() as u64) << 32) ^ cs.period_idx);
                r.gen_range(s.period - s.window)
            } else {
                0
            };
            cs.win_start = start + off;
            cs.win_end = cs.win_start + s.window;
        }
        seq >= cs.win_start && seq < cs.win_end
    }

    /// Translate without timing (used by tests to inspect placement).
    pub fn resolve(&mut self, tid: Tid, addr: VirtAddr) -> Result<tint_hw::types::PhysAddr, Errno> {
        Ok(self.kernel.translate(tid, addr)?.phys)
    }

    /// Allocate `size` bytes the way a *file read* would back them: through
    /// the page cache, i.e. uncolored first-touch pages, regardless of the
    /// task's heap colors. (The paper colors the heap via `mmap`; input data
    /// read from files lands in page-cache pages the allocator never sees.)
    /// The region is pre-faulted so the placement happens here, not inside
    /// a timed section.
    pub fn malloc_pagecache(&mut self, tid: Tid, size: u64) -> Result<VirtAddr, Errno> {
        // Save the task's colors, drop to the uncolored base policy, place
        // the pages, then restore.
        let (mem, llc) = {
            let t = self.kernel.task(tid)?;
            (t.mem_colors().to_vec(), t.llc_colors().to_vec())
        };
        self.kernel
            .sys_mmap(tid, tint_kernel::kernel::CLEAR_MEM_COLOR, 0, COLOR_ALLOC)?;
        self.kernel
            .sys_mmap(tid, tint_kernel::kernel::CLEAR_LLC_COLOR, 0, COLOR_ALLOC)?;
        // Place the pages, then restore the colors *before* propagating any
        // error — a failed read must not leave the task uncolored.
        let base = self.malloc(tid, size);
        let prefault = base.and_then(|b| self.prefault(tid, b, size).map(|()| b));
        for c in mem {
            self.set_mem_color(tid, c)?;
        }
        for c in llc {
            self.set_llc_color(tid, c)?;
        }
        prefault
    }

    /// Pre-fault every page of `[base, base+len)` (an eager-touch helper for
    /// init sections that should not be timed).
    pub fn prefault(&mut self, tid: Tid, base: VirtAddr, len: u64) -> Result<(), Errno> {
        let mut off = 0;
        while off < len {
            self.kernel.translate(tid, base.offset(off))?;
            off += tint_hw::types::PAGE_SIZE;
        }
        Ok(())
    }

    /// Zero all statistics in the memory stack (kernel stats retained).
    pub fn reset_mem_stats(&mut self) {
        self.mem.reset_stats();
    }

    /// Dynamic recoloring (extension): migrate the task's resident pages to
    /// its current colors. Returns `(pages_migrated, cycles_charged)` — the
    /// cycles belong on the calling thread's clock if invoked mid-run.
    pub fn recolor(&mut self, tid: Tid) -> Result<(u64, u64), Errno> {
        self.kernel.recolor_task(tid)
    }

    /// Range-scoped recoloring: migrate only `[base, base + len)`. Use this
    /// inside thread teams — whole-space recoloring would migrate teammates'
    /// pages onto the caller's colors.
    pub fn recolor_range(
        &mut self,
        tid: Tid,
        base: VirtAddr,
        len: u64,
    ) -> Result<(u64, u64), Errno> {
        self.kernel.recolor_range(tid, base, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colors::ColorScheme;
    use tint_cache::HitLevel;
    use tint_hw::types::NodeId;

    fn sys() -> System {
        System::boot(MachineConfig::tiny())
    }

    #[test]
    fn boot_and_spawn() {
        let mut s = sys();
        let t0 = s.spawn(CoreId(0));
        let t1 = s.spawn(CoreId(2));
        assert_ne!(t0, t1);
        assert_eq!(s.kernel().task(t0).unwrap().core, CoreId(0));
    }

    #[test]
    fn one_line_coloring_colors_the_heap() {
        let mut s = sys();
        let t = s.spawn(CoreId(0));
        s.set_mem_color(t, BankColor(1)).unwrap();
        s.set_llc_color(t, LlcColor(2)).unwrap();
        let a = s.malloc(t, 3 * 4096).unwrap();
        for p in 0..3u64 {
            let pa = s.resolve(t, a.offset(p * 4096)).unwrap();
            let d = s.machine().mapping.decode_frame(pa.frame());
            assert_eq!(d.bank_color, BankColor(1));
            assert_eq!(d.llc_color, LlcColor(2));
        }
    }

    #[test]
    fn malloc_small_then_access() {
        let mut s = sys();
        let t = s.spawn(CoreId(0));
        let a = s.malloc(t, 100).unwrap();
        let acc = s.access(t, a, Rw::Write, 0).unwrap();
        assert!(acc.faulted, "first touch faults");
        assert_eq!(acc.detail.level, HitLevel::Memory);
        let acc2 = s.access(t, a, Rw::Read, acc.latency).unwrap();
        assert!(!acc2.faulted);
        assert!(acc2.latency < acc.latency);
    }

    #[test]
    fn free_and_reuse() {
        let mut s = sys();
        let t = s.spawn(CoreId(0));
        let a = s.malloc(t, 100).unwrap();
        s.free(t, a).unwrap();
        let b = s.malloc(t, 100).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn access_before_malloc_is_efault() {
        let mut s = sys();
        let t = s.spawn(CoreId(0));
        assert_eq!(
            s.access(t, VirtAddr(0x5000_0000), Rw::Read, 0),
            Err(Errno::Efault)
        );
    }

    #[test]
    fn apply_plan_memllc_places_locally() {
        let mut s = sys();
        let cores = vec![CoreId(0), CoreId(2)]; // nodes 0 and 1 on tiny
        let plan = ColorScheme::MemLlc.plan(s.machine(), &cores);
        let tids: Vec<_> = cores.iter().map(|&c| s.spawn(c)).collect();
        for (tid, p) in tids.iter().zip(&plan) {
            s.apply_colors(*tid, p).unwrap();
        }
        for (i, &tid) in tids.iter().enumerate() {
            let a = s.malloc(tid, 8 * 4096).unwrap();
            let node = s.machine().topology.node_of_core(cores[i]);
            for pg in 0..8u64 {
                let pa = s.resolve(tid, a.offset(pg * 4096)).unwrap();
                assert_eq!(
                    s.machine().mapping.decode_frame(pa.frame()).node,
                    node,
                    "thread {i} page {pg} must be node-local"
                );
            }
        }
    }

    #[test]
    fn buddy_plan_is_first_touch() {
        let mut s = sys();
        let plan = ColorScheme::Buddy.plan(s.machine(), &[CoreId(2)]);
        let t = s.spawn(CoreId(2));
        s.apply_colors(t, &plan[0]).unwrap();
        let a = s.malloc(t, 4 * 4096).unwrap();
        let pa = s.resolve(t, a).unwrap();
        assert_eq!(
            s.machine().mapping.decode_frame(pa.frame()).node,
            NodeId(1),
            "first touch places on the local node"
        );
    }

    #[test]
    fn legacy_plan_walks_global_cursor() {
        let mut s = sys();
        let plan = ColorScheme::LegacyGlobal.plan(s.machine(), &[CoreId(2)]);
        let t = s.spawn(CoreId(2));
        s.apply_colors(t, &plan[0]).unwrap();
        let a = s.malloc(t, 4 * 4096).unwrap();
        let pa = s.resolve(t, a).unwrap();
        assert_eq!(
            s.machine().mapping.decode_frame(pa.frame()).node,
            NodeId(0),
            "global cursor starts at frame 0 regardless of locality"
        );
    }

    #[test]
    fn prefault_backs_whole_region() {
        let mut s = sys();
        let t = s.spawn(CoreId(0));
        let a = s.malloc(t, 5 * 4096).unwrap();
        s.prefault(t, a, 5 * 4096).unwrap();
        let acc = s.access(t, a.offset(3 * 4096), Rw::Read, 0).unwrap();
        assert!(!acc.faulted, "prefault already took the fault");
    }

    #[test]
    fn unknown_task_everywhere() {
        let mut s = sys();
        let bogus = Tid(999);
        assert_eq!(s.malloc(bogus, 16), Err(Errno::Esrch));
        assert_eq!(s.set_mem_color(bogus, BankColor(0)), Err(Errno::Esrch));
        assert!(s.heap(bogus).is_err());
    }

    #[test]
    fn exit_reclaims_everything_and_invalidates_translations() {
        let mut s = sys();
        let baseline = s.kernel().pool_snapshot();
        let t = s.spawn(CoreId(0));
        s.set_mem_color(t, BankColor(1)).unwrap();
        s.set_llc_color(t, LlcColor(2)).unwrap();
        let a = s.malloc(t, 8 * 4096).unwrap();
        // Warm the TLB through the access path, then kill the task.
        s.access(t, a, Rw::Write, 0).unwrap();
        s.exit(t).unwrap();
        assert_eq!(s.access(t, a, Rw::Read, 0), Err(Errno::Esrch));
        assert_eq!(s.malloc(t, 16), Err(Errno::Esrch));
        assert!(s.heap(t).is_err());
        assert_eq!(
            s.kernel().pool_snapshot(),
            baseline,
            "zero leaked frames, zero pool skew"
        );
        s.check_invariants();
        // The machine is reusable: a fresh task colors and allocates again.
        let t2 = s.spawn(CoreId(2));
        s.set_mem_color(t2, BankColor(2)).unwrap();
        let b = s.malloc(t2, 4096).unwrap();
        s.access(t2, b, Rw::Write, 0).unwrap();
        s.exit(t2).unwrap();
        assert_eq!(s.kernel().pool_snapshot(), baseline);
        s.check_invariants();
    }

    #[test]
    fn thread_exit_leaves_the_team_running() {
        let mut s = sys();
        let leader = s.spawn(CoreId(0));
        s.set_mem_color(leader, BankColor(0)).unwrap();
        let worker = s.spawn_thread(CoreId(2), leader).unwrap();
        // The worker inherited the leader's colors at spawn.
        assert!(s.kernel().task(worker).unwrap().using_bank);
        let a = s.malloc(leader, 4096).unwrap();
        s.access(worker, a, Rw::Write, 0).unwrap();
        s.exit(worker).unwrap();
        // The shared space survives: the leader still sees the page.
        let acc = s.access(leader, a, Rw::Read, 0).unwrap();
        assert!(!acc.faulted, "page survived the sibling's exit");
        s.exit(leader).unwrap();
        s.check_invariants();
    }

    #[test]
    fn exit_unknown_task_is_esrch() {
        let mut s = sys();
        assert_eq!(s.exit(Tid(999)), Err(Errno::Esrch));
    }

    #[test]
    fn oom_kill_cleans_up_heap_and_tlb_like_exit() {
        let mut s = sys();
        let baseline = s.kernel().pool_snapshot();
        let t = s.spawn(CoreId(0));
        s.set_mem_color(t, BankColor(1)).unwrap();
        let a = s.malloc(t, 4 * 4096).unwrap();
        // Warm the TLB so the kill has cached state to invalidate.
        s.access(t, a, Rw::Write, 0).unwrap();
        let kill = s.oom_kill(VictimPolicy::LargestFootprint).unwrap();
        assert_eq!(kill.victim, t);
        assert!(kill.frames_reclaimed >= 1);
        assert_eq!(s.access(t, a, Rw::Read, 0), Err(Errno::Esrch));
        assert_eq!(s.malloc(t, 16), Err(Errno::Esrch));
        assert!(s.heap(t).is_err());
        assert_eq!(s.kernel().stats().oom_kills, 1);
        assert_eq!(s.kernel().pool_snapshot(), baseline, "kill reclaims all");
        s.check_invariants();
    }

    #[test]
    fn colored_enomem_surfaces_through_malloc_access() {
        let mut s = sys();
        let t = s.spawn(CoreId(0));
        s.set_mem_color(t, BankColor(0)).unwrap();
        s.set_llc_color(t, LlcColor(0)).unwrap();
        let per_pair = s.machine().mapping.frames_per_color_pair();
        let a = s.malloc(t, (per_pair + 1) * 4096).unwrap();
        // Touch pages until the color runs dry.
        let mut got_enomem = false;
        for p in 0..=per_pair {
            match s.access(t, a.offset(p * 4096), Rw::Write, 0) {
                Ok(_) => {}
                Err(Errno::Enomem) => {
                    got_enomem = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(got_enomem, "color exhaustion must surface as ENOMEM");
    }
}
