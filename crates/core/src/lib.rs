//! # tintmalloc — the TintMalloc allocator (IPDPS 2016) as a Rust library
//!
//! Reproduces *"TintMalloc: Reducing Memory Access Divergence via
//! Controller-Aware Coloring"* (Pan, Gownivaripalli, Mueller, IPDPS 2016):
//! a heap allocator that colors memory pages at three levels —
//!
//! 1. **memory controller** (NUMA node) — keep every heap page on the
//!    requesting thread's local node;
//! 2. **DRAM bank** — give each thread private banks, eliminating
//!    row-buffer interference;
//! 3. **LLC region** — give each thread private last-level-cache set
//!    slices, eliminating cross-thread eviction.
//!
//! Because the real system is a Linux-kernel patch evaluated on AMD Opteron
//! hardware, this crate runs against the simulated machine of the `tint-*`
//! substrate crates (see DESIGN.md for the substitution argument). The user
//! model is the paper's: *one line per color* during initialization —
//!
//! ```
//! use tintmalloc::prelude::*;
//!
//! let mut sys = System::boot(MachineConfig::opteron_6128());
//! let t = sys.spawn(CoreId(0));
//! // The paper's one-line initialization call:
//! sys.set_llc_color(t, LlcColor(0)).unwrap();
//! sys.set_mem_color(t, BankColor(3)).unwrap();
//! // ... after which plain malloc() returns colored memory:
//! let a = sys.malloc(t, 64 * 1024).unwrap();
//! let acc = sys.access(t, a, Rw::Write, 0).unwrap();
//! assert!(acc.latency > 0);
//! ```
//!
//! [`colors`] provides the per-thread color *planners* for every policy the
//! paper evaluates (LLC, MEM, MEM+LLC, MEM+LLC(part), LLC+MEM(part)), the
//! prior-work baseline **BPM** (bank+LLC partitioning that ignores the
//! controller), and the uncolored buddy baselines.

pub mod colors;
pub mod heap;
pub mod system;

pub use colors::{ColorScheme, ThreadColors};
pub use heap::Heap;
pub use system::{MemAccess, System};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::colors::{ColorScheme, ThreadColors};
    pub use crate::system::{MemAccess, System};
    pub use tint_hw::machine::MachineConfig;
    pub use tint_hw::types::{BankColor, CoreId, LlcColor, NodeId, Rw, VirtAddr};
    pub use tint_kernel::{Errno, ExhaustionPolicy, FaultPlan, FaultSite, HeapPolicy, Tid};
}
