//! The user-level heap: `malloc`/`free` over colored pages.
//!
//! The paper keeps `malloc()` itself unchanged — glibc's allocator simply
//! obtains pages via `mmap()`/page faults, and the kernel colors them. This
//! module plays glibc's role: a size-class segregated-free-list allocator
//! whose backing pages come from the simulated kernel one slab at a time.
//! Per the paper (§III.C), all slabs are order-0-page-backed: "TintMalloc is
//! currently restricted to serve only order-zero requests ... which suffices
//! to handle all ordinary user heap requests".

use std::collections::HashMap;
use tint_hw::types::{VirtAddr, PAGE_SIZE};

/// Size classes for small allocations (bytes). Larger requests are served
/// page-granular.
pub const SIZE_CLASSES: [u64; 8] = [16, 32, 64, 128, 256, 512, 1024, 2048];

/// Pages fetched per slab refill (one `mmap` per slab keeps VMA counts low).
pub const SLAB_PAGES: u64 = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AllocMeta {
    /// Small allocation: index into [`SIZE_CLASSES`].
    Class(usize),
    /// Large allocation: whole pages.
    Pages(u64),
}

/// What the heap needs from below: a way to map fresh page regions.
/// (Implemented by `System`; a simple closure keeps the heap testable.)
pub trait PageSource {
    /// Map `pages` fresh pages and return the region base.
    fn map_pages(&mut self, pages: u64) -> Result<VirtAddr, tint_kernel::Errno>;
    /// Unmap a region previously returned by `map_pages`.
    fn unmap_pages(&mut self, base: VirtAddr, pages: u64) -> Result<(), tint_kernel::Errno>;
}

/// Per-task user-level heap state.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    free_lists: [Vec<VirtAddr>; SIZE_CLASSES.len()],
    allocs: HashMap<u64, AllocMeta>,
    /// Bytes handed out and not yet freed.
    bytes_in_use: u64,
    /// Pages requested from the kernel (slabs + large allocations).
    pages_mapped: u64,
}

impl Heap {
    /// Fresh empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently allocated.
    pub fn bytes_in_use(&self) -> u64 {
        self.bytes_in_use
    }

    /// Pages ever requested from the kernel.
    pub fn pages_mapped(&self) -> u64 {
        self.pages_mapped
    }

    /// Live allocation count.
    pub fn live_allocations(&self) -> usize {
        self.allocs.len()
    }

    fn class_of(size: u64) -> Option<usize> {
        SIZE_CLASSES.iter().position(|&c| size <= c)
    }

    /// Allocate `size` bytes (the `malloc` entry point).
    pub fn malloc<S: PageSource>(
        &mut self,
        src: &mut S,
        size: u64,
    ) -> Result<VirtAddr, tint_kernel::Errno> {
        if size == 0 {
            return Err(tint_kernel::Errno::Einval);
        }
        match Self::class_of(size) {
            Some(class) => {
                if self.free_lists[class].is_empty() {
                    self.refill(src, class)?;
                }
                // A successful refill guarantees a free slot; if that ever
                // regresses, surface ENOMEM instead of aborting the caller.
                let addr = self.free_lists[class]
                    .pop()
                    .ok_or(tint_kernel::Errno::Enomem)?;
                self.allocs.insert(addr.0, AllocMeta::Class(class));
                self.bytes_in_use += SIZE_CLASSES[class];
                Ok(addr)
            }
            None => {
                let pages = size.div_ceil(PAGE_SIZE);
                let base = src.map_pages(pages)?;
                self.pages_mapped += pages;
                self.allocs.insert(base.0, AllocMeta::Pages(pages));
                self.bytes_in_use += pages * PAGE_SIZE;
                Ok(base)
            }
        }
    }

    /// Allocate zero-initialized memory (`calloc`). The simulation does not
    /// model memory contents, so this is `malloc` with the same signature
    /// contract (fresh kernel pages are zero anyway).
    pub fn calloc<S: PageSource>(
        &mut self,
        src: &mut S,
        count: u64,
        size: u64,
    ) -> Result<VirtAddr, tint_kernel::Errno> {
        let total = count.checked_mul(size).ok_or(tint_kernel::Errno::Einval)?;
        self.malloc(src, total)
    }

    /// Resize an allocation (`realloc`): may return the same address when
    /// the size class already fits.
    pub fn realloc<S: PageSource>(
        &mut self,
        src: &mut S,
        addr: VirtAddr,
        new_size: u64,
    ) -> Result<VirtAddr, tint_kernel::Errno> {
        let meta = *self.allocs.get(&addr.0).ok_or(tint_kernel::Errno::Einval)?;
        let fits = match meta {
            AllocMeta::Class(c) => Self::class_of(new_size) == Some(c),
            AllocMeta::Pages(p) => {
                new_size > *SIZE_CLASSES.last().unwrap() && new_size.div_ceil(PAGE_SIZE) == p
            }
        };
        if fits {
            return Ok(addr);
        }
        let new = self.malloc(src, new_size)?;
        self.free(src, addr)?;
        Ok(new)
    }

    /// Release an allocation (`free`).
    pub fn free<S: PageSource>(
        &mut self,
        src: &mut S,
        addr: VirtAddr,
    ) -> Result<(), tint_kernel::Errno> {
        let meta = self
            .allocs
            .remove(&addr.0)
            .ok_or(tint_kernel::Errno::Einval)?;
        match meta {
            AllocMeta::Class(class) => {
                self.free_lists[class].push(addr);
                self.bytes_in_use -= SIZE_CLASSES[class];
            }
            AllocMeta::Pages(pages) => {
                src.unmap_pages(addr, pages)?;
                self.bytes_in_use -= pages * PAGE_SIZE;
                self.pages_mapped -= pages;
            }
        }
        Ok(())
    }

    /// Carve a fresh slab into chunks of `class`.
    fn refill<S: PageSource>(
        &mut self,
        src: &mut S,
        class: usize,
    ) -> Result<(), tint_kernel::Errno> {
        let base = src.map_pages(SLAB_PAGES)?;
        self.pages_mapped += SLAB_PAGES;
        let chunk = SIZE_CLASSES[class];
        let total = SLAB_PAGES * PAGE_SIZE;
        let mut off = 0;
        while off + chunk <= total {
            self.free_lists[class].push(base.offset(off));
            off += chunk;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A page source handing out consecutive fake regions.
    #[derive(Default)]
    struct FakeSource {
        next: u64,
        mapped: Vec<(u64, u64)>,
        unmapped: Vec<(u64, u64)>,
    }

    impl PageSource for FakeSource {
        fn map_pages(&mut self, pages: u64) -> Result<VirtAddr, tint_kernel::Errno> {
            let base = 0x1000_0000 + self.next * PAGE_SIZE;
            self.next += pages;
            self.mapped.push((base, pages));
            Ok(VirtAddr(base))
        }
        fn unmap_pages(&mut self, base: VirtAddr, pages: u64) -> Result<(), tint_kernel::Errno> {
            self.unmapped.push((base.0, pages));
            Ok(())
        }
    }

    #[test]
    fn small_allocations_share_a_slab() {
        let mut h = Heap::new();
        let mut s = FakeSource::default();
        let a = h.malloc(&mut s, 60).unwrap();
        let b = h.malloc(&mut s, 64).unwrap();
        assert_ne!(a, b);
        assert_eq!(s.mapped.len(), 1, "both served from one slab");
        assert_eq!(h.bytes_in_use(), 128);
        assert_eq!(h.live_allocations(), 2);
    }

    #[test]
    fn zero_size_is_einval() {
        let mut h = Heap::new();
        let mut s = FakeSource::default();
        assert!(h.malloc(&mut s, 0).is_err());
    }

    #[test]
    fn large_allocation_gets_own_pages() {
        let mut h = Heap::new();
        let mut s = FakeSource::default();
        let a = h.malloc(&mut s, 10_000).unwrap();
        assert_eq!(s.mapped.last().unwrap().1, 3, "ceil(10000/4096) pages");
        h.free(&mut s, a).unwrap();
        assert_eq!(s.unmapped.len(), 1);
        assert_eq!(h.bytes_in_use(), 0);
    }

    #[test]
    fn free_then_malloc_reuses_chunk() {
        let mut h = Heap::new();
        let mut s = FakeSource::default();
        let a = h.malloc(&mut s, 100).unwrap();
        h.free(&mut s, a).unwrap();
        let b = h.malloc(&mut s, 100).unwrap();
        assert_eq!(a, b, "LIFO reuse of the freed chunk");
        assert_eq!(s.mapped.len(), 1);
    }

    #[test]
    fn double_free_is_einval() {
        let mut h = Heap::new();
        let mut s = FakeSource::default();
        let a = h.malloc(&mut s, 100).unwrap();
        h.free(&mut s, a).unwrap();
        assert!(h.free(&mut s, a).is_err());
    }

    #[test]
    fn free_of_unknown_address_is_einval() {
        let mut h = Heap::new();
        let mut s = FakeSource::default();
        assert!(h.free(&mut s, VirtAddr(0x1234)).is_err());
    }

    #[test]
    fn calloc_multiplies() {
        let mut h = Heap::new();
        let mut s = FakeSource::default();
        let _ = h.calloc(&mut s, 100, 100).unwrap(); // 10 000 B → pages
        assert_eq!(s.mapped.last().unwrap().1, 3);
        assert!(h.calloc(&mut s, u64::MAX, 2).is_err(), "overflow detected");
    }

    #[test]
    fn realloc_same_class_is_identity() {
        let mut h = Heap::new();
        let mut s = FakeSource::default();
        let a = h.malloc(&mut s, 100).unwrap();
        let b = h.realloc(&mut s, a, 120).unwrap();
        assert_eq!(a, b, "both fit the 128-byte class");
    }

    #[test]
    fn realloc_grows_to_new_class() {
        let mut h = Heap::new();
        let mut s = FakeSource::default();
        let a = h.malloc(&mut s, 100).unwrap();
        let b = h.realloc(&mut s, a, 2000).unwrap();
        assert_ne!(a, b);
        assert_eq!(h.live_allocations(), 1);
        // The old chunk is reusable.
        let c = h.malloc(&mut s, 100).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn slab_chunks_do_not_overlap() {
        let mut h = Heap::new();
        let mut s = FakeSource::default();
        let n = (SLAB_PAGES * PAGE_SIZE / 2048) as usize;
        let mut addrs: Vec<_> = (0..n).map(|_| h.malloc(&mut s, 2048).unwrap().0).collect();
        addrs.sort();
        for w in addrs.windows(2) {
            assert!(w[1] - w[0] >= 2048, "chunks overlap");
        }
        assert_eq!(s.mapped.len(), 1, "exactly one slab used");
        // The next allocation triggers a second slab.
        h.malloc(&mut s, 2048).unwrap();
        assert_eq!(s.mapped.len(), 2);
    }

    #[test]
    fn balanced_alloc_free_does_not_grow_pages() {
        // Paper §III.C: "the overhead becomes constant for a stable working
        // set size ... assuming [allocations] are balanced in size".
        let mut h = Heap::new();
        let mut s = FakeSource::default();
        for _ in 0..1000 {
            let a = h.malloc(&mut s, 512).unwrap();
            h.free(&mut s, a).unwrap();
        }
        assert_eq!(
            h.pages_mapped(),
            SLAB_PAGES,
            "one slab serves the steady state"
        );
    }
}
