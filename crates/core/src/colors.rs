//! Per-thread color planners for every policy the paper evaluates (§V.B).
//!
//! Given the machine and the thread→core pinning, a [`ColorScheme`] produces
//! each thread's color sets:
//!
//! * **`Buddy`** — no colors; the stock NUMA-aware Linux buddy behaviour
//!   (local-node preference). The paper's normalization baseline.
//! * **`LegacyGlobal`** — no colors and *no node awareness* (a pre-NUMA
//!   buddy); an ablation showing what locality alone buys.
//! * **`LlcOnly`** — private LLC colors per thread, banks uncolored.
//! * **`MemOnly`** — private bank colors per thread **from its local node**
//!   (this is the controller-awareness), LLC uncolored.
//! * **`MemLlc`** — both; full isolation ("there is no sharing").
//! * **`MemLlcPart`** — private banks; LLC colors shared within a node
//!   group (paper: 16 threads → 4 groups × 8 LLC colors).
//! * **`LlcMemPart`** — private LLC colors; each thread shares *all* of its
//!   node's bank colors with its node-mates.
//! * **`Bpm`** — prior work \[10\]: banks and LLC partitioned, but bank colors
//!   assigned round-robin across the whole machine *ignoring the
//!   controller* — threads end up with mostly-remote banks, which is
//!   exactly why the paper finds BPM slower than buddy.

use std::fmt;
use tint_hw::machine::MachineConfig;
use tint_hw::types::{BankColor, CoreId, LlcColor, NodeId};
use tint_kernel::HeapPolicy;

/// A thread's planned colors and base policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadColors {
    /// Memory (bank) colors to register via `SET_MEM_COLOR`.
    pub mem: Vec<BankColor>,
    /// LLC colors to register via `SET_LLC_COLOR`.
    pub llc: Vec<LlcColor>,
    /// Base policy when uncolored.
    pub policy: HeapPolicy,
}

impl ThreadColors {
    /// No colors under the given base policy.
    pub fn uncolored(policy: HeapPolicy) -> Self {
        Self {
            mem: Vec::new(),
            llc: Vec::new(),
            policy,
        }
    }
}

/// The allocation policies compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColorScheme {
    /// Stock Linux buddy (NUMA-aware local preference) — the baseline.
    Buddy,
    /// Node-oblivious buddy (ablation).
    LegacyGlobal,
    /// Private LLC colors only.
    LlcOnly,
    /// Private local-node bank colors only.
    MemOnly,
    /// Private bank colors and private LLC colors.
    MemLlc,
    /// Private bank colors; LLC colors shared within node groups.
    MemLlcPart,
    /// Private LLC colors; node's bank colors shared within node groups.
    LlcMemPart,
    /// Bank+LLC partitioning ignoring the controller (Liu et al. \[10\]).
    Bpm,
    /// PALLOC (Yun et al. \[8\]): DRAM-bank-aware allocation only — private
    /// banks per thread for performance isolation, but no LLC coloring and
    /// no controller awareness.
    Palloc,
}

impl ColorScheme {
    /// Every scheme, in the order figures present them.
    pub const ALL: [ColorScheme; 9] = [
        ColorScheme::Buddy,
        ColorScheme::LegacyGlobal,
        ColorScheme::Bpm,
        ColorScheme::Palloc,
        ColorScheme::LlcOnly,
        ColorScheme::MemOnly,
        ColorScheme::MemLlc,
        ColorScheme::MemLlcPart,
        ColorScheme::LlcMemPart,
    ];

    /// The TintMalloc coloring variants (excludes baselines).
    pub const TINT: [ColorScheme; 5] = [
        ColorScheme::LlcOnly,
        ColorScheme::MemOnly,
        ColorScheme::MemLlc,
        ColorScheme::MemLlcPart,
        ColorScheme::LlcMemPart,
    ];

    /// Does this scheme register any colors (use Algorithm 1)?
    pub fn is_colored(self) -> bool {
        !matches!(self, ColorScheme::Buddy | ColorScheme::LegacyGlobal)
    }

    /// Plan per-thread colors for threads pinned to `cores` (thread `i` on
    /// `cores[i]`).
    ///
    /// Panics if there are more threads than LLC colors (a scheme needing
    /// private LLC colors could not provide any) or more threads on a node
    /// than the node has bank colors.
    pub fn plan(self, machine: &MachineConfig, cores: &[CoreId]) -> Vec<ThreadColors> {
        let t = cores.len();
        assert!(t > 0, "no threads to plan for");
        let map = &machine.mapping;
        let llc_total = map.llc_color_count();
        let nodes: Vec<NodeId> = cores
            .iter()
            .map(|&c| machine.topology.node_of_core(c))
            .collect();

        // Per-node membership: rank_in_node[i] = position of thread i among
        // the threads sharing its node; node_sizes[n] = threads on node n.
        let mut node_sizes = vec![0usize; machine.topology.node_count()];
        let rank_in_node: Vec<usize> = nodes
            .iter()
            .map(|&n| {
                let r = node_sizes[n.index()];
                node_sizes[n.index()] += 1;
                r
            })
            .collect();

        // Distinct nodes in pinning order define the "groups" of the (part)
        // schemes.
        let mut groups: Vec<NodeId> = Vec::new();
        for &n in &nodes {
            if !groups.contains(&n) {
                groups.push(n);
            }
        }

        let llc_private = |i: usize| -> Vec<LlcColor> {
            chunk(llc_total, t, i).map(|c| LlcColor(c as u16)).collect()
        };
        let mem_private = |i: usize| -> Vec<BankColor> {
            let n = nodes[i];
            let local: Vec<BankColor> = map.bank_colors_of_node(n).collect();
            chunk(local.len(), node_sizes[n.index()], rank_in_node[i])
                .map(|k| local[k])
                .collect()
        };

        (0..t)
            .map(|i| match self {
                ColorScheme::Buddy => ThreadColors::uncolored(HeapPolicy::FirstTouch),
                ColorScheme::LegacyGlobal => ThreadColors::uncolored(HeapPolicy::Legacy),
                ColorScheme::LlcOnly => ThreadColors {
                    mem: Vec::new(),
                    llc: llc_private(i),
                    policy: HeapPolicy::FirstTouch,
                },
                ColorScheme::MemOnly => ThreadColors {
                    mem: mem_private(i),
                    llc: Vec::new(),
                    policy: HeapPolicy::FirstTouch,
                },
                ColorScheme::MemLlc => ThreadColors {
                    mem: mem_private(i),
                    llc: llc_private(i),
                    policy: HeapPolicy::FirstTouch,
                },
                ColorScheme::MemLlcPart => {
                    // LLC shared within the thread's node group.
                    let g = groups.iter().position(|&n| n == nodes[i]).unwrap();
                    let llc = chunk(llc_total, groups.len(), g)
                        .map(|c| LlcColor(c as u16))
                        .collect();
                    ThreadColors {
                        mem: mem_private(i),
                        llc,
                        policy: HeapPolicy::FirstTouch,
                    }
                }
                ColorScheme::LlcMemPart => ThreadColors {
                    // All the node's bank colors, shared with node-mates.
                    mem: map.bank_colors_of_node(nodes[i]).collect(),
                    llc: llc_private(i),
                    policy: HeapPolicy::FirstTouch,
                },
                ColorScheme::Palloc => ThreadColors {
                    // Bank-aware only: private banks strided across the
                    // machine (no controller awareness), LLC uncolored.
                    mem: (0..map.bank_color_count())
                        .filter(|c| c % t == i)
                        .map(|c| BankColor(c as u16))
                        .collect(),
                    llc: Vec::new(),
                    policy: HeapPolicy::FirstTouch,
                },
                ColorScheme::Bpm => {
                    // Controller-oblivious: colors strided across the whole
                    // machine — thread i owns {c : c ≡ i (mod t)}.
                    let mem = (0..map.bank_color_count())
                        .filter(|c| c % t == i)
                        .map(|c| BankColor(c as u16))
                        .collect();
                    ThreadColors {
                        mem,
                        llc: llc_private(i),
                        policy: HeapPolicy::FirstTouch,
                    }
                }
            })
            .collect()
    }

    /// Paper-style label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            ColorScheme::Buddy => "buddy",
            ColorScheme::LegacyGlobal => "legacy(global)",
            ColorScheme::LlcOnly => "LLC",
            ColorScheme::MemOnly => "MEM",
            ColorScheme::MemLlc => "MEM+LLC",
            ColorScheme::MemLlcPart => "MEM+LLC(part)",
            ColorScheme::LlcMemPart => "LLC+MEM(part)",
            ColorScheme::Bpm => "BPM",
            ColorScheme::Palloc => "PALLOC",
        }
    }
}

impl fmt::Display for ColorScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Split `total` items into `parts` nearly-even chunks; returns chunk `i`'s
/// index range. Panics when a chunk would be empty.
fn chunk(total: usize, parts: usize, i: usize) -> std::ops::Range<usize> {
    assert!(parts > 0 && i < parts);
    assert!(
        total >= parts,
        "cannot give {parts} threads private shares of {total} colors"
    );
    let lo = i * total / parts;
    let hi = (i + 1) * total / parts;
    lo..hi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opteron_16() -> (MachineConfig, Vec<CoreId>) {
        let m = MachineConfig::opteron_6128();
        let cores = (0..16).map(CoreId).collect();
        (m, cores)
    }

    /// Pinning for the paper's 8_threads_4_nodes config: cores 0,1,4,5,8,9,12,13.
    fn opteron_8t4n() -> (MachineConfig, Vec<CoreId>) {
        let m = MachineConfig::opteron_6128();
        let cores = [0, 1, 4, 5, 8, 9, 12, 13].map(CoreId).to_vec();
        (m, cores)
    }

    fn assert_disjoint<T: Eq + std::hash::Hash + Copy>(sets: &[Vec<T>]) {
        let mut seen = std::collections::HashSet::new();
        for s in sets {
            for &x in s {
                assert!(seen.insert(x), "color assigned to two threads");
            }
        }
    }

    #[test]
    fn memllc_16t_disjoint_local_and_private() {
        let (m, cores) = opteron_16();
        let plan = ColorScheme::MemLlc.plan(&m, &cores);
        assert_eq!(plan.len(), 16);
        // Paper: 16 threads → 2 private LLC colors each.
        for p in &plan {
            assert_eq!(p.llc.len(), 2);
            assert_eq!(p.mem.len(), 8, "32 node colors / 4 threads per node");
        }
        assert_disjoint(&plan.iter().map(|p| p.llc.clone()).collect::<Vec<_>>());
        assert_disjoint(&plan.iter().map(|p| p.mem.clone()).collect::<Vec<_>>());
        // Controller-awareness: every mem color is on the thread's node.
        for (i, p) in plan.iter().enumerate() {
            let node = m.topology.node_of_core(cores[i]);
            for &bc in &p.mem {
                assert_eq!(m.mapping.node_of_bank_color(bc), node, "thread {i}");
            }
        }
    }

    #[test]
    fn memllc_8t_gives_four_llc_colors() {
        // Paper: "For 8 threads, each thread has four private LLC colors."
        let (m, cores) = opteron_8t4n();
        let plan = ColorScheme::MemLlc.plan(&m, &cores);
        for p in &plan {
            assert_eq!(p.llc.len(), 4);
            assert_eq!(p.mem.len(), 16, "32 node colors / 2 threads per node");
        }
    }

    #[test]
    fn memllcpart_16t_matches_paper_grouping() {
        // Paper: "For MEM+LLC (part) coloring with 16 threads, we create 4
        // thread groups. Each group has its private 8 LLC colors."
        let (m, cores) = opteron_16();
        let plan = ColorScheme::MemLlcPart.plan(&m, &cores);
        for (i, p) in plan.iter().enumerate() {
            assert_eq!(p.llc.len(), 8, "thread {i}");
        }
        // Threads 0–3 (node 0) share one LLC set, disjoint from threads 4–7.
        assert_eq!(plan[0].llc, plan[3].llc);
        assert_ne!(plan[0].llc, plan[4].llc);
        // Banks stay private.
        assert_disjoint(&plan.iter().map(|p| p.mem.clone()).collect::<Vec<_>>());
    }

    #[test]
    fn llcmempart_shares_node_banks() {
        let (m, cores) = opteron_16();
        let plan = ColorScheme::LlcMemPart.plan(&m, &cores);
        // Node-mates share all 32 node colors.
        assert_eq!(plan[0].mem, plan[1].mem);
        assert_eq!(plan[0].mem.len(), 32);
        assert_ne!(plan[0].mem, plan[4].mem);
        // LLC colors private.
        assert_disjoint(&plan.iter().map(|p| p.llc.clone()).collect::<Vec<_>>());
    }

    #[test]
    fn bpm_ignores_controller() {
        let (m, cores) = opteron_16();
        let plan = ColorScheme::Bpm.plan(&m, &cores);
        assert_disjoint(&plan.iter().map(|p| p.mem.clone()).collect::<Vec<_>>());
        for (i, p) in plan.iter().enumerate() {
            assert_eq!(p.mem.len(), 8);
            // The stride spreads every thread's banks over all 4 nodes.
            let nodes: std::collections::HashSet<_> = p
                .mem
                .iter()
                .map(|&bc| m.mapping.node_of_bank_color(bc))
                .collect();
            assert_eq!(nodes.len(), 4, "thread {i} must touch every node");
        }
    }

    #[test]
    fn bpm_mostly_remote() {
        let (m, cores) = opteron_16();
        let plan = ColorScheme::Bpm.plan(&m, &cores);
        let mut remote = 0;
        let mut total = 0;
        for (i, p) in plan.iter().enumerate() {
            let node = m.topology.node_of_core(cores[i]);
            for &bc in &p.mem {
                total += 1;
                if m.mapping.node_of_bank_color(bc) != node {
                    remote += 1;
                }
            }
        }
        assert_eq!(remote * 4, total * 3, "3 of 4 BPM banks are remote");
    }

    #[test]
    fn baselines_are_uncolored() {
        let (m, cores) = opteron_16();
        for (scheme, policy) in [
            (ColorScheme::Buddy, HeapPolicy::FirstTouch),
            (ColorScheme::LegacyGlobal, HeapPolicy::Legacy),
        ] {
            let plan = scheme.plan(&m, &cores);
            for p in &plan {
                assert!(p.mem.is_empty() && p.llc.is_empty());
                assert_eq!(p.policy, policy);
            }
            assert!(!scheme.is_colored());
        }
    }

    #[test]
    fn llconly_has_no_mem_colors() {
        let (m, cores) = opteron_16();
        let plan = ColorScheme::LlcOnly.plan(&m, &cores);
        for p in &plan {
            assert!(p.mem.is_empty());
            assert_eq!(p.llc.len(), 2);
        }
    }

    #[test]
    fn four_threads_four_nodes() {
        // Paper config 4_threads_4_nodes: cores 0,4,8,12.
        let m = MachineConfig::opteron_6128();
        let cores = [0, 4, 8, 12].map(CoreId).to_vec();
        let plan = ColorScheme::MemLlc.plan(&m, &cores);
        for (i, p) in plan.iter().enumerate() {
            assert_eq!(p.mem.len(), 32, "alone on its node: all 32 colors");
            assert_eq!(p.llc.len(), 8);
            let node = m.topology.node_of_core(cores[i]);
            assert!(p
                .mem
                .iter()
                .all(|&bc| m.mapping.node_of_bank_color(bc) == node));
        }
    }

    #[test]
    fn palloc_is_bank_only_and_controller_oblivious() {
        let (m, cores) = opteron_16();
        let plan = ColorScheme::Palloc.plan(&m, &cores);
        assert_disjoint(&plan.iter().map(|p| p.mem.clone()).collect::<Vec<_>>());
        for p in &plan {
            assert!(p.llc.is_empty(), "PALLOC does not color the LLC");
            assert_eq!(p.mem.len(), 8);
            let nodes: std::collections::HashSet<_> = p
                .mem
                .iter()
                .map(|&bc| m.mapping.node_of_bank_color(bc))
                .collect();
            assert_eq!(nodes.len(), 4, "banks spread over all nodes");
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ColorScheme::MemLlc.to_string(), "MEM+LLC");
        assert_eq!(ColorScheme::Bpm.to_string(), "BPM");
        assert_eq!(ColorScheme::LlcMemPart.to_string(), "LLC+MEM(part)");
    }

    #[test]
    #[should_panic(expected = "private shares")]
    fn too_many_threads_panics() {
        let m = MachineConfig::tiny(); // 4 LLC colors
        let cores: Vec<_> = (0..4).map(CoreId).collect();
        // 4 threads × tiny is fine for LLC, but force the panic with mem:
        // tiny has 2 colors per node and we pin 3 threads to node 0's cores…
        // tiny topology has 2 cores per node, so use LLC with a fake excess.
        let _ = ColorScheme::LlcOnly.plan(&m, &cores); // 4 colors / 4 threads OK
        let m2 = MachineConfig::tiny();
        let cores5 = vec![CoreId(0), CoreId(1), CoreId(2), CoreId(3), CoreId(0)];
        let _ = ColorScheme::LlcOnly.plan(&m2, &cores5); // 5 > 4 → panic
    }
}
