//! Randomized op-sequence fuzzer for memory-pressure robustness.
//!
//! Drives a mixed population of tasks — strict, nearest-color, and
//! local-uncolored exhaustion policies, plus an uncolored task and a
//! raw-syscall task — through ≥10k operations per seed while the kernel
//! injects deterministic faults at every site. The population itself
//! churns: ops spawn fresh colored tenants and exit live ones mid-life, so
//! the full task-reclamation path (address-space teardown, provenance-
//! routed frame return, color-list drain on last-colored-exit) runs with
//! buffers still mapped and the injector armed. The contract under test:
//!
//! * allocation failures surface as **typed errnos** (`ENOMEM`, `EAGAIN`,
//!   `EFAULT`, `EINVAL`), never as panics or aborts;
//! * [`Kernel::check_invariants`] stays clean throughout: every frame owned
//!   by exactly one structure, page tables and VMAs in agreement, color
//!   bitsets in sync;
//! * a failing seed replays exactly (`SplitMix64` drives both the op
//!   stream and the injector).
//!
//! Seed count is tunable: `TINT_FUZZ_SEEDS=20 cargo test -p tintmalloc
//! --test fuzz_pressure` (CI runs a bounded pass; see scripts/ci.sh).

use tint_hw::machine::MachineConfig;
use tint_hw::rng::SplitMix64;
use tint_hw::types::{CoreId, FrameNumber, Rw, VirtAddr, PAGE_SIZE};
use tintmalloc::prelude::*;

const OPS_PER_SEED: u64 = 10_000;
const CHECK_EVERY: u64 = 512;

/// Errors the kernel is *allowed* to return under pressure and injection.
fn tolerated(e: Errno) -> bool {
    matches!(
        e,
        Errno::Enomem | Errno::Eagain | Errno::Efault | Errno::Einval
    )
}

fn expect_ok_or_tolerated<T>(r: Result<T, Errno>, what: &str) -> Option<T> {
    match r {
        Ok(v) => Some(v),
        Err(e) if tolerated(e) => None,
        Err(e) => panic!("{what}: unexpected errno {e}"),
    }
}

struct HeapTask {
    tid: Tid,
    /// Live page-granular buffers (base, len).
    live: Vec<(VirtAddr, u64)>,
}

fn fuzz_one_seed(seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let mut sys = System::boot(MachineConfig::tiny());
    sys.kernel_mut().consume_boot_noise(rng.gen_range(64));

    // Population: one task per exhaustion policy plus an uncolored task.
    let mut tasks = Vec::new();
    for (i, (policy, bank, llc)) in [
        (ExhaustionPolicy::Strict, Some(0u16), Some(0u16)),
        (ExhaustionPolicy::NearestColor, Some(1), Some(1)),
        (ExhaustionPolicy::LocalUncolored, None, Some(2)),
        (ExhaustionPolicy::Strict, None, None),
    ]
    .into_iter()
    .enumerate()
    {
        let tid = sys.spawn(CoreId(i % 4));
        if let Some(b) = bank {
            sys.set_mem_color(tid, BankColor(b)).unwrap();
        }
        if let Some(l) = llc {
            sys.set_llc_color(tid, LlcColor(l)).unwrap();
        }
        if bank.is_none() && llc.is_none() {
            sys.set_policy(tid, HeapPolicy::FirstTouch).unwrap();
        }
        sys.set_exhaustion_policy(tid, policy).unwrap();
        tasks.push(HeapTask {
            tid,
            live: Vec::new(),
        });
    }
    // A raw-syscall task exercising the kernel directly (its regions are
    // invisible to the heap layer, so only kernel calls touch them).
    let raw_tid = sys.spawn(CoreId(3));
    let mut raw_regions: Vec<(VirtAddr, u64)> = Vec::new();
    let mut raw_blocks: Vec<(FrameNumber, u32)> = Vec::new();

    // Injection at every site, after a short warm-up so the population can
    // establish itself.
    sys.set_fault_plan(Some(
        FaultPlan::new(seed ^ 0xfa17).with_all_rates(25).after(64),
    ));

    let mut spawns = 0u64;
    let mut exits = 0u64;
    for op in 0..OPS_PER_SEED {
        let t = (rng.next_u64() % tasks.len() as u64) as usize;
        match rng.next_u64() % 18 {
            // malloc 1–8 pages (page-granular so free() really munmaps).
            0..=4 => {
                let pages = 1 + rng.next_u64() % 8;
                let tid = tasks[t].tid;
                if let Some(buf) =
                    expect_ok_or_tolerated(sys.malloc(tid, pages * PAGE_SIZE), "malloc")
                {
                    tasks[t].live.push((buf, pages * PAGE_SIZE));
                }
            }
            // free a live buffer.
            5..=7 => {
                if tasks[t].live.is_empty() {
                    continue;
                }
                let i = (rng.next_u64() % tasks[t].live.len() as u64) as usize;
                let (buf, _) = tasks[t].live.swap_remove(i);
                let tid = tasks[t].tid;
                expect_ok_or_tolerated(sys.free(tid, buf), "free");
            }
            // touch a random page of a live buffer.
            8..=11 => {
                if tasks[t].live.is_empty() {
                    continue;
                }
                let i = (rng.next_u64() % tasks[t].live.len() as u64) as usize;
                let (buf, len) = tasks[t].live[i];
                let off = (rng.next_u64() % (len / PAGE_SIZE)) * PAGE_SIZE;
                let tid = tasks[t].tid;
                expect_ok_or_tolerated(sys.access(tid, buf.offset(off), Rw::Read, 0), "access");
            }
            // recolor the whole task or a live range.
            12 => {
                let tid = tasks[t].tid;
                if rng.gen_ratio(1, 2) || tasks[t].live.is_empty() {
                    expect_ok_or_tolerated(sys.recolor(tid), "recolor");
                } else {
                    let i = (rng.next_u64() % tasks[t].live.len() as u64) as usize;
                    let (buf, len) = tasks[t].live[i];
                    expect_ok_or_tolerated(sys.recolor_range(tid, buf, len), "recolor_range");
                }
            }
            // flip the task's exhaustion policy.
            13 => {
                let policy = match rng.next_u64() % 3 {
                    0 => ExhaustionPolicy::Strict,
                    1 => ExhaustionPolicy::NearestColor,
                    _ => ExhaustionPolicy::LocalUncolored,
                };
                let tid = tasks[t].tid;
                sys.set_exhaustion_policy(tid, policy).unwrap();
            }
            // raw kernel syscalls: mmap + fault, munmap, raw block alloc/free.
            14 => {
                let k = sys.kernel_mut();
                match rng.next_u64() % 4 {
                    0 => {
                        let pages = 1 + rng.next_u64() % 4;
                        if let Some(base) = expect_ok_or_tolerated(
                            k.sys_mmap(raw_tid, 0, pages * PAGE_SIZE, 0),
                            "raw mmap",
                        ) {
                            raw_regions.push((base, pages * PAGE_SIZE));
                        }
                    }
                    1 if !raw_regions.is_empty() => {
                        let i = (rng.next_u64() % raw_regions.len() as u64) as usize;
                        let (base, len) = raw_regions.swap_remove(i);
                        expect_ok_or_tolerated(k.sys_munmap(raw_tid, base, len), "raw munmap");
                    }
                    2 if !raw_regions.is_empty() => {
                        let i = (rng.next_u64() % raw_regions.len() as u64) as usize;
                        let (base, len) = raw_regions[i];
                        let off = (rng.next_u64() % (len / PAGE_SIZE)) * PAGE_SIZE;
                        expect_ok_or_tolerated(
                            k.translate(raw_tid, base.offset(off)),
                            "raw translate",
                        );
                    }
                    _ => {
                        if raw_blocks.len() < 8 {
                            let order = (rng.next_u64() % 4) as u32;
                            if let Some(out) = expect_ok_or_tolerated(
                                k.alloc_pages_raw(raw_tid, order),
                                "alloc_pages_raw",
                            ) {
                                raw_blocks.push((out.frame, order));
                            }
                        } else {
                            let (f, order) = raw_blocks.swap_remove(0);
                            k.free_pages_raw(f, order);
                        }
                    }
                }
            }
            // spawn a fresh colored tenant (bounded population) — churn's
            // arrival half, under injected faults.
            15 => {
                if tasks.len() >= 12 {
                    continue;
                }
                let tid = sys.spawn(CoreId((rng.next_u64() % 4) as usize));
                let banks = sys.machine().mapping.bank_color_count() as u64;
                let llcs = sys.machine().mapping.llc_color_count() as u64;
                if rng.gen_ratio(3, 4) {
                    let bank = BankColor(rng.gen_range(banks) as u16);
                    let llc = LlcColor(rng.gen_range(llcs) as u16);
                    expect_ok_or_tolerated(sys.set_mem_color(tid, bank), "set_mem_color");
                    expect_ok_or_tolerated(sys.set_llc_color(tid, llc), "set_llc_color");
                }
                let policy = match rng.next_u64() % 3 {
                    0 => ExhaustionPolicy::Strict,
                    1 => ExhaustionPolicy::NearestColor,
                    _ => ExhaustionPolicy::LocalUncolored,
                };
                sys.set_exhaustion_policy(tid, policy).unwrap();
                spawns += 1;
                tasks.push(HeapTask {
                    tid,
                    live: Vec::new(),
                });
            }
            // exit a tenant mid-life — full reclamation with live buffers
            // still mapped and the injector armed. Exit of a live task is
            // infallible by contract.
            16 => {
                if tasks.len() <= 2 {
                    continue;
                }
                let i = (rng.next_u64() % tasks.len() as u64) as usize;
                let gone = tasks.swap_remove(i);
                sys.exit(gone.tid).expect("live task exits cleanly");
                exits += 1;
            }
            // occasionally re-seed the fault plan (exercises arm/disarm).
            _ => {
                if rng.gen_ratio(1, 4) {
                    sys.set_fault_plan(None);
                } else {
                    let rate = 5 + (rng.next_u64() % 50) as u16;
                    sys.set_fault_plan(Some(FaultPlan::new(rng.next_u64()).with_all_rates(rate)));
                }
            }
        }
        if (op + 1) % CHECK_EVERY == 0 {
            sys.check_invariants();
        }
    }
    // Drain the raw blocks so the final accounting closes over boot noise
    // and mapped pages only, then check everything once more.
    for (f, order) in raw_blocks.drain(..) {
        sys.kernel_mut().free_pages_raw(f, order);
    }
    sys.check_invariants();
    let stats = *sys.kernel().stats();
    assert!(
        stats.page_faults > 0 && stats.colored_allocs > 0,
        "seed {seed}: the op mix must actually exercise the allocator"
    );
    assert!(
        spawns > 0 && exits > 0,
        "seed {seed}: the op mix must churn the task population \
         ({spawns} spawns, {exits} exits)"
    );
}

#[test]
fn fuzz_mixed_ops_under_injected_faults() {
    let seeds: u64 = std::env::var("TINT_FUZZ_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    for seed in 0..seeds {
        fuzz_one_seed(0xf00d_0000 + seed);
    }
}
