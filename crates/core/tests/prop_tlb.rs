//! Property tests for the software TLB in [`System::access`].
//!
//! The TLB caches page→frame translations; the kernel bumps its
//! translation epoch whenever an existing translation dies (`munmap`,
//! recolor migration). These tests exist so a stale-translation bug —
//! serving an access from a cached frame after the mapping changed —
//! fails the suite instead of silently corrupting timing results.

use tint_hw::machine::MachineConfig;
use tint_hw::rng::SplitMix64;
use tint_hw::types::{CoreId, Rw, VirtAddr, PAGE_SIZE};
use tintmalloc::prelude::*;

/// Warm the TLB for every page of `[base, base + len)` and return the
/// home node the memory system reported for each page.
fn touch_all(sys: &mut System, tid: Tid, base: VirtAddr, len: u64) -> Vec<tint_hw::types::NodeId> {
    let mut nodes = Vec::new();
    let mut off = 0;
    while off < len {
        let acc = sys
            .access(tid, base.offset(off), Rw::Read, 0)
            .expect("mapped page");
        nodes.push(acc.detail.home_node);
        off += PAGE_SIZE;
    }
    nodes
}

/// `free()` of a page-granular allocation munmaps it; a subsequent access
/// must fault with `Efault`, not hit a stale cached translation.
#[test]
fn munmap_invalidates_cached_translations() {
    let mut sys = System::boot(MachineConfig::opteron_6128());
    let tid = sys.spawn(CoreId(0));
    // > 2048 bytes → page-granular allocation, so free() really munmaps.
    let len = 4 * PAGE_SIZE;
    let buf = sys.malloc(tid, len).unwrap();

    // First pass faults the pages in; second pass is served from the TLB.
    touch_all(&mut sys, tid, buf, len);
    for off in (0..len).step_by(PAGE_SIZE as usize) {
        let acc = sys.access(tid, buf.offset(off), Rw::Read, 0).unwrap();
        assert!(!acc.faulted, "second touch must be fault-free");
    }

    sys.free(tid, buf).unwrap();
    for off in (0..len).step_by(PAGE_SIZE as usize) {
        assert_eq!(
            sys.access(tid, buf.offset(off), Rw::Read, 0),
            Err(Errno::Efault),
            "access after munmap must fault, not reuse a cached translation (offset {off})"
        );
    }
}

/// After the freed region's pages are handed to a *different* task, the
/// first task's re-allocation must observe its own new frames — the TLB
/// must not leak the dead translation across the malloc/free boundary.
#[test]
fn remalloc_after_free_sees_fresh_frames() {
    let mut sys = System::boot(MachineConfig::opteron_6128());
    let tid = sys.spawn(CoreId(0));
    let len = 8 * PAGE_SIZE;
    let buf = sys.malloc(tid, len).unwrap();
    touch_all(&mut sys, tid, buf, len);
    sys.free(tid, buf).unwrap();

    let buf2 = sys.malloc(tid, len).unwrap();
    touch_all(&mut sys, tid, buf2, len);
    for off in (0..len).step_by(PAGE_SIZE as usize) {
        let truth = sys.resolve(tid, buf2.offset(off)).unwrap();
        let acc = sys.access(tid, buf2.offset(off), Rw::Read, 0).unwrap();
        let want = sys.machine().mapping.decode_frame(truth.frame()).node;
        assert_eq!(
            acc.detail.home_node, want,
            "access must observe the page table's current frame (offset {off})"
        );
    }
}

/// Recoloring migrates pages to new frames; accesses immediately after
/// must see the migrated placement. A TLB that survives `recolor` keeps
/// routing accesses to the old node and fails the home-node assertions.
#[test]
fn recolor_invalidates_cached_translations() {
    let machine = MachineConfig::opteron_6128();
    let mut sys = System::boot(machine);
    // Core 12 lives on node 3; color the task with a node-0 bank color.
    let core = CoreId(12);
    let local = sys.machine().topology.node_of_core(core);
    let target = sys.machine().mapping.node_of_bank_color(BankColor(0));
    assert_ne!(local, target, "test needs a remote color target");

    let tid = sys.spawn(core);
    // NUMA-aware base policy so uncolored pages land node-local (the
    // default `Legacy` policy hands out the globally lowest frames, which
    // sit on node 0 and can coincidentally match bank color 0).
    sys.set_policy(tid, HeapPolicy::FirstTouch).unwrap();
    sys.set_mem_color(tid, BankColor(0)).unwrap();

    // Page-cache pages ignore the task's colors: first-touch, node-local,
    // and therefore in violation of the task's color set.
    let len = 16 * PAGE_SIZE;
    let buf = sys.malloc_pagecache(tid, len).unwrap();
    let before = touch_all(&mut sys, tid, buf, len);
    assert!(
        before.iter().all(|&n| n == local),
        "page-cache pages should start node-local: {before:?}"
    );

    let (migrated, _cycles) = sys.recolor(tid).unwrap();
    assert_eq!(
        migrated,
        len / PAGE_SIZE,
        "every violating page must migrate"
    );

    // Every access must now observe the migrated, node-0 frames. The TLB
    // is still warm with pre-migration entries; only epoch invalidation
    // makes this pass.
    let after = touch_all(&mut sys, tid, buf, len);
    assert!(
        after.iter().all(|&n| n == target),
        "post-recolor accesses must land on the color's node: {after:?}"
    );
    for off in (0..len).step_by(PAGE_SIZE as usize) {
        let truth = sys.resolve(tid, buf.offset(off)).unwrap();
        let want = sys.machine().mapping.decode_frame(truth.frame()).node;
        let acc = sys.access(tid, buf.offset(off), Rw::Read, 0).unwrap();
        assert_eq!(
            acc.detail.home_node, want,
            "stale translation at offset {off}"
        );
    }
}

/// Range recoloring invalidates only what it must, but accesses must stay
/// coherent for the whole buffer: migrated pages move, others don't.
#[test]
fn recolor_range_keeps_accesses_coherent() {
    let mut sys = System::boot(MachineConfig::opteron_6128());
    let core = CoreId(12);
    let local = sys.machine().topology.node_of_core(core);
    let target = sys.machine().mapping.node_of_bank_color(BankColor(0));
    let tid = sys.spawn(core);
    sys.set_policy(tid, HeapPolicy::FirstTouch).unwrap();
    sys.set_mem_color(tid, BankColor(0)).unwrap();

    let len = 16 * PAGE_SIZE;
    let buf = sys.malloc_pagecache(tid, len).unwrap();
    touch_all(&mut sys, tid, buf, len);

    // Migrate only the first half.
    let half = len / 2;
    let (migrated, _) = sys.recolor_range(tid, buf, half).unwrap();
    assert_eq!(migrated, half / PAGE_SIZE);

    let nodes = touch_all(&mut sys, tid, buf, len);
    for (i, &n) in nodes.iter().enumerate() {
        let want = if (i as u64) < half / PAGE_SIZE {
            target
        } else {
            local
        };
        assert_eq!(n, want, "page {i} on wrong node after range recolor");
    }
}

/// Assert that every page of `[base, base + len)` is resident and that a
/// timed access agrees with a fresh page-table walk — i.e. no access is
/// served from a stale cached translation.
fn assert_tlb_coherent(sys: &mut System, tid: Tid, base: VirtAddr, len: u64) {
    for off in (0..len).step_by(PAGE_SIZE as usize) {
        let va = base.offset(off);
        let truth = sys.resolve(tid, va).expect("page still mapped");
        let want = sys.machine().mapping.decode_frame(truth.frame()).node;
        let acc = sys.access(tid, va, Rw::Read, 0).unwrap();
        assert!(!acc.faulted, "page at offset {off} must stay resident");
        assert_eq!(acc.detail.home_node, want, "stale translation at {off}");
    }
}

/// A recolor that dies of genuine color exhaustion part-way through must
/// leave every translation coherent (no page lost, no stale TLB entry),
/// and the same recolor must succeed once the hoarded color is freed.
#[test]
fn failed_partial_recolor_is_coherent_and_retry_succeeds() {
    let mut sys = System::boot(MachineConfig::tiny());
    let pair = sys.machine().mapping.frames_per_color_pair();

    // The victim's pages are placed uncolored and node-local first (the
    // hog's later replenish sweeps nearly all of the buddy's free blocks
    // into the color matrix, where first-touch cannot reach them).
    let victim = sys.spawn(CoreId(1));
    sys.set_policy(victim, HeapPolicy::FirstTouch).unwrap();
    let len = 16 * PAGE_SIZE;
    let buf = sys.malloc_pagecache(victim, len).unwrap();
    touch_all(&mut sys, victim, buf, len);

    // A hog owns color pair (0,0) and drains its supply to a few pages.
    let hog = sys.spawn(CoreId(0));
    sys.set_mem_color(hog, BankColor(0)).unwrap();
    sys.set_llc_color(hog, LlcColor(0)).unwrap();
    let hog_len = (pair - 4) * PAGE_SIZE;
    let hog_buf = sys.malloc(hog, hog_len).unwrap();
    touch_all(&mut sys, hog, hog_buf, hog_len);

    // Now the victim adopts the hoarded pair.
    sys.set_mem_color(victim, BankColor(0)).unwrap();
    sys.set_llc_color(victim, LlcColor(0)).unwrap();

    // Migration runs out of (0,0) pages part-way through.
    assert_eq!(sys.recolor(victim), Err(Errno::Enomem));
    assert_tlb_coherent(&mut sys, victim, buf, len);
    sys.check_invariants();

    // Freeing the hog returns its pages to the (0,0) color list; the
    // retried migration completes and every page conforms.
    sys.free(hog, hog_buf).unwrap();
    let (migrated, _) = sys.recolor(victim).unwrap();
    assert!(migrated > 0, "retry migrates the remaining pages");
    assert_tlb_coherent(&mut sys, victim, buf, len);
    for off in (0..len).step_by(PAGE_SIZE as usize) {
        let truth = sys.resolve(victim, buf.offset(off)).unwrap();
        let d = sys.machine().mapping.decode_frame(truth.frame());
        assert_eq!(d.bank_color, BankColor(0), "offset {off} conforms");
        assert_eq!(d.llc_color, LlcColor(0), "offset {off} conforms");
    }
    sys.check_invariants();
}

/// Same contract when the mid-migration failure is an *injected* page-copy
/// fault rather than true exhaustion: the transactional rollback keeps the
/// TLB coherent, and the migration completes after the weather clears.
#[test]
fn injected_page_copy_fault_keeps_tlb_coherent() {
    let mut sys = System::boot(MachineConfig::tiny());
    let tid = sys.spawn(CoreId(1));
    sys.set_policy(tid, HeapPolicy::FirstTouch).unwrap();
    let len = 8 * PAGE_SIZE;
    let buf = sys.malloc_pagecache(tid, len).unwrap();
    touch_all(&mut sys, tid, buf, len);
    sys.set_mem_color(tid, BankColor(0)).unwrap();

    sys.set_fault_plan(Some(FaultPlan::new(5).with_rate(FaultSite::PageCopy, 1000)));
    assert_eq!(sys.recolor(tid), Err(Errno::Enomem));
    assert_tlb_coherent(&mut sys, tid, buf, len);
    sys.check_invariants();

    sys.set_fault_plan(None);
    let (migrated, _) = sys.recolor(tid).unwrap();
    assert!(migrated > 0, "migration completes once injection is off");
    assert_tlb_coherent(&mut sys, tid, buf, len);
    sys.check_invariants();
}

/// Seeded property loop: under a random mix of malloc / touch / free /
/// recolor, every access's observed home node matches a fresh page-table
/// walk, and every freed address faults. This is the invariant the TLB
/// must preserve no matter how translations churn.
#[test]
fn random_op_stream_never_observes_stale_translations() {
    let mut rng = SplitMix64::new(0x7e5_7db);
    for case in 0..8u64 {
        let mut sys = System::boot(MachineConfig::opteron_6128());
        let core = CoreId((case % 16) as usize);
        let tid = sys.spawn(core);
        sys.set_mem_color(tid, BankColor(0)).unwrap();

        let mut live: Vec<(VirtAddr, u64)> = Vec::new();
        let mut dead: Vec<VirtAddr> = Vec::new();
        for _ in 0..40 {
            match rng.next_u64() % 5 {
                // malloc a few pages (page-granular, uncolored via the
                // page cache half the time to create migration targets).
                0 => {
                    let pages = 1 + rng.next_u64() % 4;
                    let len = pages * PAGE_SIZE;
                    let buf = if rng.next_u64().is_multiple_of(2) {
                        sys.malloc_pagecache(tid, len).unwrap()
                    } else {
                        sys.malloc(tid, len).unwrap()
                    };
                    live.push((buf, len));
                }
                // free a live buffer.
                1 if !live.is_empty() => {
                    let i = (rng.next_u64() % live.len() as u64) as usize;
                    let (buf, _) = live.swap_remove(i);
                    sys.free(tid, buf).unwrap();
                    dead.push(buf);
                }
                // recolor everything resident.
                2 => {
                    sys.recolor(tid).unwrap();
                }
                // touch a random live page and check against ground truth.
                _ if !live.is_empty() => {
                    let i = (rng.next_u64() % live.len() as u64) as usize;
                    let (buf, len) = live[i];
                    let off = (rng.next_u64() % (len / PAGE_SIZE)) * PAGE_SIZE;
                    let va = buf.offset(off);
                    let truth = sys.resolve(tid, va).unwrap();
                    let want = sys.machine().mapping.decode_frame(truth.frame()).node;
                    let acc = sys.access(tid, va, Rw::Read, 0).unwrap();
                    assert_eq!(
                        acc.detail.home_node, want,
                        "case {case}: stale node for {va}"
                    );
                }
                _ => {}
            }
        }
        for buf in dead {
            assert_eq!(
                sys.access(tid, buf, Rw::Read, 0),
                Err(Errno::Efault),
                "case {case}: freed address {buf} must fault"
            );
        }
    }
}
