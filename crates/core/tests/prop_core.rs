//! Property tests for the tintmalloc crate: heap correctness under random
//! malloc/free traffic and planner invariants for arbitrary pinnings.

use proptest::prelude::*;
use tint_hw::machine::MachineConfig;
use tint_hw::types::CoreId;
use tintmalloc::colors::ColorScheme;
use tintmalloc::prelude::*;

#[derive(Debug, Clone)]
enum HeapOp {
    Malloc(u64),
    FreeNth(usize),
    ReallocNth(usize, u64),
}

fn arb_heap_ops() -> impl Strategy<Value = Vec<HeapOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..20_000).prop_map(HeapOp::Malloc),
            any::<usize>().prop_map(HeapOp::FreeNth),
            (any::<usize>(), 1u64..20_000).prop_map(|(n, s)| HeapOp::ReallocNth(n, s)),
        ],
        1..60,
    )
}

proptest! {
    /// Live allocations never overlap and all heap operations round-trip.
    #[test]
    fn heap_allocations_never_overlap(ops in arb_heap_ops()) {
        let mut sys = System::boot(MachineConfig::tiny());
        let t = sys.spawn(CoreId(0));
        // (addr, requested size)
        let mut live: Vec<(VirtAddr, u64)> = Vec::new();
        for op in ops {
            match op {
                HeapOp::Malloc(size) => {
                    let a = sys.malloc(t, size).unwrap();
                    live.push((a, size));
                }
                HeapOp::FreeNth(n) => {
                    if !live.is_empty() {
                        let (a, _) = live.remove(n % live.len());
                        sys.free(t, a).unwrap();
                    }
                }
                HeapOp::ReallocNth(n, size) => {
                    if !live.is_empty() {
                        let idx = n % live.len();
                        let (a, _) = live[idx];
                        let b = sys.realloc(t, a, size).unwrap();
                        live[idx] = (b, size);
                    }
                }
            }
            // No two live allocations overlap (compare by requested size).
            let mut spans: Vec<(u64, u64)> =
                live.iter().map(|(a, s)| (a.0, a.0 + s)).collect();
            spans.sort();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
            }
        }
        // Everything freed → heap reports zero in use.
        for (a, _) in live.drain(..) {
            sys.free(t, a).unwrap();
        }
        prop_assert_eq!(sys.heap(t).unwrap().bytes_in_use(), 0);
        prop_assert_eq!(sys.heap(t).unwrap().live_allocations(), 0);
    }

    /// Color plans: per-thread LLC colors are disjoint for every scheme with
    /// private LLC colors; MEM-colored schemes keep every bank color on the
    /// owning thread's node; all colors are in range.
    #[test]
    fn plans_are_well_formed(n_threads in 1usize..16, scheme_idx in 0usize..9) {
        let m = MachineConfig::opteron_6128();
        let cores: Vec<CoreId> = (0..n_threads).map(CoreId).collect();
        let scheme = ColorScheme::ALL[scheme_idx];
        let plan = scheme.plan(&m, &cores);
        prop_assert_eq!(plan.len(), n_threads);
        for (i, p) in plan.iter().enumerate() {
            for &bc in &p.mem {
                prop_assert!(bc.index() < m.mapping.bank_color_count());
            }
            for &lc in &p.llc {
                prop_assert!(lc.index() < m.mapping.llc_color_count());
            }
            // Controller-awareness of the Tint schemes (not BPM, which is
            // deliberately node-oblivious).
            if matches!(
                scheme,
                ColorScheme::MemOnly
                    | ColorScheme::MemLlc
                    | ColorScheme::MemLlcPart
                    | ColorScheme::LlcMemPart
            ) {
                let node = m.topology.node_of_core(cores[i]);
                for &bc in &p.mem {
                    prop_assert_eq!(m.mapping.node_of_bank_color(bc), node);
                }
            }
        }
        // Private-LLC schemes: pairwise disjoint LLC colors.
        if matches!(
            scheme,
            ColorScheme::LlcOnly | ColorScheme::MemLlc | ColorScheme::LlcMemPart | ColorScheme::Bpm
        ) {
            let mut seen = std::collections::HashSet::new();
            for p in &plan {
                for &lc in &p.llc {
                    prop_assert!(seen.insert(lc), "LLC color shared between threads");
                }
            }
        }
        // Private-bank schemes: pairwise disjoint bank colors.
        if matches!(
            scheme,
            ColorScheme::MemOnly
                | ColorScheme::MemLlc
                | ColorScheme::MemLlcPart
                | ColorScheme::Bpm
                | ColorScheme::Palloc
        ) {
            let mut seen = std::collections::HashSet::new();
            for p in &plan {
                for &bc in &p.mem {
                    prop_assert!(seen.insert(bc), "bank color shared between threads");
                }
            }
        }
    }

    /// Applying any plan and allocating always yields pages matching the
    /// plan's constraints.
    #[test]
    fn applied_plans_constrain_pages(scheme_idx in 0usize..9, pages in 1u64..12) {
        let m = MachineConfig::opteron_6128();
        let cores = vec![CoreId(0), CoreId(5), CoreId(10), CoreId(15)];
        let scheme = ColorScheme::ALL[scheme_idx];
        let plan = scheme.plan(&m, &cores);
        let mut sys = System::boot(m);
        let leader = sys.spawn(cores[0]);
        let mut tids = vec![leader];
        for &c in &cores[1..] {
            tids.push(sys.spawn_thread(c, leader).unwrap());
        }
        for (tid, p) in tids.iter().zip(&plan) {
            sys.apply_colors(*tid, p).unwrap();
        }
        for (i, &tid) in tids.iter().enumerate() {
            let a = sys.malloc(tid, pages * 4096).unwrap();
            for pg in 0..pages {
                let pa = sys.resolve(tid, a.offset(pg * 4096)).unwrap();
                let d = sys.machine().mapping.decode_frame(pa.frame());
                if !plan[i].mem.is_empty() {
                    prop_assert!(plan[i].mem.contains(&d.bank_color), "thread {i}");
                }
                if !plan[i].llc.is_empty() {
                    prop_assert!(plan[i].llc.contains(&d.llc_color), "thread {i}");
                }
            }
        }
    }
}
