//! Property tests for the tintmalloc crate: heap correctness under random
//! malloc/free traffic and planner invariants for arbitrary pinnings.
//!
//! Seeded-loop randomized tests over the workspace's deterministic PRNG —
//! no external property-testing framework required.

use tint_hw::machine::MachineConfig;
use tint_hw::rng::SplitMix64;
use tint_hw::types::CoreId;
use tintmalloc::colors::ColorScheme;
use tintmalloc::prelude::*;

const CASES: u64 = 40;

#[derive(Debug, Clone)]
enum HeapOp {
    Malloc(u64),
    FreeNth(usize),
    ReallocNth(usize, u64),
}

fn arb_heap_ops(rng: &mut SplitMix64) -> Vec<HeapOp> {
    let n = rng.gen_range_in(1, 60);
    (0..n)
        .map(|_| match rng.gen_range(3) {
            0 => HeapOp::Malloc(rng.gen_range_in(1, 20_000)),
            1 => HeapOp::FreeNth(rng.next_u64() as usize),
            _ => HeapOp::ReallocNth(rng.next_u64() as usize, rng.gen_range_in(1, 20_000)),
        })
        .collect()
}

/// Live allocations never overlap and all heap operations round-trip.
#[test]
fn heap_allocations_never_overlap() {
    let mut rng = SplitMix64::new(0x4ea9);
    for _ in 0..CASES {
        let ops = arb_heap_ops(&mut rng);
        let mut sys = System::boot(MachineConfig::tiny());
        let t = sys.spawn(CoreId(0));
        // (addr, requested size)
        let mut live: Vec<(VirtAddr, u64)> = Vec::new();
        for op in ops {
            match op {
                HeapOp::Malloc(size) => {
                    let a = sys.malloc(t, size).unwrap();
                    live.push((a, size));
                }
                HeapOp::FreeNth(n) => {
                    if !live.is_empty() {
                        let (a, _) = live.remove(n % live.len());
                        sys.free(t, a).unwrap();
                    }
                }
                HeapOp::ReallocNth(n, size) => {
                    if !live.is_empty() {
                        let idx = n % live.len();
                        let (a, _) = live[idx];
                        let b = sys.realloc(t, a, size).unwrap();
                        live[idx] = (b, size);
                    }
                }
            }
            // No two live allocations overlap (compare by requested size).
            let mut spans: Vec<(u64, u64)> = live.iter().map(|(a, s)| (a.0, a.0 + s)).collect();
            spans.sort();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
            }
        }
        // Everything freed → heap reports zero in use.
        for (a, _) in live.drain(..) {
            sys.free(t, a).unwrap();
        }
        assert_eq!(sys.heap(t).unwrap().bytes_in_use(), 0);
        assert_eq!(sys.heap(t).unwrap().live_allocations(), 0);
    }
}

/// Color plans: per-thread LLC colors are disjoint for every scheme with
/// private LLC colors; MEM-colored schemes keep every bank color on the
/// owning thread's node; all colors are in range.
#[test]
fn plans_are_well_formed() {
    let m = MachineConfig::opteron_6128();
    for n_threads in 1usize..16 {
        for scheme in ColorScheme::ALL {
            let cores: Vec<CoreId> = (0..n_threads).map(CoreId).collect();
            let plan = scheme.plan(&m, &cores);
            assert_eq!(plan.len(), n_threads);
            for (i, p) in plan.iter().enumerate() {
                for &bc in &p.mem {
                    assert!(bc.index() < m.mapping.bank_color_count());
                }
                for &lc in &p.llc {
                    assert!(lc.index() < m.mapping.llc_color_count());
                }
                // Controller-awareness of the Tint schemes (not BPM, which is
                // deliberately node-oblivious).
                if matches!(
                    scheme,
                    ColorScheme::MemOnly
                        | ColorScheme::MemLlc
                        | ColorScheme::MemLlcPart
                        | ColorScheme::LlcMemPart
                ) {
                    let node = m.topology.node_of_core(cores[i]);
                    for &bc in &p.mem {
                        assert_eq!(m.mapping.node_of_bank_color(bc), node);
                    }
                }
            }
            // Private-LLC schemes: pairwise disjoint LLC colors.
            if matches!(
                scheme,
                ColorScheme::LlcOnly
                    | ColorScheme::MemLlc
                    | ColorScheme::LlcMemPart
                    | ColorScheme::Bpm
            ) {
                let mut seen = std::collections::HashSet::new();
                for p in &plan {
                    for &lc in &p.llc {
                        assert!(seen.insert(lc), "LLC color shared between threads");
                    }
                }
            }
            // Private-bank schemes: pairwise disjoint bank colors.
            if matches!(
                scheme,
                ColorScheme::MemOnly
                    | ColorScheme::MemLlc
                    | ColorScheme::MemLlcPart
                    | ColorScheme::Bpm
                    | ColorScheme::Palloc
            ) {
                let mut seen = std::collections::HashSet::new();
                for p in &plan {
                    for &bc in &p.mem {
                        assert!(seen.insert(bc), "bank color shared between threads");
                    }
                }
            }
        }
    }
}

/// Applying any plan and allocating always yields pages matching the
/// plan's constraints.
#[test]
fn applied_plans_constrain_pages() {
    let mut rng = SplitMix64::new(0x91a);
    for scheme in ColorScheme::ALL {
        let pages = rng.gen_range_in(1, 12);
        let m = MachineConfig::opteron_6128();
        let cores = vec![CoreId(0), CoreId(5), CoreId(10), CoreId(15)];
        let plan = scheme.plan(&m, &cores);
        let mut sys = System::boot(m);
        let leader = sys.spawn(cores[0]);
        let mut tids = vec![leader];
        for &c in &cores[1..] {
            tids.push(sys.spawn_thread(c, leader).unwrap());
        }
        for (tid, p) in tids.iter().zip(&plan) {
            sys.apply_colors(*tid, p).unwrap();
        }
        for (i, &tid) in tids.iter().enumerate() {
            let a = sys.malloc(tid, pages * 4096).unwrap();
            for pg in 0..pages {
                let pa = sys.resolve(tid, a.offset(pg * 4096)).unwrap();
                let d = sys.machine().mapping.decode_frame(pa.frame());
                if !plan[i].mem.is_empty() {
                    assert!(plan[i].mem.contains(&d.bank_color), "thread {i}");
                }
                if !plan[i].llc.is_empty() {
                    assert!(plan[i].llc.contains(&d.llc_color), "thread {i}");
                }
            }
        }
    }
}
