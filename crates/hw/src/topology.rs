//! NUMA topology: sockets, nodes (memory controllers), cores, hop distances.
//!
//! The paper's platform (§IV): two AMD Opteron 6128 packages, four NUMA nodes
//! (memory controllers), four cores per node, sixteen cores total. Cores
//! within a node are 1 hop from their local controller, cores in the other
//! node of the same socket are 2 hops away, and cores in the other socket are
//! 3 hops away. We store hops as *extra* hops beyond local (0 = local).

use crate::types::{CoreId, NodeId, SocketId};

/// The machine's processor/memory-node layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Number of processor packages.
    pub sockets: usize,
    /// NUMA nodes (memory controllers) per socket.
    pub nodes_per_socket: usize,
    /// Cores per NUMA node.
    pub cores_per_node: usize,
}

impl Topology {
    /// Create a topology, validating that every level is non-empty.
    pub fn new(sockets: usize, nodes_per_socket: usize, cores_per_node: usize) -> Self {
        assert!(sockets > 0 && nodes_per_socket > 0 && cores_per_node > 0);
        Self {
            sockets,
            nodes_per_socket,
            cores_per_node,
        }
    }

    /// Total number of NUMA nodes (= memory controllers).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.sockets * self.nodes_per_socket
    }

    /// Total number of cores.
    #[inline]
    pub fn core_count(&self) -> usize {
        self.node_count() * self.cores_per_node
    }

    /// The node a core belongs to (cores are numbered node-major).
    #[inline]
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        assert!(core.index() < self.core_count(), "core {core} out of range");
        NodeId(core.index() / self.cores_per_node)
    }

    /// The socket a node belongs to.
    #[inline]
    pub fn socket_of_node(&self, node: NodeId) -> SocketId {
        assert!(node.index() < self.node_count(), "node {node} out of range");
        SocketId(node.index() / self.nodes_per_socket)
    }

    /// The socket a core belongs to.
    #[inline]
    pub fn socket_of_core(&self, core: CoreId) -> SocketId {
        self.socket_of_node(self.node_of_core(core))
    }

    /// Cores local to `node`, in id order.
    pub fn cores_of_node(&self, node: NodeId) -> impl Iterator<Item = CoreId> + '_ {
        assert!(node.index() < self.node_count(), "node {node} out of range");
        let lo = node.index() * self.cores_per_node;
        (lo..lo + self.cores_per_node).map(CoreId)
    }

    /// All cores in id order.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.core_count()).map(CoreId)
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId)
    }

    /// Extra interconnect hops from a core to a memory node:
    /// `0` = local node, `1` = different node on the same socket,
    /// `2` = node on a different socket.
    ///
    /// (The paper counts absolute hops 1/2/3; we count hops *beyond local*
    /// so the local case contributes no extra interconnect latency.)
    #[inline]
    pub fn hops(&self, core: CoreId, node: NodeId) -> u32 {
        let cn = self.node_of_core(core);
        if cn == node {
            0
        } else if self.socket_of_node(cn) == self.socket_of_node(node) {
            1
        } else {
            2
        }
    }

    /// True when `core` is local to `node`.
    #[inline]
    pub fn is_local(&self, core: CoreId, node: NodeId) -> bool {
        self.node_of_core(core) == node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opteron() -> Topology {
        Topology::new(2, 2, 4)
    }

    #[test]
    fn opteron_counts() {
        let t = opteron();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.core_count(), 16);
    }

    #[test]
    fn node_major_core_numbering() {
        let t = opteron();
        assert_eq!(t.node_of_core(CoreId(0)), NodeId(0));
        assert_eq!(t.node_of_core(CoreId(3)), NodeId(0));
        assert_eq!(t.node_of_core(CoreId(4)), NodeId(1));
        assert_eq!(t.node_of_core(CoreId(15)), NodeId(3));
    }

    #[test]
    fn sockets() {
        let t = opteron();
        assert_eq!(t.socket_of_node(NodeId(0)), SocketId(0));
        assert_eq!(t.socket_of_node(NodeId(1)), SocketId(0));
        assert_eq!(t.socket_of_node(NodeId(2)), SocketId(1));
        assert_eq!(t.socket_of_node(NodeId(3)), SocketId(1));
        assert_eq!(t.socket_of_core(CoreId(9)), SocketId(1));
    }

    #[test]
    fn hop_matrix_matches_paper() {
        let t = opteron();
        // Local: 0 extra hops.
        assert_eq!(t.hops(CoreId(0), NodeId(0)), 0);
        // Same socket, other node: 1 extra hop.
        assert_eq!(t.hops(CoreId(0), NodeId(1)), 1);
        // Other socket: 2 extra hops.
        assert_eq!(t.hops(CoreId(0), NodeId(2)), 2);
        assert_eq!(t.hops(CoreId(0), NodeId(3)), 2);
        // Symmetric case from socket 1.
        assert_eq!(t.hops(CoreId(12), NodeId(3)), 0);
        assert_eq!(t.hops(CoreId(12), NodeId(2)), 1);
        assert_eq!(t.hops(CoreId(12), NodeId(0)), 2);
    }

    #[test]
    fn cores_of_node_covers_all_cores_once() {
        let t = opteron();
        let mut seen = vec![false; t.core_count()];
        for n in t.nodes() {
            for c in t.cores_of_node(n) {
                assert!(!seen[c.index()], "core listed twice");
                seen[c.index()] = true;
                assert_eq!(t.node_of_core(c), n);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn is_local_consistent_with_hops() {
        let t = opteron();
        for c in t.cores() {
            for n in t.nodes() {
                assert_eq!(t.is_local(c, n), t.hops(c, n) == 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        opteron().node_of_core(CoreId(16));
    }

    #[test]
    fn single_node_machine_all_local() {
        let t = Topology::new(1, 1, 4);
        for c in t.cores() {
            assert_eq!(t.hops(c, NodeId(0)), 0);
        }
    }
}
