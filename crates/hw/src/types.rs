//! Strongly-typed identifiers shared across the whole workspace.
//!
//! The simulator deals in many small integers (core ids, node ids, physical
//! addresses, frame numbers, colors). Mixing them up is the classic source of
//! silent simulation bugs, so each one is a newtype.

use std::fmt;

/// Base-2 logarithm of the page size (4 KiB pages, as in the paper).
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw integer value.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }

            /// The value as a `usize` index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_newtype!(
    /// A hardware core (execution context). Cores are numbered globally
    /// across the machine, node-major: cores `[n*cpn, (n+1)*cpn)` belong to
    /// node `n` where `cpn` is cores-per-node.
    CoreId,
    usize
);
id_newtype!(
    /// A NUMA node = one memory controller and its local DRAM (paper §II.B).
    NodeId,
    usize
);
id_newtype!(
    /// A physical processor package.
    SocketId,
    usize
);
id_newtype!(
    /// A DRAM channel within a controller.
    ChannelId,
    usize
);
id_newtype!(
    /// A DRAM rank within a channel.
    RankId,
    usize
);
id_newtype!(
    /// A DRAM bank within a rank.
    BankId,
    usize
);
id_newtype!(
    /// A *bank color*: the flattened (node, channel, rank, bank) coordinate
    /// produced by the paper's equation (1). On the Opteron 6128 preset there
    /// are 128 of these; colors `[32n, 32(n+1))` live on node `n`.
    BankColor,
    u16
);
id_newtype!(
    /// An *LLC color*: the value of the physical-address bits that select a
    /// disjoint region of last-level-cache sets (bits 12–16 on the Opteron
    /// preset, 32 colors).
    LlcColor,
    u16
);

/// A physical (machine) address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysAddr(pub u64);

/// A virtual address within one simulated task's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

/// A physical page-frame number (`PhysAddr >> PAGE_SHIFT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameNumber(pub u64);

/// A virtual page number (`VirtAddr >> PAGE_SHIFT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageNumber(pub u64);

impl PhysAddr {
    /// The frame containing this address.
    #[inline]
    pub fn frame(self) -> FrameNumber {
        FrameNumber(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

impl VirtAddr {
    /// The virtual page containing this address.
    #[inline]
    pub fn page(self) -> PageNumber {
        PageNumber(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Address `bytes` further along.
    #[inline]
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl FrameNumber {
    /// First byte of the frame.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// Physical address at `offset` within the frame.
    #[inline]
    pub fn at(self, offset: u64) -> PhysAddr {
        debug_assert!(offset < PAGE_SIZE);
        PhysAddr((self.0 << PAGE_SHIFT) | offset)
    }
}

impl PageNumber {
    /// First byte of the page.
    #[inline]
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl fmt::Display for FrameNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rw {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl Rw {
    /// True for [`Rw::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, Rw::Write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_frame_and_offset_roundtrip() {
        let a = PhysAddr(0xdead_beef);
        assert_eq!(a.frame().at(a.page_offset()), a);
    }

    #[test]
    fn frame_base_is_page_aligned() {
        let f = FrameNumber(123);
        assert_eq!(f.base().page_offset(), 0);
        assert_eq!(f.base().frame(), f);
    }

    #[test]
    fn virt_addr_page_roundtrip() {
        let v = VirtAddr(0x1234_5678);
        assert_eq!(v.page().base().0 + v.page_offset(), v.0);
    }

    #[test]
    fn virt_addr_offset_advances() {
        let v = VirtAddr(0x1000);
        assert_eq!(v.offset(0x234), VirtAddr(0x1234));
    }

    #[test]
    fn newtype_display_is_tagged() {
        assert_eq!(CoreId(3).to_string(), "CoreId(3)");
        assert_eq!(PhysAddr(0x10).to_string(), "pa:0x10");
        assert_eq!(VirtAddr(0x10).to_string(), "va:0x10");
        assert_eq!(FrameNumber(0x10).to_string(), "pfn:0x10");
    }

    #[test]
    fn rw_is_write() {
        assert!(Rw::Write.is_write());
        assert!(!Rw::Read.is_write());
    }

    #[test]
    fn ids_index() {
        assert_eq!(NodeId(2).index(), 2);
        assert_eq!(BankColor(127).index(), 127);
        assert_eq!(LlcColor(31).raw(), 31);
    }
}
