//! # tint-hw — machine model for the TintMalloc reproduction
//!
//! This crate models the *hardware facts* that the TintMalloc paper (Pan,
//! Gownivaripalli, Mueller — IPDPS 2016) depends on:
//!
//! * **Topology** ([`topology`]): sockets, NUMA nodes (= memory controllers),
//!   cores, and the hop-distance matrix between cores and nodes.
//! * **Physical address bit mapping** ([`addrmap`]): how a physical address
//!   decomposes into node / channel / rank / bank / row / column fields and
//!   the LLC color bits, including the paper's bank-color formula (eq. 1).
//! * **PCI configuration space emulation** ([`pci`]): the BIOS-programmed
//!   registers (DRAM base/limit, controller select, CS base, bank address
//!   mapping) from which TintMalloc derives the bit mapping at boot
//!   (paper §III.A).
//! * **Machine presets** ([`machine`]): the dual-socket AMD Opteron 6128 of
//!   the paper's evaluation plus small configurations for tests.
//!
//! Everything downstream (the DRAM simulator, the cache hierarchy, the
//! simulated kernel, and the TintMalloc allocator itself) is parameterised by
//! [`machine::MachineConfig`].
//!
//! ## Example
//!
//! ```
//! use tint_hw::machine::MachineConfig;
//! use tint_hw::types::PhysAddr;
//!
//! let m = MachineConfig::opteron_6128();
//! assert_eq!(m.mapping.bank_color_count(), 128); // paper: 2^7 bank colors
//! assert_eq!(m.mapping.llc_color_count(), 32);   // paper: 2^5 LLC colors
//!
//! let d = m.mapping.decode(PhysAddr(0x4030_2000));
//! assert_eq!(m.mapping.decode_frame(PhysAddr(0x4030_2000).frame()).bank_color, d.bank_color);
//! ```

pub mod addrmap;
pub mod decoder;
pub mod machine;
pub mod pci;
pub mod profile;
pub mod rng;
pub mod topology;
pub mod types;

pub use addrmap::{AddressMapping, DecodedAddr, DecodedFrame};
pub use machine::MachineConfig;
pub use topology::Topology;
pub use types::{
    BankColor, BankId, ChannelId, CoreId, FrameNumber, LlcColor, NodeId, PageNumber, PhysAddr,
    RankId, Rw, SocketId, VirtAddr, PAGE_SHIFT, PAGE_SIZE,
};
