//! Minimal deterministic pseudo-random number generator.
//!
//! The simulator must be bit-reproducible from a seed and must build without
//! any external crates, so this is a self-contained SplitMix64 generator
//! (Steele, Lea & Flood — "Fast splittable pseudorandom number generators",
//! OOPSLA 2014). It is used by the workload emulators and by the seeded-loop
//! property tests; it is *not* cryptographic.

/// SplitMix64: a tiny, fast, full-period (2^64) generator.
///
/// Identical seeds always produce identical streams, on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via the multiply-shift reduction
    /// (Lemire, 2016). `bound` must be non-zero.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    #[inline]
    pub fn gen_range_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.gen_range(hi - lo)
    }

    /// Coin flip with probability `num/denom` of `true`.
    #[inline]
    pub fn gen_ratio(&mut self, num: u64, denom: u64) -> bool {
        self.gen_range(denom) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_reference_values() {
        // Standard SplitMix64 golden values for seed 0; pins the algorithm
        // so a refactor cannot silently change every workload's stream.
        let mut r2 = SplitMix64::new(0);
        assert_eq!(r2.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r2.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r2.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 7, 64, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
        for _ in 0..200 {
            let v = r.gen_range_in(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
