//! Opt-in wall-clock self-profiling for the simulation pipeline.
//!
//! The per-access pipeline spans four crates (SPMD engine → software TLB →
//! cache hierarchy → DRAM), so a conventional profiler attributes most of
//! the time to whatever happens to be inlined where. This module gives the
//! pipeline a handful of *component* counters — scheduler, TLB/translate,
//! cache hierarchy, DRAM, frame decode — that the `repro --profile` flag
//! turns on, so perf PRs can show where the cycles went.
//!
//! Design constraints:
//!
//! * **Near-zero cost when disabled** (the default): every instrumentation
//!   site is one relaxed atomic bool load and a predictable branch; no
//!   `Instant::now()` is taken.
//! * **Process-global**: counters are atomics so the parallel repetition
//!   driver in `tint-bench` aggregates across host threads for free.
//! * **Self-measured, not exact**: when enabled, the two clock reads per
//!   site add overhead of their own (tens of nanoseconds per access), so
//!   absolute numbers are inflated; the *shares* are what to read. This is
//!   why profiling is opt-in rather than always-on, and why figure output
//!   is only guaranteed byte-identical with profiling off (the tables
//!   themselves never change, but wall-clock records do).
//!
//! Component nesting: `Engine` contains `Presort` (the batch MLP
//! prefetch pass) and `Access` (everything the engine spends inside
//! `System::access`); `Access` contains `Tlb` (translation, including
//! page faults), `Hierarchy`, `Dram`, and `Decode`. In sampled engine
//! mode `Access` additionally splits into `Warmup` (estimated accesses)
//! vs `Detailed` (exact measurement windows). Consumers derive
//! `scheduler = Engine − Presort − Access` and
//! `access other = Access − (Tlb + Hierarchy + Dram + Decode)`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// One measured component of the simulation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// Whole SPMD engine sections (scheduling + everything below).
    Engine = 0,
    /// `System::access` calls as seen from the engine.
    Access = 1,
    /// Translation: software-TLB lookup plus kernel translate/page fault.
    Tlb = 2,
    /// Cache-hierarchy walk (L1/L2/LLC, including the MRU line filter).
    Hierarchy = 3,
    /// DRAM timing (bank state machine, row-buffer model).
    Dram = 4,
    /// Physical frame → home-node decode.
    Decode = 5,
    /// Batch MLP presort: collecting, sorting, and issuing tag-stride
    /// prefetches for a refilled op batch (inside `Engine`).
    Presort = 6,
    /// Sampled engine mode: estimated warm-up accesses (inside `Access`).
    Warmup = 7,
    /// Sampled engine mode: exact detailed-window accesses (inside
    /// `Access`).
    Detailed = 8,
}

/// Number of components in [`Component`].
pub const COMPONENT_COUNT: usize = 9;

/// Stable lower-case names, indexable by `Component as usize`.
pub const COMPONENT_NAMES: [&str; COMPONENT_COUNT] = [
    "engine",
    "access",
    "tlb",
    "hierarchy",
    "dram",
    "decode",
    "presort",
    "warmup",
    "detailed",
];

static ENABLED: AtomicBool = AtomicBool::new(false);
static NANOS: [AtomicU64; COMPONENT_COUNT] = [const { AtomicU64::new(0) }; COMPONENT_COUNT];

/// Is profiling currently on? Hot paths branch on this; it is a relaxed
/// load, so flipping it mid-run reaches other threads eventually (the
/// harness flips it once, before any simulation starts).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn component profiling on or off (process-global).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Zero all component counters.
pub fn reset() {
    for c in &NANOS {
        c.store(0, Ordering::Relaxed);
    }
}

/// Current accumulated nanoseconds per component.
pub fn snapshot() -> [u64; COMPONENT_COUNT] {
    let mut out = [0u64; COMPONENT_COUNT];
    for (o, c) in out.iter_mut().zip(&NANOS) {
        *o = c.load(Ordering::Relaxed);
    }
    out
}

/// Start timing a section if profiling is enabled. Pair with [`stop`].
#[inline(always)]
pub fn start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Charge the elapsed time since [`start`] to `component` (no-op when the
/// matching `start` returned `None`).
#[inline(always)]
pub fn stop(component: Component, started: Option<Instant>) {
    if let Some(t0) = started {
        NANOS[component as usize].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_start_is_none_and_stop_is_noop() {
        set_enabled(false);
        reset();
        let t = start();
        assert!(t.is_none());
        stop(Component::Engine, t);
        assert_eq!(snapshot(), [0; COMPONENT_COUNT]);
    }

    #[test]
    fn enabled_accumulates_into_the_right_slot() {
        set_enabled(true);
        reset();
        let t = start();
        assert!(t.is_some());
        std::thread::sleep(std::time::Duration::from_millis(2));
        stop(Component::Dram, t);
        let s = snapshot();
        assert!(s[Component::Dram as usize] >= 1_000_000, "~2ms recorded");
        assert_eq!(s[Component::Engine as usize], 0);
        set_enabled(false);
        reset();
    }

    #[test]
    fn names_cover_all_components() {
        assert_eq!(COMPONENT_NAMES.len(), COMPONENT_COUNT);
        assert_eq!(COMPONENT_NAMES[Component::Decode as usize], "decode");
    }
}
