//! Emulated PCI configuration space for boot-time mapping discovery.
//!
//! The paper (§III.A) derives the address-translation bits at the late phase
//! of booting Linux by reading PCI registers programmed by the BIOS:
//!
//! * **DRAM base / limit system address registers** — which address range
//!   (and, with node interleaving enabled, which address *bits*) select the
//!   memory node / controller;
//! * **DRAM controller select low register** — the channel-select bit;
//! * **CS (chip-select) base address registers** — rank and bank bits;
//! * **bank address mapping register** — the row/column split.
//!
//! We reproduce that flow: [`PciConfigSpace`] is a bag of typed registers, a
//! simulated BIOS programs it from an [`AddressMapping`]
//! ([`PciConfigSpace::programmed_by_bios`]), and the simulated kernel's boot
//! code re-derives the mapping from registers alone ([`derive_mapping`]). A
//! round-trip test pins that derivation to the BIOS truth, and inconsistent
//! register contents are rejected the way real boot code must.

use crate::addrmap::AddressMapping;
use std::fmt;

/// DRAM base/limit register pair for one node, in the AMD style: with node
/// interleaving enabled, `intlv_en` is a mask of how many low node-select
/// bits participate and `intlv_sel` is the node's value of those bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramBaseLimit {
    /// First physical address owned by the node (with interleaving the range
    /// is shared and selection happens through the interleave bits).
    pub base: u64,
    /// Last physical address owned by the node (inclusive).
    pub limit: u64,
    /// Interleave-enable mask: `0` = contiguous, `0b1` = 2-way, `0b11` =
    /// 4-way, `0b111` = 8-way node interleaving.
    pub intlv_en: u8,
    /// This node's selector value among the interleaved nodes.
    pub intlv_sel: u8,
}

/// DRAM controller select register: position/width of the channel bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DctSelect {
    /// Lowest physical-address bit that selects the channel.
    pub channel_bit: u32,
    /// Number of channel-select bits (0 = single channel).
    pub channel_bits: u32,
}

/// Chip-select base register: positions of the rank and bank select bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsBase {
    /// Lowest physical-address bit selecting the rank.
    pub rank_bit: u32,
    /// Number of rank-select bits.
    pub rank_bits: u32,
    /// Lowest physical-address bit selecting the bank.
    pub bank_bit: u32,
    /// Number of bank-select bits.
    pub bank_bits: u32,
}

/// Bank-address-mapping register: where the row field starts and how wide it
/// is (the row/column split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankAddrMap {
    /// Lowest physical-address bit of the DRAM row.
    pub row_bit: u32,
    /// Number of row bits.
    pub row_bits: u32,
    /// log2 of the burst/line size.
    pub line_shift: u32,
    /// Number of LLC color bits above the page offset (the L3 index bits a
    /// page-coloring allocator can steer; the paper's bits 12–16).
    pub llc_bits: u32,
}

/// The subset of PCI configuration space TintMalloc's boot code reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PciConfigSpace {
    /// One DRAM base/limit pair per node, indexed by node id.
    pub dram_base_limit: Vec<DramBaseLimit>,
    /// Controller (channel) select register.
    pub dct_select: DctSelect,
    /// Chip-select base register.
    pub cs_base: CsBase,
    /// Bank address mapping register.
    pub bank_addr_map: BankAddrMap,
}

/// Errors the boot-time derivation can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PciError {
    /// No DRAM base/limit registers are populated.
    NoNodes,
    /// Node count is not a power of two (interleaving requires it).
    NodeCountNotPowerOfTwo(usize),
    /// A node's `intlv_en` mask disagrees with the node count.
    InterleaveMaskMismatch { node: usize, expect: u8, got: u8 },
    /// Two nodes claim the same `intlv_sel` value.
    DuplicateInterleaveSelect(u8),
    /// The decoded fields are not contiguous above the page offset — frames
    /// would not have page-granular colors.
    FieldsNotContiguous {
        expected_bit: u32,
        got: u32,
        field: &'static str,
    },
}

impl fmt::Display for PciError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PciError::NoNodes => write!(f, "no DRAM base/limit registers populated"),
            PciError::NodeCountNotPowerOfTwo(n) => {
                write!(f, "node count {n} is not a power of two")
            }
            PciError::InterleaveMaskMismatch { node, expect, got } => write!(
                f,
                "node {node}: interleave mask {got:#b} does not match node count (expect {expect:#b})"
            ),
            PciError::DuplicateInterleaveSelect(s) => {
                write!(f, "duplicate interleave selector {s}")
            }
            PciError::FieldsNotContiguous { expected_bit, got, field } => write!(
                f,
                "{field} field starts at bit {got}, expected bit {expected_bit}: \
                 fields are not contiguous above the page offset"
            ),
        }
    }
}

impl std::error::Error for PciError {}

impl PciConfigSpace {
    /// What the BIOS programs for a machine with the given mapping. Node
    /// interleaving is always enabled (multi-node) so the node-select bits sit
    /// where [`AddressMapping`] places them.
    pub fn programmed_by_bios(map: &AddressMapping) -> Self {
        let nodes = map.node_count();
        let intlv_en = (nodes - 1) as u8;
        let channel_bit = 12;
        let bank_bit = channel_bit + map.channel_bits;
        let llc_bit = bank_bit + map.bank_bits;
        let rank_bit = llc_bit + map.llc_bits;
        let node_bit = rank_bit + map.rank_bits;
        let row_bit = node_bit + map.node_bits;
        let dram_base_limit = (0..nodes)
            .map(|n| DramBaseLimit {
                base: 0,
                limit: map.total_bytes() - 1,
                intlv_en,
                intlv_sel: n as u8,
            })
            .collect();
        Self {
            dram_base_limit,
            dct_select: DctSelect {
                channel_bit,
                channel_bits: map.channel_bits,
            },
            cs_base: CsBase {
                rank_bit,
                rank_bits: map.rank_bits,
                bank_bit,
                bank_bits: map.bank_bits,
            },
            bank_addr_map: BankAddrMap {
                row_bit,
                row_bits: map.row_bits,
                line_shift: map.line_shift,
                llc_bits: map.llc_bits,
            },
        }
    }
}

/// Boot-time derivation (paper §III.A): reconstruct the [`AddressMapping`]
/// from PCI registers alone, validating consistency the way real boot code
/// must before it trusts the mapping.
pub fn derive_mapping(pci: &PciConfigSpace) -> Result<AddressMapping, PciError> {
    let nodes = pci.dram_base_limit.len();
    if nodes == 0 {
        return Err(PciError::NoNodes);
    }
    if !nodes.is_power_of_two() {
        return Err(PciError::NodeCountNotPowerOfTwo(nodes));
    }
    let expect_mask = (nodes - 1) as u8;
    let mut seen_sel = vec![false; nodes];
    for (i, bl) in pci.dram_base_limit.iter().enumerate() {
        if bl.intlv_en != expect_mask {
            return Err(PciError::InterleaveMaskMismatch {
                node: i,
                expect: expect_mask,
                got: bl.intlv_en,
            });
        }
        let sel = bl.intlv_sel as usize;
        if sel >= nodes || seen_sel[sel] {
            return Err(PciError::DuplicateInterleaveSelect(bl.intlv_sel));
        }
        seen_sel[sel] = true;
    }

    let node_bits = nodes.trailing_zeros();
    let llc_bits = pci.bank_addr_map.llc_bits;
    let channel_bits = pci.dct_select.channel_bits;
    let rank_bits = pci.cs_base.rank_bits;
    let bank_bits = pci.cs_base.bank_bits;

    // Validate contiguity of the field chain above the 4 KiB page offset:
    // channel, bank, LLC color, rank (node and row follow).
    let mut bit = 12;
    let checks: [(&'static str, u32, u32); 2] = [
        ("channel", pci.dct_select.channel_bit, channel_bits),
        // The bank "width" below includes the LLC color field that sits
        // between bank and rank in the chain.
        ("bank", pci.cs_base.bank_bit, bank_bits + llc_bits),
    ];
    for (field, got, width) in checks {
        if got != bit {
            return Err(PciError::FieldsNotContiguous {
                expected_bit: bit,
                got,
                field,
            });
        }
        bit += width;
    }
    if pci.cs_base.rank_bit != bit {
        return Err(PciError::FieldsNotContiguous {
            expected_bit: bit,
            got: pci.cs_base.rank_bit,
            field: "rank",
        });
    }
    bit += rank_bits;
    // Node bits follow the bank bits; the row starts after the node bits.
    let expected_row = bit + node_bits;
    if pci.bank_addr_map.row_bit != expected_row {
        return Err(PciError::FieldsNotContiguous {
            expected_bit: expected_row,
            got: pci.bank_addr_map.row_bit,
            field: "row",
        });
    }

    Ok(AddressMapping {
        line_shift: pci.bank_addr_map.line_shift,
        llc_bits,
        channel_bits,
        rank_bits,
        bank_bits,
        node_bits,
        row_bits: pci.bank_addr_map.row_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bios_then_boot_roundtrips_opteron() {
        let truth = AddressMapping::opteron_6128();
        let pci = PciConfigSpace::programmed_by_bios(&truth);
        let derived = derive_mapping(&pci).expect("boot derivation");
        assert_eq!(derived, truth);
    }

    #[test]
    fn bios_then_boot_roundtrips_tiny() {
        let truth = AddressMapping::tiny();
        let pci = PciConfigSpace::programmed_by_bios(&truth);
        assert_eq!(derive_mapping(&pci).unwrap(), truth);
    }

    #[test]
    fn empty_config_rejected() {
        let mut pci = PciConfigSpace::programmed_by_bios(&AddressMapping::tiny());
        pci.dram_base_limit.clear();
        assert_eq!(derive_mapping(&pci), Err(PciError::NoNodes));
    }

    #[test]
    fn non_power_of_two_nodes_rejected() {
        let mut pci = PciConfigSpace::programmed_by_bios(&AddressMapping::opteron_6128());
        pci.dram_base_limit.truncate(3);
        assert_eq!(
            derive_mapping(&pci),
            Err(PciError::NodeCountNotPowerOfTwo(3))
        );
    }

    #[test]
    fn mismatched_interleave_mask_rejected() {
        let mut pci = PciConfigSpace::programmed_by_bios(&AddressMapping::opteron_6128());
        pci.dram_base_limit[2].intlv_en = 0b1;
        assert!(matches!(
            derive_mapping(&pci),
            Err(PciError::InterleaveMaskMismatch { node: 2, .. })
        ));
    }

    #[test]
    fn duplicate_interleave_selector_rejected() {
        let mut pci = PciConfigSpace::programmed_by_bios(&AddressMapping::opteron_6128());
        pci.dram_base_limit[3].intlv_sel = 0;
        assert_eq!(
            derive_mapping(&pci),
            Err(PciError::DuplicateInterleaveSelect(0))
        );
    }

    #[test]
    fn gap_in_field_chain_rejected() {
        let mut pci = PciConfigSpace::programmed_by_bios(&AddressMapping::opteron_6128());
        pci.cs_base.bank_bit += 1;
        assert!(matches!(
            derive_mapping(&pci),
            Err(PciError::FieldsNotContiguous { field: "bank", .. })
        ));
    }

    #[test]
    fn misplaced_row_rejected() {
        let mut pci = PciConfigSpace::programmed_by_bios(&AddressMapping::opteron_6128());
        pci.bank_addr_map.row_bit = 50;
        assert!(matches!(
            derive_mapping(&pci),
            Err(PciError::FieldsNotContiguous { field: "row", .. })
        ));
    }

    #[test]
    fn errors_display() {
        let e = PciError::NoNodes;
        assert!(!e.to_string().is_empty());
        let e = PciError::FieldsNotContiguous {
            expected_bit: 17,
            got: 18,
            field: "channel",
        };
        assert!(e.to_string().contains("channel"));
    }
}
