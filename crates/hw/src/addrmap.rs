//! Physical-address bit mapping and the paper's color algebra.
//!
//! TintMalloc (§III.A) selects physical frames by decoding the bit-level
//! translation a memory controller applies to a physical address:
//! node (controller), channel, rank, bank, row, column — plus the LLC set
//! index bits that determine the *LLC color*.
//!
//! The paper's equation (1) flattens the DRAM coordinate into a single
//! *bank color*:
//!
//! ```text
//! bc = ((node * NC + channel) * NR + rank) * NB + bank
//! ```
//!
//! (the paper's printed form contains an extra `NN` factor — a typo: the
//! standard mixed-radix expansion above is the only form that is a bijection
//! onto `0 .. NN*NC*NR*NB`, which the paper's own count of `2^7 = 128` bank
//! colors requires; see DESIGN.md).
//!
//! ## Bit layout
//!
//! This reproduction uses a *page-granular* layout so that a 4 KiB frame has
//! exactly one bank color and one LLC color (a requirement of the paper's
//! `color_list[MEM_ID][cache_ID]` design). Low to high:
//!
//! ```text
//! [0 .. 12)                        page offset (line offset = [0..line_shift))
//! [12 .. +channel)                 channel select   (page-granular interleave)
//! [.. +bank)                       bank select      (page-granular interleave)
//! [.. +llc)                        LLC color        (Opteron: 5 bits, 16–20)
//! [.. +rank)                       rank select (chip select)
//! [.. +node)                       node / controller select
//! [.. +row)                        DRAM row
//! ```
//!
//! The real Opteron 6128 interleaves ranks below the page boundary (bit 7)
//! and its bank bits (15, 16, 18) sit below/within the LLC index bits — i.e.
//! consecutive pages rotate channels/banks before they change LLC color. A
//! page-coloring allocator cannot use sub-page bits, so the preset hoists the
//! DRAM-coordinate bits just above the page offset, *keeping channel and
//! bank below the LLC color* to retain that low-bit interleave (consecutive
//! frames spread over 16 channel×bank combinations), while keeping the
//! paper's cardinalities (128 bank colors, 32 LLC colors) and keeping the
//! LLC color inside the L3 set-index bit range. DESIGN.md records this
//! substitution.

use crate::types::{
    BankColor, BankId, ChannelId, FrameNumber, LlcColor, NodeId, PhysAddr, RankId, PAGE_SHIFT,
};

/// Widths (in bits) of every field of the physical address, low to high
/// above the page offset. See the module docs for the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    /// log2 of the cache-line size (Opteron: 7, i.e. 128-byte lines).
    pub line_shift: u32,
    /// Width of the LLC color field (Opteron: 5 → 32 colors).
    pub llc_bits: u32,
    /// Width of the channel-select field (Opteron: 1 → 2 channels/controller).
    pub channel_bits: u32,
    /// Width of the rank-select field (Opteron: 1 → 2 ranks/channel).
    pub rank_bits: u32,
    /// Width of the bank-select field (Opteron: 3 → 8 banks/rank).
    pub bank_bits: u32,
    /// Width of the node-select field (Opteron: 2 → 4 controllers).
    pub node_bits: u32,
    /// Width of the row field (Opteron preset: 10 → 1024 rows per bank-color
    /// × LLC-color pair; total capacity 16 GiB).
    pub row_bits: u32,
}

/// A fully decoded physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedAddr {
    /// Memory node / controller.
    pub node: NodeId,
    /// Channel within the controller.
    pub channel: ChannelId,
    /// Rank within the channel.
    pub rank: RankId,
    /// Bank within the rank.
    pub bank: BankId,
    /// DRAM row id within the bank (the row-buffer granule: one row per
    /// 4 KiB frame of the bank — LLC bits are folded into the row id).
    pub row: u64,
    /// Column within the row (the page offset).
    pub col: u64,
    /// Flattened global bank coordinate (paper eq. 1).
    pub bank_color: BankColor,
    /// LLC color (value of the LLC color bit field).
    pub llc_color: LlcColor,
}

/// The page-granular part of a decoded address: everything a frame fixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedFrame {
    /// Memory node / controller the frame lives on.
    pub node: NodeId,
    /// Flattened global bank coordinate.
    pub bank_color: BankColor,
    /// LLC color.
    pub llc_color: LlcColor,
    /// DRAM row.
    pub row: u64,
}

impl AddressMapping {
    /// The paper's AMD Opteron 6128 layout: 4 nodes × 2 channels × 2 ranks ×
    /// 8 banks = 128 bank colors; 32 LLC colors (bits 12–16); 128-byte lines;
    /// 16 GiB of physical memory.
    pub fn opteron_6128() -> Self {
        Self {
            line_shift: 7,
            llc_bits: 5,
            channel_bits: 1,
            rank_bits: 1,
            bank_bits: 3,
            node_bits: 2,
            row_bits: 10,
        }
    }

    /// A deliberately small layout for unit tests: 2 nodes × 1 channel ×
    /// 1 rank × 2 banks = 4 bank colors, 4 LLC colors, 64 MiB.
    pub fn tiny() -> Self {
        Self {
            line_shift: 6,
            llc_bits: 2,
            channel_bits: 0,
            rank_bits: 0,
            bank_bits: 1,
            node_bits: 1,
            row_bits: 10,
        }
    }

    // ----- field offsets (bit positions); order: ch, bank, llc, rank, node -----

    #[inline]
    fn channel_off(&self) -> u32 {
        PAGE_SHIFT
    }
    #[inline]
    fn bank_off(&self) -> u32 {
        self.channel_off() + self.channel_bits
    }
    #[inline]
    fn llc_off(&self) -> u32 {
        self.bank_off() + self.bank_bits
    }
    #[inline]
    fn rank_off(&self) -> u32 {
        self.llc_off() + self.llc_bits
    }
    #[inline]
    fn node_off(&self) -> u32 {
        self.rank_off() + self.rank_bits
    }
    #[inline]
    fn row_off(&self) -> u32 {
        self.node_off() + self.node_bits
    }

    /// One-past the highest LLC color bit (used to check L3 index coverage).
    pub fn llc_color_top_bit(&self) -> u32 {
        self.llc_off() + self.llc_bits
    }

    /// Lowest LLC color bit position (the paper's "bits 12–16" role).
    pub fn llc_color_low_bit(&self) -> u32 {
        self.llc_off()
    }

    /// Total number of physical address bits.
    #[inline]
    pub fn addr_bits(&self) -> u32 {
        self.row_off() + self.row_bits
    }

    /// Total bytes of physical memory described by the mapping.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        1u64 << self.addr_bits()
    }

    /// Total number of 4 KiB frames.
    #[inline]
    pub fn frame_count(&self) -> u64 {
        self.total_bytes() >> PAGE_SHIFT
    }

    // ----- cardinalities -----

    /// Number of memory nodes (controllers), `NN`.
    #[inline]
    pub fn node_count(&self) -> usize {
        1 << self.node_bits
    }
    /// Channels per controller, `NC`.
    #[inline]
    pub fn channels_per_node(&self) -> usize {
        1 << self.channel_bits
    }
    /// Ranks per channel, `NR`.
    #[inline]
    pub fn ranks_per_channel(&self) -> usize {
        1 << self.rank_bits
    }
    /// Banks per rank, `NB`.
    #[inline]
    pub fn banks_per_rank(&self) -> usize {
        1 << self.bank_bits
    }

    /// Total bank colors, `NN*NC*NR*NB` (Opteron: 128).
    #[inline]
    pub fn bank_color_count(&self) -> usize {
        self.node_count()
            * self.channels_per_node()
            * self.ranks_per_channel()
            * self.banks_per_rank()
    }

    /// Bank colors per node (Opteron: 32).
    #[inline]
    pub fn bank_colors_per_node(&self) -> usize {
        self.bank_color_count() / self.node_count()
    }

    /// Total LLC colors (Opteron: 32).
    #[inline]
    pub fn llc_color_count(&self) -> usize {
        1 << self.llc_bits
    }

    /// Frames that share one (bank color, LLC color) pair — one per row.
    #[inline]
    pub fn frames_per_color_pair(&self) -> u64 {
        1 << self.row_bits
    }

    /// Bytes of heap capacity behind one (bank color, LLC color) pair.
    #[inline]
    pub fn bytes_per_color_pair(&self) -> u64 {
        self.frames_per_color_pair() << PAGE_SHIFT
    }

    /// Cache-line size in bytes.
    #[inline]
    pub fn line_size(&self) -> u64 {
        1 << self.line_shift
    }

    // ----- the color algebra -----

    /// Equation (1): flatten a DRAM coordinate into a bank color.
    #[inline]
    pub fn bank_color_of(
        &self,
        node: NodeId,
        channel: ChannelId,
        rank: RankId,
        bank: BankId,
    ) -> BankColor {
        debug_assert!(node.index() < self.node_count());
        debug_assert!(channel.index() < self.channels_per_node());
        debug_assert!(rank.index() < self.ranks_per_channel());
        debug_assert!(bank.index() < self.banks_per_rank());
        let bc = ((node.index() * self.channels_per_node() + channel.index())
            * self.ranks_per_channel()
            + rank.index())
            * self.banks_per_rank()
            + bank.index();
        BankColor(bc as u16)
    }

    /// Invert equation (1): the DRAM coordinate of a bank color.
    pub fn coords_of_bank_color(&self, bc: BankColor) -> (NodeId, ChannelId, RankId, BankId) {
        assert!(
            bc.index() < self.bank_color_count(),
            "bank color {bc} out of range"
        );
        let mut v = bc.index();
        let bank = v % self.banks_per_rank();
        v /= self.banks_per_rank();
        let rank = v % self.ranks_per_channel();
        v /= self.ranks_per_channel();
        let channel = v % self.channels_per_node();
        v /= self.channels_per_node();
        (NodeId(v), ChannelId(channel), RankId(rank), BankId(bank))
    }

    /// The node a bank color belongs to. Bank colors are node-major, so node
    /// `n` owns colors `[n*cpn, (n+1)*cpn)` with `cpn = bank_colors_per_node`.
    #[inline]
    pub fn node_of_bank_color(&self, bc: BankColor) -> NodeId {
        assert!(
            bc.index() < self.bank_color_count(),
            "bank color {bc} out of range"
        );
        NodeId(bc.index() / self.bank_colors_per_node())
    }

    /// The bank colors local to `node`, in order.
    pub fn bank_colors_of_node(&self, node: NodeId) -> impl Iterator<Item = BankColor> {
        assert!(node.index() < self.node_count(), "node {node} out of range");
        let cpn = self.bank_colors_per_node();
        let lo = node.index() * cpn;
        (lo..lo + cpn).map(|c| BankColor(c as u16))
    }

    /// All LLC colors, in order.
    pub fn llc_colors(&self) -> impl Iterator<Item = LlcColor> {
        (0..self.llc_color_count()).map(|c| LlcColor(c as u16))
    }

    // ----- decode / encode -----

    #[inline]
    fn field(&self, addr: u64, off: u32, bits: u32) -> u64 {
        if bits == 0 {
            0
        } else {
            (addr >> off) & ((1u64 << bits) - 1)
        }
    }

    /// Decode a physical address into its DRAM coordinate and colors.
    pub fn decode(&self, addr: PhysAddr) -> DecodedAddr {
        assert!(
            addr.0 < self.total_bytes(),
            "physical address {addr} beyond installed memory"
        );
        let node = NodeId(self.field(addr.0, self.node_off(), self.node_bits) as usize);
        let channel = ChannelId(self.field(addr.0, self.channel_off(), self.channel_bits) as usize);
        let rank = RankId(self.field(addr.0, self.rank_off(), self.rank_bits) as usize);
        let bank = BankId(self.field(addr.0, self.bank_off(), self.bank_bits) as usize);
        let row_field = self.field(addr.0, self.row_off(), self.row_bits);
        let llc = self.field(addr.0, self.llc_off(), self.llc_bits);
        // DRAM row identity: one row per 4 KiB frame of the bank (a
        // realistic row-buffer granule). The LLC color bits are part of the
        // row id, NOT the column — otherwise two frames of different LLC
        // colors would share an open row, which real address maps do not do
        // at page granularity.
        let row = (row_field << self.llc_bits) | llc;
        let col = addr.0 & ((1 << PAGE_SHIFT) - 1);
        DecodedAddr {
            node,
            channel,
            rank,
            bank,
            row,
            col,
            bank_color: self.bank_color_of(node, channel, rank, bank),
            llc_color: LlcColor(llc as u16),
        }
    }

    /// Decode just the frame-granular fields of a frame number.
    pub fn decode_frame(&self, frame: FrameNumber) -> DecodedFrame {
        assert!(
            frame.0 < self.frame_count(),
            "frame {frame} beyond installed memory"
        );
        let d = self.decode(frame.base());
        DecodedFrame {
            node: d.node,
            bank_color: d.bank_color,
            llc_color: d.llc_color,
            // The frame-level row index (the third compose_frame coordinate)
            // excludes the LLC bits folded into the DRAM row id.
            row: d.row >> self.llc_bits,
        }
    }

    /// Compose the frame number that has the given colors and row. This is
    /// the inverse of [`AddressMapping::decode_frame`] and the primitive the
    /// simulated "BIOS" uses to enumerate frames of a color.
    pub fn compose_frame(&self, bc: BankColor, llc: LlcColor, row: u64) -> FrameNumber {
        assert!(
            llc.index() < self.llc_color_count(),
            "LLC color {llc} out of range"
        );
        assert!(row < self.frames_per_color_pair(), "row {row} out of range");
        let (node, channel, rank, bank) = self.coords_of_bank_color(bc);
        let addr = ((llc.raw() as u64) << self.llc_off())
            | ((channel.raw() as u64) << self.channel_off())
            | ((rank.raw() as u64) << self.rank_off())
            | ((bank.raw() as u64) << self.bank_off())
            | ((node.raw() as u64) << self.node_off())
            | (row << self.row_off());
        PhysAddr(addr).frame()
    }

    /// LLC color of an address (the paper's set-index color bits 12–16).
    #[inline]
    pub fn llc_color(&self, addr: PhysAddr) -> LlcColor {
        LlcColor(self.field(addr.0, self.llc_off(), self.llc_bits) as u16)
    }

    /// Global flattened channel index (`node * NC + channel`), used by the
    /// DRAM simulator to index channels machine-wide.
    #[inline]
    pub fn global_channel(&self, node: NodeId, channel: ChannelId) -> usize {
        node.index() * self.channels_per_node() + channel.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opteron_cardinalities_match_paper() {
        let m = AddressMapping::opteron_6128();
        assert_eq!(m.bank_color_count(), 128, "paper: 2^7 = 128 banks");
        assert_eq!(m.llc_color_count(), 32, "paper: 2^5 = 32 LLC colors");
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.channels_per_node(), 2);
        assert_eq!(m.ranks_per_channel(), 2);
        assert_eq!(m.banks_per_rank(), 8);
        assert_eq!(m.total_bytes(), 16 << 30);
        assert_eq!(m.line_size(), 128);
        assert_eq!(m.bank_colors_per_node(), 32);
    }

    #[test]
    fn eq1_is_a_bijection() {
        let m = AddressMapping::opteron_6128();
        let mut seen = vec![false; m.bank_color_count()];
        for n in 0..m.node_count() {
            for c in 0..m.channels_per_node() {
                for r in 0..m.ranks_per_channel() {
                    for b in 0..m.banks_per_rank() {
                        let bc = m.bank_color_of(NodeId(n), ChannelId(c), RankId(r), BankId(b));
                        assert!(!seen[bc.index()], "bank color {bc} produced twice");
                        seen[bc.index()] = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "eq. (1) must be onto 0..128");
    }

    #[test]
    fn eq1_roundtrips_through_inverse() {
        let m = AddressMapping::opteron_6128();
        for bc in 0..m.bank_color_count() {
            let bc = BankColor(bc as u16);
            let (n, c, r, b) = m.coords_of_bank_color(bc);
            assert_eq!(m.bank_color_of(n, c, r, b), bc);
        }
    }

    #[test]
    fn bank_colors_are_node_major() {
        let m = AddressMapping::opteron_6128();
        for bc in 0..m.bank_color_count() {
            let bc = BankColor(bc as u16);
            let (n, ..) = m.coords_of_bank_color(bc);
            assert_eq!(m.node_of_bank_color(bc), n);
        }
        let node1: Vec<_> = m.bank_colors_of_node(NodeId(1)).collect();
        assert_eq!(node1.first(), Some(&BankColor(32)));
        assert_eq!(node1.last(), Some(&BankColor(63)));
        assert_eq!(node1.len(), 32);
    }

    #[test]
    fn frame_compose_decode_roundtrip() {
        let m = AddressMapping::opteron_6128();
        for bc in [0u16, 1, 31, 32, 64, 127] {
            for llc in [0u16, 1, 31] {
                for row in [0u64, 1, 1023] {
                    let f = m.compose_frame(BankColor(bc), LlcColor(llc), row);
                    let d = m.decode_frame(f);
                    assert_eq!(d.bank_color, BankColor(bc));
                    assert_eq!(d.llc_color, LlcColor(llc));
                    assert_eq!(d.row, row);
                    assert_eq!(d.node, m.node_of_bank_color(BankColor(bc)));
                }
            }
        }
    }

    #[test]
    fn page_granularity_every_line_in_frame_same_colors() {
        let m = AddressMapping::opteron_6128();
        let f = m.compose_frame(BankColor(77), LlcColor(13), 500);
        let base = m.decode(f.base());
        for off in (0..4096).step_by(128) {
            let d = m.decode(f.at(off));
            assert_eq!(
                d.bank_color, base.bank_color,
                "bank color must be page-granular"
            );
            assert_eq!(
                d.llc_color, base.llc_color,
                "LLC color must be page-granular"
            );
            assert_eq!(d.row, base.row, "a page never splits rows in this model");
        }
    }

    #[test]
    fn llc_color_is_bits_16_20_on_opteron() {
        // The paper's machine colors the LLC via physical index bits 12–16;
        // our preset keeps channel+bank interleave below the color, placing
        // it at bits 16–20 (still inside the L3 set-index range).
        let m = AddressMapping::opteron_6128();
        assert_eq!(m.llc_color_low_bit(), 16);
        assert_eq!(m.llc_color_top_bit(), 21);
        let a = PhysAddr(0b10101 << 16);
        assert_eq!(m.llc_color(a), LlcColor(0b10101));
        assert_eq!(m.decode(a).llc_color, LlcColor(0b10101));
    }

    #[test]
    fn consecutive_frames_interleave_banks_before_llc_colors() {
        // Under the buddy allocator consecutive frames rotate channel/bank
        // (different bank colors) before they change LLC color — the low-bit
        // interleave real maps have, which gives uncolored streams natural
        // bank parallelism.
        let m = AddressMapping::opteron_6128();
        let d0 = m.decode_frame(FrameNumber(0));
        let d1 = m.decode_frame(FrameNumber(1));
        assert_ne!(d0.bank_color, d1.bank_color, "channel rotates first");
        assert_eq!(d0.llc_color, d1.llc_color);
        // 16 consecutive frames cover 16 distinct bank colors.
        let colors: std::collections::HashSet<_> = (0..16)
            .map(|f| m.decode_frame(FrameNumber(f)).bank_color)
            .collect();
        assert_eq!(colors.len(), 16);
        // After the 16 channel×bank combos, the LLC color advances.
        let d16 = m.decode_frame(FrameNumber(16));
        assert_eq!(d16.llc_color, LlcColor(1));
        assert_eq!(d16.node, d0.node, "still the local node");
    }

    #[test]
    fn tiny_mapping_is_consistent() {
        let m = AddressMapping::tiny();
        assert_eq!(m.bank_color_count(), 4);
        assert_eq!(m.llc_color_count(), 4);
        assert_eq!(m.node_count(), 2);
        assert_eq!(m.total_bytes(), 1 << 26);
        let f = m.compose_frame(BankColor(3), LlcColor(2), 7);
        let d = m.decode_frame(f);
        assert_eq!(
            (d.bank_color, d.llc_color, d.row),
            (BankColor(3), LlcColor(2), 7)
        );
    }

    #[test]
    #[should_panic(expected = "beyond installed memory")]
    fn decode_out_of_range_panics() {
        AddressMapping::tiny().decode(PhysAddr(1 << 26));
    }

    #[test]
    fn global_channel_indexing() {
        let m = AddressMapping::opteron_6128();
        assert_eq!(m.global_channel(NodeId(0), ChannelId(0)), 0);
        assert_eq!(m.global_channel(NodeId(0), ChannelId(1)), 1);
        assert_eq!(m.global_channel(NodeId(3), ChannelId(1)), 7);
    }
}
