//! Precomputed frame decoding — the fast path for the simulators' inner
//! loops.
//!
//! [`AddressMapping::decode`] re-derives every field offset on each call,
//! which is fine for allocation-time work but wasteful when executed once
//! per simulated memory access. All frame-granular fields (node, channel,
//! rank, bank → bank color, LLC color) live in the *low*
//! `row_off − PAGE_SHIFT` bits of the frame number; the row field is
//! everything above them. A [`FrameDecoder`] therefore tabulates those low
//! bits once per mapping (4096 entries on the Opteron preset, 16 on the
//! tiny preset) and answers per-access decodes with a mask, a shift and one
//! L1-resident table load.
//!
//! The decoder is purely derived state: for every frame it returns exactly
//! what [`AddressMapping::decode_frame`] returns (asserted by tests over
//! the full LUT domain), so swapping it into an inner loop cannot change
//! simulation results.

use crate::addrmap::{AddressMapping, DecodedFrame};
use crate::types::{BankColor, FrameNumber, LlcColor, NodeId, PhysAddr, PAGE_SHIFT};

/// Everything a frame number fixes, packed for table storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Memory node / controller the frame lives on.
    pub node: u32,
    /// Machine-wide flattened channel index (`node * NC + channel`).
    pub global_channel: u32,
    /// Flattened global bank coordinate (paper eq. 1); also the index into
    /// the DRAM simulator's bank array.
    pub bank_color: u16,
    /// LLC color (value of the LLC color bit field).
    pub llc_color: u16,
}

/// Per-mapping lookup table answering frame decodes in O(1) without
/// re-deriving field offsets.
#[derive(Debug, Clone)]
pub struct FrameDecoder {
    lut: Vec<FrameInfo>,
    /// Frame bits covered by the LUT (`row_off − PAGE_SHIFT`).
    low_bits: u32,
    low_mask: u64,
    llc_bits: u32,
    frame_count: u64,
}

impl FrameDecoder {
    /// Build the table for `mapping`. Cost: one `decode_frame` per distinct
    /// sub-row bit pattern (2^low_bits entries), paid once at boot.
    pub fn new(mapping: &AddressMapping) -> Self {
        let low_bits = mapping.addr_bits() - mapping.row_bits - PAGE_SHIFT;
        let entries = 1usize << low_bits;
        let lut = (0..entries as u64)
            .map(|f| {
                let d = mapping.decode_frame(FrameNumber(f));
                let (node, channel, ..) = mapping.coords_of_bank_color(d.bank_color);
                FrameInfo {
                    node: node.raw() as u32,
                    global_channel: mapping.global_channel(node, channel) as u32,
                    bank_color: d.bank_color.raw(),
                    llc_color: d.llc_color.raw(),
                }
            })
            .collect();
        Self {
            lut,
            low_bits,
            low_mask: (1u64 << low_bits) - 1,
            llc_bits: mapping.llc_bits,
            frame_count: mapping.frame_count(),
        }
    }

    /// The packed per-frame fields. One mask + one table load.
    #[inline]
    pub fn info(&self, frame: FrameNumber) -> FrameInfo {
        debug_assert!(
            frame.0 < self.frame_count,
            "frame {frame} beyond installed memory"
        );
        self.lut[(frame.0 & self.low_mask) as usize]
    }

    /// The packed fields of the frame containing `addr`.
    #[inline]
    pub fn info_of_addr(&self, addr: PhysAddr) -> FrameInfo {
        self.info(addr.frame())
    }

    /// Home node of a frame.
    #[inline]
    pub fn node_of_frame(&self, frame: FrameNumber) -> NodeId {
        NodeId(self.info(frame).node as usize)
    }

    /// The DRAM row id opened by an access to `frame` — matches
    /// [`AddressMapping::decode`]'s `row` (LLC bits folded into the row id).
    #[inline]
    pub fn dram_row(&self, frame: FrameNumber) -> u64 {
        let llc = self.info(frame).llc_color as u64;
        ((frame.0 >> self.low_bits) << self.llc_bits) | llc
    }

    /// Drop-in equivalent of [`AddressMapping::decode_frame`].
    #[inline]
    pub fn decode_frame(&self, frame: FrameNumber) -> DecodedFrame {
        assert!(
            frame.0 < self.frame_count,
            "frame {frame} beyond installed memory"
        );
        let i = self.lut[(frame.0 & self.low_mask) as usize];
        DecodedFrame {
            node: NodeId(i.node as usize),
            bank_color: BankColor(i.bank_color),
            llc_color: LlcColor(i.llc_color),
            row: frame.0 >> self.low_bits,
        }
    }

    /// Number of frames the decoder covers (the mapping's frame count).
    #[inline]
    pub fn frame_count(&self) -> u64 {
        self.frame_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_against_mapping(m: &AddressMapping) {
        let dec = FrameDecoder::new(m);
        // Exhaustive over the LUT domain × several rows: the decoder must
        // agree with the slow path bit for bit.
        let lut_span = 1u64 << (m.addr_bits() - m.row_bits - PAGE_SHIFT);
        for row in [0u64, 1, 2, m.frames_per_color_pair() - 1] {
            for low in (0..lut_span).step_by(1.max(lut_span as usize / 512)) {
                let f = FrameNumber((row << dec.low_bits) | low);
                let slow = m.decode_frame(f);
                assert_eq!(dec.decode_frame(f), slow);
                assert_eq!(dec.node_of_frame(f), slow.node);
                assert_eq!(dec.dram_row(f), m.decode(f.base()).row);
                let i = dec.info(f);
                let (n, c, ..) = m.coords_of_bank_color(slow.bank_color);
                assert_eq!(i.node as usize, n.index());
                assert_eq!(i.global_channel as usize, m.global_channel(n, c));
                assert_eq!(i.bank_color, slow.bank_color.raw());
                assert_eq!(i.llc_color, slow.llc_color.raw());
            }
        }
    }

    #[test]
    fn decoder_matches_slow_decode_opteron() {
        check_against_mapping(&AddressMapping::opteron_6128());
    }

    #[test]
    fn decoder_matches_slow_decode_tiny() {
        check_against_mapping(&AddressMapping::tiny());
    }

    #[test]
    fn lut_sizes_are_small() {
        assert_eq!(
            FrameDecoder::new(&AddressMapping::opteron_6128()).lut.len(),
            4096
        );
        assert_eq!(FrameDecoder::new(&AddressMapping::tiny()).lut.len(), 16);
    }

    #[test]
    #[should_panic(expected = "beyond installed memory")]
    fn out_of_range_frame_panics() {
        let dec = FrameDecoder::new(&AddressMapping::tiny());
        dec.decode_frame(FrameNumber(dec.frame_count()));
    }
}
