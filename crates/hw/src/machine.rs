//! Whole-machine configuration presets.
//!
//! [`MachineConfig`] bundles everything the downstream simulators need:
//! topology, address mapping, cache geometry, DRAM timing, and interconnect
//! latencies. All times are in **core clock cycles**; the Opteron preset runs
//! cores at 2 GHz (paper §IV: the ondemand governor immediately raises
//! CPU-bound work to 2 GHz), so one cycle is 0.5 ns.

use crate::addrmap::AddressMapping;
use crate::topology::Topology;

/// Geometry and hit latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Capacity in bytes.
    pub bytes: u64,
    /// Associativity (ways).
    pub assoc: usize,
    /// Hit latency in core cycles.
    pub latency: u64,
}

impl CacheLevelConfig {
    /// Number of sets for a given line size.
    pub fn sets(&self, line_size: u64) -> usize {
        let sets = self.bytes / (line_size * self.assoc as u64);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a power of two"
        );
        sets as usize
    }
}

/// The cache hierarchy: private L1 and L2 per core, shared L3 (LLC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Private per-core L1 data cache.
    pub l1: CacheLevelConfig,
    /// Private per-core unified L2.
    pub l2: CacheLevelConfig,
    /// Shared L3 = LLC.
    pub l3: CacheLevelConfig,
}

/// Row-buffer management policy of the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Open-page: leave the row open after an access (rewards locality,
    /// punishes sharing — the regime the paper's analysis assumes).
    #[default]
    Open,
    /// Closed-page: auto-precharge after every access (every access pays
    /// `tRCD + tCAS`; there are no row hits and no row conflicts).
    Closed,
}

/// DRAM device and controller timing, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Column access strobe: row-buffer hit cost.
    pub t_cas: u64,
    /// Row-to-column delay: activating a closed row.
    pub t_rcd: u64,
    /// Precharge: closing a dirty/conflicting row before activating another.
    pub t_rp: u64,
    /// Data transfer time for one cache line on the channel.
    pub t_transfer: u64,
    /// Fixed controller pipeline overhead per request.
    pub ctrl_overhead: u64,
    /// Refresh interval (tREFI); `0` disables refresh modeling.
    pub t_refi: u64,
    /// Refresh cycle time (tRFC): bank-unavailable window per refresh.
    pub t_rfc: u64,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
}

/// Interconnect (HyperTransport-style) latencies, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterconnectConfig {
    /// Extra latency for a same-socket remote node (1 extra hop).
    pub same_socket_extra: u64,
    /// Extra latency for a cross-socket node (2 extra hops).
    pub cross_socket_extra: u64,
    /// Link occupancy per transfer — serializes concurrent remote traffic on
    /// the same link (models interconnect contention, paper §II.B).
    pub link_busy: u64,
}

impl InterconnectConfig {
    /// Extra one-way latency for `hops` extra hops (0, 1 or 2).
    #[inline]
    pub fn hop_extra(&self, hops: u32) -> u64 {
        match hops {
            0 => 0,
            1 => self.same_socket_extra,
            _ => self.cross_socket_extra,
        }
    }
}

/// Full machine description consumed by every simulator crate.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable preset name.
    pub name: String,
    /// Socket/node/core layout.
    pub topology: Topology,
    /// Physical address bit mapping (colors, banks, rows).
    pub mapping: AddressMapping,
    /// Cache hierarchy geometry.
    pub cache: CacheConfig,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Interconnect latencies.
    pub interconnect: InterconnectConfig,
    /// Core frequency in GHz (informational; all times are cycles).
    pub core_ghz: f64,
}

impl MachineConfig {
    /// The paper's evaluation platform (§IV): dual-socket AMD Opteron 6128 —
    /// 2 sockets × 2 nodes × 4 cores = 16 cores over 4 memory controllers,
    /// 128 KiB private L1d, 512 KiB private L2, 12 MiB shared L3, 128-byte
    /// lines, 128 bank colors, 32 LLC colors, cores at 2 GHz.
    pub fn opteron_6128() -> Self {
        let mapping = AddressMapping::opteron_6128();
        let cfg = Self {
            name: "opteron-6128".to_string(),
            topology: Topology::new(2, 2, 4),
            mapping,
            cache: CacheConfig {
                l1: CacheLevelConfig {
                    bytes: 128 << 10,
                    assoc: 2,
                    latency: 3,
                },
                l2: CacheLevelConfig {
                    bytes: 512 << 10,
                    assoc: 8,
                    latency: 12,
                },
                // 16384 sets × 128 B × 6 ways = 12 MiB: the set-index bits
                // [7..21) cover the LLC color bits [16..21).
                l3: CacheLevelConfig {
                    bytes: 12 << 20,
                    assoc: 6,
                    latency: 38,
                },
            },
            // DDR3-1333-class timings at 2 GHz (0.5 ns/cycle): tCAS/tRCD/tRP
            // ≈ 13.5 ns → 27 cycles; 128 B over a 64-bit channel at 1333 MT/s
            // ≈ 12 ns → 24 cycles.
            dram: DramConfig {
                t_cas: 27,
                t_rcd: 27,
                t_rp: 27,
                t_transfer: 24,
                ctrl_overhead: 10,
                t_refi: 15_600, // 7.8 µs
                t_rfc: 320,     // 160 ns
                page_policy: PagePolicy::Open,
            },
            // HyperTransport: ~20 ns extra on-chip hop, ~45 ns cross-socket.
            interconnect: InterconnectConfig {
                same_socket_extra: 40,
                cross_socket_extra: 90,
                link_busy: 6,
            },
            core_ghz: 2.0,
        };
        cfg.validate();
        cfg
    }

    /// A portability demonstration (the paper's §VII: "portable across x86
    /// architectures with documented bit mappings"): an eight-node machine —
    /// 2 sockets × 4 nodes × 2 cores, 256 bank colors, 32 LLC colors,
    /// 16 GiB — with the Opteron cache/DRAM/interconnect parameters. Every
    /// layer (PCI derivation, kernel, planners, SPMD engine) works on it
    /// unchanged.
    pub fn eight_node() -> Self {
        let mut cfg = Self::opteron_6128();
        cfg.name = "eight-node".to_string();
        cfg.topology = Topology::new(2, 4, 2);
        cfg.mapping = AddressMapping {
            node_bits: 3,
            row_bits: 9, // keep 16 GiB total
            ..AddressMapping::opteron_6128()
        };
        cfg.validate();
        cfg
    }

    /// A small machine for fast tests: 2 sockets × 1 node × 2 cores, 4 bank
    /// colors, 4 LLC colors, 64 MiB, tiny caches with the same structure.
    pub fn tiny() -> Self {
        let mapping = AddressMapping::tiny();
        let cfg = Self {
            name: "tiny".to_string(),
            topology: Topology::new(2, 1, 2),
            mapping,
            cache: CacheConfig {
                l1: CacheLevelConfig {
                    bytes: 2 << 10,
                    assoc: 2,
                    latency: 3,
                },
                l2: CacheLevelConfig {
                    bytes: 8 << 10,
                    assoc: 4,
                    latency: 12,
                },
                // 512 sets × 64 B × 2 ways = 64 KiB; set-index bits [6..15)
                // cover the tiny LLC color bits [13..15).
                l3: CacheLevelConfig {
                    bytes: 64 << 10,
                    assoc: 2,
                    latency: 38,
                },
            },
            dram: DramConfig {
                t_cas: 27,
                t_rcd: 27,
                t_rp: 27,
                t_transfer: 24,
                ctrl_overhead: 10,
                t_refi: 0,
                t_rfc: 0,
                page_policy: PagePolicy::Open,
            },
            interconnect: InterconnectConfig {
                same_socket_extra: 60,
                cross_socket_extra: 140,
                link_busy: 8,
            },
            core_ghz: 2.0,
        };
        cfg.validate();
        cfg
    }

    /// Panic if the configuration is internally inconsistent.
    pub fn validate(&self) {
        assert_eq!(
            self.topology.node_count(),
            self.mapping.node_count(),
            "topology and address mapping disagree on the number of nodes"
        );
        let line = self.mapping.line_size();
        // L3 set-index bits must cover the LLC color bits, otherwise LLC
        // coloring cannot partition the cache (paper §III.A).
        let l3_sets = self.cache.l3.sets(line);
        let index_top = self.mapping.line_shift + l3_sets.trailing_zeros();
        let color_top = self.mapping.llc_color_top_bit();
        assert!(
            index_top >= color_top,
            "L3 set-index bits [{}..{}) do not cover the LLC color bits [{}..{})",
            self.mapping.line_shift,
            index_top,
            self.mapping.llc_color_low_bit(),
            color_top
        );
        // L1/L2 must also be valid geometries.
        let _ = self.cache.l1.sets(line);
        let _ = self.cache.l2.sets(line);
    }

    /// Number of L3 sets owned by one LLC color.
    pub fn l3_sets_per_color(&self) -> usize {
        self.cache.l3.sets(self.mapping.line_size()) / self.mapping.llc_color_count()
    }

    /// Convert cycles to nanoseconds at this machine's core frequency.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.core_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opteron_preset_validates() {
        let m = MachineConfig::opteron_6128();
        assert_eq!(m.topology.core_count(), 16);
        assert_eq!(m.mapping.bank_color_count(), 128);
        // 12 MiB / (128 B × 6 ways) = 16384 sets; 16384/32 colors = 512.
        assert_eq!(m.l3_sets_per_color(), 512);
    }

    #[test]
    fn eight_node_preset_validates() {
        let m = MachineConfig::eight_node();
        assert_eq!(m.topology.node_count(), 8);
        assert_eq!(m.mapping.bank_color_count(), 256);
        assert_eq!(m.mapping.llc_color_count(), 32);
        assert_eq!(m.mapping.total_bytes(), 16 << 30);
        assert_eq!(m.mapping.bank_colors_per_node(), 32);
    }

    #[test]
    fn tiny_preset_validates() {
        let m = MachineConfig::tiny();
        assert_eq!(m.topology.core_count(), 4);
        assert_eq!(m.mapping.bank_color_count(), 4);
        assert_eq!(m.l3_sets_per_color(), 128);
    }

    #[test]
    #[should_panic(expected = "disagree on the number of nodes")]
    fn mismatched_topology_rejected() {
        let mut m = MachineConfig::tiny();
        m.topology = Topology::new(1, 1, 2);
        m.validate();
    }

    #[test]
    #[should_panic(expected = "do not cover the LLC color bits")]
    fn too_small_llc_rejected() {
        let mut m = MachineConfig::tiny();
        m.cache.l3.bytes = 4 << 10; // 32 sets: index top = bit 11 < color top 15
        m.validate();
    }

    #[test]
    fn hop_extras() {
        let m = MachineConfig::opteron_6128();
        assert_eq!(m.interconnect.hop_extra(0), 0);
        assert_eq!(m.interconnect.hop_extra(1), 40);
        assert_eq!(m.interconnect.hop_extra(2), 90);
    }

    #[test]
    fn cycles_to_ns_at_2ghz() {
        let m = MachineConfig::opteron_6128();
        assert_eq!(m.cycles_to_ns(200), 100.0);
    }

    #[test]
    fn sets_rejects_non_power_of_two() {
        let lvl = CacheLevelConfig {
            bytes: 12 << 20,
            assoc: 6,
            latency: 1,
        };
        assert_eq!(lvl.sets(128), 16384);
        let bad = CacheLevelConfig {
            bytes: 3000,
            assoc: 3,
            latency: 1,
        };
        let r = std::panic::catch_unwind(|| bad.sets(128));
        assert!(r.is_err());
    }
}
