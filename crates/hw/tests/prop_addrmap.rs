//! Property tests for the address-mapping color algebra.
//!
//! Implemented as seeded-loop randomized tests over a deterministic local
//! PRNG ([`SplitMix64`]): the same properties as a property-testing
//! framework would exercise, but with zero external dependencies and a
//! reproducible case list.

use tint_hw::addrmap::AddressMapping;
use tint_hw::pci::{derive_mapping, PciConfigSpace};
use tint_hw::rng::SplitMix64;
use tint_hw::types::{BankColor, FrameNumber, LlcColor, PhysAddr};

const CASES: u64 = 300;

/// Structurally valid mapping of varied widths, drawn from `rng`.
fn arb_mapping(rng: &mut SplitMix64) -> AddressMapping {
    AddressMapping {
        line_shift: rng.gen_range_in(5, 9) as u32,
        llc_bits: rng.gen_range(6) as u32,
        channel_bits: rng.gen_range(3) as u32,
        rank_bits: rng.gen_range(3) as u32,
        bank_bits: rng.gen_range(5) as u32,
        node_bits: rng.gen_range(4) as u32,
        row_bits: rng.gen_range_in(1, 13) as u32,
    }
}

/// Every frame decodes, and re-composing from its colors + row gives the
/// same frame back: decode_frame and compose_frame are mutual inverses.
#[test]
fn frame_decode_compose_roundtrip() {
    let mut rng = SplitMix64::new(0xadd7_e550);
    for _ in 0..CASES {
        let map = arb_mapping(&mut rng);
        let frame = FrameNumber(rng.next_u64() % map.frame_count());
        let d = map.decode_frame(frame);
        let back = map.compose_frame(d.bank_color, d.llc_color, d.row);
        assert_eq!(back, frame, "map {map:?}");
    }
}

/// Equation (1) is a bijection: compose_frame hits distinct frames for
/// distinct (bank color, LLC color, row) triples.
#[test]
fn compose_is_injective() {
    let mut rng = SplitMix64::new(0x171e);
    for _ in 0..CASES {
        let map = arb_mapping(&mut rng);
        let n = map.bank_color_count() as u64
            * map.llc_color_count() as u64
            * map.frames_per_color_pair();
        let (a, b) = (rng.next_u64() % n, rng.next_u64() % n);
        let split = |v: u64| {
            let row = v % map.frames_per_color_pair();
            let v = v / map.frames_per_color_pair();
            let llc = LlcColor((v % map.llc_color_count() as u64) as u16);
            let bc = BankColor((v / map.llc_color_count() as u64) as u16);
            (bc, llc, row)
        };
        let (bca, llca, rowa) = split(a);
        let (bcb, llcb, rowb) = split(b);
        let fa = map.compose_frame(bca, llca, rowa);
        let fb = map.compose_frame(bcb, llcb, rowb);
        assert_eq!(fa == fb, a == b, "map {map:?}");
    }
}

/// All bytes of a page share the page's colors (page-granular coloring,
/// required by color_list[MEM_ID][cache_ID]).
#[test]
fn colors_are_page_granular() {
    let mut rng = SplitMix64::new(0x9a9e);
    for _ in 0..CASES {
        let map = arb_mapping(&mut rng);
        let frame = FrameNumber(rng.next_u64() % map.frame_count());
        let off = rng.gen_range(4096);
        let base = map.decode(frame.base());
        let d = map.decode(frame.at(off));
        assert_eq!(d.bank_color, base.bank_color);
        assert_eq!(d.llc_color, base.llc_color);
        assert_eq!(d.row, base.row);
        assert_eq!(d.node, base.node);
    }
}

/// The node derived from a bank color agrees with decoding any address
/// of that color.
#[test]
fn node_of_bank_color_consistent() {
    let mut rng = SplitMix64::new(0x0de);
    for _ in 0..CASES {
        let map = arb_mapping(&mut rng);
        let frame = FrameNumber(rng.next_u64() % map.frame_count());
        let d = map.decode_frame(frame);
        assert_eq!(map.node_of_bank_color(d.bank_color), d.node);
    }
}

/// BIOS programming followed by boot derivation reproduces the mapping.
#[test]
fn pci_roundtrip() {
    let mut rng = SplitMix64::new(0x9c1);
    for _ in 0..CASES {
        let map = arb_mapping(&mut rng);
        let pci = PciConfigSpace::programmed_by_bios(&map);
        assert_eq!(derive_mapping(&pci).unwrap(), map);
    }
}

/// LLC color of an address equals the LLC color of its frame.
#[test]
fn llc_color_matches_frame() {
    let mut rng = SplitMix64::new(0x11c);
    for _ in 0..CASES {
        let map = arb_mapping(&mut rng);
        let addr = PhysAddr(rng.next_u64() % map.total_bytes());
        assert_eq!(
            map.llc_color(addr),
            map.decode_frame(addr.frame()).llc_color
        );
    }
}
