//! Property tests for the address-mapping color algebra.

use proptest::prelude::*;
use tint_hw::addrmap::AddressMapping;
use tint_hw::pci::{derive_mapping, PciConfigSpace};
use tint_hw::types::{BankColor, FrameNumber, LlcColor, PhysAddr};

/// Strategy producing structurally valid mappings of varied widths.
fn arb_mapping() -> impl Strategy<Value = AddressMapping> {
    (0u32..=5, 0u32..=2, 0u32..=2, 0u32..=4, 0u32..=3, 1u32..=12, 5u32..=8).prop_map(
        |(llc, ch, rank, bank, node, row, line)| AddressMapping {
            line_shift: line,
            llc_bits: llc,
            channel_bits: ch,
            rank_bits: rank,
            bank_bits: bank,
            node_bits: node,
            row_bits: row,
        },
    )
}

proptest! {
    /// Every frame decodes, and re-composing from its colors + row gives the
    /// same frame back: decode_frame and compose_frame are mutual inverses.
    #[test]
    fn frame_decode_compose_roundtrip(map in arb_mapping(), seed in any::<u64>()) {
        let frame = FrameNumber(seed % map.frame_count());
        let d = map.decode_frame(frame);
        let back = map.compose_frame(d.bank_color, d.llc_color, d.row);
        prop_assert_eq!(back, frame);
    }

    /// Equation (1) is a bijection: compose_frame hits distinct frames for
    /// distinct (bank color, LLC color, row) triples.
    #[test]
    fn compose_is_injective(map in arb_mapping(), a in any::<u64>(), b in any::<u64>()) {
        let n = map.bank_color_count() as u64 * map.llc_color_count() as u64
            * map.frames_per_color_pair();
        let (a, b) = (a % n, b % n);
        let split = |v: u64| {
            let row = v % map.frames_per_color_pair();
            let v = v / map.frames_per_color_pair();
            let llc = LlcColor((v % map.llc_color_count() as u64) as u16);
            let bc = BankColor((v / map.llc_color_count() as u64) as u16);
            (bc, llc, row)
        };
        let (bca, llca, rowa) = split(a);
        let (bcb, llcb, rowb) = split(b);
        let fa = map.compose_frame(bca, llca, rowa);
        let fb = map.compose_frame(bcb, llcb, rowb);
        prop_assert_eq!(fa == fb, a == b);
    }

    /// All bytes of a page share the page's colors (page-granular coloring,
    /// required by color_list[MEM_ID][cache_ID]).
    #[test]
    fn colors_are_page_granular(map in arb_mapping(), seed in any::<u64>(), off in 0u64..4096) {
        let frame = FrameNumber(seed % map.frame_count());
        let base = map.decode(frame.base());
        let d = map.decode(frame.at(off));
        prop_assert_eq!(d.bank_color, base.bank_color);
        prop_assert_eq!(d.llc_color, base.llc_color);
        prop_assert_eq!(d.row, base.row);
        prop_assert_eq!(d.node, base.node);
    }

    /// The node derived from a bank color agrees with decoding any address
    /// of that color.
    #[test]
    fn node_of_bank_color_consistent(map in arb_mapping(), seed in any::<u64>()) {
        let frame = FrameNumber(seed % map.frame_count());
        let d = map.decode_frame(frame);
        prop_assert_eq!(map.node_of_bank_color(d.bank_color), d.node);
    }

    /// BIOS programming followed by boot derivation reproduces the mapping.
    #[test]
    fn pci_roundtrip(map in arb_mapping()) {
        let pci = PciConfigSpace::programmed_by_bios(&map);
        prop_assert_eq!(derive_mapping(&pci).unwrap(), map);
    }

    /// LLC color of an address equals the LLC color of its frame.
    #[test]
    fn llc_color_matches_frame(map in arb_mapping(), seed in any::<u64>()) {
        let addr = PhysAddr(seed % map.total_bytes());
        prop_assert_eq!(map.llc_color(addr), map.decode_frame(addr.frame()).llc_color);
    }
}
