//! Property tests for the SPMD engine: clock monotonicity, barrier algebra,
//! and determinism under arbitrary compute workloads.

use proptest::prelude::*;
use tint_hw::machine::MachineConfig;
use tint_hw::types::CoreId;
use tint_spmd::{Op, Program, SectionBody, SimThread};
use tintmalloc::System;

fn arb_bodies(n_threads: usize) -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(
        prop::collection::vec(1u64..500, 0..30),
        n_threads..=n_threads,
    )
}

fn run_program(work: &[Vec<u64>]) -> tint_spmd::RunMetrics {
    let mut sys = System::boot(MachineConfig::tiny());
    let cores: Vec<_> = (0..work.len()).map(|i| CoreId(i % 4)).collect();
    let mut threads = SimThread::spawn_all(&mut sys, &cores);
    let bodies: Vec<Box<dyn SectionBody>> = work
        .iter()
        .map(|w| {
            Box::new(w.clone().into_iter().map(Op::Compute)) as Box<dyn SectionBody>
        })
        .collect();
    Program::new()
        .parallel(bodies)
        .run(&mut sys, &mut threads)
        .unwrap()
}

proptest! {
    /// For pure-compute sections the engine is exact: each thread's busy
    /// time equals the sum of its compute ops, the barrier is the max, and
    /// idle is barrier − busy (Algorithm 3).
    #[test]
    fn compute_sections_are_exact(work in arb_bodies(4)) {
        let m = run_program(&work);
        let sums: Vec<u64> = work.iter().map(|w| w.iter().sum()).collect();
        let barrier = *sums.iter().max().unwrap();
        prop_assert_eq!(&m.thread_runtime, &sums);
        for (idle, sum) in m.thread_idle.iter().zip(&sums) {
            prop_assert_eq!(*idle, barrier - sum);
        }
        prop_assert_eq!(m.runtime, barrier);
        prop_assert_eq!(m.total_idle(), sums.iter().map(|s| barrier - s).sum::<u64>());
    }

    /// Determinism: identical inputs give identical metrics.
    #[test]
    fn engine_is_deterministic(work in arb_bodies(3)) {
        prop_assert_eq!(run_program(&work), run_program(&work));
    }

    /// Permuting section order across two parallel sections never changes
    /// the total busy time of a thread (sections are independent barriers).
    #[test]
    fn two_sections_accumulate(work_a in arb_bodies(2), work_b in arb_bodies(2)) {
        let mut sys = System::boot(MachineConfig::tiny());
        let cores = vec![CoreId(0), CoreId(1)];
        let mut threads = SimThread::spawn_all(&mut sys, &cores);
        let mk = |w: &Vec<u64>| {
            Box::new(w.clone().into_iter().map(Op::Compute)) as Box<dyn SectionBody>
        };
        let m = Program::new()
            .parallel(work_a.iter().map(&mk).collect())
            .parallel(work_b.iter().map(&mk).collect())
            .run(&mut sys, &mut threads)
            .unwrap();
        for i in 0..2 {
            let expect: u64 =
                work_a[i].iter().sum::<u64>() + work_b[i].iter().sum::<u64>();
            prop_assert_eq!(m.thread_runtime[i], expect);
        }
        prop_assert_eq!(m.parallel_sections, 2);
        // Runtime = sum of the two barriers.
        let b1 = work_a.iter().map(|w| w.iter().sum::<u64>()).max().unwrap();
        let b2 = work_b.iter().map(|w| w.iter().sum::<u64>()).max().unwrap();
        prop_assert_eq!(m.runtime, b1 + b2);
    }

    /// Serial sections only advance the master but move everyone's clock.
    #[test]
    fn serial_section_cost(serial in prop::collection::vec(1u64..200, 0..20)) {
        let mut sys = System::boot(MachineConfig::tiny());
        let cores = vec![CoreId(0), CoreId(1)];
        let mut threads = SimThread::spawn_all(&mut sys, &cores);
        let body = Box::new(serial.clone().into_iter().map(Op::Compute))
            as Box<dyn SectionBody>;
        let m = Program::new().serial(body).run(&mut sys, &mut threads).unwrap();
        let total: u64 = serial.iter().sum();
        prop_assert_eq!(m.serial_cycles, total);
        prop_assert_eq!(m.runtime, total);
        prop_assert_eq!(m.total_idle(), 0, "serial time is not idle time");
    }
}
