//! Property tests for the SPMD engine: clock monotonicity, barrier algebra,
//! and determinism under arbitrary compute workloads.
//!
//! Seeded-loop randomized tests over the workspace's deterministic PRNG —
//! no external property-testing framework required.

use tint_hw::machine::MachineConfig;
use tint_hw::rng::SplitMix64;
use tint_hw::types::CoreId;
use tint_spmd::{Op, Program, SectionBody, SimThread};
use tintmalloc::System;

const CASES: u64 = 50;

fn arb_bodies(rng: &mut SplitMix64, n_threads: usize) -> Vec<Vec<u64>> {
    (0..n_threads)
        .map(|_| {
            let n = rng.gen_range(30);
            (0..n).map(|_| rng.gen_range_in(1, 500)).collect()
        })
        .collect()
}

fn run_program(work: &[Vec<u64>]) -> tint_spmd::RunMetrics {
    let mut sys = System::boot(MachineConfig::tiny());
    let cores: Vec<_> = (0..work.len()).map(|i| CoreId(i % 4)).collect();
    let mut threads = SimThread::spawn_all(&mut sys, &cores);
    let bodies: Vec<Box<dyn SectionBody>> = work
        .iter()
        .map(|w| Box::new(w.clone().into_iter().map(Op::Compute)) as Box<dyn SectionBody>)
        .collect();
    Program::new()
        .parallel(bodies)
        .run(&mut sys, &mut threads)
        .unwrap()
}

/// For pure-compute sections the engine is exact: each thread's busy
/// time equals the sum of its compute ops, the barrier is the max, and
/// idle is barrier − busy (Algorithm 3).
#[test]
fn compute_sections_are_exact() {
    let mut rng = SplitMix64::new(0xe8ac7);
    for _ in 0..CASES {
        let work = arb_bodies(&mut rng, 4);
        let m = run_program(&work);
        let sums: Vec<u64> = work.iter().map(|w| w.iter().sum()).collect();
        let barrier = *sums.iter().max().unwrap();
        assert_eq!(&m.thread_runtime, &sums);
        for (idle, sum) in m.thread_idle.iter().zip(&sums) {
            assert_eq!(*idle, barrier - sum);
        }
        assert_eq!(m.runtime, barrier);
        assert_eq!(
            m.total_idle(),
            sums.iter().map(|s| barrier - s).sum::<u64>()
        );
    }
}

/// Determinism: identical inputs give identical metrics.
#[test]
fn engine_is_deterministic() {
    let mut rng = SplitMix64::new(0xde7e);
    for _ in 0..CASES {
        let work = arb_bodies(&mut rng, 3);
        assert_eq!(run_program(&work), run_program(&work));
    }
}

/// Two parallel sections accumulate per-thread busy time and the runtime
/// is the sum of the two barriers (sections are independent barriers).
#[test]
fn two_sections_accumulate() {
    let mut rng = SplitMix64::new(0x2ba8);
    for _ in 0..CASES {
        let work_a = arb_bodies(&mut rng, 2);
        let work_b = arb_bodies(&mut rng, 2);
        let mut sys = System::boot(MachineConfig::tiny());
        let cores = vec![CoreId(0), CoreId(1)];
        let mut threads = SimThread::spawn_all(&mut sys, &cores);
        let mk =
            |w: &Vec<u64>| Box::new(w.clone().into_iter().map(Op::Compute)) as Box<dyn SectionBody>;
        let m = Program::new()
            .parallel(work_a.iter().map(&mk).collect())
            .parallel(work_b.iter().map(&mk).collect())
            .run(&mut sys, &mut threads)
            .unwrap();
        for i in 0..2 {
            let expect: u64 = work_a[i].iter().sum::<u64>() + work_b[i].iter().sum::<u64>();
            assert_eq!(m.thread_runtime[i], expect);
        }
        assert_eq!(m.parallel_sections, 2);
        // Runtime = sum of the two barriers.
        let b1 = work_a.iter().map(|w| w.iter().sum::<u64>()).max().unwrap();
        let b2 = work_b.iter().map(|w| w.iter().sum::<u64>()).max().unwrap();
        assert_eq!(m.runtime, b1 + b2);
    }
}

/// Serial sections only advance the master but move everyone's clock.
#[test]
fn serial_section_cost() {
    let mut rng = SplitMix64::new(0x5e1a);
    for _ in 0..CASES {
        let n = rng.gen_range(20);
        let serial: Vec<u64> = (0..n).map(|_| rng.gen_range_in(1, 200)).collect();
        let mut sys = System::boot(MachineConfig::tiny());
        let cores = vec![CoreId(0), CoreId(1)];
        let mut threads = SimThread::spawn_all(&mut sys, &cores);
        let body = Box::new(serial.clone().into_iter().map(Op::Compute)) as Box<dyn SectionBody>;
        let m = Program::new()
            .serial(body)
            .run(&mut sys, &mut threads)
            .unwrap();
        let total: u64 = serial.iter().sum();
        assert_eq!(m.serial_cycles, total);
        assert_eq!(m.runtime, total);
        assert_eq!(m.total_idle(), 0, "serial time is not idle time");
    }
}
