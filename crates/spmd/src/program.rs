//! Fork-join program structure and the program runner.
//!
//! A [`Program`] is a sequence of sections; running it produces
//! [`crate::metrics::RunMetrics`]. Workload crates build
//! programs by allocating their data on the simulated heap and returning
//! section bodies that walk it.

use crate::engine::{run_section, run_section_dynamic, run_serial, SectionBody, SimThread};
use crate::metrics::{RunMetrics, SectionOutcome};
use tint_kernel::Errno;
use tintmalloc::System;

/// One program section.
pub enum Section<'a> {
    /// Serial work on the master thread.
    Serial(Box<dyn SectionBody + 'a>),
    /// A parallel section: one body per thread, implicit barrier at the end.
    Parallel(Vec<Box<dyn SectionBody + 'a>>),
    /// A dynamically-scheduled parallel section (OpenMP `schedule(dynamic)`):
    /// a queue of chunks; threads pull the next chunk as they finish.
    ParallelDynamic(Vec<Box<dyn SectionBody + 'a>>),
}

/// A fork-join program over a fixed thread team.
pub struct Program<'a> {
    sections: Vec<Section<'a>>,
    /// Per-section operation budget (runaway-body guard).
    pub ops_budget: u64,
}

impl<'a> Program<'a> {
    /// Empty program with a default per-section budget.
    pub fn new() -> Self {
        Self {
            sections: Vec::new(),
            ops_budget: 500_000_000,
        }
    }

    /// Append a serial section.
    pub fn serial(mut self, body: Box<dyn SectionBody + 'a>) -> Self {
        self.sections.push(Section::Serial(body));
        self
    }

    /// Append a parallel section (one body per thread).
    pub fn parallel(mut self, bodies: Vec<Box<dyn SectionBody + 'a>>) -> Self {
        self.sections.push(Section::Parallel(bodies));
        self
    }

    /// Append a dynamically-scheduled parallel section (a chunk queue).
    pub fn parallel_dynamic(mut self, chunks: Vec<Box<dyn SectionBody + 'a>>) -> Self {
        self.sections.push(Section::ParallelDynamic(chunks));
        self
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when no sections were added.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Execute the program on `threads`, folding parallel-section outcomes
    /// into [`RunMetrics`] per Algorithm 3.
    pub fn run(self, sys: &mut System, threads: &mut [SimThread]) -> Result<RunMetrics, Errno> {
        let start = threads.iter().map(|t| t.clock).max().unwrap_or(0);
        for t in threads.iter_mut() {
            t.clock = start;
        }
        let mut metrics = RunMetrics::new(threads.len());
        for section in self.sections {
            match section {
                Section::Serial(mut body) => {
                    let before = threads[0].clock;
                    let end = run_serial(sys, threads, body.as_mut(), self.ops_budget)?;
                    metrics.serial_cycles += end - before;
                }
                Section::Parallel(mut bodies) => {
                    let sec_start = threads[0].clock;
                    let end = run_section(sys, threads, &mut bodies, self.ops_budget)?;
                    metrics.add_section(&SectionOutcome::new(sec_start, end));
                }
                Section::ParallelDynamic(chunks) => {
                    let sec_start = threads[0].clock;
                    let end = run_section_dynamic(
                        sys,
                        threads,
                        chunks.into_iter().collect(),
                        self.ops_budget,
                    )?;
                    metrics.add_section(&SectionOutcome::new(sec_start, end));
                }
            }
        }
        let finish = threads.iter().map(|t| t.clock).max().unwrap_or(start);
        metrics.runtime = finish - start;
        Ok(metrics)
    }
}

impl Default for Program<'_> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Op;
    use tint_hw::machine::MachineConfig;
    use tint_hw::types::CoreId;

    fn setup(n: usize) -> (System, Vec<SimThread>) {
        let mut sys = System::boot(MachineConfig::tiny());
        let cores: Vec<_> = (0..n).map(CoreId).collect();
        let threads = SimThread::spawn_all(&mut sys, &cores);
        (sys, threads)
    }

    fn compute(steps: u64, each: u64) -> Box<dyn SectionBody + 'static> {
        Box::new((0..steps).map(move |_| Op::Compute(each)))
    }

    #[test]
    fn serial_parallel_serial_program() {
        let (mut sys, mut threads) = setup(2);
        let m = Program::new()
            .serial(compute(2, 50)) // 100 cycles serial
            .parallel(vec![compute(3, 100), compute(1, 100)]) // barrier at +300
            .serial(compute(1, 25)) // 25 cycles serial
            .run(&mut sys, &mut threads)
            .unwrap();
        assert_eq!(m.runtime, 425);
        assert_eq!(m.serial_cycles, 125);
        assert_eq!(m.thread_runtime, vec![300, 100]);
        assert_eq!(m.thread_idle, vec![0, 200]);
        assert_eq!(m.parallel_sections, 1);
    }

    #[test]
    fn multiple_parallel_sections_accumulate_idle() {
        let (mut sys, mut threads) = setup(2);
        let m = Program::new()
            .parallel(vec![compute(2, 100), compute(1, 100)])
            .parallel(vec![compute(1, 100), compute(4, 100)])
            .run(&mut sys, &mut threads)
            .unwrap();
        assert_eq!(m.thread_idle, vec![300, 100]);
        assert_eq!(m.total_idle(), 400);
        assert_eq!(m.runtime, 600);
    }

    #[test]
    fn empty_program_runs() {
        let (mut sys, mut threads) = setup(1);
        let m = Program::new().run(&mut sys, &mut threads).unwrap();
        assert_eq!(m.runtime, 0);
        assert!(Program::new().is_empty());
    }

    #[test]
    fn program_len_counts_sections() {
        let p = Program::new()
            .serial(compute(1, 1))
            .parallel(vec![compute(1, 1)]);
        assert_eq!(p.len(), 2);
    }
}
