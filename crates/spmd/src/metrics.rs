//! Run metrics: the paper's four measurements (§V.B).
//!
//! *"We measured the benchmark's runtime, total idle time, runtime per
//! thread, and idle time per thread."*

/// Outcome of one parallel section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionOutcome {
    /// Cycle at which the section started (all threads aligned).
    pub start: u64,
    /// Per-thread end times.
    pub end: Vec<u64>,
    /// Barrier time = max(end).
    pub barrier: u64,
}

impl SectionOutcome {
    /// Build from a section's start time and per-thread end times.
    pub fn new(start: u64, end: Vec<u64>) -> Self {
        let barrier = end.iter().copied().max().unwrap_or(start);
        Self {
            start,
            end,
            barrier,
        }
    }

    /// Per-thread idle time at this section's barrier (Algorithm 3).
    pub fn idle(&self) -> Vec<u64> {
        self.end.iter().map(|&e| self.barrier - e).collect()
    }

    /// Per-thread busy time in this section.
    pub fn busy(&self) -> Vec<u64> {
        self.end.iter().map(|&e| e - self.start).collect()
    }
}

/// Aggregated metrics of one benchmark run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMetrics {
    /// Number of worker threads.
    pub threads: usize,
    /// Benchmark runtime: cycles from program start to last barrier/serial end.
    pub runtime: u64,
    /// Per-thread busy time accumulated over all parallel sections.
    pub thread_runtime: Vec<u64>,
    /// Per-thread idle time accumulated over all parallel-section barriers.
    pub thread_idle: Vec<u64>,
    /// Cycles spent in serial sections (master only).
    pub serial_cycles: u64,
    /// Number of parallel sections executed.
    pub parallel_sections: usize,
}

impl RunMetrics {
    /// Empty metrics for `threads` threads.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            runtime: 0,
            thread_runtime: vec![0; threads],
            thread_idle: vec![0; threads],
            serial_cycles: 0,
            parallel_sections: 0,
        }
    }

    /// Fold one parallel section into the totals.
    pub fn add_section(&mut self, s: &SectionOutcome) {
        assert_eq!(s.end.len(), self.threads);
        for (acc, b) in self.thread_runtime.iter_mut().zip(s.busy()) {
            *acc += b;
        }
        for (acc, i) in self.thread_idle.iter_mut().zip(s.idle()) {
            *acc += i;
        }
        self.parallel_sections += 1;
    }

    /// Total idle time over all threads.
    pub fn total_idle(&self) -> u64 {
        self.thread_idle.iter().sum()
    }

    /// Slowest thread's accumulated parallel runtime.
    pub fn max_thread_runtime(&self) -> u64 {
        self.thread_runtime.iter().copied().max().unwrap_or(0)
    }

    /// Fastest thread's accumulated parallel runtime.
    pub fn min_thread_runtime(&self) -> u64 {
        self.thread_runtime.iter().copied().min().unwrap_or(0)
    }

    /// Largest accumulated per-thread idle.
    pub fn max_thread_idle(&self) -> u64 {
        self.thread_idle.iter().copied().max().unwrap_or(0)
    }

    /// The max−min spread of thread runtimes: the paper's imbalance measure
    /// ("difference in maximum thread running time and minimum thread
    /// running time").
    pub fn runtime_spread(&self) -> u64 {
        self.max_thread_runtime() - self.min_thread_runtime()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_outcome_idle_and_busy() {
        let s = SectionOutcome::new(100, vec![300, 500, 400]);
        assert_eq!(s.barrier, 500);
        assert_eq!(s.idle(), vec![200, 0, 100]);
        assert_eq!(s.busy(), vec![200, 400, 300]);
    }

    #[test]
    fn metrics_accumulate_over_sections() {
        let mut m = RunMetrics::new(2);
        m.add_section(&SectionOutcome::new(0, vec![100, 300]));
        m.add_section(&SectionOutcome::new(300, vec![500, 400]));
        assert_eq!(m.thread_runtime, vec![300, 400]);
        assert_eq!(m.thread_idle, vec![200, 100]);
        assert_eq!(m.total_idle(), 300);
        assert_eq!(m.parallel_sections, 2);
        assert_eq!(m.max_thread_runtime(), 400);
        assert_eq!(m.min_thread_runtime(), 300);
        assert_eq!(m.runtime_spread(), 100);
        assert_eq!(m.max_thread_idle(), 200);
    }

    #[test]
    fn empty_section_barrier_is_start() {
        let s = SectionOutcome::new(42, vec![]);
        assert_eq!(s.barrier, 42);
    }
}
