//! Time-sliced round-robin scheduling of short-lived tasks.
//!
//! The fork-join [`Program`](crate::Program) model runs one immortal team to
//! completion; multi-tenant churn (ROADMAP item 1) needs the opposite: tasks
//! that *arrive* over simulated time, share cores, run for a bounded
//! lifetime, and *exit* — exercising the kernel's full reclamation path on
//! every completion. This module provides that harness: a deterministic
//! round-robin scheduler with a fixed time quantum per core.
//!
//! Determinism follows the engine's rule: among cores with runnable work,
//! always advance the one with the smallest local clock (ties by core
//! index). A core with an empty run queue jumps its clock forward to the
//! next arrival; simulated time never depends on host scheduling.

use crate::engine::{Op, SectionBody};
use tint_hw::types::CoreId;
use tint_kernel::{Errno, Tid};
use tintmalloc::System;

/// One task arrival: when, where, and how to set the task up.
///
/// `setup` runs at admission time on the scheduler's clock: it spawns the
/// kernel task (colors, policies, heap regions — whatever the tenant needs)
/// and returns the task id plus its op stream. **Contract:** on `Err` the
/// closure must not leak a task — anything it spawned it must have
/// [`System::exit`]ed before returning, so a failed admission leaves the
/// kernel exactly as it found it.
pub struct Job<'a> {
    /// Simulated cycle the task becomes runnable.
    pub arrival: u64,
    /// Core the task is pinned to (the paper's static-pinning model).
    pub core: CoreId,
    /// Admission-time task construction (see the leak contract above).
    #[allow(clippy::type_complexity)]
    pub setup: Box<dyn FnOnce(&mut System) -> Result<(Tid, Box<dyn SectionBody + 'a>), Errno> + 'a>,
}

/// Scheduler parameters.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    /// Time slice in cycles: a job is preempted (rotated to the back of its
    /// core's queue) once it has consumed at least this many cycles.
    pub quantum: u64,
    /// Panic ceiling on total executed ops — a runaway-body backstop, like
    /// the engine's per-section budget.
    pub ops_budget: u64,
    /// Run [`System::check_invariants`] every this many executed ops
    /// (`0` = never). O(frames) per check — for tests and smoke runs.
    pub check_every: u64,
}

impl Default for RoundRobin {
    fn default() -> Self {
        Self {
            quantum: 10_000,
            ops_budget: u64::MAX,
            check_every: 0,
        }
    }
}

/// What a churn run did, in aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChurnOutcome {
    /// Jobs admitted (setup attempted).
    pub arrivals: u64,
    /// Tasks that ran their op stream to completion and exited.
    pub completed: u64,
    /// Tasks killed early: failed setup, or a mid-run allocation error
    /// (e.g. `ENOMEM` under [`ExhaustionPolicy::Strict`]); their frames are
    /// reclaimed through the same exit path as a normal completion.
    pub failed: u64,
    /// Largest core clock at the end — the simulated uptime.
    pub makespan: u64,
    /// Ops executed across all tasks.
    pub total_ops: u64,
    /// Preemptions that handed the core to a *different* runnable task.
    pub context_switches: u64,
}

/// Per-core scheduler state.
struct CoreState<'a> {
    clock: u64,
    /// FIFO run queue of admitted tasks.
    queue: std::collections::VecDeque<(Tid, Box<dyn SectionBody + 'a>)>,
    /// This core's arrivals, earliest first; `next` indexes the first
    /// not-yet-admitted job.
    arrivals: Vec<Job<'a>>,
    next: usize,
}

impl<'a> CoreState<'a> {
    fn has_work(&self) -> bool {
        !self.queue.is_empty() || self.next < self.arrivals.len()
    }

    /// The clock at which this core can next run something.
    fn ready_at(&self) -> u64 {
        if self.queue.is_empty() {
            self.clock.max(self.arrivals[self.next].arrival)
        } else {
            self.clock
        }
    }
}

impl RoundRobin {
    /// Run `jobs` to completion: every job is admitted at its arrival time
    /// on its core, time-sliced against its core-mates, and exited when its
    /// op stream ends (or errors). Returns once every queue is empty.
    pub fn run<'a>(&self, sys: &mut System, jobs: Vec<Job<'a>>) -> ChurnOutcome {
        let mut out = ChurnOutcome::default();
        let mut cores: Vec<CoreState<'a>> = Vec::new();
        for job in jobs {
            let idx = job.core.0;
            while cores.len() <= idx {
                cores.push(CoreState {
                    clock: 0,
                    queue: std::collections::VecDeque::new(),
                    arrivals: Vec::new(),
                    next: 0,
                });
            }
            cores[idx].arrivals.push(job);
        }
        for c in &mut cores {
            c.arrivals.sort_by_key(|j| j.arrival);
        }

        // Deterministic pick: smallest ready time, ties by core index.
        while let Some(ci) = cores
            .iter()
            .enumerate()
            .filter(|(_, c)| c.has_work())
            .min_by_key(|&(i, c)| (c.ready_at(), i))
            .map(|(i, _)| i)
        {
            let core = &mut cores[ci];
            core.clock = core.ready_at();
            // Admit everything that has arrived by now, in arrival order.
            while core.next < core.arrivals.len() && core.arrivals[core.next].arrival <= core.clock
            {
                let job = &mut core.arrivals[core.next];
                let setup = std::mem::replace(&mut job.setup, Box::new(|_| Err(Errno::Einval)));
                core.next += 1;
                out.arrivals += 1;
                match setup(sys) {
                    Ok((tid, body)) => core.queue.push_back((tid, body)),
                    Err(_) => out.failed += 1,
                }
            }
            let Some((tid, mut body)) = core.queue.pop_front() else {
                continue; // admission failed; re-pick
            };

            // One quantum: ops advance the core clock until the slice is
            // spent, the body ends, or an op errors out.
            let mut slice = 0u64;
            let fate = loop {
                if slice >= self.quantum {
                    break Fate::Preempted;
                }
                match body.next_op() {
                    None => break Fate::Completed,
                    Some(op) => {
                        out.total_ops += 1;
                        assert!(
                            out.total_ops <= self.ops_budget,
                            "churn run exceeded its operation budget ({})",
                            self.ops_budget
                        );
                        let cost = match op {
                            Op::Compute(c) => c,
                            Op::Access { addr, rw } => {
                                match sys.access(tid, addr, rw, core.clock) {
                                    Ok(a) => a.latency,
                                    Err(_) => break Fate::Errored,
                                }
                            }
                        };
                        // A zero-cost op still consumes a cycle of slice so
                        // pathological bodies cannot monopolize the core.
                        core.clock += cost;
                        slice += cost.max(1);
                        if self.check_every > 0 && out.total_ops % self.check_every == 0 {
                            sys.check_invariants();
                        }
                    }
                }
            };
            match fate {
                Fate::Completed => {
                    sys.exit(tid).expect("completed task exists");
                    out.completed += 1;
                }
                Fate::Errored => {
                    sys.exit(tid).expect("errored task exists");
                    out.failed += 1;
                }
                Fate::Preempted => {
                    if !core.queue.is_empty() {
                        out.context_switches += 1;
                    }
                    core.queue.push_back((tid, body));
                }
            }
        }
        out.makespan = cores.iter().map(|c| c.clock).max().unwrap_or(0);
        out
    }
}

/// How a quantum ended.
enum Fate {
    Completed,
    Errored,
    Preempted,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::machine::MachineConfig;
    use tint_hw::types::{Rw, VirtAddr, PAGE_SIZE};

    fn sys() -> System {
        System::boot(MachineConfig::tiny())
    }

    /// A job that mallocs `pages` pages and walks them `ops` times.
    fn walker(arrival: u64, core: usize, pages: u64, ops: u64) -> Job<'static> {
        Job {
            arrival,
            core: CoreId(core),
            setup: Box::new(move |sys: &mut System| {
                let tid = sys.spawn(CoreId(core));
                let base = match sys.malloc(tid, pages * PAGE_SIZE) {
                    Ok(b) => b,
                    Err(e) => {
                        sys.exit(tid).expect("spawned above");
                        return Err(e);
                    }
                };
                let body = (0..ops).map(move |i| Op::Access {
                    addr: VirtAddr(base.0 + (i * 64) % (pages * PAGE_SIZE)),
                    rw: Rw::Read,
                });
                Ok((tid, Box::new(body) as Box<dyn SectionBody>))
            }),
        }
    }

    #[test]
    fn single_job_completes_and_exits() {
        let mut s = sys();
        let baseline = s.kernel().pool_snapshot();
        let out = RoundRobin::default().run(&mut s, vec![walker(0, 0, 2, 10)]);
        assert_eq!(out.arrivals, 1);
        assert_eq!(out.completed, 1);
        assert_eq!(out.failed, 0);
        assert_eq!(out.total_ops, 10);
        assert!(out.makespan > 0);
        assert_eq!(s.kernel().pool_snapshot(), baseline, "task fully reclaimed");
        s.check_invariants();
    }

    #[test]
    fn same_core_jobs_time_slice() {
        let mut s = sys();
        let rr = RoundRobin {
            quantum: 500,
            ..RoundRobin::default()
        };
        let out = rr.run(&mut s, vec![walker(0, 0, 2, 200), walker(0, 0, 2, 200)]);
        assert_eq!(out.completed, 2);
        assert!(
            out.context_switches > 0,
            "a 500-cycle quantum must preempt 200-access bodies"
        );
        s.check_invariants();
    }

    #[test]
    fn idle_core_jumps_to_next_arrival() {
        let mut s = sys();
        let out = RoundRobin::default().run(&mut s, vec![walker(1_000_000, 1, 1, 1)]);
        assert_eq!(out.completed, 1);
        assert!(out.makespan >= 1_000_000, "clock jumped to the arrival");
    }

    #[test]
    fn runs_are_deterministic() {
        let jobs = || {
            vec![
                walker(0, 0, 2, 50),
                walker(100, 0, 3, 80),
                walker(50, 1, 1, 30),
                walker(5_000, 1, 2, 60),
            ]
        };
        let mut s1 = sys();
        let mut s2 = sys();
        let o1 = RoundRobin::default().run(&mut s1, jobs());
        let o2 = RoundRobin::default().run(&mut s2, jobs());
        assert_eq!(o1, o2);
    }

    #[test]
    fn failed_setup_counts_and_leaks_nothing() {
        let mut s = sys();
        let baseline = s.kernel().pool_snapshot();
        let bad = Job {
            arrival: 0,
            core: CoreId(0),
            setup: Box::new(|sys: &mut System| {
                let tid = sys.spawn(CoreId(0));
                sys.exit(tid).expect("spawned above");
                Err(Errno::Enomem)
            }),
        };
        let out = RoundRobin::default().run(&mut s, vec![bad, walker(0, 0, 1, 5)]);
        assert_eq!(out.arrivals, 2);
        assert_eq!(out.failed, 1);
        assert_eq!(out.completed, 1);
        assert_eq!(s.kernel().pool_snapshot(), baseline);
        s.check_invariants();
    }

    #[test]
    #[should_panic(expected = "exceeded its operation budget")]
    fn ops_budget_trips() {
        let mut s = sys();
        let rr = RoundRobin {
            ops_budget: 5,
            ..RoundRobin::default()
        };
        rr.run(&mut s, vec![walker(0, 0, 1, 100)]);
    }
}
