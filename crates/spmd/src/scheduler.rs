//! Time-sliced round-robin scheduling of short-lived tasks.
//!
//! The fork-join [`Program`](crate::Program) model runs one immortal team to
//! completion; multi-tenant churn (ROADMAP item 1) needs the opposite: tasks
//! that *arrive* over simulated time, share cores, run for a bounded
//! lifetime, and *exit* — exercising the kernel's full reclamation path on
//! every completion. This module provides that harness: a deterministic
//! round-robin scheduler with a fixed time quantum per core.
//!
//! Determinism follows the engine's rule: among cores with runnable work,
//! always advance the one with the smallest local clock (ties by core
//! index). A core with an empty run queue jumps its clock forward to the
//! next arrival; simulated time never depends on host scheduling.
//!
//! ## Surviving memory pressure
//!
//! Sustained over-commit turns every kernel error into a policy question,
//! and the scheduler owns the answers:
//!
//! * **Admission control** — with [`RoundRobin::admission_control`] set, a
//!   job arriving while the kernel reports [`MemPressure::Low`] or worse is
//!   *re-queued* at `arrival + backoff` instead of admitted; after
//!   [`RoundRobin::max_retries`] deferrals it is dropped as
//!   [`ChurnOutcome::rejected_admission`].
//! * **Retry with backoff** — a transient `EAGAIN` (the fault injector's
//!   replenish-path faults) retries the same operation after an
//!   exponentially growing pause in *simulated* cycles, bounded by
//!   [`RoundRobin::max_retries`]; schedules are bit-deterministic because
//!   the backoff clock is the core's own.
//! * **OOM victim kill** — with [`RoundRobin::oom`] armed, a mid-run or
//!   setup `ENOMEM` under pressure invokes [`System::oom_kill`]; the
//!   victim's queue entry is skipped when it surfaces, and a task that
//!   selects *itself* simply ends (it is already destroyed).
//! * **Incremental auditing** — [`RoundRobin::audit_frames`] > 0 runs one
//!   bounded [`System::audit_step`] slice after every quantum, keeping
//!   invariant checking *on* for simulated-hours runs at O(K) per quantum
//!   instead of O(frames) stop-the-world sweeps.
//!
//! Every kernel error that previously panicked the harness is now a counted
//! outcome: see [`ChurnOutcome`].

use crate::engine::{Op, SectionBody};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use tint_hw::types::CoreId;
use tint_kernel::{AuditCursor, Errno, MemPressure, Tid, VictimPolicy, MAX_ORDER};
use tintmalloc::System;

/// One task arrival: when, where, and how to set the task up.
///
/// `setup` runs at admission time on the scheduler's clock: it spawns the
/// kernel task (colors, policies, heap regions — whatever the tenant needs)
/// and returns the task id plus its op stream. **Contract:** on `Err` the
/// closure must not leak a task — anything it spawned it must have
/// [`System::exit`]ed before returning, so a failed admission leaves the
/// kernel exactly as it found it. The closure is `FnMut` because a
/// transient failure (`EAGAIN`, or `ENOMEM` relieved by an OOM kill) may be
/// *retried* after a backoff: each call must build a fresh task.
pub struct Job<'a> {
    /// Simulated cycle the task becomes runnable.
    pub arrival: u64,
    /// Core the task is pinned to (the paper's static-pinning model).
    pub core: CoreId,
    /// Admission-time task construction (see the leak/retry contract above).
    #[allow(clippy::type_complexity)]
    pub setup: Box<dyn FnMut(&mut System) -> Result<(Tid, Box<dyn SectionBody + 'a>), Errno> + 'a>,
}

/// Scheduler parameters. The defaults reproduce the pre-pressure behaviour
/// exactly (no admission gate, no OOM killer, no incremental audit), so
/// existing harnesses run bit-identically unless they opt in.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    /// Time slice in cycles: a job is preempted (rotated to the back of its
    /// core's queue) once it has consumed at least this many cycles.
    pub quantum: u64,
    /// Ceiling on total executed ops — a runaway-body backstop. Exceeding
    /// it ends the run *gracefully*: every live task is exited, partial
    /// stats are returned, and [`ChurnOutcome::budget_exceeded`] is set.
    pub ops_budget: u64,
    /// Run [`System::check_invariants`] every this many executed ops
    /// (`0` = never). O(frames) per check — for tests and smoke runs; for
    /// long runs prefer [`RoundRobin::audit_frames`].
    pub check_every: u64,
    /// Frames examined by the *incremental* auditor after each quantum
    /// (`0` = off). Bounded per-quantum cost, full machine coverage over
    /// successive quanta — auditing that can stay on for simulated hours.
    pub audit_frames: u64,
    /// Defer admissions while the kernel reports pressure at or above
    /// [`MemPressure::Low`].
    pub admission_control: bool,
    /// First retry/defer pause in simulated cycles; doubles per attempt.
    pub backoff_base: u64,
    /// Ceiling on one backoff pause.
    pub backoff_cap: u64,
    /// Retries granted per job admission and per in-flight op before the
    /// failure becomes terminal (`0` = every transient failure is fatal,
    /// the pre-pressure behaviour).
    pub max_retries: u32,
    /// Arm the OOM killer: on `ENOMEM` under pressure, kill this policy's
    /// victim and retry. `None` (default) surfaces `ENOMEM` as a failure.
    pub oom: Option<VictimPolicy>,
}

impl Default for RoundRobin {
    fn default() -> Self {
        Self {
            quantum: 10_000,
            ops_budget: u64::MAX,
            check_every: 0,
            audit_frames: 0,
            admission_control: false,
            backoff_base: 4_096,
            backoff_cap: 262_144,
            max_retries: 6,
            oom: None,
        }
    }
}

/// What a churn run did, in aggregate. Every arrival ends in exactly one of
/// `completed`, `failed_setup`, `killed_mid_run`, `killed_oom`, or
/// `rejected_admission` (unless the run ended over budget, which abandons
/// in-flight work after exiting it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChurnOutcome {
    /// Jobs whose admission was attempted at least once.
    pub arrivals: u64,
    /// Tasks that ran their op stream to completion and exited.
    pub completed: u64,
    /// Jobs whose setup failed terminally (retries exhausted or a
    /// non-retryable error); nothing was admitted.
    pub failed_setup: u64,
    /// Tasks killed mid-run by a terminal op error (e.g. `ENOMEM` under
    /// [`ExhaustionPolicy::Strict`](tint_kernel::ExhaustionPolicy::Strict)
    /// with no OOM killer armed); reclaimed through the normal exit path.
    pub killed_mid_run: u64,
    /// Tasks destroyed by the OOM killer to relieve memory pressure.
    pub killed_oom: u64,
    /// Jobs dropped by admission control after exhausting their deferrals.
    pub rejected_admission: u64,
    /// The run ended because [`RoundRobin::ops_budget`] was exceeded; all
    /// live tasks were exited and the stats below are partial.
    pub budget_exceeded: bool,
    /// [`System::exit`] calls that themselves failed (counted, never
    /// panicking the harness).
    pub exit_errors: u64,
    /// Admissions deferred by the watermark gate (re-queued with backoff).
    pub admission_backoffs: u64,
    /// Operations retried after a transient `EAGAIN`.
    pub alloc_retries: u64,
    /// Frames examined by the incremental auditor across the run.
    pub audited_frames: u64,
    /// Largest core clock at the end — the simulated uptime.
    pub makespan: u64,
    /// Ops executed across all tasks.
    pub total_ops: u64,
    /// Preemptions that handed the core to a *different* runnable task.
    pub context_switches: u64,
}

impl ChurnOutcome {
    /// Arrivals that did **not** complete, across all failure fates.
    pub fn failed(&self) -> u64 {
        self.failed_setup + self.killed_mid_run + self.killed_oom + self.rejected_admission
    }
}

/// One uptime window of a pressure run: cumulative counters plus an
/// instantaneous snapshot of the memory pools, emitted by
/// [`RoundRobin::run_with_windows`] each time simulated time crosses a
/// window boundary. All-integer so runs compare with `==`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureWindow {
    /// Window boundary (a multiple of the window length; the final snapshot
    /// uses the makespan).
    pub end: u64,
    /// Cumulative completions.
    pub completed: u64,
    /// Cumulative OOM kills.
    pub killed_oom: u64,
    /// Cumulative admission rejections (terminal).
    pub rejected_admission: u64,
    /// Cumulative `EAGAIN` retries.
    pub alloc_retries: u64,
    /// Live tasks at the boundary.
    pub live_tasks: u64,
    /// Buddy free pages at the boundary.
    pub buddy_free: u64,
    /// Pages parked in the color lists at the boundary.
    pub color_pages: u64,
    /// Largest buddy order with a free block — the fragmentation signal
    /// (a machine that only has order-0 pages left cannot replenish color
    /// lists efficiently).
    pub largest_free_order: u32,
    /// Cumulative off-color + exhaustion-fallback allocations.
    pub off_color_allocs: u64,
    /// Cumulative on-color allocations.
    pub colored_allocs: u64,
    /// Cumulative frames examined by the incremental auditor.
    pub audited_frames: u64,
}

/// A not-yet-admitted job plus its retry budget consumed so far.
struct PendingJob<'a> {
    job: Job<'a>,
    attempts: u32,
}

/// Per-core scheduler state.
struct CoreState<'a> {
    clock: u64,
    /// FIFO run queue of admitted tasks.
    queue: VecDeque<(Tid, Box<dyn SectionBody + 'a>)>,
    /// Not-yet-admitted jobs keyed by `(ready_time, seq)`; `seq` preserves
    /// arrival order at equal times and indexes `jobs`.
    pending: BinaryHeap<Reverse<(u64, u64)>>,
    /// Slot storage for pending jobs (a popped entry takes its slot).
    jobs: Vec<Option<PendingJob<'a>>>,
}

impl CoreState<'_> {
    fn has_work(&self) -> bool {
        !self.queue.is_empty() || !self.pending.is_empty()
    }

    /// The clock at which this core can next run something.
    fn ready_at(&self) -> u64 {
        if self.queue.is_empty() {
            let Reverse((t, _)) = self.pending.peek().expect("has_work checked");
            self.clock.max(*t)
        } else {
            self.clock
        }
    }
}

/// How a quantum ended.
enum Fate {
    Completed,
    Errored,
    /// The running task was chosen by the OOM killer (self-kill): it is
    /// already destroyed, there is nothing to exit.
    OomVictim,
    Preempted,
    OverBudget,
}

impl RoundRobin {
    /// Run `jobs` to completion: every job is admitted at its arrival time
    /// on its core (or deferred under the admission gate), time-sliced
    /// against its core-mates, and exited when its op stream ends (or
    /// errors terminally). Returns once every queue is empty.
    pub fn run<'a>(&self, sys: &mut System, jobs: Vec<Job<'a>>) -> ChurnOutcome {
        self.run_with_windows(sys, jobs, 0).0
    }

    /// Like [`RoundRobin::run`], additionally emitting a [`PressureWindow`]
    /// snapshot every `window` simulated cycles (plus one final snapshot at
    /// the makespan). `window == 0` emits nothing.
    pub fn run_with_windows<'a>(
        &self,
        sys: &mut System,
        jobs: Vec<Job<'a>>,
        window: u64,
    ) -> (ChurnOutcome, Vec<PressureWindow>) {
        let mut out = ChurnOutcome::default();
        let mut windows = Vec::new();
        let mut next_window = if window == 0 { u64::MAX } else { window };
        let mut cursor = AuditCursor::default();
        // Tasks destroyed by the OOM killer while parked in a run queue;
        // their stale queue entries are skipped when popped.
        let mut killed: HashSet<Tid> = HashSet::new();
        let mut cores: Vec<CoreState<'a>> = Vec::new();
        for job in jobs {
            let idx = job.core.0;
            while cores.len() <= idx {
                cores.push(CoreState {
                    clock: 0,
                    queue: VecDeque::new(),
                    pending: BinaryHeap::new(),
                    jobs: Vec::new(),
                });
            }
            let core = &mut cores[idx];
            let seq = core.jobs.len() as u64;
            core.pending.push(Reverse((job.arrival, seq)));
            core.jobs.push(Some(PendingJob { job, attempts: 0 }));
        }

        // Deterministic pick: smallest ready time, ties by core index. The
        // minimum ready time never decreases, so it is the run's virtual
        // time — window boundaries are crossed in order.
        while let Some(ci) = cores
            .iter()
            .enumerate()
            .filter(|(_, c)| c.has_work())
            .min_by_key(|&(i, c)| (c.ready_at(), i))
            .map(|(i, _)| i)
        {
            let now = cores[ci].ready_at();
            while now >= next_window {
                windows.push(Self::window_snapshot(sys, &out, next_window));
                next_window = next_window.saturating_add(window);
            }
            let core = &mut cores[ci];
            core.clock = now;
            // Admit everything that is due by now, in (ready, seq) order.
            while let Some(&Reverse((t, seq))) = core.pending.peek() {
                if t > core.clock {
                    break;
                }
                core.pending.pop();
                let mut pj = core.jobs[seq as usize].take().expect("pending job slot");
                if pj.attempts == 0 {
                    out.arrivals += 1;
                }
                if self.admission_control && sys.mem_pressure() >= MemPressure::Low {
                    // Watermark gate: no new tenants while memory is tight.
                    sys.note_admission_reject();
                    if pj.attempts >= self.max_retries {
                        out.rejected_admission += 1;
                    } else {
                        pj.attempts += 1;
                        out.admission_backoffs += 1;
                        let ready = core.clock + self.backoff(pj.attempts);
                        core.pending.push(Reverse((ready, seq)));
                        core.jobs[seq as usize] = Some(pj);
                    }
                    continue;
                }
                match (pj.job.setup)(sys) {
                    Ok((tid, body)) => core.queue.push_back((tid, body)),
                    Err(Errno::Eagain) if pj.attempts < self.max_retries => {
                        pj.attempts += 1;
                        out.alloc_retries += 1;
                        sys.note_alloc_retry();
                        let ready = core.clock + self.backoff(pj.attempts);
                        core.pending.push(Reverse((ready, seq)));
                        core.jobs[seq as usize] = Some(pj);
                    }
                    Err(Errno::Enomem)
                        if self.oom.is_some()
                            && pj.attempts < self.max_retries
                            && sys.mem_pressure() >= MemPressure::Low =>
                    {
                        match sys.oom_kill(self.oom.expect("checked above")) {
                            Ok(kill) => {
                                out.killed_oom += 1;
                                killed.insert(kill.victim);
                                pj.attempts += 1;
                                let ready = core.clock + self.backoff(pj.attempts);
                                core.pending.push(Reverse((ready, seq)));
                                core.jobs[seq as usize] = Some(pj);
                            }
                            // Nobody left to kill: the failure is terminal.
                            Err(_) => out.failed_setup += 1,
                        }
                    }
                    Err(_) => out.failed_setup += 1,
                }
            }
            let Some((tid, mut body)) = core.queue.pop_front() else {
                continue; // admission deferred/failed; re-pick
            };
            if killed.remove(&tid) {
                continue; // reaped by the OOM killer while queued
            }

            // One quantum: ops advance the core clock until the slice is
            // spent, the body ends, or an op fails terminally.
            let mut slice = 0u64;
            let fate = 'quantum: loop {
                if slice >= self.quantum {
                    break Fate::Preempted;
                }
                match body.next_op() {
                    None => break Fate::Completed,
                    Some(op) => {
                        out.total_ops += 1;
                        if out.total_ops > self.ops_budget {
                            break Fate::OverBudget;
                        }
                        let cost = match op {
                            Op::Compute(c) => c,
                            Op::Access { addr, rw } => {
                                let mut attempts = 0u32;
                                loop {
                                    match sys.access(tid, addr, rw, core.clock) {
                                        Ok(a) => break a.latency,
                                        Err(Errno::Eagain) if attempts < self.max_retries => {
                                            // Transient: back off on the
                                            // core's own clock and retry.
                                            attempts += 1;
                                            out.alloc_retries += 1;
                                            sys.note_alloc_retry();
                                            let pause = self.backoff(attempts);
                                            core.clock += pause;
                                            slice += pause;
                                        }
                                        Err(Errno::Enomem)
                                            if self.oom.is_some()
                                                && attempts < self.max_retries
                                                && sys.mem_pressure() >= MemPressure::Low =>
                                        {
                                            attempts += 1;
                                            match sys.oom_kill(self.oom.expect("checked above")) {
                                                Ok(kill) => {
                                                    out.killed_oom += 1;
                                                    if kill.victim == tid {
                                                        break 'quantum Fate::OomVictim;
                                                    }
                                                    killed.insert(kill.victim);
                                                }
                                                Err(_) => break 'quantum Fate::Errored,
                                            }
                                        }
                                        Err(_) => break 'quantum Fate::Errored,
                                    }
                                }
                            }
                        };
                        // A zero-cost op still consumes a cycle of slice so
                        // pathological bodies cannot monopolize the core.
                        core.clock += cost;
                        slice += cost.max(1);
                        if self.check_every > 0 && out.total_ops % self.check_every == 0 {
                            sys.check_invariants();
                        }
                    }
                }
            };
            match fate {
                Fate::Completed => {
                    Self::exit_task(sys, tid, &mut out);
                    out.completed += 1;
                }
                Fate::Errored => {
                    Self::exit_task(sys, tid, &mut out);
                    out.killed_mid_run += 1;
                }
                Fate::OomVictim => {} // already destroyed by the kernel
                Fate::Preempted => {
                    if !core.queue.is_empty() {
                        out.context_switches += 1;
                    }
                    core.queue.push_back((tid, body));
                }
                Fate::OverBudget => {
                    out.budget_exceeded = true;
                    Self::exit_task(sys, tid, &mut out);
                    out.killed_mid_run += 1;
                }
            }
            if self.audit_frames > 0 {
                out.audited_frames += sys.audit_step(&mut cursor, self.audit_frames);
            }
            if out.budget_exceeded {
                break;
            }
        }
        if out.budget_exceeded {
            // Graceful shutdown: exit every still-live task so nothing
            // leaks; un-admitted jobs are simply dropped (partial stats).
            for core in &mut cores {
                while let Some((tid, _)) = core.queue.pop_front() {
                    if killed.remove(&tid) {
                        continue;
                    }
                    Self::exit_task(sys, tid, &mut out);
                    out.killed_mid_run += 1;
                }
            }
        }
        out.makespan = cores.iter().map(|c| c.clock).max().unwrap_or(0);
        if window != 0 {
            windows.push(Self::window_snapshot(sys, &out, out.makespan));
        }
        (out, windows)
    }

    /// Exit `tid`, counting (never panicking on) a failed exit.
    fn exit_task(sys: &mut System, tid: Tid, out: &mut ChurnOutcome) {
        if sys.exit(tid).is_err() {
            out.exit_errors += 1;
        }
    }

    /// Exponential backoff for the `attempts`-th retry, in simulated cycles.
    fn backoff(&self, attempts: u32) -> u64 {
        let shift = attempts.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(1 << shift)
            .min(self.backoff_cap)
            .max(1)
    }

    /// Cumulative counters + instantaneous pool state at `end`.
    fn window_snapshot(sys: &System, out: &ChurnOutcome, end: u64) -> PressureWindow {
        let k = sys.kernel();
        let st = k.stats();
        let (buddy_free, color_pages) = k.pool_snapshot();
        let largest_free_order = (0..=MAX_ORDER)
            .rev()
            .find(|&o| k.buddy().free_blocks(o) > 0)
            .unwrap_or(0);
        PressureWindow {
            end,
            completed: out.completed,
            killed_oom: out.killed_oom,
            rejected_admission: out.rejected_admission,
            alloc_retries: out.alloc_retries,
            live_tasks: k.task_count() as u64,
            buddy_free,
            color_pages,
            largest_free_order,
            off_color_allocs: st.off_color_allocs + st.exhaustion_fallbacks,
            colored_allocs: st.colored_allocs,
            audited_frames: out.audited_frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::machine::MachineConfig;
    use tint_hw::types::{Rw, VirtAddr, PAGE_SIZE};
    use tint_kernel::Watermarks;

    fn sys() -> System {
        System::boot(MachineConfig::tiny())
    }

    /// A job that mallocs `pages` pages and walks them `ops` times.
    fn walker(arrival: u64, core: usize, pages: u64, ops: u64) -> Job<'static> {
        Job {
            arrival,
            core: CoreId(core),
            setup: Box::new(move |sys: &mut System| {
                let tid = sys.spawn(CoreId(core));
                let base = match sys.malloc(tid, pages * PAGE_SIZE) {
                    Ok(b) => b,
                    Err(e) => {
                        let _ = sys.exit(tid);
                        return Err(e);
                    }
                };
                let body = (0..ops).map(move |i| Op::Access {
                    addr: VirtAddr(base.0 + (i * PAGE_SIZE) % (pages * PAGE_SIZE)),
                    rw: Rw::Read,
                });
                Ok((tid, Box::new(body) as Box<dyn SectionBody>))
            }),
        }
    }

    #[test]
    fn single_job_completes_and_exits() {
        let mut s = sys();
        let baseline = s.kernel().pool_snapshot();
        let out = RoundRobin::default().run(&mut s, vec![walker(0, 0, 2, 10)]);
        assert_eq!(out.arrivals, 1);
        assert_eq!(out.completed, 1);
        assert_eq!(out.failed(), 0);
        assert_eq!(out.total_ops, 10);
        assert!(out.makespan > 0);
        assert_eq!(s.kernel().pool_snapshot(), baseline, "task fully reclaimed");
        s.check_invariants();
    }

    #[test]
    fn same_core_jobs_time_slice() {
        let mut s = sys();
        let rr = RoundRobin {
            quantum: 500,
            ..RoundRobin::default()
        };
        let out = rr.run(&mut s, vec![walker(0, 0, 2, 200), walker(0, 0, 2, 200)]);
        assert_eq!(out.completed, 2);
        assert!(
            out.context_switches > 0,
            "a 500-cycle quantum must preempt 200-access bodies"
        );
        s.check_invariants();
    }

    #[test]
    fn idle_core_jumps_to_next_arrival() {
        let mut s = sys();
        let out = RoundRobin::default().run(&mut s, vec![walker(1_000_000, 1, 1, 1)]);
        assert_eq!(out.completed, 1);
        assert!(out.makespan >= 1_000_000, "clock jumped to the arrival");
    }

    #[test]
    fn runs_are_deterministic() {
        let jobs = || {
            vec![
                walker(0, 0, 2, 50),
                walker(100, 0, 3, 80),
                walker(50, 1, 1, 30),
                walker(5_000, 1, 2, 60),
            ]
        };
        let mut s1 = sys();
        let mut s2 = sys();
        let o1 = RoundRobin::default().run(&mut s1, jobs());
        let o2 = RoundRobin::default().run(&mut s2, jobs());
        assert_eq!(o1, o2);
    }

    #[test]
    fn failed_setup_counts_and_leaks_nothing() {
        let mut s = sys();
        let baseline = s.kernel().pool_snapshot();
        let bad = Job {
            arrival: 0,
            core: CoreId(0),
            setup: Box::new(|sys: &mut System| {
                let tid = sys.spawn(CoreId(0));
                let _ = sys.exit(tid);
                Err(Errno::Enomem)
            }),
        };
        let out = RoundRobin::default().run(&mut s, vec![bad, walker(0, 0, 1, 5)]);
        assert_eq!(out.arrivals, 2);
        assert_eq!(out.failed_setup, 1);
        assert_eq!(out.failed(), 1);
        assert_eq!(out.completed, 1);
        assert_eq!(s.kernel().pool_snapshot(), baseline);
        s.check_invariants();
    }

    #[test]
    fn budget_exhaustion_ends_gracefully_with_partial_stats() {
        let mut s = sys();
        let baseline = s.kernel().pool_snapshot();
        let rr = RoundRobin {
            ops_budget: 5,
            ..RoundRobin::default()
        };
        // Two runaway bodies on different cores; the run must stop at the
        // budget, exit every live task, and report what it managed.
        let out = rr.run(&mut s, vec![walker(0, 0, 1, 100), walker(0, 1, 1, 100)]);
        assert!(out.budget_exceeded, "the backstop tripped");
        assert_eq!(out.total_ops, 6, "the over-budget op is counted, not run");
        assert!(
            out.killed_mid_run >= 1,
            "live tasks were killed, not leaked"
        );
        assert_eq!(out.exit_errors, 0);
        assert_eq!(
            s.kernel().pool_snapshot(),
            baseline,
            "graceful shutdown reclaims everything"
        );
        s.check_invariants();
    }

    #[test]
    fn exit_failure_is_counted_not_fatal() {
        // Regression for the four historical `sys.exit(tid).expect(...)`
        // panics: a task that dies behind the scheduler's back (here: a
        // hostile sibling job exits tid 1 directly) must surface as counted
        // outcomes, never a harness panic.
        let mut s = sys();
        let baseline = s.kernel().pool_snapshot();
        let hostile = Job {
            arrival: 100,
            core: CoreId(0),
            setup: Box::new(|sys: &mut System| {
                // The first walker's task is Tid(1) (tids are sequential).
                let _ = sys.exit(Tid(1));
                Err(Errno::Einval)
            }),
        };
        let rr = RoundRobin {
            quantum: 50,
            ..RoundRobin::default()
        };
        let out = rr.run(&mut s, vec![walker(0, 0, 2, 500), hostile]);
        assert_eq!(out.arrivals, 2);
        assert!(
            out.killed_mid_run >= 1 && out.exit_errors >= 1,
            "the orphaned task errored and its exit failure was counted: {out:?}"
        );
        assert_eq!(s.kernel().pool_snapshot(), baseline);
        s.check_invariants();
    }

    #[test]
    fn admission_control_defers_then_rejects_under_pressure() {
        let mut s = sys();
        let frames = s.machine().mapping.frame_count();
        // Pin the low watermark above the whole machine: pressure is Low
        // from the first cycle, so every admission is deferred and, after
        // the retries run out, dropped.
        s.set_watermarks(Watermarks {
            low: frames + 1,
            min: 1,
        });
        let rr = RoundRobin {
            admission_control: true,
            max_retries: 3,
            ..RoundRobin::default()
        };
        let out = rr.run(&mut s, vec![walker(0, 0, 1, 5), walker(10, 1, 1, 5)]);
        assert_eq!(out.arrivals, 2);
        assert_eq!(out.completed, 0);
        assert_eq!(out.rejected_admission, 2);
        assert_eq!(out.admission_backoffs, 2 * 3, "max_retries deferrals each");
        assert_eq!(out.failed(), 2);
        assert_eq!(s.kernel().stats().admission_rejects, 2 * 4);
        s.check_invariants();
    }

    #[test]
    fn oom_kill_relieves_pressure_mid_run() {
        let mut s = sys();
        let frames = s.machine().mapping.frame_count();
        // Leave only a sliver of memory: two 40-page walkers cannot both
        // fit, so the second's faults hit ENOMEM and the armed killer must
        // sacrifice somebody.
        s.kernel_mut().consume_boot_noise(frames - 64);
        let baseline = s.kernel().pool_snapshot();
        let rr = RoundRobin {
            quantum: 2_000,
            oom: Some(VictimPolicy::LargestFootprint),
            audit_frames: 128,
            ..RoundRobin::default()
        };
        let out = rr.run(&mut s, vec![walker(0, 0, 40, 300), walker(0, 1, 40, 300)]);
        assert!(out.killed_oom >= 1, "the killer fired: {out:?}");
        assert_eq!(out.completed + out.failed(), 2, "every arrival accounted");
        assert_eq!(out.exit_errors, 0);
        assert!(out.audited_frames > 0, "the incremental audit ran");
        assert_eq!(s.kernel().stats().oom_kills, out.killed_oom);
        assert_eq!(s.kernel().pool_snapshot(), baseline, "kills leak nothing");
        s.check_invariants();
    }

    #[test]
    fn pressure_runs_are_deterministic_with_windows() {
        let run = || {
            let mut s = sys();
            let frames = s.machine().mapping.frame_count();
            s.kernel_mut().consume_boot_noise(frames - 96);
            let rr = RoundRobin {
                quantum: 1_000,
                admission_control: true,
                oom: Some(VictimPolicy::LargestFootprint),
                audit_frames: 64,
                max_retries: 4,
                ..RoundRobin::default()
            };
            let jobs = vec![
                walker(0, 0, 30, 200),
                walker(500, 1, 30, 200),
                walker(900, 0, 30, 200),
            ];
            rr.run_with_windows(&mut s, jobs, 50_000)
        };
        let (o1, w1) = run();
        let (o2, w2) = run();
        assert_eq!(o1, o2);
        assert_eq!(w1, w2);
        assert!(!w1.is_empty(), "windows were emitted");
        assert_eq!(w1.last().unwrap().end, o1.makespan, "final snapshot");
    }
}
