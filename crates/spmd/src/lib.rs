//! # tint-spmd — deterministic SPMD execution engine
//!
//! The paper evaluates TintMalloc on OpenMP fork-join programs: parallel
//! sections closed by implicit barriers, with serial sections on the master
//! thread in between. Early arrivers at a barrier idle until the slowest
//! thread arrives; **Algorithm 3** measures that idle time per thread:
//!
//! ```text
//! idle[tid] = max(end[0..nthreads]) − end[tid]
//! ```
//!
//! This crate provides:
//!
//! * [`engine`] — a conservative discrete-event scheduler: among runnable
//!   threads, always advance the one with the smallest local clock (ties by
//!   thread index). Every run is bit-deterministic; contention emerges from
//!   the timing model, not from host-thread scheduling.
//! * [`program`] — fork-join program structure: alternating
//!   [`program::Section::Serial`] and [`program::Section::Parallel`]
//!   sections over a fixed set of [`engine::SimThread`]s.
//! * [`metrics`] — per-run results: benchmark runtime, per-thread parallel
//!   runtime, per-thread and total idle time — the paper's four metrics
//!   (§V.B).
//! * [`scheduler`] — a time-sliced round-robin scheduler for short-lived
//!   tasks arriving over simulated time: the multi-tenant churn harness
//!   that exercises the kernel's task-exit reclamation path.

//! ```
//! use tint_hw::machine::MachineConfig;
//! use tint_hw::types::CoreId;
//! use tint_spmd::{Op, Program, SectionBody, SimThread};
//! use tintmalloc::System;
//!
//! let mut sys = System::boot(MachineConfig::tiny());
//! let mut team = SimThread::spawn_all(&mut sys, &[CoreId(0), CoreId(1)]);
//! let bodies: Vec<Box<dyn SectionBody>> = vec![
//!     Box::new((0..3).map(|_| Op::Compute(100))),
//!     Box::new((0..1).map(|_| Op::Compute(100))),
//! ];
//! let m = Program::new().parallel(bodies).run(&mut sys, &mut team).unwrap();
//! assert_eq!(m.runtime, 300);
//! assert_eq!(m.thread_idle, vec![0, 200]); // Algorithm 3
//! ```

pub mod engine;
pub mod metrics;
pub mod program;
pub mod scheduler;

pub use engine::{
    engine_mode, reference_pipeline, run_section_dynamic, set_engine_mode, EngineMode, Op,
    SectionBody, SimThread,
};
pub use metrics::{RunMetrics, SectionOutcome};
pub use program::{Program, Section};
pub use scheduler::{ChurnOutcome, Job, PressureWindow, RoundRobin};
