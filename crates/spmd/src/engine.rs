//! The conservative discrete-event SPMD scheduler.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tint_hw::types::{CoreId, Rw, VirtAddr};
use tint_kernel::{Errno, Tid};
use tintmalloc::System;

/// A simulated thread: a kernel task pinned to a core plus a local clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimThread {
    /// Kernel task id.
    pub tid: Tid,
    /// Core the thread is pinned to.
    pub core: CoreId,
    /// Local clock in cycles.
    pub clock: u64,
}

impl SimThread {
    /// Spawn an OpenMP-style team: the first core gets the group leader (a
    /// fresh address space); the rest are threads sharing that space.
    pub fn spawn_all(sys: &mut System, cores: &[CoreId]) -> Vec<SimThread> {
        assert!(!cores.is_empty());
        let leader = sys.spawn(cores[0]);
        let mut team = vec![SimThread {
            tid: leader,
            core: cores[0],
            clock: 0,
        }];
        for &core in &cores[1..] {
            team.push(SimThread {
                tid: sys.spawn_thread(core, leader).expect("leader exists"),
                core,
                clock: 0,
            });
        }
        team
    }
}

/// One operation of a thread's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Pure computation: advance the thread clock by `cycles`.
    Compute(u64),
    /// One memory reference.
    Access {
        /// Virtual address touched.
        addr: VirtAddr,
        /// Load or store.
        rw: Rw,
    },
}

/// A thread's work within one parallel (or serial) section, pulled
/// operation-by-operation so huge traces never materialize.
pub trait SectionBody {
    /// The next operation, or `None` when the thread reaches the barrier.
    fn next_op(&mut self) -> Option<Op>;
}

/// Blanket impl so closures/iterators can be used as bodies in tests.
impl<I: Iterator<Item = Op>> SectionBody for I {
    fn next_op(&mut self) -> Option<Op> {
        self.next()
    }
}

/// Run one parallel section: each thread executes its body to completion;
/// the section ends at the implicit barrier. Returns each thread's end time
/// (the engine caller computes idle per Algorithm 3).
///
/// Determinism: the runnable thread with the smallest clock executes its
/// next operation; ties break by thread index.
pub fn run_section(
    sys: &mut System,
    threads: &mut [SimThread],
    bodies: &mut [Box<dyn SectionBody + '_>],
    ops_budget: u64,
) -> Result<Vec<u64>, Errno> {
    assert_eq!(threads.len(), bodies.len(), "one body per thread");
    let n = threads.len();
    let mut end = vec![0u64; n];
    // Min-heap of (clock, thread index).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..n).map(|i| Reverse((threads[i].clock, i))).collect();
    let mut ops = 0u64;
    while let Some(Reverse((clock, i))) = heap.pop() {
        debug_assert_eq!(clock, threads[i].clock);
        match bodies[i].next_op() {
            Some(Op::Compute(c)) => {
                threads[i].clock += c;
                heap.push(Reverse((threads[i].clock, i)));
            }
            Some(Op::Access { addr, rw }) => {
                let acc = sys.access(threads[i].tid, addr, rw, threads[i].clock)?;
                threads[i].clock += acc.latency;
                heap.push(Reverse((threads[i].clock, i)));
            }
            None => {
                end[i] = threads[i].clock;
            }
        }
        ops += 1;
        assert!(
            ops <= ops_budget,
            "section exceeded its operation budget ({ops_budget}); runaway body?"
        );
    }
    // The implicit barrier: every thread resumes at the latest end time.
    let barrier = end.iter().copied().max().unwrap_or(0);
    for t in threads.iter_mut() {
        t.clock = barrier;
    }
    Ok(end)
}

/// Run a parallel section with **dynamic scheduling** (OpenMP
/// `schedule(dynamic)`): `chunks` is a shared work queue; every thread pulls
/// the next chunk when it finishes its current one, and the section ends
/// when the queue drains and every thread reaches the barrier. Determinism:
/// chunks are handed out in queue order to whichever thread asks first under
/// the min-clock rule (ties by thread index).
pub fn run_section_dynamic(
    sys: &mut System,
    threads: &mut [SimThread],
    mut chunks: std::collections::VecDeque<Box<dyn SectionBody + '_>>,
    ops_budget: u64,
) -> Result<Vec<u64>, Errno> {
    let n = threads.len();
    let mut end = vec![0u64; n];
    let mut current: Vec<Option<Box<dyn SectionBody + '_>>> = (0..n).map(|_| None).collect();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..n).map(|i| Reverse((threads[i].clock, i))).collect();
    let mut ops = 0u64;
    while let Some(Reverse((_, i))) = heap.pop() {
        // Ensure the thread has a chunk; pull the next one if needed.
        if current[i].is_none() {
            current[i] = chunks.pop_front();
        }
        let Some(body) = current[i].as_mut() else {
            end[i] = threads[i].clock; // queue drained: this thread is done
            continue;
        };
        match body.next_op() {
            Some(Op::Compute(c)) => threads[i].clock += c,
            Some(Op::Access { addr, rw }) => {
                let acc = sys.access(threads[i].tid, addr, rw, threads[i].clock)?;
                threads[i].clock += acc.latency;
            }
            None => {
                current[i] = None; // chunk finished; try the queue next turn
            }
        }
        heap.push(Reverse((threads[i].clock, i)));
        ops += 1;
        assert!(
            ops <= ops_budget,
            "dynamic section exceeded its operation budget ({ops_budget})"
        );
    }
    let barrier = end.iter().copied().max().unwrap_or(0);
    for t in threads.iter_mut() {
        t.clock = barrier;
    }
    Ok(end)
}

/// Run a serial section on the master (index 0); the other threads simply
/// wait (their clocks move to the master's end — serial time is excluded
/// from idle accounting, as in the paper's Algorithm 3 instrumentation).
pub fn run_serial(
    sys: &mut System,
    threads: &mut [SimThread],
    body: &mut (dyn SectionBody + '_),
    ops_budget: u64,
) -> Result<u64, Errno> {
    let master = &mut threads[0];
    let mut ops = 0u64;
    while let Some(op) = body.next_op() {
        match op {
            Op::Compute(c) => master.clock += c,
            Op::Access { addr, rw } => {
                let acc = sys.access(master.tid, addr, rw, master.clock)?;
                master.clock += acc.latency;
            }
        }
        ops += 1;
        assert!(ops <= ops_budget, "serial section exceeded its budget");
    }
    let end = threads[0].clock;
    for t in threads.iter_mut() {
        t.clock = end;
    }
    Ok(end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::machine::MachineConfig;

    fn setup(n: usize) -> (System, Vec<SimThread>) {
        let mut sys = System::boot(MachineConfig::tiny());
        let cores: Vec<_> = (0..n).map(CoreId).collect();
        let threads = SimThread::spawn_all(&mut sys, &cores);
        (sys, threads)
    }

    fn compute_body(steps: u64, each: u64) -> Box<dyn SectionBody + 'static> {
        Box::new((0..steps).map(move |_| Op::Compute(each)))
    }

    #[test]
    fn pure_compute_section_ends_deterministically() {
        let (mut sys, mut threads) = setup(2);
        let mut bodies = vec![compute_body(10, 100), compute_body(5, 100)];
        let end = run_section(&mut sys, &mut threads, &mut bodies, 1_000).unwrap();
        assert_eq!(end, vec![1000, 500]);
        // Barrier: both clocks jump to the max.
        assert!(threads.iter().all(|t| t.clock == 1000));
    }

    #[test]
    fn idle_is_max_minus_end() {
        let (mut sys, mut threads) = setup(2);
        let mut bodies = vec![compute_body(4, 100), compute_body(1, 100)];
        let end = run_section(&mut sys, &mut threads, &mut bodies, 1_000).unwrap();
        let max = *end.iter().max().unwrap();
        let idle: Vec<u64> = end.iter().map(|e| max - e).collect();
        assert_eq!(idle, vec![0, 300], "Algorithm 3");
    }

    #[test]
    fn access_ops_advance_by_latency() {
        let (mut sys, mut threads) = setup(1);
        let t = threads[0].tid;
        let a = sys.malloc(t, 4096).unwrap();
        let mut bodies: Vec<Box<dyn SectionBody>> = vec![Box::new(
            [
                Op::Access {
                    addr: a,
                    rw: Rw::Write,
                },
                Op::Access {
                    addr: a,
                    rw: Rw::Read,
                },
            ]
            .into_iter(),
        )];
        let end = run_section(&mut sys, &mut threads, &mut bodies, 100).unwrap();
        assert!(end[0] > 0);
        let st = sys.mem().stats().core(CoreId(0));
        assert_eq!(st.accesses, 2);
    }

    #[test]
    fn interleaving_is_clock_ordered() {
        // A fast thread issues many cheap ops while a slow one issues few
        // expensive ones; both make progress and end at their own times.
        let (mut sys, mut threads) = setup(2);
        let mut bodies = vec![compute_body(100, 1), compute_body(2, 500)];
        let end = run_section(&mut sys, &mut threads, &mut bodies, 10_000).unwrap();
        assert_eq!(end, vec![100, 1000]);
    }

    #[test]
    fn serial_section_runs_on_master_only() {
        let (mut sys, mut threads) = setup(2);
        let mut body = (0..3).map(|_| Op::Compute(100));
        let end = run_serial(&mut sys, &mut threads, &mut body, 100).unwrap();
        assert_eq!(end, 300);
        assert!(threads.iter().all(|t| t.clock == 300));
    }

    #[test]
    fn sections_resume_from_barrier_time() {
        let (mut sys, mut threads) = setup(2);
        let mut b1 = vec![compute_body(1, 700), compute_body(1, 100)];
        run_section(&mut sys, &mut threads, &mut b1, 100).unwrap();
        let mut b2 = vec![compute_body(1, 50), compute_body(1, 50)];
        let end = run_section(&mut sys, &mut threads, &mut b2, 100).unwrap();
        assert_eq!(end, vec![750, 750]);
    }

    #[test]
    #[should_panic(expected = "operation budget")]
    fn runaway_body_trips_budget() {
        let (mut sys, mut threads) = setup(1);
        let mut bodies: Vec<Box<dyn SectionBody>> =
            vec![Box::new(std::iter::repeat(Op::Compute(1)))];
        let _ = run_section(&mut sys, &mut threads, &mut bodies, 10);
    }

    #[test]
    fn empty_bodies_end_immediately() {
        let (mut sys, mut threads) = setup(2);
        let mut bodies: Vec<Box<dyn SectionBody>> =
            vec![Box::new(std::iter::empty()), Box::new(std::iter::empty())];
        let end = run_section(&mut sys, &mut threads, &mut bodies, 10).unwrap();
        assert_eq!(end, vec![0, 0]);
    }

    #[test]
    fn dynamic_scheduling_balances_imbalanced_chunks() {
        // 8 chunks of very different sizes over 2 threads. Static pairing
        // (0..4 vs 4..8) would idle one thread heavily; dynamic pulls from
        // the queue and ends nearly balanced.
        let sizes = [800u64, 100, 100, 100, 100, 100, 100, 100];
        let mk =
            |s: u64| -> Box<dyn SectionBody + 'static> { Box::new((0..s).map(|_| Op::Compute(1))) };
        let (mut sys, mut threads) = setup(2);
        let chunks: std::collections::VecDeque<_> = sizes.iter().map(|&s| mk(s)).collect();
        let end = run_section_dynamic(&mut sys, &mut threads, chunks, 100_000).unwrap();
        let max = *end.iter().max().unwrap();
        let min = *end.iter().min().unwrap();
        // Thread 0 takes the 800-chunk; thread 1 drains the seven
        // 100-chunks (700) in the meantime: 800 vs 700 — near-balanced,
        // where a static 4+4 split would be 1100 vs 300.
        assert_eq!(max, 800);
        assert_eq!(min, 700);
    }

    #[test]
    fn dynamic_with_fewer_chunks_than_threads() {
        let (mut sys, mut threads) = setup(4);
        let chunks: std::collections::VecDeque<Box<dyn SectionBody>> =
            vec![compute_body(3, 10), compute_body(1, 10)]
                .into_iter()
                .collect();
        let end = run_section_dynamic(&mut sys, &mut threads, chunks, 1000).unwrap();
        assert_eq!(
            end.iter().filter(|&&e| e > 0).count(),
            2,
            "2 threads worked"
        );
        assert!(threads.iter().all(|t| t.clock == 30), "barrier at max end");
    }

    #[test]
    fn dynamic_empty_queue_ends_immediately() {
        let (mut sys, mut threads) = setup(2);
        let end = run_section_dynamic(
            &mut sys,
            &mut threads,
            std::collections::VecDeque::new(),
            10,
        )
        .unwrap();
        assert_eq!(end, vec![0, 0]);
    }

    #[test]
    fn dynamic_is_deterministic() {
        let run = || {
            let (mut sys, mut threads) = setup(3);
            let chunks: std::collections::VecDeque<Box<dyn SectionBody>> =
                (0..9).map(|i| compute_body(i % 4 + 1, 50)).collect();
            run_section_dynamic(&mut sys, &mut threads, chunks, 10_000).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn determinism_two_identical_runs() {
        let run = || {
            let (mut sys, mut threads) = setup(4);
            // Each thread writes its own array: contention at the controller.
            let mut bodies: Vec<Box<dyn SectionBody>> = Vec::new();
            let addrs: Vec<_> = threads
                .iter()
                .map(|t| sys.malloc(t.tid, 16 * 4096).unwrap())
                .collect();
            for a in addrs {
                bodies.push(Box::new((0..64u64).map(move |i| Op::Access {
                    addr: a.offset(i * 1024 % (16 * 4096)),
                    rw: Rw::Write,
                })));
            }
            run_section(&mut sys, &mut threads, &mut bodies, 100_000).unwrap()
        };
        assert_eq!(run(), run(), "bit-identical repeat runs");
    }
}
