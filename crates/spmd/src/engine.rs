//! The conservative discrete-event SPMD scheduler.
//!
//! Two interchangeable pipelines execute a section:
//!
//! * The **batched pipeline** (default): section bodies hand the engine
//!   *runs* of operations through [`SectionBody::fill`] (one virtual call
//!   per [`BATCH_OPS`] ops instead of one per op), the scheduler is a flat
//!   min-scan over the thread array with a *still-minimum* fast path
//!   (n ≤ 16 threads makes a `BinaryHeap` pure overhead), and consecutive
//!   `Compute` ops are fused into one clock add. All three specializations
//!   preserve the exact min-clock/tie-by-index execution order, so results
//!   are bit-identical to the reference pipeline (asserted by tests here
//!   and by a figure-level equivalence test in `tint-bench`).
//! * The **reference pipeline**: the original one-op-at-a-time
//!   `BinaryHeap` loop, kept as the semantic baseline. Export
//!   `TINT_REFERENCE_PIPELINE=1` to route every section through it.
//!
//! Why the still-minimum fast path is safe: after thread *i* executes an
//! operation, the heap loop would push `(clock_i, i)` back and immediately
//! pop the global minimum. If `(clock_i, i)` is still lexicographically
//! smaller than every other runnable thread's `(clock, index)` key, that
//! pop returns *i* again — so the batched pipeline just keeps draining
//! thread *i* and only rescans when its key rises past the runner-up's.
//! Why compute fusion is safe: `Compute` ops touch nothing but the local
//! clock, and the memory system observes only `(access order, issue
//! cycle)` pairs, which depend on clock values alone — summing consecutive
//! compute increments changes neither.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tint_hw::profile::{self, Component};
use tint_hw::types::{CoreId, Rw, VirtAddr};
use tint_kernel::{Errno, Tid};
use tintmalloc::System;

/// A simulated thread: a kernel task pinned to a core plus a local clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimThread {
    /// Kernel task id.
    pub tid: Tid,
    /// Core the thread is pinned to.
    pub core: CoreId,
    /// Local clock in cycles.
    pub clock: u64,
}

impl SimThread {
    /// Spawn an OpenMP-style team: the first core gets the group leader (a
    /// fresh address space); the rest are threads sharing that space.
    pub fn spawn_all(sys: &mut System, cores: &[CoreId]) -> Vec<SimThread> {
        assert!(!cores.is_empty());
        let leader = sys.spawn(cores[0]);
        let mut team = vec![SimThread {
            tid: leader,
            core: cores[0],
            clock: 0,
        }];
        for &core in &cores[1..] {
            team.push(SimThread {
                tid: sys.spawn_thread(core, leader).expect("leader exists"),
                core,
                clock: 0,
            });
        }
        team
    }
}

/// One operation of a thread's instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Pure computation: advance the thread clock by `cycles`.
    Compute(u64),
    /// One memory reference.
    Access {
        /// Virtual address touched.
        addr: VirtAddr,
        /// Load or store.
        rw: Rw,
    },
}

/// Ops the engine requests per [`SectionBody::fill`] call. Large enough to
/// amortize the virtual call, small enough to stay in L1 (64 × 24 B).
pub const BATCH_OPS: usize = 64;

/// A thread's work within one parallel (or serial) section, pulled in
/// batches (or operation-by-operation) so huge traces never materialize.
pub trait SectionBody {
    /// The next operation, or `None` when the thread reaches the barrier.
    fn next_op(&mut self) -> Option<Op>;

    /// Bulk variant: write upcoming ops into `buf` and return how many were
    /// written. **Contract:** a return value shorter than `buf.len()`
    /// (including 0) means the body is exhausted — the engine will not call
    /// again. The default implementation delegates to [`Self::next_op`]
    /// (stopping at its first `None`), which upholds the contract and, for
    /// concrete body types behind `Box<dyn SectionBody>`, monomorphizes the
    /// whole batch loop into one virtual call.
    fn fill(&mut self, buf: &mut [Op]) -> usize {
        let mut n = 0;
        while n < buf.len() {
            match self.next_op() {
                Some(op) => {
                    buf[n] = op;
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

/// Blanket impl so closures/iterators can be used as bodies in tests.
impl<I: Iterator<Item = Op>> SectionBody for I {
    fn next_op(&mut self) -> Option<Op> {
        self.next()
    }
}

/// Route sections through the reference (one-op-at-a-time heap) pipeline?
/// Checked once per section, so the env lookup never sits on a hot path.
/// Public because the `tint-bench` cell cache folds this mode into its
/// memoization key: the two pipelines are asserted bit-identical, but a
/// cache that served a reference-mode request from a batched-mode result
/// would make that very assertion vacuous.
pub fn reference_pipeline() -> bool {
    std::env::var_os("TINT_REFERENCE_PIPELINE").is_some_and(|v| v == "1")
}

/// How parallel sections execute memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Every access runs the full timing model (the default; figure
    /// output in this mode is bit-identical to the reference pipeline).
    Exact,
    /// Functional warm-up (TLB + cache state updated, latency estimated
    /// from a running per-core mean) interleaved with exact detailed
    /// measurement windows on a seeded deterministic schedule. Roughly an
    /// order of magnitude faster; validated against exact mode by
    /// `repro validate-sampled`. `TINT_REFERENCE_PIPELINE=1` overrides it
    /// (the reference pipeline is always exact), and serial and dynamic
    /// sections always run exact.
    Sampled,
}

/// Process-global engine mode, initialized from `TINT_ENGINE` on first
/// read (`exact`/unset or `sampled`) and overridable programmatically —
/// the `validate-sampled` differential needs to flip modes mid-process.
static ENGINE_MODE: std::sync::OnceLock<std::sync::atomic::AtomicU8> = std::sync::OnceLock::new();

fn engine_mode_cell() -> &'static std::sync::atomic::AtomicU8 {
    ENGINE_MODE.get_or_init(|| {
        std::sync::atomic::AtomicU8::new(match std::env::var_os("TINT_ENGINE") {
            None => 0,
            Some(v) if v == "exact" => 0,
            Some(v) if v == "sampled" => 1,
            Some(v) => panic!("TINT_ENGINE must be `exact` or `sampled`, got {v:?}"),
        })
    })
}

/// The current engine mode. Checked once per section; also folded into the
/// `tint-bench` cell-cache key so sampled and exact results never mix.
pub fn engine_mode() -> EngineMode {
    if engine_mode_cell().load(std::sync::atomic::Ordering::Relaxed) == 1 {
        EngineMode::Sampled
    } else {
        EngineMode::Exact
    }
}

/// Override the engine mode for this process (wins over `TINT_ENGINE`).
pub fn set_engine_mode(mode: EngineMode) {
    engine_mode_cell().store(
        match mode {
            EngineMode::Exact => 0,
            EngineMode::Sampled => 1,
        },
        std::sync::atomic::Ordering::Relaxed,
    );
}

/// Sampled-mode schedule knobs: detailed-window length and period (both in
/// accesses per core), the schedule seed, and the warm-touch stride (one
/// in this many warm-up accesses walks the hierarchy; `1` = every one),
/// from `TINT_SAMPLE_WINDOW` / `TINT_SAMPLE_PERIOD` / `TINT_SAMPLE_SEED` /
/// `TINT_SAMPLE_WARM_TOUCH`. Read once per section.
fn sampling_knobs() -> (u64, u64, u64, u64) {
    let parse = |name: &str, default: u64| -> u64 {
        match std::env::var(name) {
            Ok(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")),
            Err(_) => default,
        }
    };
    let window = parse("TINT_SAMPLE_WINDOW", 256).max(1);
    let period = parse("TINT_SAMPLE_PERIOD", 8_192).max(window);
    let seed = parse("TINT_SAMPLE_SEED", 0x5A3D);
    // Default stride 1: every warm-up access walks the hierarchy for real
    // (exact state and latency; only bookkeeping is skipped). Strides > 1
    // replay ring latencies for TLB-resident repeats — faster, but skipped
    // walks starve cache/DRAM state and the figure-ratio error grows
    // quickly; `repro validate-sampled` measures exactly that drift.
    let warm_touch = parse("TINT_SAMPLE_WARM_TOUCH", 1).max(1);
    (window, period, seed, warm_touch)
}

/// Host-side MLP presort of one freshly refilled batch: for every Access
/// op whose translation is already TLB-resident, collect the packed
/// `(level, core, set)` keys of the tag strides its walk will touch, sort
/// them so same-level/same-set strides group, and issue the prefetches in
/// that order — many independent loads in flight instead of one dependent
/// chain per op. Read-only by construction (the TLB peek never faults or
/// fills, prefetching touches no simulated state), and execution replays
/// the batch in original order, so results are bit-identical with or
/// without it.
#[inline]
fn presort_prefetch(sys: &System, tid: Tid, batch: &[Op], keys: &mut Vec<u64>) {
    let tp = profile::start();
    keys.clear();
    let hier = sys.mem().hierarchy();
    for op in batch {
        if let Op::Access { addr, .. } = *op {
            if let Some((core, phys)) = sys.peek_translate(tid, addr) {
                hier.prefetch_keys(core, phys, keys);
            }
        }
    }
    keys.sort_unstable();
    for &k in keys.iter() {
        hier.prefetch_key(k);
    }
    profile::stop(Component::Presort, tp);
}

/// Per-thread batch cursor over a section body.
struct BodyCursor {
    buf: [Op; BATCH_OPS],
    /// Valid ops in `buf`.
    len: usize,
    /// Next op to execute.
    cur: usize,
    /// The last `fill` came back short: the body is exhausted once `cur`
    /// reaches `len`.
    exhausted: bool,
}

impl BodyCursor {
    fn new() -> Self {
        Self {
            buf: [Op::Compute(0); BATCH_OPS],
            len: 0,
            cur: 0,
            exhausted: false,
        }
    }

    /// Refill from `body`. Returns `false` when the body had no further ops.
    fn refill(&mut self, body: &mut (dyn SectionBody + '_)) -> bool {
        self.len = body.fill(&mut self.buf);
        self.cur = 0;
        self.exhausted = self.len < BATCH_OPS;
        self.len > 0
    }
}

/// Max threads the flat-scan scheduler handles; larger teams fall back to
/// the reference heap. 16 is the evaluation machine's core count and leaves
/// 4 index bits in the packed key.
const MAX_FLAT_THREADS: usize = 16;

/// Pack a thread's scheduling key: `(clock, index)` lexicographic order
/// becomes plain `u64` order. Clocks stay far below 2^60 (simulations run
/// ~10^10 cycles), asserted in debug builds.
#[inline(always)]
fn pack_key(clock: u64, i: usize) -> u64 {
    debug_assert!(clock < 1 << 60);
    (clock << 4) | i as u64
}

/// One pass over the packed keys: the global minimum and the runner-up.
/// Dead threads hold `u64::MAX`. Branch-free compares — keys are unique
/// (the index lives in the low bits), so strict `<` is exact.
#[inline]
fn min2_scan(keys: &[u64]) -> (u64, u64) {
    let mut m1 = u64::MAX;
    let mut m2 = u64::MAX;
    for &k in keys {
        let lo = m1.min(k);
        m2 = m2.min(m1.max(k));
        m1 = lo;
    }
    (m1, m2)
}

/// Run one parallel section: each thread executes its body to completion;
/// the section ends at the implicit barrier. Returns each thread's end time
/// (the engine caller computes idle per Algorithm 3).
///
/// Determinism: the runnable thread with the smallest clock executes its
/// next operation; ties break by thread index.
pub fn run_section(
    sys: &mut System,
    threads: &mut [SimThread],
    bodies: &mut [Box<dyn SectionBody + '_>],
    ops_budget: u64,
) -> Result<Vec<u64>, Errno> {
    let t0 = profile::start();
    let r = if reference_pipeline() {
        run_section_reference(sys, threads, bodies, ops_budget)
    } else if engine_mode() == EngineMode::Sampled {
        run_section_sampled(sys, threads, bodies, ops_budget)
    } else {
        run_section_batched(sys, threads, bodies, ops_budget)
    };
    profile::stop(Component::Engine, t0);
    r
}

fn run_section_batched(
    sys: &mut System,
    threads: &mut [SimThread],
    bodies: &mut [Box<dyn SectionBody + '_>],
    ops_budget: u64,
) -> Result<Vec<u64>, Errno> {
    assert_eq!(threads.len(), bodies.len(), "one body per thread");
    let n = threads.len();
    if n > MAX_FLAT_THREADS {
        return run_section_reference(sys, threads, bodies, ops_budget);
    }
    let mut end = vec![0u64; n];
    let mut keys: Vec<u64> = (0..n).map(|i| pack_key(threads[i].clock, i)).collect();
    let mut live = n;
    let mut cursors: Vec<BodyCursor> = (0..n).map(|_| BodyCursor::new()).collect();
    let mut sort_keys: Vec<u64> = Vec::with_capacity(3 * BATCH_OPS);
    let mut ops = 0u64;
    while live > 0 {
        let (m1, runner_up) = min2_scan(&keys);
        let i = (m1 & 0xF) as usize;
        let tid = threads[i].tid;
        let mut clock = threads[i].clock;
        let cur = &mut cursors[i];
        let body = bodies[i].as_mut();
        // Drain thread i while it remains the min-clock thread.
        loop {
            if cur.cur == cur.len {
                if cur.exhausted || !cur.refill(body) {
                    // The reference loop's final `None` pop.
                    ops += 1;
                    assert!(
                        ops <= ops_budget,
                        "section exceeded its operation budget ({ops_budget}); runaway body?"
                    );
                    end[i] = clock;
                    keys[i] = u64::MAX;
                    live -= 1;
                    break;
                }
                presort_prefetch(sys, tid, &cur.buf[..cur.len], &mut sort_keys);
            }
            let batch = &cur.buf[..cur.len];
            match batch[cur.cur] {
                Op::Compute(c) => {
                    // Fuse the run of consecutive Compute ops: no memory
                    // side effects, so one clock add covers them all.
                    cur.cur += 1;
                    ops += 1;
                    let mut add = c;
                    while cur.cur < cur.len {
                        let Op::Compute(c2) = batch[cur.cur] else {
                            break;
                        };
                        add += c2;
                        cur.cur += 1;
                        ops += 1;
                    }
                    clock += add;
                }
                Op::Access { addr, rw } => {
                    cur.cur += 1;
                    ops += 1;
                    let ta = profile::start();
                    let acc = match sys.access(tid, addr, rw, clock) {
                        Ok(a) => a,
                        Err(e) => {
                            threads[i].clock = clock;
                            return Err(e);
                        }
                    };
                    profile::stop(Component::Access, ta);
                    clock += acc.latency;
                }
            }
            assert!(
                ops <= ops_budget,
                "section exceeded its operation budget ({ops_budget}); runaway body?"
            );
            // Still-minimum fast path: one compare against the runner-up.
            let key = pack_key(clock, i);
            if key >= runner_up {
                keys[i] = key;
                break;
            }
        }
        threads[i].clock = clock;
    }
    // The implicit barrier: every thread resumes at the latest end time.
    let barrier = end.iter().copied().max().unwrap_or(0);
    for t in threads.iter_mut() {
        t.clock = barrier;
    }
    Ok(end)
}

/// The sampled parallel-section driver: the batched scheduler, but each
/// access first consults the per-core sampling schedule — inside a
/// detailed window it runs the exact pipeline ([`System::access`], which
/// also feeds the latency estimator), outside it runs the functional
/// warm-up ([`System::access_estimated`]: real TLB and cache state, DRAM
/// latency replaced by the running per-core mean). Deterministic for a
/// given seed/window/period regardless of host job count — the schedule is
/// pure per-core counter state inside the `System`. Teams wider than the
/// flat scheduler fall back to the (exact) reference pipeline.
fn run_section_sampled(
    sys: &mut System,
    threads: &mut [SimThread],
    bodies: &mut [Box<dyn SectionBody + '_>],
    ops_budget: u64,
) -> Result<Vec<u64>, Errno> {
    assert_eq!(threads.len(), bodies.len(), "one body per thread");
    let n = threads.len();
    if n > MAX_FLAT_THREADS {
        return run_section_reference(sys, threads, bodies, ops_budget);
    }
    let (window, period, seed, warm_touch) = sampling_knobs();
    sys.configure_sampling(window, period, seed, warm_touch);
    let mut end = vec![0u64; n];
    let mut keys: Vec<u64> = (0..n).map(|i| pack_key(threads[i].clock, i)).collect();
    let mut live = n;
    let mut cursors: Vec<BodyCursor> = (0..n).map(|_| BodyCursor::new()).collect();
    let mut ops = 0u64;
    while live > 0 {
        let (m1, runner_up) = min2_scan(&keys);
        let i = (m1 & 0xF) as usize;
        let tid = threads[i].tid;
        let core = threads[i].core;
        let mut clock = threads[i].clock;
        let cur = &mut cursors[i];
        let body = bodies[i].as_mut();
        loop {
            // No presort on refill here: measured on the full fig11 matrix,
            // the per-batch sort costs more host time than its prefetches
            // save in this loop, eating the margin the skipped bookkeeping
            // buys (4.95 s vs 4.24 s sampled wall with/without it).
            if cur.cur == cur.len && (cur.exhausted || !cur.refill(body)) {
                ops += 1;
                assert!(
                    ops <= ops_budget,
                    "section exceeded its operation budget ({ops_budget}); runaway body?"
                );
                end[i] = clock;
                keys[i] = u64::MAX;
                live -= 1;
                break;
            }
            let batch = &cur.buf[..cur.len];
            match batch[cur.cur] {
                Op::Compute(c) => {
                    cur.cur += 1;
                    ops += 1;
                    let mut add = c;
                    while cur.cur < cur.len {
                        let Op::Compute(c2) = batch[cur.cur] else {
                            break;
                        };
                        add += c2;
                        cur.cur += 1;
                        ops += 1;
                    }
                    clock += add;
                }
                Op::Access { addr, rw } => {
                    cur.cur += 1;
                    ops += 1;
                    let ta = profile::start();
                    let r = if sys.sample_is_detailed(core) {
                        let td = profile::start();
                        let r = sys.access(tid, addr, rw, clock);
                        profile::stop(Component::Detailed, td);
                        r
                    } else {
                        let tw = profile::start();
                        let r = sys.access_estimated(tid, addr, rw, clock);
                        profile::stop(Component::Warmup, tw);
                        r
                    };
                    let acc = match r {
                        Ok(a) => a,
                        Err(e) => {
                            threads[i].clock = clock;
                            return Err(e);
                        }
                    };
                    profile::stop(Component::Access, ta);
                    clock += acc.latency;
                }
            }
            assert!(
                ops <= ops_budget,
                "section exceeded its operation budget ({ops_budget}); runaway body?"
            );
            let key = pack_key(clock, i);
            if key >= runner_up {
                keys[i] = key;
                break;
            }
        }
        threads[i].clock = clock;
    }
    let barrier = end.iter().copied().max().unwrap_or(0);
    for t in threads.iter_mut() {
        t.clock = barrier;
    }
    Ok(end)
}

/// The reference parallel-section pipeline: one op at a time through a
/// min-heap. Semantically authoritative; the batched pipeline must match it
/// bit for bit.
pub fn run_section_reference(
    sys: &mut System,
    threads: &mut [SimThread],
    bodies: &mut [Box<dyn SectionBody + '_>],
    ops_budget: u64,
) -> Result<Vec<u64>, Errno> {
    assert_eq!(threads.len(), bodies.len(), "one body per thread");
    let n = threads.len();
    let mut end = vec![0u64; n];
    // Min-heap of (clock, thread index).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..n).map(|i| Reverse((threads[i].clock, i))).collect();
    let mut ops = 0u64;
    while let Some(Reverse((clock, i))) = heap.pop() {
        debug_assert_eq!(clock, threads[i].clock);
        match bodies[i].next_op() {
            Some(Op::Compute(c)) => {
                threads[i].clock += c;
                heap.push(Reverse((threads[i].clock, i)));
            }
            Some(Op::Access { addr, rw }) => {
                let ta = profile::start();
                let acc = sys.access(threads[i].tid, addr, rw, threads[i].clock)?;
                profile::stop(Component::Access, ta);
                threads[i].clock += acc.latency;
                heap.push(Reverse((threads[i].clock, i)));
            }
            None => {
                end[i] = threads[i].clock;
            }
        }
        ops += 1;
        assert!(
            ops <= ops_budget,
            "section exceeded its operation budget ({ops_budget}); runaway body?"
        );
    }
    // The implicit barrier: every thread resumes at the latest end time.
    let barrier = end.iter().copied().max().unwrap_or(0);
    for t in threads.iter_mut() {
        t.clock = barrier;
    }
    Ok(end)
}

/// Run a parallel section with **dynamic scheduling** (OpenMP
/// `schedule(dynamic)`): `chunks` is a shared work queue; every thread pulls
/// the next chunk when it finishes its current one, and the section ends
/// when the queue drains and every thread reaches the barrier. Determinism:
/// chunks are handed out in queue order to whichever thread asks first under
/// the min-clock rule (ties by thread index).
pub fn run_section_dynamic(
    sys: &mut System,
    threads: &mut [SimThread],
    chunks: std::collections::VecDeque<Box<dyn SectionBody + '_>>,
    ops_budget: u64,
) -> Result<Vec<u64>, Errno> {
    let t0 = profile::start();
    let r = if reference_pipeline() {
        run_section_dynamic_reference(sys, threads, chunks, ops_budget)
    } else {
        run_section_dynamic_batched(sys, threads, chunks, ops_budget)
    };
    profile::stop(Component::Engine, t0);
    r
}

fn run_section_dynamic_batched<'b>(
    sys: &mut System,
    threads: &mut [SimThread],
    mut chunks: std::collections::VecDeque<Box<dyn SectionBody + 'b>>,
    ops_budget: u64,
) -> Result<Vec<u64>, Errno> {
    let n = threads.len();
    if n > MAX_FLAT_THREADS {
        return run_section_dynamic_reference(sys, threads, chunks, ops_budget);
    }
    let mut end = vec![0u64; n];
    let mut current: Vec<Option<Box<dyn SectionBody + 'b>>> = (0..n).map(|_| None).collect();
    let mut cursors: Vec<BodyCursor> = (0..n).map(|_| BodyCursor::new()).collect();
    let mut sort_keys: Vec<u64> = Vec::with_capacity(3 * BATCH_OPS);
    let mut keys: Vec<u64> = (0..n).map(|i| pack_key(threads[i].clock, i)).collect();
    let mut live = n;
    let mut ops = 0u64;
    'threads: while live > 0 {
        let (m1, runner_up) = min2_scan(&keys);
        let i = (m1 & 0xF) as usize;
        let tid = threads[i].tid;
        let mut clock = threads[i].clock;
        let cur = &mut cursors[i];
        // Drain thread i (pulling chunks as needed) while it stays minimal.
        loop {
            if cur.cur == cur.len {
                // Current chunk batch consumed: charge the reference loop's
                // chunk-finishing `None` op, then pull queue chunks until
                // one yields ops. A finishing/pulling thread keeps its clock,
                // so it stays the minimum throughout (as the reference
                // re-push/re-pop does).
                loop {
                    if cur.exhausted {
                        cur.exhausted = false;
                        cur.len = 0;
                        cur.cur = 0;
                        current[i] = None;
                        ops += 1;
                        assert!(
                            ops <= ops_budget,
                            "dynamic section exceeded its operation budget ({ops_budget})"
                        );
                    }
                    if current[i].is_none() {
                        current[i] = chunks.pop_front();
                        if current[i].is_none() {
                            // Queue drained: this thread is done (the
                            // reference loop's `continue` — not an op).
                            threads[i].clock = clock;
                            end[i] = clock;
                            keys[i] = u64::MAX;
                            live -= 1;
                            continue 'threads;
                        }
                    }
                    if cur.refill(current[i].as_mut().unwrap().as_mut()) {
                        break;
                    }
                    // Empty fill: the chunk was already exhausted;
                    // `cur.exhausted` is set, so loop to charge its None op
                    // and pull the next chunk.
                }
                presort_prefetch(sys, tid, &cur.buf[..cur.len], &mut sort_keys);
            }
            let batch = &cur.buf[..cur.len];
            match batch[cur.cur] {
                Op::Compute(c) => {
                    cur.cur += 1;
                    ops += 1;
                    let mut add = c;
                    while cur.cur < cur.len {
                        let Op::Compute(c2) = batch[cur.cur] else {
                            break;
                        };
                        add += c2;
                        cur.cur += 1;
                        ops += 1;
                    }
                    clock += add;
                }
                Op::Access { addr, rw } => {
                    cur.cur += 1;
                    ops += 1;
                    let ta = profile::start();
                    let acc = match sys.access(tid, addr, rw, clock) {
                        Ok(a) => a,
                        Err(e) => {
                            threads[i].clock = clock;
                            return Err(e);
                        }
                    };
                    profile::stop(Component::Access, ta);
                    clock += acc.latency;
                }
            }
            assert!(
                ops <= ops_budget,
                "dynamic section exceeded its operation budget ({ops_budget})"
            );
            let key = pack_key(clock, i);
            if key >= runner_up {
                keys[i] = key;
                break;
            }
        }
        threads[i].clock = clock;
    }
    let barrier = end.iter().copied().max().unwrap_or(0);
    for t in threads.iter_mut() {
        t.clock = barrier;
    }
    Ok(end)
}

/// The reference dynamic-section pipeline (one op at a time, min-heap).
pub fn run_section_dynamic_reference(
    sys: &mut System,
    threads: &mut [SimThread],
    mut chunks: std::collections::VecDeque<Box<dyn SectionBody + '_>>,
    ops_budget: u64,
) -> Result<Vec<u64>, Errno> {
    let n = threads.len();
    let mut end = vec![0u64; n];
    let mut current: Vec<Option<Box<dyn SectionBody + '_>>> = (0..n).map(|_| None).collect();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..n).map(|i| Reverse((threads[i].clock, i))).collect();
    let mut ops = 0u64;
    while let Some(Reverse((_, i))) = heap.pop() {
        // Ensure the thread has a chunk; pull the next one if needed.
        if current[i].is_none() {
            current[i] = chunks.pop_front();
        }
        let Some(body) = current[i].as_mut() else {
            end[i] = threads[i].clock; // queue drained: this thread is done
            continue;
        };
        match body.next_op() {
            Some(Op::Compute(c)) => threads[i].clock += c,
            Some(Op::Access { addr, rw }) => {
                let ta = profile::start();
                let acc = sys.access(threads[i].tid, addr, rw, threads[i].clock)?;
                profile::stop(Component::Access, ta);
                threads[i].clock += acc.latency;
            }
            None => {
                current[i] = None; // chunk finished; try the queue next turn
            }
        }
        heap.push(Reverse((threads[i].clock, i)));
        ops += 1;
        assert!(
            ops <= ops_budget,
            "dynamic section exceeded its operation budget ({ops_budget})"
        );
    }
    let barrier = end.iter().copied().max().unwrap_or(0);
    for t in threads.iter_mut() {
        t.clock = barrier;
    }
    Ok(end)
}

/// Run a serial section on the master (index 0); the other threads simply
/// wait (their clocks move to the master's end — serial time is excluded
/// from idle accounting, as in the paper's Algorithm 3 instrumentation).
pub fn run_serial(
    sys: &mut System,
    threads: &mut [SimThread],
    body: &mut (dyn SectionBody + '_),
    ops_budget: u64,
) -> Result<u64, Errno> {
    let t0 = profile::start();
    let r = if reference_pipeline() {
        run_serial_reference(sys, threads, body, ops_budget)
    } else {
        run_serial_batched(sys, threads, body, ops_budget)
    };
    profile::stop(Component::Engine, t0);
    r
}

fn run_serial_batched(
    sys: &mut System,
    threads: &mut [SimThread],
    body: &mut (dyn SectionBody + '_),
    ops_budget: u64,
) -> Result<u64, Errno> {
    let tid = threads[0].tid;
    let mut clock = threads[0].clock;
    let mut buf = [Op::Compute(0); BATCH_OPS];
    let mut sort_keys: Vec<u64> = Vec::with_capacity(3 * BATCH_OPS);
    let mut ops = 0u64;
    loop {
        let len = body.fill(&mut buf);
        presort_prefetch(sys, tid, &buf[..len], &mut sort_keys);
        let mut k = 0;
        while k < len {
            match buf[k] {
                Op::Compute(c) => {
                    k += 1;
                    ops += 1;
                    let mut add = c;
                    while k < len {
                        let Op::Compute(c2) = buf[k] else { break };
                        add += c2;
                        k += 1;
                        ops += 1;
                    }
                    clock += add;
                }
                Op::Access { addr, rw } => {
                    k += 1;
                    ops += 1;
                    let ta = profile::start();
                    let acc = sys.access(tid, addr, rw, clock)?;
                    profile::stop(Component::Access, ta);
                    clock += acc.latency;
                }
            }
            assert!(ops <= ops_budget, "serial section exceeded its budget");
        }
        if len < BATCH_OPS {
            break;
        }
    }
    for t in threads.iter_mut() {
        t.clock = clock;
    }
    Ok(clock)
}

/// The reference serial-section pipeline (one op at a time).
pub fn run_serial_reference(
    sys: &mut System,
    threads: &mut [SimThread],
    body: &mut (dyn SectionBody + '_),
    ops_budget: u64,
) -> Result<u64, Errno> {
    let master = &mut threads[0];
    let mut ops = 0u64;
    while let Some(op) = body.next_op() {
        match op {
            Op::Compute(c) => master.clock += c,
            Op::Access { addr, rw } => {
                let ta = profile::start();
                let acc = sys.access(master.tid, addr, rw, master.clock)?;
                profile::stop(Component::Access, ta);
                master.clock += acc.latency;
            }
        }
        ops += 1;
        assert!(ops <= ops_budget, "serial section exceeded its budget");
    }
    let end = threads[0].clock;
    for t in threads.iter_mut() {
        t.clock = end;
    }
    Ok(end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tint_hw::machine::MachineConfig;

    fn setup(n: usize) -> (System, Vec<SimThread>) {
        let mut sys = System::boot(MachineConfig::tiny());
        let cores: Vec<_> = (0..n).map(CoreId).collect();
        let threads = SimThread::spawn_all(&mut sys, &cores);
        (sys, threads)
    }

    fn compute_body(steps: u64, each: u64) -> Box<dyn SectionBody + 'static> {
        Box::new((0..steps).map(move |_| Op::Compute(each)))
    }

    #[test]
    fn pure_compute_section_ends_deterministically() {
        let (mut sys, mut threads) = setup(2);
        let mut bodies = vec![compute_body(10, 100), compute_body(5, 100)];
        let end = run_section(&mut sys, &mut threads, &mut bodies, 1_000).unwrap();
        assert_eq!(end, vec![1000, 500]);
        // Barrier: both clocks jump to the max.
        assert!(threads.iter().all(|t| t.clock == 1000));
    }

    #[test]
    fn idle_is_max_minus_end() {
        let (mut sys, mut threads) = setup(2);
        let mut bodies = vec![compute_body(4, 100), compute_body(1, 100)];
        let end = run_section(&mut sys, &mut threads, &mut bodies, 1_000).unwrap();
        let max = *end.iter().max().unwrap();
        let idle: Vec<u64> = end.iter().map(|e| max - e).collect();
        assert_eq!(idle, vec![0, 300], "Algorithm 3");
    }

    #[test]
    fn access_ops_advance_by_latency() {
        let (mut sys, mut threads) = setup(1);
        let t = threads[0].tid;
        let a = sys.malloc(t, 4096).unwrap();
        let mut bodies: Vec<Box<dyn SectionBody>> = vec![Box::new(
            [
                Op::Access {
                    addr: a,
                    rw: Rw::Write,
                },
                Op::Access {
                    addr: a,
                    rw: Rw::Read,
                },
            ]
            .into_iter(),
        )];
        let end = run_section(&mut sys, &mut threads, &mut bodies, 100).unwrap();
        assert!(end[0] > 0);
        let st = sys.mem().stats().core(CoreId(0));
        assert_eq!(st.accesses, 2);
    }

    #[test]
    fn interleaving_is_clock_ordered() {
        // A fast thread issues many cheap ops while a slow one issues few
        // expensive ones; both make progress and end at their own times.
        let (mut sys, mut threads) = setup(2);
        let mut bodies = vec![compute_body(100, 1), compute_body(2, 500)];
        let end = run_section(&mut sys, &mut threads, &mut bodies, 10_000).unwrap();
        assert_eq!(end, vec![100, 1000]);
    }

    #[test]
    fn serial_section_runs_on_master_only() {
        let (mut sys, mut threads) = setup(2);
        let mut body = (0..3).map(|_| Op::Compute(100));
        let end = run_serial(&mut sys, &mut threads, &mut body, 100).unwrap();
        assert_eq!(end, 300);
        assert!(threads.iter().all(|t| t.clock == 300));
    }

    #[test]
    fn sections_resume_from_barrier_time() {
        let (mut sys, mut threads) = setup(2);
        let mut b1 = vec![compute_body(1, 700), compute_body(1, 100)];
        run_section(&mut sys, &mut threads, &mut b1, 100).unwrap();
        let mut b2 = vec![compute_body(1, 50), compute_body(1, 50)];
        let end = run_section(&mut sys, &mut threads, &mut b2, 100).unwrap();
        assert_eq!(end, vec![750, 750]);
    }

    #[test]
    #[should_panic(expected = "operation budget")]
    fn runaway_body_trips_budget() {
        let (mut sys, mut threads) = setup(1);
        let mut bodies: Vec<Box<dyn SectionBody>> =
            vec![Box::new(std::iter::repeat(Op::Compute(1)))];
        let _ = run_section(&mut sys, &mut threads, &mut bodies, 10);
    }

    #[test]
    #[should_panic(expected = "operation budget")]
    fn runaway_body_trips_budget_reference() {
        let (mut sys, mut threads) = setup(1);
        let mut bodies: Vec<Box<dyn SectionBody>> =
            vec![Box::new(std::iter::repeat(Op::Compute(1)))];
        let _ = run_section_reference(&mut sys, &mut threads, &mut bodies, 10);
    }

    #[test]
    fn empty_bodies_end_immediately() {
        let (mut sys, mut threads) = setup(2);
        let mut bodies: Vec<Box<dyn SectionBody>> =
            vec![Box::new(std::iter::empty()), Box::new(std::iter::empty())];
        let end = run_section(&mut sys, &mut threads, &mut bodies, 10).unwrap();
        assert_eq!(end, vec![0, 0]);
    }

    #[test]
    fn dynamic_scheduling_balances_imbalanced_chunks() {
        // 8 chunks of very different sizes over 2 threads. Static pairing
        // (0..4 vs 4..8) would idle one thread heavily; dynamic pulls from
        // the queue and ends nearly balanced.
        let sizes = [800u64, 100, 100, 100, 100, 100, 100, 100];
        let mk =
            |s: u64| -> Box<dyn SectionBody + 'static> { Box::new((0..s).map(|_| Op::Compute(1))) };
        let (mut sys, mut threads) = setup(2);
        let chunks: std::collections::VecDeque<_> = sizes.iter().map(|&s| mk(s)).collect();
        let end = run_section_dynamic(&mut sys, &mut threads, chunks, 100_000).unwrap();
        let max = *end.iter().max().unwrap();
        let min = *end.iter().min().unwrap();
        // Thread 0 takes the 800-chunk; thread 1 drains the seven
        // 100-chunks (700) in the meantime: 800 vs 700 — near-balanced,
        // where a static 4+4 split would be 1100 vs 300.
        assert_eq!(max, 800);
        assert_eq!(min, 700);
    }

    #[test]
    fn dynamic_with_fewer_chunks_than_threads() {
        let (mut sys, mut threads) = setup(4);
        let chunks: std::collections::VecDeque<Box<dyn SectionBody>> =
            vec![compute_body(3, 10), compute_body(1, 10)]
                .into_iter()
                .collect();
        let end = run_section_dynamic(&mut sys, &mut threads, chunks, 1000).unwrap();
        assert_eq!(
            end.iter().filter(|&&e| e > 0).count(),
            2,
            "2 threads worked"
        );
        assert!(threads.iter().all(|t| t.clock == 30), "barrier at max end");
    }

    #[test]
    fn dynamic_empty_queue_ends_immediately() {
        let (mut sys, mut threads) = setup(2);
        let end = run_section_dynamic(
            &mut sys,
            &mut threads,
            std::collections::VecDeque::new(),
            10,
        )
        .unwrap();
        assert_eq!(end, vec![0, 0]);
    }

    #[test]
    fn dynamic_is_deterministic() {
        let run = || {
            let (mut sys, mut threads) = setup(3);
            let chunks: std::collections::VecDeque<Box<dyn SectionBody>> =
                (0..9).map(|i| compute_body(i % 4 + 1, 50)).collect();
            run_section_dynamic(&mut sys, &mut threads, chunks, 10_000).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn determinism_two_identical_runs() {
        let run = || {
            let (mut sys, mut threads) = setup(4);
            // Each thread writes its own array: contention at the controller.
            let mut bodies: Vec<Box<dyn SectionBody>> = Vec::new();
            let addrs: Vec<_> = threads
                .iter()
                .map(|t| sys.malloc(t.tid, 16 * 4096).unwrap())
                .collect();
            for a in addrs {
                bodies.push(Box::new((0..64u64).map(move |i| Op::Access {
                    addr: a.offset(i * 1024 % (16 * 4096)),
                    rw: Rw::Write,
                })));
            }
            run_section(&mut sys, &mut threads, &mut bodies, 100_000).unwrap()
        };
        assert_eq!(run(), run(), "bit-identical repeat runs");
    }

    /// Build the mixed-op body set used by the pipeline-equivalence tests:
    /// per-thread streams with irregular compute runs (including
    /// consecutive computes to exercise fusion, and zero-cycle computes to
    /// exercise tie-breaking) interleaved with real memory accesses.
    fn mixed_bodies(
        sys: &mut System,
        threads: &[SimThread],
        seed: u64,
    ) -> Vec<Box<dyn SectionBody + 'static>> {
        use tint_hw::rng::SplitMix64;
        let mut bodies: Vec<Box<dyn SectionBody>> = Vec::new();
        for (ti, t) in threads.iter().enumerate() {
            let a = sys.malloc(t.tid, 32 * 4096).unwrap();
            let mut rng = SplitMix64::new(seed ^ (ti as u64).wrapping_mul(0x9E37));
            let ops: Vec<Op> = (0..300)
                .map(|_| match rng.gen_range(5) {
                    0 => Op::Compute(rng.gen_range(200)),
                    1 => Op::Compute(0),
                    2 => Op::Compute(rng.gen_range(7)),
                    _ => Op::Access {
                        addr: a.offset(rng.gen_range(32 * 4096 / 64) * 64),
                        rw: if rng.gen_range(3) == 0 {
                            Rw::Write
                        } else {
                            Rw::Read
                        },
                    },
                })
                .collect();
            bodies.push(Box::new(ops.into_iter()));
        }
        bodies
    }

    #[test]
    fn batched_section_matches_reference_bit_for_bit() {
        for seed in 0..4u64 {
            let (mut sys_a, mut thr_a) = setup(4);
            let mut bodies_a = mixed_bodies(&mut sys_a, &thr_a, seed);
            let end_a =
                run_section_batched(&mut sys_a, &mut thr_a, &mut bodies_a, 1_000_000).unwrap();

            let (mut sys_b, mut thr_b) = setup(4);
            let mut bodies_b = mixed_bodies(&mut sys_b, &thr_b, seed);
            let end_b =
                run_section_reference(&mut sys_b, &mut thr_b, &mut bodies_b, 1_000_000).unwrap();

            assert_eq!(end_a, end_b, "seed {seed}: end times diverge");
            assert_eq!(thr_a, thr_b, "seed {seed}: barrier clocks diverge");
            for c in 0..4 {
                let (a, b) = (
                    sys_a.mem().stats().core(CoreId(c)),
                    sys_b.mem().stats().core(CoreId(c)),
                );
                assert_eq!(a.accesses, b.accesses, "seed {seed} core {c}");
                assert_eq!(a.total_latency, b.total_latency, "seed {seed} core {c}");
            }
            assert_eq!(
                sys_a.mem().dram().stats().requests,
                sys_b.mem().dram().stats().requests
            );
            assert_eq!(
                sys_a.mem().dram().stats().total_latency,
                sys_b.mem().dram().stats().total_latency,
                "seed {seed}: DRAM timing state diverged"
            );
        }
    }

    #[test]
    fn batched_dynamic_matches_reference_bit_for_bit() {
        use tint_hw::rng::SplitMix64;
        let build_chunks = |sys: &mut System,
                            threads: &[SimThread],
                            seed: u64|
         -> std::collections::VecDeque<Box<dyn SectionBody + 'static>> {
            let a = sys.malloc(threads[0].tid, 64 * 4096).unwrap();
            let mut rng = SplitMix64::new(seed);
            (0..13)
                .map(|ci| {
                    let ops: Vec<Op> = (0..rng.gen_range(120) + 1)
                        .map(|_| match rng.gen_range(4) {
                            0 => Op::Compute(rng.gen_range(90)),
                            1 => Op::Compute(0),
                            _ => Op::Access {
                                addr: a.offset(
                                    (rng.gen_range(64 * 4096 / 64) * 64 + ci * 64) % (64 * 4096),
                                ),
                                rw: Rw::Write,
                            },
                        })
                        .collect();
                    Box::new(ops.into_iter()) as Box<dyn SectionBody>
                })
                .collect()
        };
        for seed in 0..4u64 {
            let (mut sys_a, mut thr_a) = setup(3);
            let chunks_a = build_chunks(&mut sys_a, &thr_a, seed);
            let end_a =
                run_section_dynamic_batched(&mut sys_a, &mut thr_a, chunks_a, 1_000_000).unwrap();

            let (mut sys_b, mut thr_b) = setup(3);
            let chunks_b = build_chunks(&mut sys_b, &thr_b, seed);
            let end_b =
                run_section_dynamic_reference(&mut sys_b, &mut thr_b, chunks_b, 1_000_000).unwrap();

            assert_eq!(end_a, end_b, "seed {seed}: end times diverge");
            assert_eq!(thr_a, thr_b, "seed {seed}: barrier clocks diverge");
            for c in 0..3 {
                assert_eq!(
                    sys_a.mem().stats().core(CoreId(c)).accesses,
                    sys_b.mem().stats().core(CoreId(c)).accesses,
                    "seed {seed} core {c}"
                );
            }
        }
    }

    #[test]
    fn batched_serial_matches_reference() {
        let run = |reference: bool| {
            let (mut sys, mut threads) = setup(2);
            let a = sys.malloc(threads[0].tid, 8 * 4096).unwrap();
            let ops: Vec<Op> = (0..200)
                .map(|i| {
                    if i % 3 == 0 {
                        Op::Compute(i)
                    } else {
                        Op::Access {
                            addr: a.offset((i * 64) % (8 * 4096)),
                            rw: Rw::Write,
                        }
                    }
                })
                .collect();
            let mut body = ops.into_iter();
            let end = if reference {
                run_serial_reference(&mut sys, &mut threads, &mut body, 10_000).unwrap()
            } else {
                run_serial_batched(&mut sys, &mut threads, &mut body, 10_000).unwrap()
            };
            (end, sys.mem().stats().core(CoreId(0)).total_latency)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn env_var_routes_to_reference_pipeline() {
        // Process-global env var: this test is the only one in the crate
        // that sets it, and it restores the variable before returning.
        let run = || {
            let (mut sys, mut threads) = setup(2);
            let mut bodies = vec![compute_body(10, 7), compute_body(3, 11)];
            run_section(&mut sys, &mut threads, &mut bodies, 1_000).unwrap()
        };
        let batched = run();
        std::env::set_var("TINT_REFERENCE_PIPELINE", "1");
        assert!(reference_pipeline());
        let referenced = run();
        std::env::remove_var("TINT_REFERENCE_PIPELINE");
        assert!(!reference_pipeline());
        assert_eq!(batched, referenced);
    }

    #[test]
    fn fill_default_impl_respects_short_fill_contract() {
        let mut it = (0..10u64).map(Op::Compute);
        let mut buf = [Op::Compute(0); BATCH_OPS];
        let n = SectionBody::fill(&mut it, &mut buf);
        assert_eq!(n, 10, "short fill signals exhaustion");
        assert_eq!(buf[9], Op::Compute(9));
        let mut small = [Op::Compute(0); 4];
        let mut it2 = (0..10u64).map(Op::Compute);
        assert_eq!(SectionBody::fill(&mut it2, &mut small), 4, "full buffer");
        assert_eq!(SectionBody::fill(&mut it2, &mut small), 4);
        assert_eq!(SectionBody::fill(&mut it2, &mut small), 2, "then short");
    }
}
