//! Deterministic fault injection for the kernel's allocation paths.
//!
//! A real kernel's colored allocator must survive transient replenish
//! failures, mid-migration allocation failures, and plain memory pressure.
//! This module provides a seeded, reproducible way to exercise those paths:
//! a [`FaultPlan`] names per-[`FaultSite`] failure rates, and the
//! [`FaultInjector`] built from it answers "should this operation fail
//! now?" from its own [`SplitMix64`] stream — so a failing fuzz seed
//! replays exactly.
//!
//! Injection is **off by default and zero-cost when off**: the kernel holds
//! an `Option<FaultInjector>` and every site guards on `None` with a single
//! branch; no RNG state exists unless a plan is armed, so baseline figure
//! output is bit-identical with injection disabled.

use tint_hw::rng::SplitMix64;

/// Number of distinct injection sites (array size for per-site state).
pub const FAULT_SITE_COUNT: usize = 5;

/// Where in the kernel a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Algorithm 1's buddy replenish: the scan of the general buddy free
    /// lists for a block containing a page of a wanted color. An injected
    /// failure surfaces as `EAGAIN` before any state is touched.
    BuddyReplenish = 0,
    /// Algorithm 2 (`create_color_list`): moving the found block into the
    /// color matrix. Injected *before* the move, so it also surfaces as a
    /// transient `EAGAIN` with nothing mutated.
    CreateColorList = 1,
    /// The page-fault handler, before any frame is allocated (`ENOMEM`).
    PageFault = 2,
    /// `sys_mmap` region creation, before the VMA exists (`ENOMEM`).
    SysMmap = 3,
    /// The per-page copy step of recolor migration, after the destination
    /// frame is allocated — exercises the transactional rollback.
    PageCopy = 4,
}

impl FaultSite {
    /// Every site, indexable by `site as usize`.
    pub const ALL: [FaultSite; FAULT_SITE_COUNT] = [
        FaultSite::BuddyReplenish,
        FaultSite::CreateColorList,
        FaultSite::PageFault,
        FaultSite::SysMmap,
        FaultSite::PageCopy,
    ];
}

/// A declarative, serial-number-free description of which faults to inject.
///
/// Rates are per-mille (0 = never, 1000 = always) evaluated independently
/// at each site check against the plan's private RNG stream. `after` skips
/// the first N checks overall, letting a scenario set up cleanly before the
/// weather turns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
    /// Per-site failure probability in per-mille, indexed by `site as usize`.
    pub rates: [u16; FAULT_SITE_COUNT],
    /// Number of initial checks (across all sites) that never fail.
    pub after: u64,
}

impl FaultPlan {
    /// A plan with every rate zero (inject nothing until configured).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rates: [0; FAULT_SITE_COUNT],
            after: 0,
        }
    }

    /// Set one site's failure rate in per-mille (clamped to 1000).
    pub fn with_rate(mut self, site: FaultSite, per_mille: u16) -> Self {
        self.rates[site as usize] = per_mille.min(1000);
        self
    }

    /// Set every site's failure rate to the same per-mille value.
    pub fn with_all_rates(mut self, per_mille: u16) -> Self {
        self.rates = [per_mille.min(1000); FAULT_SITE_COUNT];
        self
    }

    /// Let the first `checks` site checks pass unconditionally.
    pub fn after(mut self, checks: u64) -> Self {
        self.after = checks;
        self
    }
}

/// The armed form of a [`FaultPlan`]: plan + RNG stream + counters.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    /// Site checks performed so far (for `plan.after`).
    checks: u64,
    /// Faults injected, per site.
    injected: [u64; FAULT_SITE_COUNT],
}

impl FaultInjector {
    /// Arm a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            rng: SplitMix64::new(plan.seed),
            checks: 0,
            injected: [0; FAULT_SITE_COUNT],
        }
    }

    /// Should the operation at `site` fail now? Advances the RNG stream
    /// only for sites with a non-zero rate, so arming one site does not
    /// perturb another site's outcomes.
    pub fn should_fail(&mut self, site: FaultSite) -> bool {
        let rate = self.plan.rates[site as usize];
        if rate == 0 {
            return false;
        }
        self.checks += 1;
        if self.checks <= self.plan.after {
            return false;
        }
        let fail = self.rng.gen_range(1000) < rate as u64;
        if fail {
            self.injected[site as usize] += 1;
        }
        fail
    }

    /// Faults injected at one site so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injected[site as usize]
    }

    /// Faults injected across all sites.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// The plan this injector was armed with.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fails_and_keeps_rng_cold() {
        let mut inj = FaultInjector::new(FaultPlan::new(42));
        for _ in 0..1000 {
            for site in FaultSite::ALL {
                assert!(!inj.should_fail(site));
            }
        }
        assert_eq!(inj.injected_total(), 0);
        assert_eq!(inj.checks, 0, "zero-rate checks must not consume RNG");
    }

    #[test]
    fn full_rate_always_fails() {
        let mut inj = FaultInjector::new(FaultPlan::new(7).with_rate(FaultSite::PageFault, 1000));
        for _ in 0..50 {
            assert!(inj.should_fail(FaultSite::PageFault));
        }
        assert_eq!(inj.injected(FaultSite::PageFault), 50);
        assert!(
            !inj.should_fail(FaultSite::SysMmap),
            "other sites stay cold"
        );
    }

    #[test]
    fn same_seed_same_outcomes() {
        let plan = FaultPlan::new(123).with_all_rates(250);
        let mut a = FaultInjector::new(plan);
        let mut b = FaultInjector::new(plan);
        for i in 0..5000 {
            let site = FaultSite::ALL[i % FAULT_SITE_COUNT];
            assert_eq!(a.should_fail(site), b.should_fail(site), "check {i}");
        }
        assert!(
            a.injected_total() > 0,
            "a 25% rate must fire over 5k checks"
        );
        assert_eq!(a.injected_total(), b.injected_total());
    }

    #[test]
    fn after_suppresses_warmup_checks() {
        let plan = FaultPlan::new(9)
            .with_rate(FaultSite::SysMmap, 1000)
            .after(10);
        let mut inj = FaultInjector::new(plan);
        for i in 0..10 {
            assert!(!inj.should_fail(FaultSite::SysMmap), "warmup check {i}");
        }
        assert!(inj.should_fail(FaultSite::SysMmap), "post-warmup fails");
    }

    #[test]
    fn rates_are_clamped() {
        let plan = FaultPlan::new(0).with_rate(FaultSite::PageCopy, 9999);
        assert_eq!(plan.rates[FaultSite::PageCopy as usize], 1000);
        assert_eq!(FaultPlan::new(0).with_all_rates(2000).rates, [1000; 5]);
    }

    #[test]
    fn intermediate_rate_is_roughly_proportional() {
        let mut inj = FaultInjector::new(FaultPlan::new(31).with_rate(FaultSite::PageCopy, 100));
        let n = 10_000;
        let fails = (0..n)
            .filter(|_| inj.should_fail(FaultSite::PageCopy))
            .count();
        // 10% nominal; allow wide slack, this is a sanity check not a
        // statistical test.
        assert!((500..2000).contains(&fails), "got {fails} of {n}");
    }
}
