//! The `color_list[MEM_ID][cache_ID]` matrix and Algorithm 2.
//!
//! The paper (§III.C): *"TintMalloc maintains a free list and 128\*32 color
//! lists simultaneously inside the Linux kernel. Those color lists are
//! defined as a matrix of color_list\[MEM_ID\]\[cache_ID\]. At boot-up, these
//! color lists are empty, all free pages are in the non-colored free list of
//! the buddy allocator."* Algorithm 2 (`create_color_list`) moves one buddy
//! block into the matrix: the block of `2^order` pages is separated into
//! single 4 KiB pages, each appended to the list matching its (bank color,
//! LLC color).

use std::collections::VecDeque;
use tint_hw::addrmap::AddressMapping;
use tint_hw::types::{BankColor, FrameNumber, LlcColor};

/// First set bit of `words` at an index ≥ `start`, wrapping around — the
/// same list a cursor-based linear scan over all bits would find. Padding
/// bits above the logical bit count are never set.
#[inline]
fn first_set_from(words: &[u64], start: usize) -> Option<usize> {
    let sw = start / 64;
    let above = words[sw] >> (start % 64);
    if above != 0 {
        return Some(start + above.trailing_zeros() as usize);
    }
    // Remaining words in wrap order; revisiting word `sw` last also covers
    // its bits *below* `start` (its bits at/above were just ruled out).
    for i in 1..=words.len() {
        let idx = (sw + i) % words.len();
        let w = words[idx];
        if w != 0 {
            return Some(idx * 64 + w.trailing_zeros() as usize);
        }
    }
    None
}

/// The matrix of per-(bank color, LLC color) page free lists.
///
/// Alongside the lists the matrix keeps two bitset indexes of the non-empty
/// lists — the LLC colors non-empty per bank color and the bank colors
/// non-empty per LLC color — so the any-color pops
/// ([`pop_bank`](Self::pop_bank), [`pop_llc`](Self::pop_llc)) find their
/// victim with a shift and a trailing-zeros count instead of scanning up to
/// `bank_color_count` lists.
#[derive(Debug, Clone)]
pub struct ColorMatrix {
    /// `lists[bank_color][llc_color]` — FIFO page lists.
    lists: Vec<Vec<VecDeque<FrameNumber>>>,
    /// Per bank color, `llc_words` words: bit `l` set ⇔ `lists[b][l]`
    /// is non-empty.
    nonempty_llc: Vec<u64>,
    /// Per LLC color, `bank_words` words: bit `b` set ⇔ `lists[b][l]`
    /// is non-empty.
    nonempty_bank: Vec<u64>,
    /// Words per bank color in `nonempty_llc`.
    llc_words: usize,
    /// Words per LLC color in `nonempty_bank`.
    bank_words: usize,
    mapping: AddressMapping,
    /// Pages currently held across all lists.
    pages: u64,
}

impl ColorMatrix {
    /// Empty matrix for a mapping (the boot-up state).
    pub fn new(mapping: AddressMapping) -> Self {
        let banks = mapping.bank_color_count();
        let llcs = mapping.llc_color_count();
        let llc_words = llcs.div_ceil(64);
        let bank_words = banks.div_ceil(64);
        Self {
            lists: vec![vec![VecDeque::new(); llcs]; banks],
            nonempty_llc: vec![0; banks * llc_words],
            nonempty_bank: vec![0; llcs * bank_words],
            llc_words,
            bank_words,
            mapping,
            pages: 0,
        }
    }

    /// Record that `lists[b][l]` just became non-empty.
    #[inline]
    fn mark_nonempty(&mut self, b: usize, l: usize) {
        self.nonempty_llc[b * self.llc_words + l / 64] |= 1u64 << (l % 64);
        self.nonempty_bank[l * self.bank_words + b / 64] |= 1u64 << (b % 64);
    }

    /// Record that `lists[b][l]` just became empty.
    #[inline]
    fn mark_empty(&mut self, b: usize, l: usize) {
        self.nonempty_llc[b * self.llc_words + l / 64] &= !(1u64 << (l % 64));
        self.nonempty_bank[l * self.bank_words + b / 64] &= !(1u64 << (b % 64));
    }

    /// Total pages held in color lists.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Pages held in one specific list.
    pub fn len(&self, bc: BankColor, llc: LlcColor) -> usize {
        self.lists[bc.index()][llc.index()].len()
    }

    /// True when every list is empty.
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// **Algorithm 2** — `create_color_list(order, page)`: separate the
    /// buddy block starting at `head` into `2^order` single pages and append
    /// each to the color list matching its decoded colors. Returns the page
    /// count moved.
    pub fn create_color_list(&mut self, order: u32, head: FrameNumber) -> u64 {
        let n = 1u64 << order;
        for i in 0..n {
            let f = FrameNumber(head.0 + i);
            let d = self.mapping.decode_frame(f);
            let (b, l) = (d.bank_color.index(), d.llc_color.index());
            self.lists[b][l].push_back(f);
            self.mark_nonempty(b, l);
        }
        self.pages += n;
        n
    }

    /// Append one page (a colored free()): the paper — "calls to free heap
    /// space by the application cause the kernel to add pages to the
    /// corresponding colored free lists".
    pub fn push(&mut self, frame: FrameNumber) {
        let d = self.mapping.decode_frame(frame);
        let (b, l) = (d.bank_color.index(), d.llc_color.index());
        self.lists[b][l].push_back(frame);
        self.mark_nonempty(b, l);
        self.pages += 1;
    }

    /// Pop a page of exactly this (bank color, LLC color).
    pub fn pop(&mut self, bc: BankColor, llc: LlcColor) -> Option<FrameNumber> {
        let (b, l) = (bc.index(), llc.index());
        let f = self.lists[b][l].pop_front()?;
        if self.lists[b][l].is_empty() {
            self.mark_empty(b, l);
        }
        self.pages -= 1;
        Some(f)
    }

    /// Pop a page whose bank color is `bc` with *any* LLC color (MEM-only
    /// coloring), round-robining across LLC colors starting at `cursor` to
    /// spread usage. Returns the page and the LLC color it came from.
    pub fn pop_bank(&mut self, bc: BankColor, cursor: usize) -> Option<(FrameNumber, LlcColor)> {
        let b = bc.index();
        let words = &self.nonempty_llc[b * self.llc_words..(b + 1) * self.llc_words];
        // First non-empty LLC color at/after the cursor, wrapping — the same
        // list the linear scan would have found.
        let c = cursor % self.mapping.llc_color_count();
        let l = first_set_from(words, c)?;
        // A set index bit over an empty list means the bitset drifted from
        // the lists. Heal the stale bit and report exhaustion instead of
        // aborting; the debug invariant checker still flags the drift.
        let Some(f) = self.pop(bc, LlcColor(l as u16)) else {
            self.mark_empty(bc.index(), l);
            return None;
        };
        Some((f, LlcColor(l as u16)))
    }

    /// Pop a page whose LLC color is `llc` with *any* bank color (LLC-only
    /// coloring), round-robining across bank colors starting at `cursor`.
    pub fn pop_llc(&mut self, llc: LlcColor, cursor: usize) -> Option<(FrameNumber, BankColor)> {
        let l = llc.index();
        let words = &self.nonempty_bank[l * self.bank_words..(l + 1) * self.bank_words];
        let c = cursor % self.mapping.bank_color_count();
        let b = first_set_from(words, c)?;
        let Some(f) = self.pop(BankColor(b as u16), llc) else {
            self.mark_empty(b, llc.index());
            return None;
        };
        Some((f, BankColor(b as u16)))
    }

    /// Drain every list (last colored task exited): return all parked pages
    /// in deterministic bank-major, LLC-minor, FIFO order so the caller can
    /// hand them back to the buddy allocator. Resets both non-empty indexes
    /// and the page counter — the matrix returns to its boot-up state.
    pub fn drain_all(&mut self) -> Vec<FrameNumber> {
        let mut out = Vec::with_capacity(self.pages as usize);
        for row in &mut self.lists {
            for list in row {
                out.extend(list.drain(..));
            }
        }
        self.nonempty_llc.iter_mut().for_each(|w| *w = 0);
        self.nonempty_bank.iter_mut().for_each(|w| *w = 0);
        self.pages = 0;
        out
    }

    /// The mapping used to decode frames.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Is `frame` currently parked in its color list? Decodes the frame to
    /// find the one list that could hold it, so the scan is bounded by that
    /// list's length — the incremental auditor's per-frame membership probe.
    pub fn contains_frame(&self, frame: FrameNumber) -> bool {
        let d = self.mapping.decode_frame(frame);
        self.lists[d.bank_color.index()][d.llc_color.index()].contains(&frame)
    }

    /// Iterate over every frame currently held in any color list (for
    /// whole-kernel frame accounting).
    pub fn iter_frames(&self) -> impl Iterator<Item = FrameNumber> + '_ {
        self.lists
            .iter()
            .flat_map(|row| row.iter().flat_map(|list| list.iter().copied()))
    }

    /// Check structural invariants: every page sits in the list matching its
    /// decoded colors and the page count is consistent.
    pub fn check_invariants(&self) {
        let mut total = 0u64;
        for (b, row) in self.lists.iter().enumerate() {
            for (l, list) in row.iter().enumerate() {
                for &f in list {
                    let d = self.mapping.decode_frame(f);
                    assert_eq!(d.bank_color.index(), b, "page {f} in wrong bank list");
                    assert_eq!(d.llc_color.index(), l, "page {f} in wrong LLC list");
                }
                total += list.len() as u64;
                let nonempty = !list.is_empty();
                assert_eq!(
                    self.nonempty_llc[b * self.llc_words + l / 64] >> (l % 64) & 1 == 1,
                    nonempty,
                    "LLC non-empty index out of sync at ({b},{l})"
                );
                assert_eq!(
                    self.nonempty_bank[l * self.bank_words + b / 64] >> (b % 64) & 1 == 1,
                    nonempty,
                    "bank non-empty index out of sync at ({b},{l})"
                );
            }
        }
        assert_eq!(total, self.pages, "page count drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> ColorMatrix {
        ColorMatrix::new(AddressMapping::tiny())
    }

    #[test]
    fn starts_empty() {
        let m = matrix();
        assert!(m.is_empty());
        assert_eq!(m.pages(), 0);
    }

    #[test]
    fn create_color_list_sorts_pages_by_color() {
        let mut m = matrix();
        // Tiny mapping: 4 bank colors × 4 LLC colors = 16 combos; an order-4
        // block (16 pages, aligned) covers each combo exactly once.
        let moved = m.create_color_list(4, FrameNumber(0));
        assert_eq!(moved, 16);
        assert_eq!(m.pages(), 16);
        for b in 0..4 {
            for l in 0..4 {
                assert_eq!(m.len(BankColor(b), LlcColor(l)), 1, "combo ({b},{l})");
            }
        }
        m.check_invariants();
    }

    #[test]
    fn pop_exact_color() {
        let mut m = matrix();
        m.create_color_list(4, FrameNumber(0));
        let f = m.pop(BankColor(2), LlcColor(3)).unwrap();
        let d = m.mapping().decode_frame(f);
        assert_eq!(d.bank_color, BankColor(2));
        assert_eq!(d.llc_color, LlcColor(3));
        assert_eq!(
            m.pop(BankColor(2), LlcColor(3)),
            None,
            "only one page of that combo"
        );
        m.check_invariants();
    }

    #[test]
    fn pop_is_fifo() {
        let mut m = matrix();
        // Two order-4 blocks: each combo now has two pages, block-0's first.
        m.create_color_list(4, FrameNumber(0));
        m.create_color_list(4, FrameNumber(16));
        let f1 = m.pop(BankColor(0), LlcColor(0)).unwrap();
        let f2 = m.pop(BankColor(0), LlcColor(0)).unwrap();
        assert!(f1.0 < f2.0, "FIFO: first block's page first");
    }

    #[test]
    fn pop_bank_round_robins_llc() {
        let mut m = matrix();
        m.create_color_list(4, FrameNumber(0));
        let (_, l0) = m.pop_bank(BankColor(1), 0).unwrap();
        let (_, l1) = m.pop_bank(BankColor(1), 1).unwrap();
        assert_eq!(l0, LlcColor(0));
        assert_eq!(l1, LlcColor(1));
        // Cursor pointing at an exhausted color falls through to the next.
        let (_, l2) = m.pop_bank(BankColor(1), 0).unwrap();
        assert_eq!(l2, LlcColor(2));
    }

    #[test]
    fn pop_llc_round_robins_banks() {
        let mut m = matrix();
        m.create_color_list(4, FrameNumber(0));
        let (f, b) = m.pop_llc(LlcColor(2), 3).unwrap();
        assert_eq!(b, BankColor(3));
        assert_eq!(m.mapping().decode_frame(f).llc_color, LlcColor(2));
    }

    #[test]
    fn pop_exhausted_returns_none() {
        let mut m = matrix();
        assert_eq!(m.pop(BankColor(0), LlcColor(0)), None);
        assert_eq!(m.pop_bank(BankColor(0), 0), None);
        assert_eq!(m.pop_llc(LlcColor(0), 0), None);
    }

    #[test]
    fn push_returns_page_to_its_list() {
        let mut m = matrix();
        m.create_color_list(4, FrameNumber(0));
        let f = m.pop(BankColor(1), LlcColor(1)).unwrap();
        m.push(f);
        assert_eq!(m.len(BankColor(1), LlcColor(1)), 1);
        m.check_invariants();
    }

    #[test]
    fn drain_all_empties_the_matrix_deterministically() {
        let mut m = matrix();
        m.create_color_list(4, FrameNumber(0));
        let drained = m.drain_all();
        assert_eq!(drained.len(), 16);
        assert!(m.is_empty());
        assert_eq!(m.pages(), 0);
        m.check_invariants();
        // Deterministic: a second identically-built matrix drains the same.
        let mut m2 = matrix();
        m2.create_color_list(4, FrameNumber(0));
        assert_eq!(m2.drain_all(), drained);
        // Drained matrix behaves like a boot-fresh one.
        assert_eq!(m.pop_bank(BankColor(0), 0), None);
        m.push(FrameNumber(3));
        assert_eq!(m.pages(), 1);
        m.check_invariants();
    }

    #[test]
    fn iter_frames_covers_every_list() {
        let mut m = matrix();
        m.create_color_list(4, FrameNumber(0));
        let mut frames: Vec<u64> = m.iter_frames().map(|f| f.0).collect();
        frames.sort();
        assert_eq!(frames, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn desynced_index_pops_none_and_heals() {
        // Force the failure the old code aborted on: an index bit set over
        // an empty list. The pops must report exhaustion, not panic, and
        // clear the stale bit so later pops stay O(1).
        let mut m = matrix();
        m.mark_nonempty(1, 2);
        assert_eq!(m.pop_bank(BankColor(1), 0), None);
        // Bank 1's index word (llc_words per bank), bit for LLC color 2.
        assert_eq!(
            m.nonempty_llc[m.llc_words] >> 2 & 1,
            0,
            "pop_bank healed the stale LLC-index bit"
        );
        m.mark_nonempty(1, 2);
        assert_eq!(m.pop_llc(LlcColor(2), 0), None);
        m.check_invariants();
    }

    #[test]
    fn eight_node_mapping_exceeds_one_index_word() {
        // The portability preset has 256 bank colors — more than one u64
        // word of non-empty index per LLC color. Exercise the multi-word
        // wrap-scan: populate two far-apart bank colors of one LLC color
        // and pop with cursors on both sides of each.
        let mapping = tint_hw::machine::MachineConfig::eight_node().mapping;
        assert!(mapping.bank_color_count() > 128);
        let mut m = ColorMatrix::new(mapping);
        let llc = LlcColor(0);
        let (lo, hi) = (BankColor(3), BankColor(200));
        let f_lo = m.mapping().compose_frame(lo, llc, 0);
        let f_hi = m.mapping().compose_frame(hi, llc, 0);
        m.push(f_lo);
        m.push(f_hi);
        m.check_invariants();
        // Cursor past the low color wraps to the high one and back.
        let (_, b) = m.pop_llc(llc, 100).unwrap();
        assert_eq!(b, hi);
        let (_, b) = m.pop_llc(llc, 210).unwrap();
        assert_eq!(b, lo);
        assert!(m.pop_llc(llc, 0).is_none());
        m.check_invariants();
    }

    #[test]
    fn opteron_block_covers_all_colors() {
        // On the Opteron mapping an order-11 block has frames covering all
        // 12 color bits except the top node bit — i.e. half the machine's
        // color combos, 4096/2 = 2048 distinct combos, one page each.
        let mut m = ColorMatrix::new(AddressMapping::opteron_6128());
        let moved = m.create_color_list(11, FrameNumber(0));
        assert_eq!(moved, 2048);
        let mut nonempty = 0;
        for b in 0..128 {
            for l in 0..32 {
                if m.len(BankColor(b), LlcColor(l)) > 0 {
                    nonempty += 1;
                }
            }
        }
        assert_eq!(nonempty, 2048);
        m.check_invariants();
    }
}
