//! The `color_list[MEM_ID][cache_ID]` matrix and Algorithm 2.
//!
//! The paper (§III.C): *"TintMalloc maintains a free list and 128\*32 color
//! lists simultaneously inside the Linux kernel. Those color lists are
//! defined as a matrix of color_list\[MEM_ID\]\[cache_ID\]. At boot-up, these
//! color lists are empty, all free pages are in the non-colored free list of
//! the buddy allocator."* Algorithm 2 (`create_color_list`) moves one buddy
//! block into the matrix: the block of `2^order` pages is separated into
//! single 4 KiB pages, each appended to the list matching its (bank color,
//! LLC color).

use std::collections::VecDeque;
use tint_hw::addrmap::AddressMapping;
use tint_hw::types::{BankColor, FrameNumber, LlcColor};

/// The matrix of per-(bank color, LLC color) page free lists.
#[derive(Debug, Clone)]
pub struct ColorMatrix {
    /// `lists[bank_color][llc_color]` — FIFO page lists.
    lists: Vec<Vec<VecDeque<FrameNumber>>>,
    mapping: AddressMapping,
    /// Pages currently held across all lists.
    pages: u64,
}

impl ColorMatrix {
    /// Empty matrix for a mapping (the boot-up state).
    pub fn new(mapping: AddressMapping) -> Self {
        let banks = mapping.bank_color_count();
        let llcs = mapping.llc_color_count();
        Self {
            lists: vec![vec![VecDeque::new(); llcs]; banks],
            mapping,
            pages: 0,
        }
    }

    /// Total pages held in color lists.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Pages held in one specific list.
    pub fn len(&self, bc: BankColor, llc: LlcColor) -> usize {
        self.lists[bc.index()][llc.index()].len()
    }

    /// True when every list is empty.
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// **Algorithm 2** — `create_color_list(order, page)`: separate the
    /// buddy block starting at `head` into `2^order` single pages and append
    /// each to the color list matching its decoded colors. Returns the page
    /// count moved.
    pub fn create_color_list(&mut self, order: u32, head: FrameNumber) -> u64 {
        let n = 1u64 << order;
        for i in 0..n {
            let f = FrameNumber(head.0 + i);
            let d = self.mapping.decode_frame(f);
            self.lists[d.bank_color.index()][d.llc_color.index()].push_back(f);
        }
        self.pages += n;
        n
    }

    /// Append one page (a colored free()): the paper — "calls to free heap
    /// space by the application cause the kernel to add pages to the
    /// corresponding colored free lists".
    pub fn push(&mut self, frame: FrameNumber) {
        let d = self.mapping.decode_frame(frame);
        self.lists[d.bank_color.index()][d.llc_color.index()].push_back(frame);
        self.pages += 1;
    }

    /// Pop a page of exactly this (bank color, LLC color).
    pub fn pop(&mut self, bc: BankColor, llc: LlcColor) -> Option<FrameNumber> {
        let f = self.lists[bc.index()][llc.index()].pop_front()?;
        self.pages -= 1;
        Some(f)
    }

    /// Pop a page whose bank color is `bc` with *any* LLC color (MEM-only
    /// coloring), round-robining across LLC colors starting at `cursor` to
    /// spread usage. Returns the page and the LLC color it came from.
    pub fn pop_bank(&mut self, bc: BankColor, cursor: usize) -> Option<(FrameNumber, LlcColor)> {
        let llcs = self.mapping.llc_color_count();
        for i in 0..llcs {
            let l = (cursor + i) % llcs;
            if let Some(f) = self.lists[bc.index()][l].pop_front() {
                self.pages -= 1;
                return Some((f, LlcColor(l as u16)));
            }
        }
        None
    }

    /// Pop a page whose LLC color is `llc` with *any* bank color (LLC-only
    /// coloring), round-robining across bank colors starting at `cursor`.
    pub fn pop_llc(&mut self, llc: LlcColor, cursor: usize) -> Option<(FrameNumber, BankColor)> {
        let banks = self.mapping.bank_color_count();
        for i in 0..banks {
            let b = (cursor + i) % banks;
            if let Some(f) = self.lists[b][llc.index()].pop_front() {
                self.pages -= 1;
                return Some((f, BankColor(b as u16)));
            }
        }
        None
    }

    /// The mapping used to decode frames.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Check structural invariants: every page sits in the list matching its
    /// decoded colors and the page count is consistent.
    pub fn check_invariants(&self) {
        let mut total = 0u64;
        for (b, row) in self.lists.iter().enumerate() {
            for (l, list) in row.iter().enumerate() {
                for &f in list {
                    let d = self.mapping.decode_frame(f);
                    assert_eq!(d.bank_color.index(), b, "page {f} in wrong bank list");
                    assert_eq!(d.llc_color.index(), l, "page {f} in wrong LLC list");
                }
                total += list.len() as u64;
            }
        }
        assert_eq!(total, self.pages, "page count drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> ColorMatrix {
        ColorMatrix::new(AddressMapping::tiny())
    }

    #[test]
    fn starts_empty() {
        let m = matrix();
        assert!(m.is_empty());
        assert_eq!(m.pages(), 0);
    }

    #[test]
    fn create_color_list_sorts_pages_by_color() {
        let mut m = matrix();
        // Tiny mapping: 4 bank colors × 4 LLC colors = 16 combos; an order-4
        // block (16 pages, aligned) covers each combo exactly once.
        let moved = m.create_color_list(4, FrameNumber(0));
        assert_eq!(moved, 16);
        assert_eq!(m.pages(), 16);
        for b in 0..4 {
            for l in 0..4 {
                assert_eq!(m.len(BankColor(b), LlcColor(l)), 1, "combo ({b},{l})");
            }
        }
        m.check_invariants();
    }

    #[test]
    fn pop_exact_color() {
        let mut m = matrix();
        m.create_color_list(4, FrameNumber(0));
        let f = m.pop(BankColor(2), LlcColor(3)).unwrap();
        let d = m.mapping().decode_frame(f);
        assert_eq!(d.bank_color, BankColor(2));
        assert_eq!(d.llc_color, LlcColor(3));
        assert_eq!(m.pop(BankColor(2), LlcColor(3)), None, "only one page of that combo");
        m.check_invariants();
    }

    #[test]
    fn pop_is_fifo() {
        let mut m = matrix();
        // Two order-4 blocks: each combo now has two pages, block-0's first.
        m.create_color_list(4, FrameNumber(0));
        m.create_color_list(4, FrameNumber(16));
        let f1 = m.pop(BankColor(0), LlcColor(0)).unwrap();
        let f2 = m.pop(BankColor(0), LlcColor(0)).unwrap();
        assert!(f1.0 < f2.0, "FIFO: first block's page first");
    }

    #[test]
    fn pop_bank_round_robins_llc() {
        let mut m = matrix();
        m.create_color_list(4, FrameNumber(0));
        let (_, l0) = m.pop_bank(BankColor(1), 0).unwrap();
        let (_, l1) = m.pop_bank(BankColor(1), 1).unwrap();
        assert_eq!(l0, LlcColor(0));
        assert_eq!(l1, LlcColor(1));
        // Cursor pointing at an exhausted color falls through to the next.
        let (_, l2) = m.pop_bank(BankColor(1), 0).unwrap();
        assert_eq!(l2, LlcColor(2));
    }

    #[test]
    fn pop_llc_round_robins_banks() {
        let mut m = matrix();
        m.create_color_list(4, FrameNumber(0));
        let (f, b) = m.pop_llc(LlcColor(2), 3).unwrap();
        assert_eq!(b, BankColor(3));
        assert_eq!(m.mapping().decode_frame(f).llc_color, LlcColor(2));
    }

    #[test]
    fn pop_exhausted_returns_none() {
        let mut m = matrix();
        assert_eq!(m.pop(BankColor(0), LlcColor(0)), None);
        assert_eq!(m.pop_bank(BankColor(0), 0), None);
        assert_eq!(m.pop_llc(LlcColor(0), 0), None);
    }

    #[test]
    fn push_returns_page_to_its_list() {
        let mut m = matrix();
        m.create_color_list(4, FrameNumber(0));
        let f = m.pop(BankColor(1), LlcColor(1)).unwrap();
        m.push(f);
        assert_eq!(m.len(BankColor(1), LlcColor(1)), 1);
        m.check_invariants();
    }

    #[test]
    fn opteron_block_covers_all_colors() {
        // On the Opteron mapping an order-11 block has frames covering all
        // 12 color bits except the top node bit — i.e. half the machine's
        // color combos, 4096/2 = 2048 distinct combos, one page each.
        let mut m = ColorMatrix::new(AddressMapping::opteron_6128());
        let moved = m.create_color_list(11, FrameNumber(0));
        assert_eq!(moved, 2048);
        let mut nonempty = 0;
        for b in 0..128 {
            for l in 0..32 {
                if m.len(BankColor(b), LlcColor(l)) > 0 {
                    nonempty += 1;
                }
            }
        }
        assert_eq!(nonempty, 2048);
        m.check_invariants();
    }
}
