//! Kernel error codes, in the spirit of the paper's "mmap() will return an
//! error code indicating that no more pages of this color are available".

use std::fmt;

/// Error codes returned by the simulated system calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Errno {
    /// Out of memory — for colored allocations, *of that color* (§III.B).
    Enomem,
    /// Malformed argument (bad color id, bad mode bits, zero-length map
    /// without the color flag, ...).
    Einval,
    /// Unknown task.
    Esrch,
    /// Access to an unmapped virtual address (simulated SIGSEGV).
    Efault,
    /// Transient failure (e.g. an injected buddy-replenish fault): the
    /// operation mutated nothing and may be retried.
    Eagain,
}

impl Errno {
    /// The conventional uppercase name (`"ENOMEM"`, ...), for table cells
    /// and machine-readable output.
    pub fn name(&self) -> &'static str {
        match self {
            Errno::Enomem => "ENOMEM",
            Errno::Einval => "EINVAL",
            Errno::Esrch => "ESRCH",
            Errno::Efault => "EFAULT",
            Errno::Eagain => "EAGAIN",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Errno::Enomem => "ENOMEM: no page of the requested color available",
            Errno::Einval => "EINVAL: malformed argument",
            Errno::Esrch => "ESRCH: no such task",
            Errno::Efault => "EFAULT: access to unmapped address",
            Errno::Eagain => "EAGAIN: transient failure, retry",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(Errno::Enomem.to_string().contains("color"));
        assert!(Errno::Efault.to_string().contains("unmapped"));
        assert!(Errno::Eagain.to_string().contains("retry"));
    }

    #[test]
    fn name_is_the_display_prefix() {
        for e in [
            Errno::Enomem,
            Errno::Einval,
            Errno::Esrch,
            Errno::Efault,
            Errno::Eagain,
        ] {
            assert!(e.to_string().starts_with(e.name()));
        }
    }
}
