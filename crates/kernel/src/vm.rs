//! Per-task virtual memory: VMAs, a page table, and demand paging.
//!
//! `mmap()` only creates a *virtual memory area*; physical frames are bound
//! lazily, on first touch, by the page-fault path — which is exactly where
//! TintMalloc's colored `alloc_pages` (Algorithm 1) plugs in. The address
//! space here is a map from virtual page numbers to frames plus a sorted
//! list of mapped regions.

use crate::errno::Errno;
use std::collections::HashMap;
use tint_hw::types::{FrameNumber, PageNumber, PhysAddr, VirtAddr, PAGE_SHIFT};

/// Base of the simulated mmap arena (like Linux's mmap_base, just fixed).
pub const MMAP_BASE: u64 = 0x7000_0000_0000;

/// One mapped region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// First page of the region.
    pub start: PageNumber,
    /// Length in pages.
    pub pages: u64,
}

impl Vma {
    /// Does the region contain `page`?
    #[inline]
    pub fn contains(&self, page: PageNumber) -> bool {
        page.0 >= self.start.0 && page.0 < self.start.0 + self.pages
    }
}

/// A task's address space.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    vmas: Vec<Vma>,
    table: HashMap<u64, FrameNumber>,
    next_base: u64,
}

impl AddressSpace {
    /// Empty address space.
    pub fn new() -> Self {
        Self {
            vmas: Vec::new(),
            table: HashMap::new(),
            next_base: MMAP_BASE >> PAGE_SHIFT,
        }
    }

    /// Create a new VMA of `pages` pages; returns its base address.
    /// (A bump allocator over a huge virtual range — regions are never
    /// reused, matching how short-lived simulations use mmap.)
    pub fn map_region(&mut self, pages: u64) -> VirtAddr {
        assert!(pages > 0, "zero-length VMAs are the color protocol's job");
        let start = PageNumber(self.next_base);
        self.next_base += pages;
        self.vmas.push(Vma { start, pages });
        start.base()
    }

    /// The VMA containing `page`, if any.
    pub fn vma_of(&self, page: PageNumber) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.contains(page))
    }

    /// Is `addr` inside some VMA (mapped, though possibly not yet backed)?
    pub fn is_mapped(&self, addr: VirtAddr) -> bool {
        self.vma_of(addr.page()).is_some()
    }

    /// Translate without faulting: the frame backing `page`, if present.
    pub fn lookup(&self, page: PageNumber) -> Option<FrameNumber> {
        self.table.get(&page.0).copied()
    }

    /// Translate a full address without faulting.
    pub fn translate(&self, addr: VirtAddr) -> Option<PhysAddr> {
        self.lookup(addr.page()).map(|f| f.at(addr.page_offset()))
    }

    /// Install a frame for `page`. Returns `Err(Efault)` if the page is not
    /// covered by any VMA, panics on double-install (kernel bug).
    pub fn install(&mut self, page: PageNumber, frame: FrameNumber) -> Result<(), Errno> {
        if self.vma_of(page).is_none() {
            return Err(Errno::Efault);
        }
        let prev = self.table.insert(page.0, frame);
        assert!(prev.is_none(), "double page-fault install at {page:?}");
        Ok(())
    }

    /// Replace the frame backing an already-resident page (page migration).
    /// Panics if the page is not resident — migration only moves what exists.
    pub fn remap(&mut self, page: PageNumber, frame: FrameNumber) {
        let prev = self.table.insert(page.0, frame);
        assert!(prev.is_some(), "remap of a non-resident page {page:?}");
    }

    /// Remove the region starting exactly at `base` spanning `pages`,
    /// returning every frame that was backing it (for the kernel to free).
    pub fn unmap_region(&mut self, base: VirtAddr, pages: u64) -> Result<Vec<FrameNumber>, Errno> {
        let start = base.page();
        let pos = self
            .vmas
            .iter()
            .position(|v| v.start == start && v.pages == pages)
            .ok_or(Errno::Einval)?;
        self.vmas.remove(pos);
        let mut frames = Vec::new();
        for p in start.0..start.0 + pages {
            if let Some(f) = self.table.remove(&p) {
                frames.push(f);
            }
        }
        Ok(frames)
    }

    /// Number of resident (backed) pages.
    pub fn resident_pages(&self) -> usize {
        self.table.len()
    }

    /// Number of live VMAs.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Iterate over resident (page, frame) pairs in unspecified order.
    pub fn resident(&self) -> impl Iterator<Item = (PageNumber, FrameNumber)> + '_ {
        self.table.iter().map(|(&p, &f)| (PageNumber(p), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_region_returns_page_aligned_disjoint_bases() {
        let mut a = AddressSpace::new();
        let r1 = a.map_region(4);
        let r2 = a.map_region(2);
        assert_eq!(r1.page_offset(), 0);
        assert_eq!(r2.0, r1.0 + 4 * 4096);
        assert_eq!(a.vma_count(), 2);
    }

    #[test]
    fn translate_unbacked_is_none_but_mapped() {
        let mut a = AddressSpace::new();
        let base = a.map_region(1);
        assert!(a.is_mapped(base));
        assert_eq!(a.translate(base), None, "no frame until first touch");
    }

    #[test]
    fn install_then_translate() {
        let mut a = AddressSpace::new();
        let base = a.map_region(2);
        a.install(base.page(), FrameNumber(7)).unwrap();
        let t = a.translate(base.offset(12)).unwrap();
        assert_eq!(t, FrameNumber(7).at(12));
        assert_eq!(a.resident_pages(), 1);
    }

    #[test]
    fn install_outside_vma_is_efault() {
        let mut a = AddressSpace::new();
        assert_eq!(
            a.install(PageNumber(999), FrameNumber(0)),
            Err(Errno::Efault)
        );
    }

    #[test]
    #[should_panic(expected = "double page-fault install")]
    fn double_install_panics() {
        let mut a = AddressSpace::new();
        let base = a.map_region(1);
        a.install(base.page(), FrameNumber(1)).unwrap();
        a.install(base.page(), FrameNumber(2)).unwrap();
    }

    #[test]
    fn unmap_returns_backed_frames_only() {
        let mut a = AddressSpace::new();
        let base = a.map_region(3);
        a.install(base.page(), FrameNumber(10)).unwrap();
        a.install(PageNumber(base.page().0 + 2), FrameNumber(12))
            .unwrap();
        let frames = a.unmap_region(base, 3).unwrap();
        assert_eq!(frames.len(), 2);
        assert!(frames.contains(&FrameNumber(10)));
        assert!(frames.contains(&FrameNumber(12)));
        assert_eq!(a.vma_count(), 0);
        assert!(!a.is_mapped(base));
    }

    #[test]
    fn unmap_wrong_region_is_einval() {
        let mut a = AddressSpace::new();
        let base = a.map_region(3);
        assert_eq!(a.unmap_region(base, 2), Err(Errno::Einval));
        assert_eq!(a.unmap_region(base.offset(4096), 3), Err(Errno::Einval));
    }

    #[test]
    fn vma_contains() {
        let v = Vma {
            start: PageNumber(10),
            pages: 2,
        };
        assert!(!v.contains(PageNumber(9)));
        assert!(v.contains(PageNumber(10)));
        assert!(v.contains(PageNumber(11)));
        assert!(!v.contains(PageNumber(12)));
    }
}
