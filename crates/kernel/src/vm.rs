//! Per-task virtual memory: VMAs, a page table, and demand paging.
//!
//! `mmap()` only creates a *virtual memory area*; physical frames are bound
//! lazily, on first touch, by the page-fault path — which is exactly where
//! TintMalloc's colored `alloc_pages` (Algorithm 1) plugs in. The address
//! space here is a map from virtual page numbers to frames plus a sorted
//! list of mapped regions.

use crate::errno::Errno;
use std::collections::HashMap;
use tint_hw::types::{FrameNumber, PageNumber, PhysAddr, VirtAddr, PAGE_SHIFT};

/// Base of the simulated mmap arena (like Linux's mmap_base, just fixed).
pub const MMAP_BASE: u64 = 0x7000_0000_0000;

/// One mapped region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vma {
    /// First page of the region.
    pub start: PageNumber,
    /// Length in pages.
    pub pages: u64,
}

impl Vma {
    /// Does the region contain `page`?
    #[inline]
    pub fn contains(&self, page: PageNumber) -> bool {
        page.0 >= self.start.0 && page.0 < self.start.0 + self.pages
    }
}

/// Which free-page pool a frame was taken from at allocation time.
///
/// Recorded in the PTE so that every reclamation path (`sys_munmap`, heap
/// `free`, `sys_exit`) can return the frame to the pool it actually came
/// from. Routing by the task's *current* coloring flags instead is wrong:
/// a `CLEAR_MEM_COLOR` before unmap, or an exhaustion fallback that served
/// a buddy page to a colored task, would silently drain one pool into the
/// other over uptime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameSource {
    /// Popped from the `color_list[MEM_ID][cache_ID]` matrix (including
    /// frames a `NearestColor` fallback borrowed from a neighbouring list).
    Colors,
    /// Served by the buddy allocator directly (legacy/first-touch paths,
    /// per-CPU page caches, and the `LocalUncolored` degraded mode).
    Buddy,
}

/// One page-table entry: the backing frame plus its origin pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Physical frame backing the page.
    pub frame: FrameNumber,
    /// Pool the frame was allocated from.
    pub source: FrameSource,
}

/// A task's address space.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    vmas: Vec<Vma>,
    table: HashMap<u64, Pte>,
    next_base: u64,
}

impl AddressSpace {
    /// Empty address space.
    pub fn new() -> Self {
        Self {
            vmas: Vec::new(),
            table: HashMap::new(),
            next_base: MMAP_BASE >> PAGE_SHIFT,
        }
    }

    /// Create a new VMA of `pages` pages; returns its base address.
    /// (A bump allocator over a huge virtual range — regions are never
    /// reused, matching how short-lived simulations use mmap.)
    pub fn map_region(&mut self, pages: u64) -> VirtAddr {
        assert!(pages > 0, "zero-length VMAs are the color protocol's job");
        let start = PageNumber(self.next_base);
        self.next_base += pages;
        self.vmas.push(Vma { start, pages });
        start.base()
    }

    /// The VMA containing `page`, if any.
    pub fn vma_of(&self, page: PageNumber) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.contains(page))
    }

    /// Is `addr` inside some VMA (mapped, though possibly not yet backed)?
    pub fn is_mapped(&self, addr: VirtAddr) -> bool {
        self.vma_of(addr.page()).is_some()
    }

    /// Translate without faulting: the frame backing `page`, if present.
    pub fn lookup(&self, page: PageNumber) -> Option<FrameNumber> {
        self.table.get(&page.0).map(|pte| pte.frame)
    }

    /// The full PTE for `page`, if resident.
    pub fn pte(&self, page: PageNumber) -> Option<Pte> {
        self.table.get(&page.0).copied()
    }

    /// Translate a full address without faulting.
    pub fn translate(&self, addr: VirtAddr) -> Option<PhysAddr> {
        self.lookup(addr.page()).map(|f| f.at(addr.page_offset()))
    }

    /// Install a frame for `page`, recording which pool it came from.
    /// Returns `Err(Efault)` if the page is not covered by any VMA, panics
    /// on double-install (kernel bug).
    pub fn install(
        &mut self,
        page: PageNumber,
        frame: FrameNumber,
        source: FrameSource,
    ) -> Result<(), Errno> {
        if self.vma_of(page).is_none() {
            return Err(Errno::Efault);
        }
        let prev = self.table.insert(page.0, Pte { frame, source });
        assert!(prev.is_none(), "double page-fault install at {page:?}");
        Ok(())
    }

    /// Replace the frame backing an already-resident page (page migration),
    /// returning the *old* frame's source so the caller can route it back
    /// to the right pool. Panics if the page is not resident — migration
    /// only moves what exists.
    pub fn remap(&mut self, page: PageNumber, frame: FrameNumber, source: FrameSource) -> Pte {
        let prev = self.table.insert(page.0, Pte { frame, source });
        prev.unwrap_or_else(|| panic!("remap of a non-resident page {page:?}"))
    }

    /// Remove the region starting exactly at `base` spanning `pages`,
    /// returning every PTE that was backing it (for the kernel to free,
    /// each to its origin pool).
    pub fn unmap_region(&mut self, base: VirtAddr, pages: u64) -> Result<Vec<Pte>, Errno> {
        let start = base.page();
        let pos = self
            .vmas
            .iter()
            .position(|v| v.start == start && v.pages == pages)
            .ok_or(Errno::Einval)?;
        self.vmas.remove(pos);
        let mut ptes = Vec::new();
        for p in start.0..start.0 + pages {
            if let Some(pte) = self.table.remove(&p) {
                ptes.push(pte);
            }
        }
        Ok(ptes)
    }

    /// Tear the whole address space down (task exit): drop every VMA and
    /// return every resident PTE, sorted by frame for determinism. The
    /// space is reset in place — `VmId` slots are never reused.
    pub fn teardown(&mut self) -> Vec<Pte> {
        self.vmas.clear();
        self.next_base = MMAP_BASE >> PAGE_SHIFT;
        let mut ptes: Vec<Pte> = self.table.drain().map(|(_, pte)| pte).collect();
        ptes.sort_by_key(|pte| pte.frame.0);
        ptes
    }

    /// Number of resident (backed) pages.
    pub fn resident_pages(&self) -> usize {
        self.table.len()
    }

    /// Number of live VMAs.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Iterate over resident (page, frame) pairs in unspecified order.
    pub fn resident(&self) -> impl Iterator<Item = (PageNumber, FrameNumber)> + '_ {
        self.table
            .iter()
            .map(|(&p, pte)| (PageNumber(p), pte.frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_region_returns_page_aligned_disjoint_bases() {
        let mut a = AddressSpace::new();
        let r1 = a.map_region(4);
        let r2 = a.map_region(2);
        assert_eq!(r1.page_offset(), 0);
        assert_eq!(r2.0, r1.0 + 4 * 4096);
        assert_eq!(a.vma_count(), 2);
    }

    #[test]
    fn translate_unbacked_is_none_but_mapped() {
        let mut a = AddressSpace::new();
        let base = a.map_region(1);
        assert!(a.is_mapped(base));
        assert_eq!(a.translate(base), None, "no frame until first touch");
    }

    #[test]
    fn install_then_translate() {
        let mut a = AddressSpace::new();
        let base = a.map_region(2);
        a.install(base.page(), FrameNumber(7), FrameSource::Colors)
            .unwrap();
        let t = a.translate(base.offset(12)).unwrap();
        assert_eq!(t, FrameNumber(7).at(12));
        assert_eq!(a.resident_pages(), 1);
        assert_eq!(
            a.pte(base.page()),
            Some(Pte {
                frame: FrameNumber(7),
                source: FrameSource::Colors
            })
        );
    }

    #[test]
    fn install_outside_vma_is_efault() {
        let mut a = AddressSpace::new();
        assert_eq!(
            a.install(PageNumber(999), FrameNumber(0), FrameSource::Buddy),
            Err(Errno::Efault)
        );
    }

    #[test]
    #[should_panic(expected = "double page-fault install")]
    fn double_install_panics() {
        let mut a = AddressSpace::new();
        let base = a.map_region(1);
        a.install(base.page(), FrameNumber(1), FrameSource::Buddy)
            .unwrap();
        a.install(base.page(), FrameNumber(2), FrameSource::Buddy)
            .unwrap();
    }

    #[test]
    fn unmap_returns_backed_ptes_only() {
        let mut a = AddressSpace::new();
        let base = a.map_region(3);
        a.install(base.page(), FrameNumber(10), FrameSource::Colors)
            .unwrap();
        a.install(
            PageNumber(base.page().0 + 2),
            FrameNumber(12),
            FrameSource::Buddy,
        )
        .unwrap();
        let ptes = a.unmap_region(base, 3).unwrap();
        assert_eq!(ptes.len(), 2);
        assert!(ptes.contains(&Pte {
            frame: FrameNumber(10),
            source: FrameSource::Colors
        }));
        assert!(ptes.contains(&Pte {
            frame: FrameNumber(12),
            source: FrameSource::Buddy
        }));
        assert_eq!(a.vma_count(), 0);
        assert!(!a.is_mapped(base));
    }

    #[test]
    fn remap_returns_the_old_pte() {
        let mut a = AddressSpace::new();
        let base = a.map_region(1);
        a.install(base.page(), FrameNumber(3), FrameSource::Buddy)
            .unwrap();
        let old = a.remap(base.page(), FrameNumber(9), FrameSource::Colors);
        assert_eq!(old.frame, FrameNumber(3));
        assert_eq!(old.source, FrameSource::Buddy);
        assert_eq!(a.lookup(base.page()), Some(FrameNumber(9)));
        assert_eq!(a.pte(base.page()).unwrap().source, FrameSource::Colors);
    }

    #[test]
    fn teardown_drains_everything_and_resets() {
        let mut a = AddressSpace::new();
        let b1 = a.map_region(2);
        let b2 = a.map_region(1);
        a.install(b1.page(), FrameNumber(20), FrameSource::Colors)
            .unwrap();
        a.install(b2.page(), FrameNumber(5), FrameSource::Buddy)
            .unwrap();
        let ptes = a.teardown();
        assert_eq!(
            ptes.iter().map(|p| p.frame.0).collect::<Vec<_>>(),
            vec![5, 20],
            "sorted by frame for determinism"
        );
        assert_eq!(a.vma_count(), 0);
        assert_eq!(a.resident_pages(), 0);
        // The arena restarts at its base: fresh regions map as if new.
        assert_eq!(a.map_region(1), VirtAddr(MMAP_BASE));
    }

    #[test]
    fn unmap_wrong_region_is_einval() {
        let mut a = AddressSpace::new();
        let base = a.map_region(3);
        assert_eq!(a.unmap_region(base, 2), Err(Errno::Einval));
        assert_eq!(a.unmap_region(base.offset(4096), 3), Err(Errno::Einval));
    }

    #[test]
    fn vma_contains() {
        let v = Vma {
            start: PageNumber(10),
            pages: 2,
        };
        assert!(!v.contains(PageNumber(9)));
        assert!(v.contains(PageNumber(10)));
        assert!(v.contains(PageNumber(11)));
        assert!(!v.contains(PageNumber(12)));
    }
}
