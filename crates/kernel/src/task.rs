//! The task control block (`task_struct` in Linux terms).
//!
//! The paper (§III.B): *"zero-sized mmap() calls result in memory
//! controller/bank and LLC colors to be saved in the task_struct ... In
//! addition, two coloring flags using_bank and using_llc are set"*. Any
//! later allocation looks the colors up here — which is what makes the
//! "just one line of code" usage model work: `malloc()` itself is unchanged.

use tint_hw::types::{BankColor, CoreId, LlcColor};

/// Identifier of a shared address space (CLONE_VM semantics: threads of one
/// OpenMP process share a `VmId`, each with its own TCB and colors — so the
/// first-touching thread's colors decide a page's placement, exactly like
/// Linux first-touch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmId(pub usize);

/// Task identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u64);

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tid:{}", self.0)
    }
}

/// Base heap policy used when a task has **no** colors set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapPolicy {
    /// Legacy Linux buddy allocation: global free list, no node awareness —
    /// the paper's "standard buddy allocator" baseline.
    #[default]
    Legacy,
    /// NUMA first-touch: prefer a frame on the faulting task's local node,
    /// fall back to the global list. An ablation point between legacy buddy
    /// and full TintMalloc coloring.
    FirstTouch,
}

/// What Algorithm 1 does when a colored task's supply is exhausted — no
/// free page of any owned color remains and no buddy block can replenish
/// the color lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExhaustionPolicy {
    /// Fail the allocation with `ENOMEM` — the paper's §III.B contract
    /// ("mmap() will return an error code indicating that no more pages of
    /// this color are available") and this kernel's historical behaviour.
    #[default]
    Strict,
    /// Borrow the nearest free bank color on the task's local node: the
    /// LLC constraint (if any) is kept, only the bank constraint is
    /// relaxed, and candidates are tried in order of distance from the
    /// task's owned colors so contention stays adjacent.
    NearestColor,
    /// Fall back to node-local uncolored buddy allocation — the paper's
    /// §III.C degraded mode, where Algorithm 1's buddy traversal simply
    /// serves the page it finds. Keeps controller locality, abandons both
    /// color constraints.
    LocalUncolored,
}

/// A decoded color-set operation (the `mmap()` protocol's payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorOp {
    /// Add a memory (controller/bank) color to the calling task.
    SetMemColor(BankColor),
    /// Add an LLC color to the calling task.
    SetLlcColor(LlcColor),
    /// Drop all memory colors (clears `using_bank`).
    ClearMemColors,
    /// Drop all LLC colors (clears `using_llc`).
    ClearLlcColors,
}

/// The simulated TCB.
#[derive(Debug, Clone)]
pub struct TaskStruct {
    /// Task id.
    pub tid: Tid,
    /// Core the task is pinned to (the paper assumes static pinning, §III).
    pub core: CoreId,
    /// Owned memory (bank) colors, in insertion order.
    mem_colors: Vec<BankColor>,
    /// Owned LLC colors, in insertion order.
    llc_colors: Vec<LlcColor>,
    /// `using_bank` flag: memory coloring active.
    pub using_bank: bool,
    /// `using_llc` flag: LLC coloring active.
    pub using_llc: bool,
    /// Base policy when no coloring flag is set.
    pub policy: HeapPolicy,
    /// What a colored allocation does when its color supply is exhausted.
    pub exhaustion: ExhaustionPolicy,
    /// Colored allocations served off-color under
    /// [`ExhaustionPolicy::NearestColor`] (a borrowed bank color).
    pub off_color_allocs: u64,
    /// Colored allocations served uncolored under
    /// [`ExhaustionPolicy::LocalUncolored`] (buddy fallback).
    pub exhaustion_fallbacks: u64,
    /// Round-robin cursor over `mem_colors`.
    pub(crate) mem_cursor: usize,
    /// Round-robin cursor over `llc_colors` (and over the full LLC space for
    /// MEM-only coloring).
    pub(crate) llc_cursor: usize,
    /// The (possibly shared) address space the task runs in.
    pub vm: VmId,
    /// Per-task page cache for the *uncolored* paths, modeling Linux's
    /// per-CPU page (pcp) lists: faults are served from a batch of
    /// contiguous frames reserved in one go. The paper disables pcp lists
    /// for colored allocation (§III.C), so colored paths never use this.
    pub(crate) pcp: std::collections::VecDeque<tint_hw::types::FrameNumber>,
}

impl TaskStruct {
    /// Fresh task pinned to `core` in address space `vm`, with legacy policy
    /// and no colors.
    pub fn new(tid: Tid, core: CoreId, vm: VmId) -> Self {
        Self {
            tid,
            core,
            mem_colors: Vec::new(),
            llc_colors: Vec::new(),
            using_bank: false,
            using_llc: false,
            policy: HeapPolicy::Legacy,
            exhaustion: ExhaustionPolicy::default(),
            off_color_allocs: 0,
            exhaustion_fallbacks: 0,
            // Stagger rotation phases per task so concurrently-allocating
            // tasks do not all pop the same color at the same time (the
            // paper's kernel gets this effect for free from per-CPU list
            // traversal order).
            mem_cursor: (tid.0 as usize).wrapping_mul(7),
            llc_cursor: (tid.0 as usize).wrapping_mul(3),
            vm,
            pcp: std::collections::VecDeque::new(),
        }
    }

    /// Owned memory colors.
    pub fn mem_colors(&self) -> &[BankColor] {
        &self.mem_colors
    }

    /// Owned LLC colors.
    pub fn llc_colors(&self) -> &[LlcColor] {
        &self.llc_colors
    }

    /// Apply a color-set operation, updating the flags exactly as the
    /// paper's kernel patch does.
    pub fn apply(&mut self, op: ColorOp) {
        match op {
            ColorOp::SetMemColor(c) => {
                if !self.mem_colors.contains(&c) {
                    self.mem_colors.push(c);
                }
                self.using_bank = true;
            }
            ColorOp::SetLlcColor(c) => {
                if !self.llc_colors.contains(&c) {
                    self.llc_colors.push(c);
                }
                self.using_llc = true;
            }
            ColorOp::ClearMemColors => {
                self.mem_colors.clear();
                self.mem_cursor = 0;
                self.using_bank = false;
            }
            ColorOp::ClearLlcColors => {
                self.llc_colors.clear();
                self.llc_cursor = 0;
                self.using_llc = false;
            }
        }
    }

    /// True when any coloring flag is active (Algorithm 1's gate).
    pub fn coloring_active(&self) -> bool {
        self.using_bank || self.using_llc
    }

    /// Inherit the color configuration of a thread-group leader
    /// (`create_thread` semantics): owned color sets, both coloring flags,
    /// the base heap policy, and the exhaustion policy are copied; per-task
    /// state (counters, cursors, pcp cache) keeps its fresh-task values so
    /// rotation staggering and statistics stay per-thread.
    pub fn inherit_from(&mut self, leader: &TaskStruct) {
        self.mem_colors = leader.mem_colors.clone();
        self.llc_colors = leader.llc_colors.clone();
        self.using_bank = leader.using_bank;
        self.using_llc = leader.using_llc;
        self.policy = leader.policy;
        self.exhaustion = leader.exhaustion;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_task_is_legacy_uncolored() {
        let t = TaskStruct::new(Tid(1), CoreId(0), VmId(0));
        assert!(!t.coloring_active());
        assert_eq!(t.policy, HeapPolicy::Legacy);
        assert!(t.mem_colors().is_empty());
        assert_eq!(t.exhaustion, ExhaustionPolicy::Strict);
        assert_eq!(t.off_color_allocs, 0);
        assert_eq!(t.exhaustion_fallbacks, 0);
    }

    #[test]
    fn set_mem_color_sets_flag() {
        let mut t = TaskStruct::new(Tid(1), CoreId(0), VmId(0));
        t.apply(ColorOp::SetMemColor(BankColor(5)));
        assert!(t.using_bank);
        assert!(!t.using_llc);
        assert_eq!(t.mem_colors(), &[BankColor(5)]);
        assert!(t.coloring_active());
    }

    #[test]
    fn multiple_mmap_calls_accumulate_colors() {
        // Paper: "A thread may even call mmap() multiple times to establish
        // a set of 'owned' colors."
        let mut t = TaskStruct::new(Tid(1), CoreId(0), VmId(0));
        t.apply(ColorOp::SetLlcColor(LlcColor(1)));
        t.apply(ColorOp::SetLlcColor(LlcColor(2)));
        t.apply(ColorOp::SetLlcColor(LlcColor(1))); // duplicate ignored
        assert_eq!(t.llc_colors(), &[LlcColor(1), LlcColor(2)]);
    }

    #[test]
    fn clear_resets_flag_and_cursor() {
        let mut t = TaskStruct::new(Tid(1), CoreId(0), VmId(0));
        t.apply(ColorOp::SetMemColor(BankColor(1)));
        t.mem_cursor = 1;
        t.apply(ColorOp::ClearMemColors);
        assert!(!t.using_bank);
        assert!(t.mem_colors().is_empty());
        assert_eq!(t.mem_cursor, 0);
    }

    #[test]
    fn inherit_copies_colors_but_not_counters_or_cursors() {
        let mut leader = TaskStruct::new(Tid(1), CoreId(0), VmId(0));
        leader.apply(ColorOp::SetMemColor(BankColor(2)));
        leader.apply(ColorOp::SetLlcColor(LlcColor(1)));
        leader.policy = HeapPolicy::FirstTouch;
        leader.exhaustion = ExhaustionPolicy::NearestColor;
        leader.off_color_allocs = 9;
        let mut t = TaskStruct::new(Tid(4), CoreId(1), VmId(0));
        t.inherit_from(&leader);
        assert_eq!(t.mem_colors(), &[BankColor(2)]);
        assert_eq!(t.llc_colors(), &[LlcColor(1)]);
        assert!(t.using_bank && t.using_llc);
        assert_eq!(t.policy, HeapPolicy::FirstTouch);
        assert_eq!(t.exhaustion, ExhaustionPolicy::NearestColor);
        assert_eq!(t.off_color_allocs, 0, "stats stay per-thread");
        assert_eq!(t.mem_cursor, 4 * 7, "stagger keeps the fresh value");
        assert_eq!(t.llc_cursor, 4 * 3);
    }

    #[test]
    fn flags_are_independent() {
        let mut t = TaskStruct::new(Tid(1), CoreId(0), VmId(0));
        t.apply(ColorOp::SetMemColor(BankColor(0)));
        t.apply(ColorOp::SetLlcColor(LlcColor(0)));
        t.apply(ColorOp::ClearMemColors);
        assert!(!t.using_bank);
        assert!(t.using_llc);
        assert!(t.coloring_active());
    }
}
