//! Memory-pressure machinery: watermarks, the pressure signal, and the OOM
//! victim policy.
//!
//! Stock Linux degrades gracefully when free frames run dry: `kswapd` wakes
//! below the *low* watermark, direct reclaim kicks in below *min*, and the
//! OOM killer picks a victim when reclaim cannot keep up. This simulated
//! kernel has no swap and no page cache to reclaim from, so the analogous
//! regime is simpler but the shape is the same: a [`Watermarks`] pair over
//! the free-frame population yields a [`MemPressure`] signal callers can
//! read cheaply, and [`crate::Kernel::oom_kill`] is the last resort —
//! deterministic victim selection feeding the existing provenance-routed
//! task teardown.
//!
//! Everything here is driven by *simulated* state only: the pressure signal
//! and victim choice are pure functions of kernel data structures, so runs
//! remain bit-deterministic regardless of host scheduling.

use crate::task::Tid;

/// Free-frame watermarks over the combined free pool (buddy free pages plus
/// pages parked in the color lists — both are allocatable, the latter only
/// to matching colors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    /// Below this many free frames the kernel reports [`MemPressure::Low`]:
    /// new tenants should be deferred (admission control), but running
    /// tasks still allocate.
    pub low: u64,
    /// Below this many free frames the kernel reports
    /// [`MemPressure::Critical`]: allocation failures are expected and the
    /// OOM killer is a legitimate response.
    pub min: u64,
}

impl Watermarks {
    /// Linux-flavoured defaults for a machine with `frames` physical
    /// frames: `low` at 1/16 of memory, `min` at 1/64, floored so tiny
    /// test machines still get a meaningful band.
    pub fn for_frames(frames: u64) -> Self {
        Self {
            low: (frames / 16).max(8),
            min: (frames / 64).max(2),
        }
    }
}

/// The kernel's memory-pressure signal, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemPressure {
    /// Free frames above the low watermark: business as usual.
    Normal,
    /// Free frames at or below the low watermark: defer new tenants.
    Low,
    /// Free frames at or below the min watermark: allocations may fail;
    /// killing a victim is on the table.
    Critical,
}

/// How [`crate::Kernel::oom_kill`] picks its victim. All policies are
/// deterministic: equal kernel states choose equal victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Linux's `oom_badness` spirit: the task with the largest resident
    /// footprint (resident pages of its address space plus its pcp batch),
    /// ties broken by the *youngest* task (largest tid) — killing the
    /// newcomer over the established tenant.
    LargestFootprint,
    /// Always the youngest task (largest tid) — the cheap "undo the most
    /// recent admission" policy.
    Youngest,
}

/// What an OOM kill did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OomKill {
    /// The task that was destroyed.
    pub victim: Tid,
    /// Free frames gained by the kill (buddy + color pools, after the
    /// victim's address space and pcp batch were reclaimed).
    pub frames_reclaimed: u64,
}

/// Resumable position of the incremental invariant auditor
/// ([`crate::Kernel::audit_step`]): the next physical frame to examine.
/// The cursor wraps at the frame count, so a long-running harness sweeps
/// the whole machine over and over in bounded slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditCursor {
    /// Next frame number to audit.
    pub next: u64,
}
