//! # tint-kernel — simulated OS memory management
//!
//! TintMalloc is implemented *inside the Linux kernel* (paper §III): it
//! modifies `mmap()`, the task control block, and `alloc_pages`. This crate
//! reproduces that machinery against the simulated physical memory of
//! [`tint_hw`]:
//!
//! * [`buddy`] — the legacy Linux **buddy allocator** (order-indexed free
//!   lists with split and coalesce), the baseline TintMalloc falls back to
//!   and competes against (§III.C);
//! * [`colorlist`] — the `color_list[MEM_ID][cache_ID]` matrix and
//!   **Algorithm 2** (`create_color_list`): moving a buddy block into the
//!   per-color page lists;
//! * [`task`] — the TCB (`task_struct`) with per-task color sets and the
//!   `using_bank` / `using_llc` flags;
//! * [`vm`] — per-task virtual address spaces: VMAs, page tables, and
//!   demand (first-touch) paging;
//! * [`kernel`] — the [`kernel::Kernel`] facade: the `mmap()` system call
//!   with the paper's zero-length/bit-30 color-setting protocol (§III.B),
//!   and **Algorithm 1** (colored page selection) wired into the page-fault
//!   path;
//! * [`fault`] — deterministic, seeded fault injection ([`FaultPlan`] /
//!   [`FaultInjector`]) for the allocation paths, off by default and
//!   zero-cost when off.
//!
//! The crate is purely about *which frame* a task gets and *what the kernel
//! charges for it*; timing of subsequent accesses to those frames is the
//! business of `tint-mem`.
//!
//! ```
//! use tint_hw::addrmap::AddressMapping;
//! use tint_hw::topology::Topology;
//! use tint_hw::types::{BankColor, CoreId, LlcColor};
//! use tint_kernel::kernel::{COLOR_ALLOC, SET_LLC_COLOR, SET_MEM_COLOR};
//! use tint_kernel::{Kernel, KernelCosts};
//!
//! let mut k = Kernel::new(AddressMapping::tiny(), Topology::new(2, 1, 2), KernelCosts::default());
//! let t = k.create_task(CoreId(0));
//! // The paper's color protocol: zero-length mmap with bit 30 set.
//! k.sys_mmap(t, SET_MEM_COLOR | 1, 0, COLOR_ALLOC).unwrap();
//! k.sys_mmap(t, SET_LLC_COLOR | 2, 0, COLOR_ALLOC).unwrap();
//! // An ordinary mapping then faults colored frames on first touch.
//! let base = k.sys_mmap(t, 0, 4096, 0).unwrap();
//! let tr = k.translate(t, base).unwrap();
//! let d = k.mapping().decode_frame(tr.phys.frame());
//! assert_eq!(d.bank_color, BankColor(1));
//! assert_eq!(d.llc_color, LlcColor(2));
//! ```

pub mod buddy;
pub mod colorlist;
pub mod errno;
pub mod fault;
pub mod kernel;
pub mod pressure;
pub mod task;
pub mod vm;

pub use buddy::BuddyAllocator;
pub use colorlist::ColorMatrix;
pub use errno::Errno;
pub use fault::{FaultInjector, FaultPlan, FaultSite};
pub use kernel::{AllocOutcome, Kernel, KernelCosts, KernelStats};
pub use pressure::{AuditCursor, MemPressure, OomKill, VictimPolicy, Watermarks};
pub use task::{ColorOp, ExhaustionPolicy, HeapPolicy, TaskStruct, Tid};
pub use vm::{AddressSpace, FrameSource, Pte};

/// Largest buddy order (blocks of `2^MAX_ORDER` pages = 8 MiB), mirroring
/// Linux's historical `MAX_ORDER` of 11.
pub const MAX_ORDER: u32 = 11;
